#!/usr/bin/env python3
"""Simulation-as-a-service quickstart: artifact cache + lane fleet.

One compiled design serves many independent testbench sessions.  A
:class:`~repro.serve.LaneFleet` checks each session out onto a free lane
of a shared batched simulator; the coalescing barrier steps a member
once per cycle *for all its sessions together*, so N clients pay one
OIM pass instead of N.  In front of it, ``serve_in_thread`` exposes the
fleet over TCP, and :func:`~repro.serve.connect_session` gives each
client its own framed JSON connection.

The artifact cache makes the server itself cheap to (re)start: with
``REPRO_CACHE_DIR`` set, elaboration, partitioning, and OIM lowering
are content-addressed on disk, and a second process rebuilds the same
simulator >10x faster (``BENCH_serve.json`` records the measured
figures).

Run:  PYTHONPATH=src python examples/serve_sessions.py

Server/CLI equivalents::

    export REPRO_CACHE_DIR=~/.cache/repro
    python -m repro.experiments serve cache warm --design rocket-1
    python -m repro.experiments serve run --design rocket-1 --port 9090
    python -m repro.experiments serve client --port 9090 --design rocket-1
"""

import random
import tempfile
import threading
import time

from repro.designs.registry import compiled_graph, get_design
from repro.serve import LaneFleet, configure_cache, serve_in_thread
from repro.serve.server import connect_session
from repro.sim import Simulator

DESIGN = "rocket-1"
SESSIONS = 6
CYCLES = 32


def drive(session, seed: int, inputs, watch: str) -> list:
    """One client's testbench: seeded stimulus, blocking coalesced steps."""
    rng = random.Random(seed)
    trace = []
    for _ in range(CYCLES):
        for name in inputs:
            session.poke(name, rng.randrange(1 << 16))
        session.step(1)  # blocks until every open session reaches the cycle
        trace.append(session.peek(watch))
    return trace


def main() -> None:
    source = get_design(DESIGN)
    graph = compiled_graph(DESIGN)
    inputs = sorted(graph.inputs)
    watch = sorted(graph.outputs)[0]

    with tempfile.TemporaryDirectory(prefix="repro-serve-example-") as cd:
        # ------------------------------------------------------------------
        # 1. Artifact cache: the first build populates it, later builds
        #    (this process or the next) load instead of recompiling.
        configure_cache(cd)
        start = time.perf_counter()
        fleet = LaneFleet(source, engine="batch", lanes=8, max_members=2)
        cold = time.perf_counter() - start
        print(f"fleet up ({fleet.capacity} session slots) in {cold:.3f}s cold")

        # ------------------------------------------------------------------
        # 2. Serve it over TCP and run N concurrent client sessions, each
        #    on its own connection so blocking steps can coalesce.
        handle = serve_in_thread(fleet)
        host, port = handle.address
        print(f"serving {DESIGN} on {host}:{port}")

        traces: dict = {}

        def client(seed: int) -> None:
            session = connect_session(host, port)
            try:
                traces[seed] = drive(session, seed, inputs, watch)
            finally:
                session.close()

        threads = [threading.Thread(target=client, args=(seed,))
                   for seed in range(SESSIONS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        handle.close()
        fleet.close()

        # ------------------------------------------------------------------
        # 3. Every session is bit-identical to an independent scalar run
        #    of the same seed: multiplexing is invisible to the client.
        for seed in range(SESSIONS):
            scalar = Simulator(source)
            rng = random.Random(seed)
            expect = []
            for _ in range(CYCLES):
                for name in inputs:
                    scalar.poke(name, rng.randrange(1 << 16))
                scalar.step()
                expect.append(scalar.peek(watch))
            assert traces[seed] == expect, f"seed {seed} diverged"
        print(f"{SESSIONS} concurrent sessions x {CYCLES} cycles: "
              f"all bit-identical to scalar runs")

        # ------------------------------------------------------------------
        # 4. Warm restart: same cache directory, so construction skips
        #    elaborate/partition/lower entirely.
        start = time.perf_counter()
        LaneFleet(source, engine="batch", lanes=8, max_members=2).close()
        warm = time.perf_counter() - start
        print(f"warm rebuild in {warm:.3f}s ({cold / warm:.1f}x faster)")


if __name__ == "__main__":
    main()
