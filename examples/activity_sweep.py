#!/usr/bin/env python3
"""Sparsity-aware simulation: pay only for what toggles.

Full-cycle simulation is activity-oblivious -- every cycle evaluates the
whole design even when almost nothing changed.  With
``kernel="activity"`` the toggled-value set becomes a first-class tensor
dimension instead: a compressed fiber of changed slots drives the OIM
walk, untouched fan-in cones are never visited, and lanes whose inputs
hold still are compacted out of the batched value plane.

This example drives the sha3 accelerator through its natural activity
phases -- absorb (busy), permute (busy), then idle -- and watches the
per-cycle cost follow the activity, not the design size.

Run:  PYTHONPATH=src python examples/activity_sweep.py
"""

import time

from repro.batch import BatchSimulator
from repro.designs.registry import compiled_graph
from repro.workloads import batched_workload_for, sparsify

LANES = 8
PHASES = (
    # (label, hold period): 1 = fresh stimulus every cycle, large = the
    # inputs freeze and the accelerator drains to quiescence.
    ("busy (inputs toggle every cycle)", 1),
    ("settling (inputs hold 8 cycles)", 8),
    ("idle (inputs frozen)", 1 << 20),
)
CYCLES_PER_PHASE = 64


def run_phase(sim, workload, start_cycle):
    # stats is live (one mutable counter object), so snapshot the ints.
    done_before = sim.activity_stats.ops_evaluated
    skip_before = sim.activity_stats.ops_skipped
    elapsed = time.perf_counter()
    for cycle in range(start_cycle, start_cycle + CYCLES_PER_PHASE):
        workload.apply(sim, cycle)
        sim.step()
    elapsed = time.perf_counter() - elapsed
    done = sim.activity_stats.ops_evaluated - done_before
    ops = done + sim.activity_stats.ops_skipped - skip_before
    return elapsed, (1 - done / ops) if ops else 0.0


def main() -> None:
    # One activity-enabled batch engine; the API is the plain one, the
    # sparsity is observable through `activity_stats`.
    sim = BatchSimulator(compiled_graph("sha3"), lanes=LANES,
                         kernel="activity")
    print(f"engine: {sim.kernel.name}\n")

    dense = batched_workload_for("sha3", LANES)
    cycle = 0
    print(f"{'phase':<36} {'cycles/s':>10} {'op skip':>8}")
    for label, period in PHASES:
        workload = sparsify(dense, period) if period > 1 else dense
        elapsed, skip = run_phase(sim, workload, cycle)
        cycle += CYCLES_PER_PHASE
        print(f"{label:<36} {CYCLES_PER_PHASE / elapsed:>10.0f} "
              f"{skip:>7.0%}")

    stats = sim.activity_stats
    print(f"\nwhole run: {stats.cycles} cycles, "
          f"op skip {stats.op_skip_rate:.0%}, "
          f"lane skip {stats.lane_skip_rate:.0%}")
    print("same bits as the dense engine -- only the work is different")


if __name__ == "__main__":
    main()
