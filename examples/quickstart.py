#!/usr/bin/env python3
"""Quickstart: simulate an RTL design with RTeAAL Sim.

Covers the core flow of the paper's Figure 14: write FIRRTL, compile it to
an OIM tensor plus a kernel, and run full-cycle simulation.  Also shows the
tensor view of the design and the seven kernel configurations.

Run:  python examples/quickstart.py
"""

from repro import Simulator
from repro.kernels import ALL_KERNELS
from repro.oim import lower_oim_fast, oim_format
from repro.sim.simulator import compile_design

FIRRTL = """
circuit Blinky :
  module Blinky :
    input clock : Clock
    input reset : UInt<1>
    input speed : UInt<4>
    output led : UInt<1>
    output ticks : UInt<16>
    regreset counter : UInt<16>, clock, reset, UInt<16>(0)
    node step = pad(add(speed, UInt<4>(1)), 16)
    counter <= tail(add(counter, step), 1)
    led <= bits(counter, 15, 15)
    ticks <= counter
"""


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Simulate: poke inputs, step the clock, peek outputs.
    # ------------------------------------------------------------------
    simulator = Simulator(FIRRTL, kernel="PSU")
    simulator.poke("speed", 3)
    for cycle in range(5):
        print(f"cycle {cycle}: ticks={simulator.peek('ticks'):5d} "
              f"led={simulator.peek('led')}")
        simulator.step()

    # ------------------------------------------------------------------
    # 2. The tensor view: the design *is* a sparse tensor (the OIM).
    # ------------------------------------------------------------------
    bundle = compile_design(FIRRTL)
    print(f"\nOIM: {bundle.num_ops} operations across "
          f"{bundle.num_layers} layers, {bundle.num_slots} value slots")
    print(f"operation types (N rank): {bundle.op_table.names()}")
    lowered = lower_oim_fast(bundle, "swizzled")
    print(f"swizzled OIM format ({oim_format('swizzled').rank_order}): "
          f"{lowered.storage_bytes()} bytes")

    # ------------------------------------------------------------------
    # 3. Every kernel configuration computes the same answer.
    # ------------------------------------------------------------------
    print("\nkernel spectrum (Section 5.2):")
    for config in ALL_KERNELS:
        sim = Simulator(FIRRTL, kernel=config.name)
        sim.poke("speed", 3)
        sim.step(100)
        print(f"  {config.name:>3}: ticks after 100 cycles = "
              f"{sim.peek('ticks'):5d}   ({config.description.split('.')[0]})")


if __name__ == "__main__":
    main()
