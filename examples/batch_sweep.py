#!/usr/bin/env python3
"""Batched simulation quickstart: B stimulus lanes through one OIM pass.

The batch rank is free in tensor algebra: widening every value slot to a
vector of B lanes turns one compiled design into a multi-seed throughput
engine (see the ``repro.batch`` package docstring).  This example runs a
design-space-style sweep -- every lane drives a different ``speed`` -- and
then measures lane-throughput against sequential scalar simulation.

Run:  PYTHONPATH=src python examples/batch_sweep.py
"""

import time

from repro import BatchSimulator, Simulator

FIRRTL = """
circuit Blinky :
  module Blinky :
    input clock : Clock
    input reset : UInt<1>
    input speed : UInt<4>
    output led : UInt<1>
    output ticks : UInt<16>
    regreset counter : UInt<16>, clock, reset, UInt<16>(0)
    node step = pad(add(speed, UInt<4>(1)), 16)
    counter <= tail(add(counter, step), 1)
    led <= bits(counter, 15, 15)
    ticks <= counter
"""

# Vector dispatch amortises with B: tiny designs like this one need a
# wide batch before one NumPy pass beats the (very cheap) scalar SU loop.
LANES = 64
CYCLES = 2000


def main() -> None:
    # ------------------------------------------------------------------
    # 1. One poke drives all lanes: scalars broadcast, lists are per-lane.
    # ------------------------------------------------------------------
    batch = BatchSimulator(FIRRTL, lanes=LANES, kernel="SU")
    print(f"engine: {batch.kernel.name} (style={batch.kernel.style})")
    batch.poke("reset", 0)
    batch.poke("speed", [lane % 16 for lane in range(LANES)])  # lane i: speed=i%16
    batch.step(100)
    print("ticks after 100 cycles, first 8 lanes:")
    for lane, ticks in enumerate(batch.peek("ticks")[:8]):
        print(f"  speed={lane}: ticks={ticks:5d} led={batch.peek_lane('led', lane)}")

    # ------------------------------------------------------------------
    # 2. Checkpoint, diverge, rewind: snapshots fork whole sweeps.
    # ------------------------------------------------------------------
    checkpoint = batch.snapshot()
    batch.step(100)
    after = batch.peek("ticks")
    batch.restore(checkpoint)
    batch.step(100)
    assert batch.peek("ticks") == after          # deterministic replay
    print("\nsnapshot/restore replayed 100 cycles deterministically")

    # ------------------------------------------------------------------
    # 3. Throughput: one batched pass vs LANES sequential scalar runs.
    # ------------------------------------------------------------------
    scalar = Simulator(FIRRTL, kernel="SU")
    start = time.perf_counter()
    for speed in range(LANES):
        scalar.reset()
        scalar.poke("reset", 0)
        scalar.poke("speed", speed % 16)
        scalar.step(CYCLES)
    scalar_time = time.perf_counter() - start

    start = time.perf_counter()
    batch.step(CYCLES)
    batch_time = time.perf_counter() - start

    lane_cycles = LANES * CYCLES
    print(f"\nscalar: {lane_cycles / scalar_time:10.0f} lane-cycles/s "
          f"({LANES} sequential runs)")
    print(f"batch:  {lane_cycles / batch_time:10.0f} lane-cycles/s "
          f"(one {LANES}-lane pass)  -> {scalar_time / batch_time:.1f}x")


if __name__ == "__main__":
    main()
