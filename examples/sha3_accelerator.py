#!/usr/bin/env python3
"""Simulate the SHA3 (Keccak-f) accelerator and check it against software.

This is the paper's SHA3 design: a multi-round-per-cycle Keccak-f datapath
driven over a RoCC-style interface.  The example absorbs a message state,
runs a full 24-round permutation, validates every lane against a software
Keccak-f, and dumps a VCD waveform of the control signals.

Run:  python examples/sha3_accelerator.py
"""

import random

from repro import Simulator
from repro.designs.sha3 import (
    NUM_ROUNDS,
    keccak_f_reference,
    round_constants_for_step,
    sha3_soc,
)
from repro.sim import VcdWriter

LANE_WIDTH = 64
ROUNDS_PER_CYCLE = 4


def main() -> None:
    simulator = Simulator(
        sha3_soc(LANE_WIDTH, ROUNDS_PER_CYCLE),
        kernel="TI",  # the paper's best kernel for SHA3 (Section 7.5)
        preserve_signals=True,
    )
    writer = VcdWriter(
        simulator, {"round_out": 5, "done": 1, "digest": LANE_WIDTH}
    )

    rng = random.Random(2026)
    state = [rng.randrange(1 << LANE_WIDTH) for _ in range(25)]

    print("absorbing 25 lanes over the RoCC interface...")
    for index, lane in enumerate(state):
        simulator.poke("absorb_valid", 1)
        simulator.poke("absorb_idx", index)
        simulator.poke("absorb_lane", lane)
        writer.sample()
        simulator.step()
    simulator.poke("absorb_valid", 0)

    print("running Keccak-f[%d]..." % (25 * LANE_WIDTH))
    simulator.poke("start", 1)
    writer.sample()
    simulator.step()
    simulator.poke("start", 0)
    for step in range(NUM_ROUNDS // ROUNDS_PER_CYCLE):
        for position, constant in enumerate(
            round_constants_for_step(step, LANE_WIDTH, ROUNDS_PER_CYCLE)
        ):
            simulator.poke(f"rc{position}", constant)
        writer.sample()
        simulator.step()

    hardware = [
        simulator.peek(f"s_{x}_{y}") for y in range(5) for x in range(5)
    ]
    software = keccak_f_reference(state, LANE_WIDTH)
    assert hardware == software, "hardware/software Keccak mismatch!"
    print(f"all 25 lanes match software Keccak-f  (digest lane: "
          f"{simulator.peek('digest'):#018x})")

    writer.save("sha3.vcd")
    print("waveform written to sha3.vcd "
          f"({len(writer.document().splitlines())} lines)")


if __name__ == "__main__":
    main()
