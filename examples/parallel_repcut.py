#!/usr/bin/env python3
"""RepCut-style parallel simulation (paper Section 8 / Appendix C).

Partitions a multi-core SoC into decoupled partitions with replicated
fan-in, builds the Register Update Map (the RUM tensor of Cascade 2), and
runs the partitions in lockstep with a per-cycle synchronisation step --
verifying against single-engine simulation as it goes.

Run:  python examples/parallel_repcut.py
"""

from repro import Simulator
from repro.designs import get_design
from repro.designs.registry import compiled_graph
from repro.repcut import RepCutSimulator, build_rum, partition_graph
from repro.workloads import workload_for

DESIGN = "rocket-2"
PARTITIONS = 4
CYCLES = 120


def main() -> None:
    graph = compiled_graph(DESIGN)
    print(f"{DESIGN}: {graph.num_ops} ops, {len(graph.registers)} registers")

    result = None
    for strategy in ("greedy", "refined"):
        result = partition_graph(graph, PARTITIONS, strategy=strategy)
        print(f"\n{strategy} partitioning into {PARTITIONS} "
              f"(effective {len(result.partitions)}):")
        for partition in result.partitions:
            print(f"  partition {partition.index}: "
                  f"{partition.num_ops:6d} ops, "
                  f"{len(partition.owned_registers):4d} owned regs, "
                  f"{len(partition.external_registers):4d} replicas")
        print(f"replication overhead: {result.replication_overhead:.1%}")

    rum = build_rum(result)
    tensor = rum.to_tensor()
    print(f"\nRUM tensor (ranks {tensor.rank_names}): "
          f"{tensor.occupancy} register transfers per cycle "
          f"(differential-exchange upper bound)")

    print(f"\nlockstep check (refined cut) vs single simulator over "
          f"{CYCLES} cycles...")
    single = Simulator(graph, optimize_graph=False)
    multi = RepCutSimulator(
        graph, num_partitions=PARTITIONS, partitioner="refined"
    )
    workload = workload_for(DESIGN)
    for cycle in range(CYCLES):
        for name, driver in workload.drivers.items():
            value = driver(cycle)
            single.poke(name, value)
            multi.poke(name, value)
        assert single.peek("out") == multi.peek("out"), f"diverged @ {cycle}"
        single.step()
        multi.step()
    print(f"identical outputs for {CYCLES} cycles  "
          f"(final out = {multi.peek('out'):#010x})")


if __name__ == "__main__":
    main()
