#!/usr/bin/env python3
"""Design-space exploration: which kernel should simulate your SoC?

Reproduces the heart of the paper's evaluation for one design: compile a
multi-core SoC, run the dhrystone workload functionally, then sweep the
seven kernel configurations across the four host-machine models to find
the per-machine sweet spot (Figure 16) and compare compile costs against
Verilator- and ESSENT-style baselines (Table 7).

Run:  python examples/soc_design_space.py [cores]
"""

import sys

from repro import Simulator
from repro.designs import get_design
from repro.experiments.common import (
    KERNEL_NAMES,
    best_kernel,
    compile_cost_for,
    format_table,
    perf_for,
)
from repro.perf.machines import ALL_MACHINES
from repro.workloads import workload_for


def main() -> None:
    cores = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    design_name = f"rocket-{cores}"
    print(f"=== {design_name}: functional smoke run (dhrystone) ===")
    simulator = Simulator(get_design(design_name), kernel="PSU")
    workload = workload_for(design_name)
    for cycle in range(200):
        workload.apply(simulator, cycle)
        simulator.step()
    print(f"ran 200 cycles; out = {simulator.peek('out'):#010x}\n")

    print(f"=== modelled simulation time (paper cycle counts) ===")
    rows = []
    for machine in ALL_MACHINES:
        times = {
            kernel: perf_for(design_name, kernel, machine).sim_time_s
            for kernel in KERNEL_NAMES
        }
        winner, _ = best_kernel(design_name, machine)
        rows.append(
            [machine.name] + [f"{times[k]:.0f}" for k in KERNEL_NAMES] + [winner]
        )
    print(format_table(["machine"] + list(KERNEL_NAMES) + ["best"], rows))

    print(f"\n=== compile cost vs the baselines (Xeon, clang -O3) ===")
    rows = []
    for engine in ("PSU", "SU", "Verilator", "ESSENT"):
        cost = compile_cost_for(design_name, engine, "intel-xeon")
        rows.append([engine, f"{cost.seconds:.1f}", f"{cost.peak_memory_gb:.2f}"])
    print(format_table(["engine", "compile time (s)", "peak memory (GB)"], rows))

    print(f"\n=== who wins at simulation time? (Xeon) ===")
    verilator = perf_for(design_name, "Verilator", "intel-xeon")
    essent = perf_for(design_name, "ESSENT", "intel-xeon")
    kernel, kernel_result = best_kernel(design_name, "intel-xeon")
    print(f"Verilator: {verilator.sim_time_s:8.1f} s")
    print(f"RTeAAL {kernel}: {kernel_result.sim_time_s:6.1f} s "
          f"({verilator.sim_time_s / kernel_result.sim_time_s:.2f}x vs Verilator)")
    print(f"ESSENT:    {essent.sim_time_s:8.1f} s "
          f"({verilator.sim_time_s / essent.sim_time_s:.2f}x vs Verilator, "
          "but mind Table 7's compile bill)")


if __name__ == "__main__":
    main()
