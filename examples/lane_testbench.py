#!/usr/bin/env python3
"""Lane-aware verification quickstart: testbench, per-lane VCDs, and the
differential harness.

One :class:`~repro.sim.Testbench` drives a B-lane batched simulator with
mixed stimulus (broadcast + lane-targeted), records lane-major traces,
and dumps one VCD file per lane -- each bit-identical to a scalar
simulator's VCD of the same stimulus.  The same trace machinery powers
the differential harness, which cross-checks the whole engine matrix
(scalar / batch backends / sharded executors) on seeded stimulus:

    PYTHONPATH=src python examples/lane_testbench.py
    PYTHONPATH=src python -m repro.experiments differential \\
        --design rocket-1 --seed 7
"""

from pathlib import Path

from repro import BatchSimulator, Simulator
from repro.sim import Testbench, VcdWriter, compare_traces
from repro.verify import run_differential

FIRRTL = """
circuit Pulse :
  module Pulse :
    input clock : Clock
    input reset : UInt<1>
    input enable : UInt<1>
    input gain : UInt<4>
    output level : UInt<12>
    regreset acc : UInt<12>, clock, reset, UInt<12>(0)
    node bump = pad(gain, 12)
    acc <= mux(enable, tail(add(acc, bump), 1), acc)
    level <= acc
"""

LANES = 4
CYCLES = 20


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A lane-aware testbench: broadcast + lane-targeted stimulus.
    # ------------------------------------------------------------------
    batch = BatchSimulator(FIRRTL, lanes=LANES)
    bench = Testbench(batch, watch=["level"])
    bench.drive("reset", [1, 0])                    # cycles 0..1, all lanes
    bench.drive("enable", lambda cycle: 1)          # broadcast
    bench.drive("gain", lambda cycle: [1, 2, 4, 8])  # per-lane vector
    # Lane 3 stalls from cycle 10 on; the other lanes keep running.
    bench.drive("enable", lambda cycle: 0 if cycle >= 10 else 1, lane=3)
    trace = bench.run(CYCLES)
    print("lane-major trace, final levels:",
          [rows[-1] for rows in trace["level"]])

    # ------------------------------------------------------------------
    # 2. Per-lane VCDs, bit-identical to scalar runs of the same seeds.
    # ------------------------------------------------------------------
    writer = VcdWriter(batch := BatchSimulator(FIRRTL, lanes=LANES),
                       {"level": 12, "enable": 1})
    batch.poke("reset", 0)
    batch.poke("enable", 1)
    batch.poke("gain", [1, 2, 4, 8])
    writer.run(CYCLES)
    out_dir = Path("waves")
    out_dir.mkdir(exist_ok=True)
    written = writer.save_lanes(out_dir / "pulse_lane{lane}.vcd")
    print(f"wrote {len(written)} per-lane VCD files under {out_dir}/")

    # Cross-check lane 2 against an independent scalar simulation driven
    # with exactly lane 2's stimulus (gain=4, never stalled).
    scalar_bench = Testbench(
        Simulator(FIRRTL),
        stimulus={"reset": [1, 0], "enable": lambda c: 1, "gain": lambda c: 4},
        watch=["level"],
    )
    scalar_trace = scalar_bench.run(CYCLES)
    diffs = compare_traces(scalar_trace, bench.lane_trace(2))
    print("scalar vs lane 2 diffs:", diffs or "none (bit-exact)")
    assert not diffs

    # ------------------------------------------------------------------
    # 3. The differential harness: full engine matrix, one seed.
    # ------------------------------------------------------------------
    result = run_differential("rocket-1", seed=7, lanes=2, cycles=12)
    print(result.summary())
    assert result.ok


if __name__ == "__main__":
    main()
