#!/usr/bin/env python3
"""Sharded batched simulation quickstart: B lanes × P partition workers.

Composes the repo's two scaling axes on a real evaluation design:
RepCut partitioning decouples rocket-1 into P per-cycle kernels, lane
batching advances B stimulus seeds through each at once, and the
Register Update Map exchange keeps every lane bit-exact with the scalar
simulator.  The executor grid at the end shows where each execution
style pays off (on a single-CPU host the parallel executors time-slice;
the critical-path rate is what >= P free cores would sustain).

Run:  PYTHONPATH=src python examples/shard_sweep.py
"""

import os
import time

from repro import ShardedBatchSimulator, Simulator
from repro.designs.registry import get_design
from repro.workloads.stimulus import batched_workload_for

DESIGN = "rocket-1"
LANES = 16
CYCLES = 40


def main() -> None:
    src = get_design(DESIGN)
    workload = batched_workload_for(DESIGN, LANES)

    # ------------------------------------------------------------------
    # 1. Scalar-compatible surface, lane-vectorised results.
    # ------------------------------------------------------------------
    with ShardedBatchSimulator(
        src, lanes=LANES, num_partitions=2, executor="serial"
    ) as sim:
        print(sim)
        print(f"partitions: {sim.describe_partitions()}, replication "
              f"overhead {sim.replication_overhead:.0%}, "
              f"{sim.sync_traffic_per_cycle()} register rows/cycle max")
        for cycle in range(CYCLES):
            workload.apply(sim, cycle)       # per-lane input vectors
            sim.step()
        sharded_out = sim.peek("out")
        print(f"differential exchange suppressed "
              f"{sim.differential_savings:.0%} of sync traffic")

    # Bit-exact with one scalar run per lane:
    scalar = Simulator(src)
    for cycle in range(CYCLES):
        workload.lane(0).apply(scalar, cycle)
        scalar.step()
    assert sharded_out[0] == scalar.peek("out")
    print("lane 0 matches a scalar run bit-exactly\n")

    # ------------------------------------------------------------------
    # 2. The executor × partitioner grid: the greedy cut replicates
    #    rocket-1's shared fan-in core into both partitions (~97%), the
    #    refined KL/FM cut keeps the cluster whole (~0.1%).
    # ------------------------------------------------------------------
    print(f"executor grid ({LANES} lanes, {CYCLES} cycles, host has "
          f"{os.cpu_count()} CPU(s)):")
    for executor in ("serial", "thread", "process"):
        for partitions, partitioner in (
            (1, "greedy"), (2, "greedy"), (2, "refined"),
        ):
            with ShardedBatchSimulator(
                src, lanes=LANES, num_partitions=partitions,
                executor=executor, partitioner=partitioner,
            ) as sim:
                overhead = sim.replication_overhead
                start = time.perf_counter()
                for cycle in range(CYCLES):
                    workload.apply(sim, cycle)
                    sim.step()
                elapsed = time.perf_counter() - start
                critical = sim.step_max_seconds
            rate = LANES * CYCLES / elapsed
            crit_rate = LANES * CYCLES / max(critical, 1e-12)
            print(f"  {executor:8s} P={partitions} {partitioner:7s} "
                  f"(repl {overhead:5.1%}): {rate:8.0f} "
                  f"lane-cycles/s (crit-path {crit_rate:8.0f})")


if __name__ == "__main__":
    main()
