"""Shared fixtures: small designs, compiled graphs, and bundles."""

from __future__ import annotations

import random

import pytest

from repro.designs import library
from repro.firrtl.elaborate import elaborate
from repro.firrtl.parser import parse
from repro.graph.build import build_dfg
from repro.graph.optimize import optimize
from repro.oim.builder import build_oim

#: A compact design exercising every op class: reducible, unary, select.
MIXED_SRC = """
circuit Mixed :
  module Mixed :
    input clock : Clock
    input reset : UInt<1>
    input a : UInt<8>
    input b : UInt<8>
    output out : UInt<8>
    output flag : UInt<1>
    regreset acc : UInt<8>, clock, reset, UInt<8>(7)
    reg shadow : UInt<8>, clock
    node s = tail(add(a, b), 1)
    node sel = gt(s, UInt<8>(128))
    node m = mux(sel, s, mux(eq(a, b), acc, mux(lt(a, b), a, b)))
    acc <= m
    shadow <= xor(not(acc), UInt<8>(170))
    out <= acc
    flag <= orr(and(shadow, s))
"""


@pytest.fixture(scope="session")
def mixed_src() -> str:
    return MIXED_SRC


@pytest.fixture(scope="session")
def mixed_design():
    return elaborate(parse(MIXED_SRC))


@pytest.fixture(scope="session")
def mixed_graph(mixed_design):
    graph, _ = optimize(build_dfg(mixed_design))
    return graph


@pytest.fixture(scope="session")
def mixed_bundle(mixed_graph):
    return build_oim(mixed_graph)


@pytest.fixture(scope="session")
def gcd_src() -> str:
    return library.gcd()


@pytest.fixture(scope="session")
def counter_src() -> str:
    return library.counter()


@pytest.fixture(scope="session")
def alu_src() -> str:
    return library.alu()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def graph_with_unplaced_signal():
    """A design whose named op ``r.dbg`` feeds no register or output: it
    survives in the graph's signal map but no partition cone carries it
    (the partitioned simulators' peek-diagnostic case)."""
    from repro.graph.dfg import DataflowGraph

    graph = DataflowGraph("diag")
    a = graph.add_input("a", 4)
    graph.add_op("not", (a,), 4, name="r.dbg")
    graph.add_register("r", 4)
    graph.set_register_next("r", a)
    graph.set_output("out", graph.registers["r"].state_nid)
    return graph


def drive_random_inputs(simulators, design, rng, cycles, watch=None):
    """Poke identical random inputs into several simulators in lockstep.

    Returns per-simulator traces of the watched signals (default outputs).
    Raises AssertionError on the first divergence, for precise diagnostics.
    """
    watch = list(watch or design.outputs)
    traces = [dict((w, []) for w in watch) for _ in simulators]
    for cycle in range(cycles):
        for name, width in design.inputs.items():
            value = rng.randrange(1 << width)
            for simulator in simulators:
                simulator.poke(name, value)
        reference_values = None
        for index, simulator in enumerate(simulators):
            values = tuple(simulator.peek(w) for w in watch)
            for w, v in zip(watch, values):
                traces[index][w].append(v)
            if reference_values is None:
                reference_values = values
            else:
                assert values == reference_values, (
                    f"divergence at cycle {cycle}: simulator {index} "
                    f"returned {values}, expected {reference_values}"
                )
        for simulator in simulators:
            simulator.step()
    return traces
