"""Tests for repro.shard: lockstep equivalence of the sharded batched
simulator with the scalar simulator and the flat batch engine, across
executors ({serial, thread, process}) and partition counts."""

import pytest

from repro.batch import BatchSimulator
from repro.designs.registry import compile_named_design, compiled_graph
from repro.shard import EXECUTORS, ShardedBatchSimulator, make_executor
from repro.sim import Simulator
from repro.workloads.stimulus import batched_workload_for

from conftest import graph_with_unplaced_signal

LANES = 2
CYCLES = 6

#: Multi-clock design: two domains, register-to-register across them.
DUAL_SRC = (
    "circuit Dual :\n"
    "  module Dual :\n"
    "    input clock : Clock\n"
    "    input clk2 : Clock\n"
    "    input a : UInt<8>\n"
    "    output fast_out : UInt<8>\n"
    "    output slow_out : UInt<8>\n"
    "    reg fast : UInt<8>, clock\n"
    "    reg slow : UInt<8>, clk2\n"
    "    fast <= a\n"
    "    slow <= fast\n"
    "    fast_out <= fast\n"
    "    slow_out <= slow\n"
)


def observable_outputs(bundle):
    outputs = sorted(set(bundle.output_slots) & set(bundle.signal_slots))
    assert outputs, f"no observable outputs on {bundle.design_name}"
    return outputs


def assert_shard_lockstep_vs_scalar(
    design, executor, partitions, lanes=LANES, cycles=CYCLES, kernel="PSU",
    partitioner="greedy",
):
    """Sharded B-lane run must be bit-exact with B scalar runs, per cycle."""
    bundle = compile_named_design(design)
    graph = compiled_graph(design)
    workload = batched_workload_for(design, lanes)
    outputs = observable_outputs(bundle)
    scalars = [Simulator(bundle, kernel=kernel) for _ in range(lanes)]
    with ShardedBatchSimulator(
        graph, lanes=lanes, num_partitions=partitions, kernel=kernel,
        executor=executor, partitioner=partitioner,
    ) as shard:
        for cycle in range(cycles):
            workload.apply(shard, cycle)
            for lane, scalar in enumerate(scalars):
                workload.lane(lane).apply(scalar, cycle)
            for name in outputs:
                got = shard.peek(name)
                want = [scalar.peek(name) for scalar in scalars]
                assert got == want, (
                    f"{design}/{executor}/{partitioner}/P={partitions}: "
                    f"divergence on {name!r} at cycle {cycle}: "
                    f"{got} != {want}"
                )
            shard.step()
            for scalar in scalars:
                scalar.step()
        return shard.differential_savings


class TestLockstepVsScalar:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("design", ("rocket-1", "gemmini-8", "sha3"))
    def test_registry_designs(self, design, executor):
        assert_shard_lockstep_vs_scalar(design, executor, partitions=2)

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("partitions", (1, 2, 4))
    def test_partition_counts(self, executor, partitions):
        assert_shard_lockstep_vs_scalar(
            "gemmini-8", executor, partitions=partitions
        )

    def test_python_backend_lockstep(self):
        bundle = compile_named_design("gemmini-8")
        graph = compiled_graph("gemmini-8")
        workload = batched_workload_for("gemmini-8", LANES)
        outputs = observable_outputs(bundle)
        scalars = [Simulator(bundle) for _ in range(LANES)]
        with ShardedBatchSimulator(
            graph, lanes=LANES, num_partitions=2, backend="python",
        ) as shard:
            assert all(
                style.startswith("python/")
                for style in shard.describe_partitions()
            )
            for cycle in range(CYCLES):
                workload.apply(shard, cycle)
                for lane, scalar in enumerate(scalars):
                    workload.lane(lane).apply(scalar, cycle)
                for name in outputs:
                    assert shard.peek(name) == [s.peek(name) for s in scalars]
                shard.step()
                for scalar in scalars:
                    scalar.step()


class TestRefinedPartitioner:
    """The KL/FM-refined cut stays bit-exact across every executor."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_lockstep_shared_fanin_design(self, executor):
        # rocket-1 refined at P=2 is the asymmetric low-replication cut.
        assert_shard_lockstep_vs_scalar(
            "rocket-1", executor, partitions=2, partitioner="refined"
        )

    @pytest.mark.parametrize("executor", ("serial", "process"))
    def test_lockstep_balanced_design(self, executor):
        # gemmini-8 refined stays balanced (near-disjoint cones).
        assert_shard_lockstep_vs_scalar(
            "gemmini-8", executor, partitions=4, partitioner="refined"
        )

    def test_refined_replicates_less_than_greedy(self):
        graph = compiled_graph("rocket-1")
        with ShardedBatchSimulator(
            graph, lanes=2, num_partitions=2
        ) as greedy, ShardedBatchSimulator(
            graph, lanes=2, num_partitions=2, partitioner="refined"
        ) as refined:
            assert (
                refined.replication_overhead
                < 0.2 * greedy.replication_overhead
            )
            assert refined.num_partitions == 2

    def test_max_replication_cap_threads_through(self):
        graph = compiled_graph("rocket-1")
        with ShardedBatchSimulator(
            graph, lanes=2, num_partitions=2, partitioner="refined",
            max_replication=0.25,
        ) as sim:
            assert sim.replication_overhead <= 0.25 + 1e-9
            sim.step(2)  # still simulates

    def test_unknown_partitioner_rejected(self, counter_src):
        with pytest.raises(ValueError, match="strategy"):
            ShardedBatchSimulator(counter_src, lanes=2, partitioner="metis")


class TestDegeneratePartitionCounts:
    @pytest.mark.parametrize("executor", ("serial", "process"))
    def test_empty_partitions_pruned_not_spawned(self, counter_src, executor):
        # counter has two cones (one register, one output): asking for 6
        # partitions must not spawn 4 idle workers.
        with pytest.warns(RuntimeWarning, match="own a register or output"):
            sim = ShardedBatchSimulator(
                counter_src, lanes=3, num_partitions=6, executor=executor
            )
        with sim:
            assert sim.num_partitions == 2
            assert len(sim.describe_partitions()) == 2
            sim.poke("enable", 1)
            sim.step(3)
            assert sim.peek("count") == [3, 3, 3]

    def test_pruned_snapshot_roundtrip(self, counter_src):
        with pytest.warns(RuntimeWarning):
            sim = ShardedBatchSimulator(counter_src, lanes=2,
                                        num_partitions=5)
        with sim:
            sim.poke("enable", 1)
            sim.step(2)
            checkpoint = sim.snapshot()
            assert len(checkpoint.partition_states) == sim.num_partitions
            sim.step(3)
            sim.restore(checkpoint)
            assert sim.peek("count") == [2, 2]


class TestLockstepVsBatch:
    @pytest.mark.parametrize("executor", ("serial", "process"))
    def test_matches_flat_batch_engine(self, executor):
        design = "rocket-1"
        bundle = compile_named_design(design)
        graph = compiled_graph(design)
        workload = batched_workload_for(design, LANES)
        outputs = observable_outputs(bundle)
        flat = BatchSimulator(bundle, lanes=LANES)
        with ShardedBatchSimulator(
            graph, lanes=LANES, num_partitions=2, executor=executor,
        ) as shard:
            for cycle in range(CYCLES):
                workload.apply(shard, cycle)
                workload.apply(flat, cycle)
                for name in outputs:
                    assert shard.peek(name) == flat.peek(name), (
                        f"{name!r} diverged from flat batch at cycle {cycle}"
                    )
                shard.step()
                flat.step()


class TestMultiClock:
    def test_domains_discovered(self):
        with ShardedBatchSimulator(DUAL_SRC, lanes=2, num_partitions=2) as sim:
            assert sim.clock_domains == ["clk2", "clock"]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_step_domain_lockstep_with_scalar(self, executor, rng):
        lanes = 3
        scalars = [Simulator(DUAL_SRC) for _ in range(lanes)]
        with ShardedBatchSimulator(
            DUAL_SRC, lanes=lanes, num_partitions=2, executor=executor,
        ) as shard:
            for cycle in range(12):
                values = [rng.randrange(256) for _ in range(lanes)]
                shard.poke("a", values)
                for lane, scalar in enumerate(scalars):
                    scalar.poke("a", values[lane])
                domain = ("clock", "clk2")[cycle % 2]
                shard.step_domain(domain)
                for scalar in scalars:
                    scalar.step_domain(domain)
                for name in ("fast_out", "slow_out"):
                    assert shard.peek(name) == [s.peek(name) for s in scalars]

    def test_unknown_domain_rejected(self):
        with ShardedBatchSimulator(DUAL_SRC, lanes=2, num_partitions=2) as sim:
            with pytest.raises(KeyError):
                sim.step_domain("clk9")


class TestShardApi:
    def test_poke_broadcast_and_vector(self, counter_src):
        with ShardedBatchSimulator(
            counter_src, lanes=4, num_partitions=2
        ) as sim:
            sim.poke("enable", 1)                # broadcast
            sim.step(2)
            assert sim.peek("count") == [2, 2, 2, 2]
            sim.poke("enable", [1, 0, 1, 0])     # per lane
            sim.step()
            assert sim.peek("count") == [3, 2, 3, 2]
            assert sim.peek_lane("count", 1) == 2

    def test_poke_unknown_input(self, counter_src):
        with ShardedBatchSimulator(counter_src, lanes=2) as sim:
            with pytest.raises(KeyError):
                sim.poke("bogus", 1)

    def test_peek_unknown_signal(self, counter_src):
        with ShardedBatchSimulator(counter_src, lanes=2) as sim:
            with pytest.raises(KeyError, match="optimised away"):
                sim.peek("bogus")

    def test_peek_unplaced_signal_gets_clear_error(self):
        # A named op feeding no register or output lands in no partition:
        # the error must say so (and name related partitions), not look
        # like a typo.
        graph = graph_with_unplaced_signal()
        with ShardedBatchSimulator(graph, lanes=2, num_partitions=2) as sim:
            with pytest.raises(KeyError) as excinfo:
                sim.peek("r.dbg")
            message = str(excinfo.value)
            assert "r.dbg" in message
            assert "preserve_signals" in message
            assert "not placed in any partition" in message

    def test_lanes_validated(self, counter_src):
        with pytest.raises(ValueError):
            ShardedBatchSimulator(counter_src, lanes=0)

    def test_unknown_executor_rejected(self, counter_src):
        with pytest.raises(KeyError):
            ShardedBatchSimulator(counter_src, lanes=2, executor="gpu")

    def test_reset_preserves_per_lane_pokes(self, counter_src):
        with ShardedBatchSimulator(
            counter_src, lanes=3, num_partitions=2
        ) as sim:
            sim.poke("enable", [1, 0, 1])
            sim.step(5)
            sim.reset()
            assert sim.cycle == 0
            assert sim.peek("count") == [0, 0, 0]
            sim.step()
            assert sim.peek("count") == [1, 0, 1]  # pokes survived the reset

    def test_sync_stats(self):
        with ShardedBatchSimulator(
            compiled_graph("gemmini-8"), lanes=2, num_partitions=2
        ) as sim:
            bound = len(compiled_graph("gemmini-8").registers) * (
                sim.num_partitions - 1
            )
            assert 0 < sim.sync_traffic_per_cycle() <= bound
            sim.step(4)
            assert 0.0 <= sim.differential_savings <= 1.0
            assert sim.sync_sent > 0

    def test_replication_metadata(self):
        with ShardedBatchSimulator(
            compiled_graph("rocket-1"), lanes=2, num_partitions=2
        ) as sim:
            assert sim.num_partitions == 2
            assert sim.replication_overhead >= 0
            assert len(sim.describe_partitions()) == 2

    def test_close_is_idempotent(self, counter_src):
        sim = ShardedBatchSimulator(
            counter_src, lanes=2, num_partitions=2, executor="process"
        )
        sim.poke("enable", 1)
        sim.step()
        assert sim.peek("count") == [1, 1]
        sim.close()
        sim.close()

    def test_repr(self, counter_src):
        with ShardedBatchSimulator(counter_src, lanes=2) as sim:
            text = repr(sim)
            assert "lanes=2" in text and "serial" in text


class TestSnapshotRestore:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_roundtrip(self, counter_src, executor):
        with ShardedBatchSimulator(
            counter_src, lanes=3, num_partitions=2, executor=executor,
        ) as sim:
            sim.poke("enable", [1, 1, 0])
            sim.step(2)
            checkpoint = sim.snapshot()
            sim.step(3)
            assert sim.peek("count") == [5, 5, 0]
            sim.restore(checkpoint)
            assert sim.cycle == 2
            assert sim.peek("count") == [2, 2, 0]
            sim.step(3)
            assert sim.peek("count") == [5, 5, 0]  # deterministic replay

    def test_snapshot_is_isolated(self, counter_src):
        with ShardedBatchSimulator(
            counter_src, lanes=2, num_partitions=2
        ) as sim:
            sim.poke("enable", 1)
            checkpoint = sim.snapshot()
            sim.step(4)  # must not corrupt the checkpoint's planes
            sim.restore(checkpoint)
            assert sim.peek("count") == [0, 0]

    def test_restore_rejects_different_cut(self):
        # Same design, executor, lanes and partition count -- but the
        # greedy and refined cuts assign registers differently, so their
        # partition states must not restore onto each other.
        graph = compiled_graph("rocket-1")
        with ShardedBatchSimulator(
            graph, lanes=2, num_partitions=2, partitioner="refined"
        ) as refined_sim:
            checkpoint = refined_sim.snapshot()
        with ShardedBatchSimulator(graph, lanes=2, num_partitions=2) as sim:
            with pytest.raises(ValueError, match="different partitioning"):
                sim.restore(checkpoint)

    def test_restore_rejects_other_executor(self, counter_src):
        with ShardedBatchSimulator(
            counter_src, lanes=2, num_partitions=2, executor="serial"
        ) as serial_sim:
            checkpoint = serial_sim.snapshot()
        with ShardedBatchSimulator(
            counter_src, lanes=2, num_partitions=2, executor="thread"
        ) as thread_sim:
            with pytest.raises(ValueError):
                thread_sim.restore(checkpoint)

    def test_restore_rejects_mismatched_shape(self, counter_src, gcd_src):
        # gcd has enough cones for three real partitions; counter would
        # prune 3 down to its 2 cones and match the target by accident.
        with ShardedBatchSimulator(
            gcd_src, lanes=2, num_partitions=3
        ) as donor:
            assert donor.num_partitions == 3
            three_parts = donor.snapshot()
        with ShardedBatchSimulator(
            counter_src, lanes=4, num_partitions=2
        ) as donor:
            four_lanes = donor.snapshot()
        with ShardedBatchSimulator(
            counter_src, lanes=2, num_partitions=2
        ) as sim:
            with pytest.raises(ValueError):
                sim.restore(three_parts)
            with pytest.raises(ValueError):
                sim.restore(four_lanes)


class TestExecutorFactory:
    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_executor("quantum", [], 1, "PSU", "auto", [])

    def test_worker_error_surfaces(self):
        # An explicit u64 request on a >64-bit design must raise from the
        # worker's construction handshake, not hang.
        graph = compiled_graph("sha3")
        with pytest.raises((ValueError, RuntimeError)):
            ShardedBatchSimulator(
                graph, lanes=2, num_partitions=2, backend="u64",
                executor="process",
            )
