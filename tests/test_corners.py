"""Corner cases across modules: dirty flags, identifiers, edge widths."""

import pytest

from repro.firrtl import elaborate, parse
from repro.firrtl.primops import mask
from repro.graph import GraphSimulator, build_dfg
from repro.sim import Simulator
from repro.sim.waveform import _identifier


class TestLazyEvaluation:
    def test_peek_after_poke_sees_new_combinational_value(self, mixed_src):
        simulator = Simulator(mixed_src, preserve_signals=True)
        simulator.poke("a", 10)
        simulator.poke("b", 5)
        first = simulator.peek("s")
        simulator.poke("b", 6)  # no step: combinational update only
        assert simulator.peek("s") == first + 1

    def test_peek_stable_without_poke(self, mixed_src):
        simulator = Simulator(mixed_src)
        value = simulator.peek("out")
        assert simulator.peek("out") == value

    def test_graph_simulator_dirty_flag(self, mixed_design):
        simulator = GraphSimulator(build_dfg(mixed_design))
        simulator.poke("a", 1)
        before = simulator.peek("out")
        simulator.step()
        after = simulator.peek("out")
        # The register latched the combinational value from before the edge.
        assert isinstance(before, int) and isinstance(after, int)


class TestVcdIdentifiers:
    def test_single_char_codes_unique(self):
        codes = [_identifier(i) for i in range(94)]
        assert len(set(codes)) == 94
        assert all(len(c) == 1 for c in codes)

    def test_two_char_codes_after_exhaustion(self):
        code = _identifier(94)
        assert len(code) == 2
        assert _identifier(94) != _identifier(95)

    def test_many_signals_stay_unique(self):
        codes = {_identifier(i) for i in range(500)}
        assert len(codes) == 500

    def test_unique_across_length_boundaries(self):
        # The old fixed two-character tail wrapped its leading character
        # at index 94 + 94**2 and aliased identifiers from then on.
        two_char_span = 94 + 94 * 94
        count = two_char_span + 500
        codes = [_identifier(i) for i in range(count)]
        assert len(set(codes)) == count
        assert len(codes[two_char_span - 1]) == 2
        assert len(codes[two_char_span]) == 3

    def test_codes_use_printable_vcd_range(self):
        for index in (0, 93, 94, 94 + 94 * 94, 10**6):
            for char in _identifier(index):
                assert 33 <= ord(char) <= 126

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            _identifier(-1)

    def test_vcd_writer_assigns_unique_identifiers(self):
        class StubSim:
            def peek(self, name):
                return 0

        from repro.sim.waveform import VcdWriter

        count = 94 + 94 * 94 + 50
        signals = {f"s{i}": 1 for i in range(count)}
        writer = VcdWriter(StubSim(), signals)
        assert len(set(writer._idents.values())) == count


class TestWidthEdgeCases:
    def test_one_bit_arithmetic(self):
        design = elaborate(parse(
            "circuit T :\n  module T :\n"
            "    input a : UInt<1>\n    input b : UInt<1>\n"
            "    output s : UInt<2>\n    output c : UInt<1>\n"
            "    s <= add(a, b)\n    c <= and(a, b)\n"
        ))
        simulator = Simulator(design)
        simulator.poke("a", 1)
        simulator.poke("b", 1)
        assert simulator.peek("s") == 2
        assert simulator.peek("c") == 1

    def test_wide_64_bit_values(self):
        design = elaborate(parse(
            "circuit T :\n  module T :\n"
            "    input a : UInt<64>\n    input b : UInt<64>\n"
            "    output x : UInt<64>\n"
            "    x <= tail(add(a, b), 1)\n"
        ))
        simulator = Simulator(design, kernel="TI")
        big = (1 << 64) - 1
        simulator.poke("a", big)
        simulator.poke("b", 1)
        assert simulator.peek("x") == 0  # wraps at 64 bits

    def test_mask_helper_extremes(self):
        assert mask(-1, 64) == (1 << 64) - 1
        assert mask(123, 0) == 0

    def test_zero_op_design(self):
        """A design that is pure wiring still simulates."""
        design = elaborate(parse(
            "circuit T :\n  module T :\n"
            "    input a : UInt<4>\n    output z : UInt<4>\n"
            "    z <= a\n"
        ))
        simulator = Simulator(design)
        simulator.poke("a", 9)
        assert simulator.peek("z") == 9


class TestCppTextDetails:
    def test_rolled_kernel_has_rank_comments(self, mixed_bundle):
        from repro.kernels import generate_cpp

        text = generate_cpp(mixed_bundle, "RU").text
        assert "rank I" in text and "rank S" in text and "rank N" in text

    def test_nu_kernel_loops_per_op_type(self, mixed_bundle):
        from repro.kernels import generate_cpp

        text = generate_cpp(mixed_bundle, "NU").text
        for entry in mixed_bundle.op_table:
            assert f"rank N unrolled: {entry.name}" in text

    def test_ti_uses_scalars_not_arrays(self, mixed_bundle):
        from repro.kernels import generate_cpp

        ti = generate_cpp(mixed_bundle, "TI").text
        su = generate_cpp(mixed_bundle, "SU").text
        assert "const u64 v" in ti
        assert "const u64 v" not in su

    def test_commit_uses_two_phases(self, mixed_bundle):
        from repro.kernels import generate_cpp

        text = generate_cpp(mixed_bundle, "PSU").text
        assert "commit_stage" in text


class TestEstimatorFields:
    def test_result_carries_identifiers(self):
        from repro.experiments.common import perf_for

        result = perf_for("rocket-1", "NU", "amd")
        assert result.engine == "NU"
        assert result.design == "RocketSoc"
        assert "AMD" in result.machine
        assert result.sim_cycles == 540_000

    def test_host_cycles_consistent_with_time(self):
        from repro.experiments.common import perf_for
        from repro.perf.machines import get_machine

        result = perf_for("rocket-1", "NU", "intel-core")
        machine = get_machine("intel-core")
        assert result.sim_time_s == pytest.approx(
            result.host_cycles / (machine.freq_ghz * 1e9)
        )
