"""Tests for the simulator API: poke/peek/step, waveforms, DMI, clocks."""

import pytest

from repro.firrtl import ReferenceSimulator, elaborate, parse
from repro.sim import (
    ClockSchedule,
    DmiPort,
    FrontendServer,
    Simulator,
    Testbench,
    VcdWriter,
    compare_traces,
    run_lockstep,
)

from conftest import drive_random_inputs


class TestSimulatorApi:
    def test_accepts_firrtl_text(self, counter_src):
        simulator = Simulator(counter_src)
        simulator.poke("enable", 1)
        simulator.step(3)
        assert simulator.peek("count") == 3

    def test_accepts_flat_design(self, mixed_design):
        assert Simulator(mixed_design).peek("out") == 7  # reset init

    def test_accepts_graph_and_bundle(self, mixed_graph, mixed_bundle):
        assert Simulator(mixed_graph, optimize_graph=False).peek("out") == 7
        assert Simulator(mixed_bundle).peek("out") == 7

    def test_unknown_design_type_rejected(self):
        with pytest.raises(TypeError):
            Simulator(12345)

    def test_poke_unknown_input(self, counter_src):
        with pytest.raises(KeyError):
            Simulator(counter_src).poke("bogus", 1)

    def test_peek_optimised_away_signal_message(self, mixed_src):
        simulator = Simulator(mixed_src)
        with pytest.raises(KeyError):
            simulator.peek("definitely_not_a_signal")

    def test_preserve_signals_keeps_intermediates(self, mixed_src):
        simulator = Simulator(mixed_src, preserve_signals=True)
        simulator.poke("a", 10)
        simulator.poke("b", 20)
        assert simulator.peek("s") == 30  # the internal adder node

    def test_reset_preserves_pokes(self, counter_src):
        simulator = Simulator(counter_src)
        simulator.poke("enable", 1)
        simulator.step(5)
        simulator.reset()
        assert simulator.cycle == 0
        assert simulator.peek("count") == 0
        simulator.step()
        assert simulator.peek("count") == 1  # enable survived the reset

    def test_run_alias(self, counter_src):
        simulator = Simulator(counter_src)
        simulator.poke("enable", 1)
        simulator.run(4)
        assert simulator.cycle == 4

    def test_signals_listing(self, counter_src):
        assert "count" in Simulator(counter_src).signals

    def test_repr(self, counter_src):
        assert "Counter" in repr(Simulator(counter_src))


class TestMultiClock:
    SRC = (
        "circuit Dual :\n"
        "  module Dual :\n"
        "    input clock : Clock\n"
        "    input clk2 : Clock\n"
        "    input a : UInt<8>\n"
        "    output fast_out : UInt<8>\n"
        "    output slow_out : UInt<8>\n"
        "    reg fast : UInt<8>, clock\n"
        "    reg slow : UInt<8>, clk2\n"
        "    fast <= a\n"
        "    slow <= fast\n"
        "    fast_out <= fast\n"
        "    slow_out <= slow\n"
    )

    def test_domains_discovered(self):
        simulator = Simulator(self.SRC)
        assert simulator.clock_domains == ["clk2", "clock"]

    def test_step_domain_only_commits_that_domain(self):
        simulator = Simulator(self.SRC)
        simulator.poke("a", 42)
        simulator.step_domain("clock")
        assert simulator.peek("fast_out") == 42
        assert simulator.peek("slow_out") == 0  # clk2 has not ticked
        simulator.step_domain("clk2")
        assert simulator.peek("slow_out") == 42

    def test_unknown_domain_rejected(self):
        with pytest.raises(KeyError):
            Simulator(self.SRC).step_domain("clk9")

    def test_clock_schedule_ratios(self):
        simulator = Simulator(self.SRC)
        schedule = ClockSchedule(simulator, {"clock": 1, "clk2": 2})
        simulator.poke("a", 7)
        schedule.advance(4)
        # clock ticked 4x, clk2 2x: slow holds fast's value from earlier.
        assert simulator.peek("fast_out") == 7
        assert simulator.peek("slow_out") == 7

    def test_schedule_requires_known_clocks(self):
        simulator = Simulator(self.SRC)
        with pytest.raises(KeyError):
            ClockSchedule(simulator, {"nope": 1})

    def test_edges_of(self):
        simulator = Simulator(self.SRC)
        schedule = ClockSchedule(simulator, {"clock": 1, "clk2": 2})
        assert schedule.edges_of("clk2", 6) == [0, 2, 4]


class TestWaveform:
    def test_vcd_header_and_changes(self, counter_src):
        simulator = Simulator(counter_src, preserve_signals=True)
        simulator.poke("enable", 1)
        writer = VcdWriter(simulator, {"count": 8, "enable": 1})
        writer.run(4)
        document = writer.document()
        assert "$timescale" in document and "$enddefinitions" in document
        assert "$var wire 8" in document
        assert "#0" in document and "#3" in document

    def test_only_changes_dumped(self, counter_src):
        simulator = Simulator(counter_src, preserve_signals=True)
        simulator.poke("enable", 0)  # counter frozen
        writer = VcdWriter(simulator, {"count": 8})
        changes = [writer.sample() for _ in range(3)]
        assert changes[0] == 1   # initial dump
        assert changes[1] == 0 and changes[2] == 0

    def test_default_signals_from_bundle(self, counter_src):
        simulator = Simulator(counter_src, preserve_signals=True)
        writer = VcdWriter(simulator)
        assert "count" in writer.signals

    def test_save(self, tmp_path, counter_src):
        simulator = Simulator(counter_src, preserve_signals=True)
        writer = VcdWriter(simulator, {"count": 8})
        writer.run(2)
        path = tmp_path / "wave.vcd"
        writer.save(path)
        assert path.read_text().startswith("$timescale")

    def test_dotted_names_sanitised(self, mixed_src):
        simulator = Simulator(mixed_src, preserve_signals=True)
        writer = VcdWriter(simulator)
        assert "." not in writer.document().split("$enddefinitions")[0].split("$var")[1]


class TestDmi:
    def test_write_then_read(self):
        from repro.designs.cores import rocket_soc

        simulator = Simulator(rocket_soc(1))
        server = FrontendServer(simulator)
        simulator.poke("reset", 1)
        simulator.step()
        simulator.poke("reset", 0)
        server.write(0, 0xDEADBEEF)
        read = server.read(0)
        cycles = server.run_until_idle()
        assert read.complete
        assert read.response == 0xDEADBEEF
        assert cycles > 0

    def test_load_image_queues_writes(self):
        from repro.designs.cores import rocket_soc

        simulator = Simulator(rocket_soc(1))
        server = FrontendServer(simulator)
        simulator.poke("reset", 1); simulator.step(); simulator.poke("reset", 0)
        server.load_image(0, [11, 22, 33])
        reads = [server.read(i) for i in range(3)]
        server.run_until_idle()
        # Our DTM has 4 registers addressed by the low address bits.
        assert [r.response for r in reads] == [11, 22, 33]

    def test_timeout(self, counter_src):
        class NeverResponds:
            cycle = 0
            def poke(self, name, value): pass
            def peek(self, name): return 0
            def step(self): pass

        server = FrontendServer(NeverResponds(), DmiPort())
        server.read(0)
        with pytest.raises(TimeoutError):
            server.run_until_idle(max_cycles=10)


class TestTestbench:
    def test_stimulus_list_and_callable(self, counter_src):
        simulator = Simulator(counter_src)
        bench = Testbench(
            simulator,
            stimulus={"enable": lambda c: 1, "reset": [0, 0, 1]},
            watch=["count"],
        )
        trace = bench.run(5)
        assert trace["count"][:3] == [0, 1, 2]
        assert trace["count"][3] == 0  # reset asserted at cycle 2

    def test_run_lockstep_and_compare(self, mixed_src, mixed_design, rng):
        stimulus = {
            "a": [rng.randrange(256) for _ in range(20)],
            "b": [rng.randrange(256) for _ in range(20)],
            "reset": [1, 0],
        }
        traces = run_lockstep(
            {
                "reference": ReferenceSimulator(mixed_design),
                "psu": Simulator(mixed_src, kernel="PSU"),
            },
            stimulus, ["out", "flag"], 20,
        )
        assert compare_traces(traces["reference"], traces["psu"]) == []

    def test_compare_traces_reports_divergence(self):
        diffs = compare_traces({"x": [1, 2]}, {"x": [1, 3]})
        assert len(diffs) == 1
        assert diffs[0].cycle == 1 and diffs[0].signal == "x"
