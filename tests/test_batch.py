"""Tests for repro.batch: lane-wise lockstep equivalence with the scalar
simulator, backend selection/fallback, and checkpointing."""

import pytest

from repro.batch import BatchSimulator, HAS_NUMPY, pick_backend
from repro.batch.backend import supports_u64
from repro.designs.registry import compile_named_design
from repro.sim import Simulator
from repro.workloads.stimulus import batched_workload_for

LANES = 3
CYCLES = 24

#: >=3 registry designs; sha3 has 65-bit slots, exercising the split-limb
#: u64xN fast path (auto never picks object rows any more) on NumPy.
DESIGNS = ("rocket-1", "gemmini-8", "sha3")
#: >=2 kernel configs: one walk-style, one codegen-style.
KERNELS = ("PSU", "SU")


def assert_lockstep(design, kernel, lanes, cycles, backend="auto"):
    """B-lane batch run must be bit-exact with B scalar runs, per cycle."""
    bundle = compile_named_design(design)
    workload = batched_workload_for(design, lanes)
    batch = BatchSimulator(bundle, lanes=lanes, kernel=kernel, backend=backend)
    scalars = [Simulator(bundle, kernel=kernel) for _ in range(lanes)]
    outputs = sorted(set(bundle.output_slots) & set(bundle.signal_slots))
    assert outputs, f"no observable outputs on {bundle.design_name}"
    for cycle in range(cycles):
        workload.apply(batch, cycle)
        for lane, scalar in enumerate(scalars):
            workload.lane(lane).apply(scalar, cycle)
        for name in outputs:
            got = batch.peek(name)
            want = [scalar.peek(name) for scalar in scalars]
            assert got == want, (
                f"{design}/{kernel}/{backend}: lane divergence on {name!r} "
                f"at cycle {cycle}: {got} != {want}"
            )
        batch.step()
        for scalar in scalars:
            scalar.step()
    return batch


class TestLockstepEquivalence:
    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_registry_designs(self, design, kernel):
        assert_lockstep(design, kernel, LANES, CYCLES)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_python_fallback_backend(self, kernel):
        batch = assert_lockstep("gemmini-8", kernel, LANES, 12, backend="python")
        assert batch.backend == "python"
        assert batch.kernel.style == "python"

    @pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
    def test_backend_auto_selection(self):
        rocket = compile_named_design("rocket-1")
        sha3 = compile_named_design("sha3")
        assert supports_u64(rocket) and not supports_u64(sha3)
        assert BatchSimulator(rocket, lanes=2).backend == "u64"
        # A >64-bit design stays on the vectorised fast path via the
        # split-limb plane -- auto never degrades to object rows any more.
        assert BatchSimulator(sha3, lanes=2).backend == "u64xN"
        assert BatchSimulator(sha3, lanes=2, kernel="SU").kernel.style == "codegen"
        assert BatchSimulator(rocket, lanes=2, kernel="SU").kernel.style == "codegen"
        # The object reference backend remains available on request, and
        # SU degrades to the walk kernel there (no native uint64 plane).
        wide_object = BatchSimulator(sha3, lanes=2, kernel="SU", backend="object")
        assert wide_object.backend == "object"
        assert wide_object.kernel.style == "walk"

    def test_pick_backend_without_numpy(self):
        bundle = compile_named_design("rocket-1")
        assert pick_backend(bundle, "auto", np_module=None) == "python"
        with pytest.raises(RuntimeError):
            pick_backend(bundle, "u64", np_module=None)

    @pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
    def test_u64_rejected_for_wide_design(self):
        with pytest.raises(ValueError):
            BatchSimulator(compile_named_design("sha3"), lanes=2, backend="u64")

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            BatchSimulator(compile_named_design("rocket-1"), lanes=2, backend="gpu")


class TestBatchApi:
    def test_poke_broadcast_and_vector(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=4)
        batch.poke("enable", 1)                 # broadcast
        batch.step(2)
        assert batch.peek("count") == [2, 2, 2, 2]
        batch.poke("enable", [1, 0, 1, 0])      # per lane
        batch.step()
        assert batch.peek("count") == [3, 2, 3, 2]
        assert batch.peek_lane("count", 1) == 2

    def test_poke_wrong_lane_count(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=4)
        with pytest.raises(ValueError):
            batch.poke("enable", [1, 0])

    def test_poke_unknown_input(self, counter_src):
        with pytest.raises(KeyError):
            BatchSimulator(counter_src, lanes=2).poke("bogus", 1)

    def test_peek_unknown_signal(self, counter_src):
        with pytest.raises(KeyError):
            BatchSimulator(counter_src, lanes=2).peek("bogus")

    def test_peek_returns_python_ints(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        batch.poke("enable", 1)
        batch.step()
        values = batch.peek("count")
        assert all(type(value) is int for value in values)

    def test_lanes_validated(self, counter_src):
        with pytest.raises(ValueError):
            BatchSimulator(counter_src, lanes=0)

    def test_activity_kernel_accepted(self, counter_src):
        """The old 'lanes diverge in activity' guard is retired: the
        batched activity cascade works at any B on any backend."""
        batch = BatchSimulator(counter_src, lanes=2, kernel="activity:PSU")
        assert batch.kernel.style == "activity"
        batch.poke("enable", [1, 0])
        batch.step(3)
        assert batch.peek("count") == [3, 0]
        assert batch.activity_stats.cycles > 0

    def test_reset_preserves_per_lane_pokes(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=3)
        batch.poke("enable", [1, 0, 1])
        batch.step(5)
        batch.reset()
        assert batch.cycle == 0
        assert batch.peek("count") == [0, 0, 0]
        batch.step()
        assert batch.peek("count") == [1, 0, 1]  # pokes survived the reset

    def test_preserve_signals(self, mixed_src):
        batch = BatchSimulator(mixed_src, lanes=2, preserve_signals=True)
        batch.poke("a", [10, 1])
        batch.poke("b", [20, 2])
        assert batch.peek("s") == [30, 3]  # the internal adder node

    def test_repr(self, counter_src):
        text = repr(BatchSimulator(counter_src, lanes=2))
        assert "Counter" in text and "lanes=2" in text


class TestMultiClock:
    SRC = (
        "circuit Dual :\n"
        "  module Dual :\n"
        "    input clock : Clock\n"
        "    input clk2 : Clock\n"
        "    input a : UInt<8>\n"
        "    output fast_out : UInt<8>\n"
        "    output slow_out : UInt<8>\n"
        "    reg fast : UInt<8>, clock\n"
        "    reg slow : UInt<8>, clk2\n"
        "    fast <= a\n"
        "    slow <= fast\n"
        "    fast_out <= fast\n"
        "    slow_out <= slow\n"
    )

    def test_domains_discovered(self):
        assert BatchSimulator(self.SRC, lanes=2).clock_domains == ["clk2", "clock"]

    def test_step_domain_only_commits_that_domain(self):
        batch = BatchSimulator(self.SRC, lanes=2)
        batch.poke("a", [42, 7])
        batch.step_domain("clock")
        assert batch.peek("fast_out") == [42, 7]
        assert batch.peek("slow_out") == [0, 0]  # clk2 has not ticked
        batch.step_domain("clk2")
        assert batch.peek("slow_out") == [42, 7]

    def test_unknown_domain_rejected(self):
        with pytest.raises(KeyError):
            BatchSimulator(self.SRC, lanes=2).step_domain("clk9")

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_step_domain_lockstep_with_scalar(self, kernel, rng):
        lanes = 3
        batch = BatchSimulator(self.SRC, lanes=lanes, kernel=kernel)
        scalars = [Simulator(self.SRC, kernel=kernel) for _ in range(lanes)]
        for cycle in range(16):
            values = [rng.randrange(256) for _ in range(lanes)]
            batch.poke("a", values)
            for lane, scalar in enumerate(scalars):
                scalar.poke("a", values[lane])
            domain = ("clock", "clk2")[cycle % 2]
            batch.step_domain(domain)
            for scalar in scalars:
                scalar.step_domain(domain)
            for name in ("fast_out", "slow_out"):
                assert batch.peek(name) == [s.peek(name) for s in scalars]


class TestSnapshotRestore:
    def test_scalar_snapshot_roundtrip(self, counter_src):
        simulator = Simulator(counter_src)
        simulator.poke("enable", 1)
        simulator.step(3)
        checkpoint = simulator.snapshot()
        simulator.step(4)
        assert simulator.peek("count") == 7
        simulator.restore(checkpoint)
        assert simulator.cycle == 3
        assert simulator.peek("count") == 3
        simulator.step(4)
        assert simulator.peek("count") == 7  # deterministic replay

    def test_scalar_snapshot_is_isolated(self, counter_src):
        simulator = Simulator(counter_src)
        simulator.poke("enable", 1)
        checkpoint = simulator.snapshot()
        simulator.step(5)
        assert checkpoint.cycle == 0
        simulator.restore(checkpoint)
        assert simulator.peek("count") == 0

    @pytest.mark.parametrize("backend", ("auto", "python"))
    def test_batch_snapshot_roundtrip(self, counter_src, backend):
        batch = BatchSimulator(counter_src, lanes=3, backend=backend)
        batch.poke("enable", [1, 1, 0])
        batch.step(2)
        checkpoint = batch.snapshot()
        batch.step(3)
        assert batch.peek("count") == [5, 5, 0]
        batch.restore(checkpoint)
        assert batch.cycle == 2
        assert batch.peek("count") == [2, 2, 0]
        batch.step(3)
        assert batch.peek("count") == [5, 5, 0]

    def test_batch_snapshot_is_isolated(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        batch.poke("enable", 1)
        checkpoint = batch.snapshot()
        batch.step(4)  # must not corrupt the checkpoint's plane
        batch.restore(checkpoint)
        assert batch.peek("count") == [0, 0]

    def test_restore_rejects_mismatched_snapshot(self, counter_src, mixed_src):
        batch = BatchSimulator(counter_src, lanes=2)
        with pytest.raises(ValueError):
            batch.restore(BatchSimulator(mixed_src, lanes=2).snapshot())
        with pytest.raises(ValueError):
            batch.restore(BatchSimulator(counter_src, lanes=3).snapshot())

    @pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
    def test_restore_rejects_other_backend(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2, backend="python")
        checkpoint = batch.snapshot()
        with pytest.raises(ValueError):
            BatchSimulator(counter_src, lanes=2, backend="u64").restore(
                checkpoint
            )

    def test_scalar_restore_rejects_other_design(self, counter_src, mixed_src):
        with pytest.raises(ValueError):
            Simulator(counter_src).restore(Simulator(mixed_src).snapshot())


class TestWideDesigns:
    WIDE_SRC = (
        "circuit Wide :\n"
        "  module Wide :\n"
        "    input clock : Clock\n"
        "    input lo : UInt<64>\n"
        "    input hi : UInt<16>\n"
        "    output out : UInt<80>\n"
        "    output folded : UInt<64>\n"
        "    reg acc : UInt<80>, clock\n"
        "    node wide = cat(hi, lo)\n"
        "    acc <= xor(acc, wide)\n"
        "    out <= acc\n"
        "    folded <= bits(acc, 63, 0)\n"
    )

    @pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
    @pytest.mark.parametrize("backend", ("auto", "u64xN", "object"))
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_wide_backend_lockstep(self, kernel, backend, rng):
        lanes = 3
        batch = BatchSimulator(
            self.WIDE_SRC, lanes=lanes, kernel=kernel, backend=backend
        )
        assert batch.backend == ("u64xN" if backend == "auto" else backend)
        scalars = [Simulator(self.WIDE_SRC, kernel=kernel) for _ in range(lanes)]
        for cycle in range(16):
            lo = [rng.randrange(1 << 64) for _ in range(lanes)]
            hi = [rng.randrange(1 << 16) for _ in range(lanes)]
            batch.poke("lo", lo)
            batch.poke("hi", hi)
            for lane, scalar in enumerate(scalars):
                scalar.poke("lo", lo[lane])
                scalar.poke("hi", hi[lane])
            for name in ("out", "folded"):
                assert batch.peek(name) == [s.peek(name) for s in scalars]
            batch.step()
            for scalar in scalars:
                scalar.step()
