"""Tests for the compiled C batch backend (:mod:`repro.lower.cbackend`):
registry-wide lockstep against the scalar reference, the ``cbin``
warm-start path (no recompilation), graceful fallback without a
toolchain, and the emitted source's structural invariants."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.batch import BatchSimulator, HAS_NUMPY
from repro.batch.backend import supports_u64
from repro.designs.registry import compile_named_design
from repro.lower.cbackend import emit_c, find_compiler, has_toolchain
from repro.lower.program import cached_program

SRC_ROOT = str(Path(__file__).resolve().parent.parent / "src")

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
needs_cc = pytest.mark.skipif(
    not has_toolchain(), reason="no C toolchain on this host"
)

#: Small u64-plane registry designs the compiled arm must track bit-exactly.
U64_DESIGNS = ("rocket-1", "small-1", "gemmini-8")


# ----------------------------------------------------------------------
# Toolchain detection
# ----------------------------------------------------------------------
class TestToolchainDetection:
    def test_env_override_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "")
        assert find_compiler() is None
        assert not has_toolchain()

    def test_env_override_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/opt/toolchain/bin/cc")
        assert find_compiler() == "/opt/toolchain/bin/cc"


# ----------------------------------------------------------------------
# Emitted source invariants (no toolchain needed)
# ----------------------------------------------------------------------
class TestEmittedSource:
    def test_source_structure(self):
        program = cached_program(compile_named_design("small-1"))
        source = emit_c(program)
        assert "void repro_eval_comb(uint64_t *V, int64_t n)" in source
        assert "static void chunk_0" in source
        # Every record stores its slot row; spot-check the count.
        assert source.count("V[(int64_t)") >= program.num_records

    def test_source_is_deterministic(self):
        program = cached_program(compile_named_design("small-1"))
        assert emit_c(program) == emit_c(program)


# ----------------------------------------------------------------------
# Lockstep: compiled arm vs the full engine matrix
# ----------------------------------------------------------------------
@needs_numpy
@needs_cc
class TestCompiledLockstep:
    @pytest.mark.parametrize("design", U64_DESIGNS)
    def test_registry_lockstep(self, design):
        from repro.verify.differential import (
            run_differential_suite, spec_from_name,
        )

        assert supports_u64(compile_named_design(design))
        engines = [
            spec_from_name("scalar"),
            spec_from_name("batch-su"),
            spec_from_name("batch-compiled"),
            spec_from_name("shard-compiled"),
        ]
        for result in run_differential_suite(
            design, seeds=(0, 1), lanes=3, cycles=12, engines=engines
        ):
            assert result.ok, result.summary()

    def test_kernel_identifies_as_compiled(self):
        batch = BatchSimulator(
            compile_named_design("small-1"), lanes=4,
            kernel="compiled", backend="u64",
        )
        assert batch.kernel.style == "compiled"
        assert not hasattr(batch.kernel, "compiled_fallback")


# ----------------------------------------------------------------------
# Fallback when the backend or toolchain cannot serve the compiled path
# ----------------------------------------------------------------------
@needs_numpy
class TestCompiledFallback:
    def test_no_toolchain_falls_back_to_su(self, monkeypatch):
        import repro.lower.cbackend as cbackend

        monkeypatch.setenv("REPRO_CC", "")
        monkeypatch.setattr(cbackend, "_MEMO", {})  # defeat in-process memo
        batch = BatchSimulator(
            compile_named_design("small-1"), lanes=2,
            kernel="compiled", backend="u64",
        )
        assert batch.kernel.style != "compiled"
        assert "no C compiler" in batch.kernel.compiled_fallback
        batch.poke("reset", 1)
        batch.step(2)  # the fallback kernel must actually simulate

    def test_wide_backend_falls_back(self):
        # sha3 needs u64xN limb planes; the compiled pass is u64-only.
        batch = BatchSimulator(
            compile_named_design("sha3"), lanes=2, kernel="compiled"
        )
        assert batch.kernel.style != "compiled"
        assert "u64" in batch.kernel.compiled_fallback


# ----------------------------------------------------------------------
# The cbin artifact: warm starts skip the compiler
# ----------------------------------------------------------------------
_WARM_CHILD = """\
import sys
import repro.lower.cbackend as cbackend

compiles = []
original = cbackend.compile_shared_object
def counting(source, cc, flags=None):
    compiles.append(cc)
    return original(source, cc, flags)
cbackend.compile_shared_object = counting

from repro.serve.artifacts import configure_cache
configure_cache(sys.argv[1])
from repro.designs.registry import compile_named_design
comb = cbackend.compiled_comb(compile_named_design("small-1"))
assert comb is not None
print("COMPILES=%d" % len(compiles))
"""


@needs_numpy
@needs_cc
class TestCbinWarmStart:
    def test_second_process_loads_cached_cbin(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT
        runs = []
        for _ in range(2):
            child = subprocess.run(
                [sys.executable, "-c", _WARM_CHILD, str(tmp_path)],
                capture_output=True, text=True, env=env,
            )
            assert child.returncode == 0, child.stderr
            runs.append(child.stdout.strip())
        assert runs[0] == "COMPILES=1", runs
        assert runs[1] == "COMPILES=0", runs  # warm start: cbin cache hit
        cbins = list(Path(tmp_path).glob("cbin-*.pkl"))
        assert len(cbins) == 1

    def test_warm_kernel_still_bit_exact(self, tmp_path, rng):
        """A kernel reloaded from cbin bytes must simulate identically."""
        from repro.serve.artifacts import configure_cache, disable_cache
        from repro.sim import Simulator

        source_design = compile_named_design("small-1")
        try:
            configure_cache(tmp_path)
            import repro.lower.cbackend as cbackend

            cbackend._MEMO.clear()  # force the cache load path next time
            cold = BatchSimulator(
                source_design, lanes=2, kernel="compiled", backend="u64"
            )
            assert cold.kernel.style == "compiled"
            cbackend._MEMO.clear()
            warm = BatchSimulator(
                source_design, lanes=2, kernel="compiled", backend="u64"
            )
            assert warm.kernel.style == "compiled"
            scalar = Simulator(source_design)
            for _ in range(8):
                instr = rng.randrange(1 << 16)
                for sim in (cold, warm, scalar):
                    sim.poke("reset", 0)
                    sim.poke("instr", instr)
                for name in ("out", "dmi_resp_valid"):
                    want = scalar.peek(name)
                    assert cold.peek(name) == [want] * 2
                    assert warm.peek(name) == [want] * 2
                cold.step()
                warm.step()
                scalar.step()
        finally:
            disable_cache()
