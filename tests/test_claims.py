"""Claim-check driver tests.

Exercises the cheap claims end to end at the ``tiny`` budget plus the
driver plumbing (JSON verdicts, CLI exit codes, unknown-claim errors).
Claim 4 (the full differential matrix) is deliberately left to the CI
``claims`` job -- it re-runs what tests/test_differential.py already
covers, at ~45s a pass.
"""

import json

import pytest

from repro.verify.claims import (
    CLAIMS,
    ClaimVerdict,
    claim_replication,
    cli,
    run_claims,
)


class TestVerdicts:
    def test_claim_registry_is_1_to_4(self):
        assert sorted(CLAIMS) == [1, 2, 3, 4]

    def test_replication_claim_passes_tiny(self):
        verdict = claim_replication("tiny")
        assert verdict.passed, verdict.summary()
        assert verdict.claim == 2
        assert verdict.details["worst"] < verdict.details["threshold"]

    def test_verdict_round_trips_to_dict(self):
        verdict = ClaimVerdict(
            claim=1, name="demo", passed=True, budget="tiny", seconds=0.5,
            details={"speedup": 7.0},
        )
        payload = verdict.as_dict()
        assert payload["claim"] == 1 and payload["passed"] is True
        assert json.loads(json.dumps(payload)) == payload
        assert "PASS" in verdict.summary()
        assert "FAIL" in ClaimVerdict(
            claim=1, name="demo", passed=False, budget="tiny", seconds=0.5
        ).summary()

    def test_unknown_claim_raises(self):
        with pytest.raises(KeyError, match="no claim 9"):
            run_claims([9])


class TestCli:
    def test_cli_writes_json_verdicts(self, tmp_path):
        out = tmp_path / "nested" / "verdict.json"
        assert cli(["--claim", "2", "--json", str(out)]) == 0
        verdicts = json.loads(out.read_text())
        assert len(verdicts) == 1
        assert verdicts[0]["claim"] == 2
        assert verdicts[0]["passed"] is True
        assert verdicts[0]["budget"] == "tiny"

    def test_cli_requires_a_selection(self, capsys):
        with pytest.raises(SystemExit):
            cli([])

    def test_cli_batch_speedup_claim(self, tmp_path):
        """Claim 1 end to end (a few seconds at the tiny budget)."""
        out = tmp_path / "verdict.json"
        assert cli(["--claim", "1", "--json", str(out)]) == 0
        (verdict,) = json.loads(out.read_text())
        assert verdict["details"]["speedup"] >= verdict["details"]["threshold"]

    def test_cli_warm_start_claim(self):
        """Claim 3 end to end: two subprocess builds, warm beats cold."""
        assert cli(["--claim", "3"]) == 0
