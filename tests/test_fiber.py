"""Unit tests for the Fiber building block (paper Section 2.2)."""

import pytest

from repro.tensor import Fiber


class TestBasics:
    def test_empty_fiber_has_zero_occupancy(self):
        assert Fiber().occupancy == 0
        assert Fiber().is_empty()

    def test_set_and_get(self):
        fiber = Fiber()
        fiber.set(3, 42)
        assert fiber.get(3) == 42
        assert fiber.get(4) is None
        assert fiber.get(4, default=0) == 0

    def test_overwrite_keeps_occupancy(self):
        fiber = Fiber()
        fiber.set(1, 10)
        fiber.set(1, 20)
        assert fiber.occupancy == 1
        assert fiber.get(1) == 20

    def test_coords_sorted(self):
        fiber = Fiber([(5, "e"), (1, "a"), (3, "c")])
        assert fiber.coords() == [1, 3, 5]
        assert fiber.payloads() == ["a", "c", "e"]

    def test_iteration_in_coordinate_order(self):
        fiber = Fiber([(2, 20), (0, 0), (1, 10)])
        assert list(fiber) == [(0, 0), (1, 10), (2, 20)]

    def test_delete(self):
        fiber = Fiber([(0, 1), (1, 2)])
        fiber.delete(0)
        assert fiber.coords() == [1]
        fiber.delete(99)  # deleting an absent coordinate is a no-op

    def test_len_matches_occupancy(self):
        fiber = Fiber([(0, 1), (7, 2)])
        assert len(fiber) == fiber.occupancy == 2

    def test_has(self):
        fiber = Fiber([(4, 1)])
        assert fiber.has(4)
        assert not fiber.has(5)


class TestValidation:
    def test_negative_coordinate_rejected(self):
        with pytest.raises(ValueError):
            Fiber().set(-1, 0)

    def test_non_int_coordinate_rejected(self):
        with pytest.raises(TypeError):
            Fiber().set("a", 0)

    def test_shape_bound_enforced(self):
        fiber = Fiber(shape=3)
        fiber.set(2, 1)
        with pytest.raises(ValueError):
            fiber.set(3, 1)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Fiber())


class TestDense:
    def test_from_dense_omits_zeros(self):
        fiber = Fiber.from_dense([0, 5, 0, 7])
        assert fiber.coords() == [1, 3]
        assert fiber.shape == 4

    def test_from_dense_custom_zero(self):
        fiber = Fiber.from_dense(["", "x", ""], zero="")
        assert fiber.coords() == [1]

    def test_to_dense_roundtrip(self):
        dense = [0, 5, 0, 7]
        assert Fiber.from_dense(dense).to_dense() == dense

    def test_to_dense_requires_shape(self):
        with pytest.raises(ValueError):
            Fiber([(0, 1)]).to_dense()

    def test_iter_shape_fills_empties(self):
        fiber = Fiber([(1, 9)], shape=3)
        assert list(fiber.iter_shape(empty=0)) == [(0, 0), (1, 9), (2, 0)]

    def test_iter_shape_requires_shape(self):
        with pytest.raises(ValueError):
            list(Fiber([(0, 1)]).iter_shape())


class TestMerge:
    def test_intersection(self):
        a = Fiber([(0, 1), (1, 2), (3, 4)])
        b = Fiber([(1, 10), (2, 20), (3, 30)])
        assert list(a.intersect(b)) == [(1, 2, 10), (3, 4, 30)]

    def test_intersection_empty(self):
        assert list(Fiber([(0, 1)]).intersect(Fiber([(1, 1)]))) == []

    def test_union_reports_missing_as_none(self):
        a = Fiber([(0, 1)])
        b = Fiber([(1, 10)])
        assert list(a.union(b)) == [(0, 1, None), (1, None, 10)]

    def test_union_overlapping(self):
        a = Fiber([(0, 1), (1, 2)])
        b = Fiber([(1, 10)])
        assert list(a.union(b)) == [(0, 1, None), (1, 2, 10)]


class TestTransforms:
    def test_map_payloads(self):
        fiber = Fiber([(0, 1), (2, 3)])
        doubled = fiber.map_payloads(lambda v: v * 2)
        assert doubled.payloads() == [2, 6]
        assert fiber.payloads() == [1, 3]  # original untouched

    def test_copy_is_independent(self):
        fiber = Fiber([(0, 1)], shape=4)
        clone = fiber.copy()
        clone.set(1, 2)
        assert not fiber.has(1)
        assert clone.shape == 4

    def test_equality_by_content(self):
        assert Fiber([(0, 1), (1, 2)]) == Fiber([(1, 2), (0, 1)])
        assert Fiber([(0, 1)]) != Fiber([(0, 2)])

    def test_repr_mentions_pairs(self):
        assert "0: 1" in repr(Fiber([(0, 1)]))
