"""Tests for RepCut-style partitioning, the RUM, and parallel simulation."""

import pytest

from repro.designs import compile_named_design, library
from repro.designs.registry import compiled_graph
from repro.firrtl import elaborate, parse
from repro.graph import build_dfg, optimize
from repro.repcut import (
    RepCutSimulator,
    build_rum,
    partition_graph,
)
from repro.sim import Simulator

from conftest import drive_random_inputs


@pytest.fixture(scope="module")
def gcd_graph():
    graph, _ = optimize(build_dfg(elaborate(parse(library.gcd()))))
    return graph


class TestPartitioning:
    def test_every_register_owned_once(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        owners = [
            name for p in result.partitions for name in p.owned_registers
        ]
        assert sorted(owners) == sorted(gcd_graph.registers)

    def test_every_output_assigned_once(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        outputs = [name for p in result.partitions for name in p.outputs]
        assert sorted(outputs) == sorted(gcd_graph.outputs)

    def test_partitions_are_valid_graphs(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        for partition in result.partitions:
            partition.graph.validate()

    def test_external_registers_become_inputs(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        for partition in result.partitions:
            for name in partition.external_registers:
                assert name in partition.graph.inputs
                assert name not in partition.graph.registers

    def test_replication_reported(self):
        graph = compiled_graph("rocket-1")
        result = partition_graph(graph, 4)
        assert result.replication_overhead >= 0
        total = sum(p.num_ops for p in result.partitions)
        assert total >= graph.num_ops

    def test_single_partition_no_replication(self, gcd_graph):
        result = partition_graph(gcd_graph, 1)
        assert result.replication_overhead == 0
        assert result.partitions[0].external_registers == []

    def test_zero_partitions_rejected(self, gcd_graph):
        with pytest.raises(ValueError):
            partition_graph(gcd_graph, 0)


class TestRum:
    def test_writer_reader_consistency(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        rum = build_rum(result)
        for name, readers in rum.readers.items():
            assert rum.writer[name] not in readers  # writer reads locally

    def test_rum_tensor_mask(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        rum = build_rum(result)
        tensor = rum.to_tensor()
        assert tensor.rank_names == ("cw", "r", "cr")
        assert tensor.occupancy == rum.total_transfers_per_cycle
        for _, value in tensor.points():
            assert value == 1


class TestParallelSimulation:
    @pytest.mark.parametrize("num_partitions", [1, 2, 3, 4])
    def test_lockstep_with_single_simulator(self, num_partitions, rng):
        src = library.gcd()
        graph, _ = optimize(build_dfg(elaborate(parse(src))))
        single = Simulator(graph, optimize_graph=False)
        multi = RepCutSimulator(graph, num_partitions=num_partitions)
        design = elaborate(parse(src))
        drive_random_inputs([single, multi], design, rng, 40)

    def test_lockstep_on_fifo(self, rng):
        src = library.shift_fifo(depth=5)
        graph, _ = optimize(build_dfg(elaborate(parse(src))))
        single = Simulator(graph, optimize_graph=False)
        multi = RepCutSimulator(graph, num_partitions=3)
        design = elaborate(parse(src))
        drive_random_inputs([single, multi], design, rng, 40)

    def test_accepts_firrtl_text(self, rng):
        multi = RepCutSimulator(library.counter(), num_partitions=2)
        multi.poke("enable", 1)
        multi.step(5)
        assert multi.peek("count") == 5

    def test_reset(self):
        multi = RepCutSimulator(library.counter(), num_partitions=2)
        multi.poke("enable", 1)
        multi.step(3)
        multi.reset()
        assert multi.peek("count") == 0 and multi.cycle == 0

    def test_sync_traffic_bounded_by_registers(self, gcd_graph):
        multi = RepCutSimulator(gcd_graph, num_partitions=3)
        assert multi.sync_traffic_per_cycle() <= (
            len(gcd_graph.registers) * (multi.num_partitions - 1)
        )

    def test_unknown_signal_rejected(self):
        multi = RepCutSimulator(library.counter(), num_partitions=2)
        with pytest.raises(KeyError):
            multi.peek("bogus")
        with pytest.raises(KeyError):
            multi.poke("bogus", 1)


class TestSnapshotRestore:
    def test_roundtrip(self):
        multi = RepCutSimulator(library.counter(), num_partitions=2)
        multi.poke("enable", 1)
        multi.step(3)
        checkpoint = multi.snapshot()
        multi.step(4)
        assert multi.peek("count") == 7
        multi.restore(checkpoint)
        assert multi.cycle == 3
        assert multi.peek("count") == 3
        multi.step(4)
        assert multi.peek("count") == 7  # deterministic replay

    def test_snapshot_preserves_differential_history(self, gcd_graph, rng):
        """Restoring mid-run must replay the same sync decisions: the
        exchange history is part of the checkpoint."""
        multi = RepCutSimulator(gcd_graph, num_partitions=3)
        single = Simulator(gcd_graph, optimize_graph=False)
        design_inputs = list(gcd_graph.inputs.items())
        for cycle in range(10):
            for name, width in design_inputs:
                value = rng.randrange(1 << width)
                multi.poke(name, value)
                single.poke(name, value)
            multi.step()
            single.step()
        checkpoint = multi.snapshot()
        reference = {name: single.peek(name) for name in gcd_graph.outputs}
        multi.step(5)
        multi.restore(checkpoint)
        for name, value in reference.items():
            assert multi.peek(name) == value

    def test_restore_rejects_mismatched_partitions(self):
        two = RepCutSimulator(library.counter(), num_partitions=2)
        three = RepCutSimulator(library.counter(), num_partitions=3)
        with pytest.raises(ValueError):
            three.restore(two.snapshot())
