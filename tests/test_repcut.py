"""Tests for RepCut-style partitioning, the RUM, and parallel simulation."""

import pytest

from repro.designs import compile_named_design, library
from repro.designs.registry import compiled_graph
from repro.firrtl import elaborate, parse
from repro.graph import build_dfg, optimize
from repro.repcut import (
    GainBuckets,
    RepCutSimulator,
    build_rum,
    partition_graph,
)
from repro.sim import Simulator

from conftest import drive_random_inputs, graph_with_unplaced_signal


@pytest.fixture(scope="module")
def gcd_graph():
    graph, _ = optimize(build_dfg(elaborate(parse(library.gcd()))))
    return graph


class TestPartitioning:
    def test_every_register_owned_once(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        owners = [
            name for p in result.partitions for name in p.owned_registers
        ]
        assert sorted(owners) == sorted(gcd_graph.registers)

    def test_every_output_assigned_once(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        outputs = [name for p in result.partitions for name in p.outputs]
        assert sorted(outputs) == sorted(gcd_graph.outputs)

    def test_partitions_are_valid_graphs(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        for partition in result.partitions:
            partition.graph.validate()

    def test_external_registers_become_inputs(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        for partition in result.partitions:
            for name in partition.external_registers:
                assert name in partition.graph.inputs
                assert name not in partition.graph.registers

    def test_replication_reported(self):
        graph = compiled_graph("rocket-1")
        result = partition_graph(graph, 4)
        assert result.replication_overhead >= 0
        total = sum(p.num_ops for p in result.partitions)
        assert total >= graph.num_ops

    def test_single_partition_no_replication(self, gcd_graph):
        result = partition_graph(gcd_graph, 1)
        assert result.replication_overhead == 0
        assert result.partitions[0].external_registers == []

    def test_zero_partitions_rejected(self, gcd_graph):
        with pytest.raises(ValueError):
            partition_graph(gcd_graph, 0)


class TestRefinedPartitioning:
    """The replication-capped KL/FM refiner (repro.repcut.refine)."""

    def test_reduces_replication_on_shared_fanin(self):
        # rocket-1's register cones share a ~97% fan-in core: the greedy
        # balanced assignment replicates it into both partitions, the
        # refined cut keeps the shared cluster together.
        graph = compiled_graph("rocket-1")
        greedy = partition_graph(graph, 2)
        refined = partition_graph(graph, 2, strategy="refined")
        assert greedy.replication_overhead > 0.5
        assert refined.replication_overhead < 0.2 * greedy.replication_overhead
        assert len(refined.partitions) == 2

    def test_refined_result_still_covers_everything(self):
        graph = compiled_graph("rocket-1")
        result = partition_graph(graph, 2, strategy="refined")
        owners = [n for p in result.partitions for n in p.owned_registers]
        assert sorted(owners) == sorted(graph.registers)
        outputs = [n for p in result.partitions for n in p.outputs]
        assert sorted(outputs) == sorted(graph.outputs)
        for partition in result.partitions:
            partition.graph.validate()

    @pytest.mark.parametrize("cap", [0.25, 0.0])
    def test_replication_cap_respected(self, cap):
        graph = compiled_graph("rocket-1")
        greedy = partition_graph(graph, 2)
        result = partition_graph(
            graph, 2, strategy="refined", max_replication=cap
        )
        ceiling = max(greedy.replication_overhead, cap)
        assert result.replication_overhead <= ceiling + 1e-9

    def test_cost_monotonically_non_increasing_per_pass(self):
        graph = compiled_graph("rocket-1")
        result = partition_graph(graph, 2, strategy="refined")
        stats = result.refine_stats
        assert stats is not None
        assert len(stats.pass_costs) >= 2
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(stats.pass_costs, stats.pass_costs[1:])
        )
        assert stats.final_cost <= stats.seed_cost + 1e-9
        assert not stats.reverted_to_seed

    def test_never_costlier_than_greedy_seed(self, gcd_graph):
        result = partition_graph(gcd_graph, 3, strategy="refined")
        stats = result.refine_stats
        assert stats is not None
        assert stats.final_cost <= stats.seed_cost + 1e-9

    def test_p1_identity(self, gcd_graph):
        greedy = partition_graph(gcd_graph, 1)
        refined = partition_graph(gcd_graph, 1, strategy="refined")
        assert refined.refine_stats is None  # nothing to refine
        assert len(refined.partitions) == 1
        assert refined.replication_overhead == 0.0
        assert (
            sorted(refined.partitions[0].owned_registers)
            == sorted(greedy.partitions[0].owned_registers)
        )

    @pytest.mark.parametrize("strategy", ["greedy", "refined"])
    def test_degenerate_more_partitions_than_cones(self, strategy):
        graph, _ = optimize(build_dfg(elaborate(parse(library.counter()))))
        num_cones = len(graph.registers) + len(graph.outputs)
        with pytest.warns(RuntimeWarning, match="own a register or output"):
            result = partition_graph(graph, num_cones + 5, strategy=strategy)
        assert result.requested_partitions == num_cones + 5
        assert 1 <= len(result.partitions) <= num_cones
        for partition in result.partitions:
            assert partition.owned_registers or partition.outputs

    def test_unknown_strategy_rejected(self, gcd_graph):
        with pytest.raises(ValueError, match="strategy"):
            partition_graph(gcd_graph, 2, strategy="metis")

    def test_refined_lockstep_with_single_simulator(self, rng):
        src = library.gcd()
        graph, _ = optimize(build_dfg(elaborate(parse(src))))
        single = Simulator(graph, optimize_graph=False)
        multi = RepCutSimulator(graph, num_partitions=3, partitioner="refined")
        design = elaborate(parse(src))
        drive_random_inputs([single, multi], design, rng, 40)


class TestGainBuckets:
    def test_put_and_descending_iteration(self):
        buckets = GainBuckets()
        buckets.put(0, 1, leave=5, new=2)   # gain 3
        buckets.put(1, 1, leave=0, new=4)   # gain -4
        buckets.put(2, 0, leave=1, new=1)   # gain 0
        gains = [gain for gain, _ in buckets.buckets_desc()]
        assert gains == [3, 0, -4]
        assert len(buckets) == 3

    def test_put_refreshes_existing_move(self):
        buckets = GainBuckets()
        buckets.put(0, 1, leave=5, new=2)
        buckets.put(0, 1, leave=1, new=1)   # re-gain to 0
        gains = [gain for gain, _ in buckets.buckets_desc()]
        assert gains == [0]
        assert len(buckets) == 1

    def test_discard_unit_drops_all_targets(self):
        buckets = GainBuckets()
        buckets.put(0, 1, leave=2, new=0)
        buckets.put(0, 2, leave=0, new=2)
        buckets.put(1, 2, leave=1, new=0)
        buckets.discard_unit(0, num_partitions=3)
        remaining = [
            move for _, bucket in buckets.buckets_desc() for move in bucket
        ]
        assert remaining == [(1, 2)]


class TestPeekDiagnostics:
    def test_unplaced_signal_gets_clear_error(self):
        multi = RepCutSimulator(graph_with_unplaced_signal(), 2)
        with pytest.raises(KeyError) as excinfo:
            multi.peek("r.dbg")
        message = str(excinfo.value)
        assert "r.dbg" in message
        assert "preserve_signals" in message
        assert "not placed in any partition" in message

    def test_unplaced_signal_error_names_related_partitions(self):
        multi = RepCutSimulator(graph_with_unplaced_signal(), 2)
        with pytest.raises(KeyError, match="related signals"):
            multi.peek("r.dbg")

    def test_truly_unknown_signal_suggests_preserve(self):
        multi = RepCutSimulator(graph_with_unplaced_signal(), 2)
        with pytest.raises(KeyError, match="optimised away"):
            multi.peek("bogus")


class TestRum:
    def test_writer_reader_consistency(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        rum = build_rum(result)
        for name, readers in rum.readers.items():
            assert rum.writer[name] not in readers  # writer reads locally

    def test_rum_tensor_mask(self, gcd_graph):
        result = partition_graph(gcd_graph, 3)
        rum = build_rum(result)
        tensor = rum.to_tensor()
        assert tensor.rank_names == ("cw", "r", "cr")
        assert tensor.occupancy == rum.total_transfers_per_cycle
        for _, value in tensor.points():
            assert value == 1


class TestParallelSimulation:
    @pytest.mark.parametrize("num_partitions", [1, 2, 3, 4])
    def test_lockstep_with_single_simulator(self, num_partitions, rng):
        src = library.gcd()
        graph, _ = optimize(build_dfg(elaborate(parse(src))))
        single = Simulator(graph, optimize_graph=False)
        multi = RepCutSimulator(graph, num_partitions=num_partitions)
        design = elaborate(parse(src))
        drive_random_inputs([single, multi], design, rng, 40)

    def test_lockstep_on_fifo(self, rng):
        src = library.shift_fifo(depth=5)
        graph, _ = optimize(build_dfg(elaborate(parse(src))))
        single = Simulator(graph, optimize_graph=False)
        multi = RepCutSimulator(graph, num_partitions=3)
        design = elaborate(parse(src))
        drive_random_inputs([single, multi], design, rng, 40)

    def test_accepts_firrtl_text(self, rng):
        multi = RepCutSimulator(library.counter(), num_partitions=2)
        multi.poke("enable", 1)
        multi.step(5)
        assert multi.peek("count") == 5

    def test_reset(self):
        multi = RepCutSimulator(library.counter(), num_partitions=2)
        multi.poke("enable", 1)
        multi.step(3)
        multi.reset()
        assert multi.peek("count") == 0 and multi.cycle == 0

    def test_sync_traffic_bounded_by_registers(self, gcd_graph):
        multi = RepCutSimulator(gcd_graph, num_partitions=3)
        assert multi.sync_traffic_per_cycle() <= (
            len(gcd_graph.registers) * (multi.num_partitions - 1)
        )

    def test_unknown_signal_rejected(self):
        multi = RepCutSimulator(library.counter(), num_partitions=2)
        with pytest.raises(KeyError):
            multi.peek("bogus")
        with pytest.raises(KeyError):
            multi.poke("bogus", 1)


class TestSnapshotRestore:
    def test_roundtrip(self):
        multi = RepCutSimulator(library.counter(), num_partitions=2)
        multi.poke("enable", 1)
        multi.step(3)
        checkpoint = multi.snapshot()
        multi.step(4)
        assert multi.peek("count") == 7
        multi.restore(checkpoint)
        assert multi.cycle == 3
        assert multi.peek("count") == 3
        multi.step(4)
        assert multi.peek("count") == 7  # deterministic replay

    def test_snapshot_preserves_differential_history(self, gcd_graph, rng):
        """Restoring mid-run must replay the same sync decisions: the
        exchange history is part of the checkpoint."""
        multi = RepCutSimulator(gcd_graph, num_partitions=3)
        single = Simulator(gcd_graph, optimize_graph=False)
        design_inputs = list(gcd_graph.inputs.items())
        for cycle in range(10):
            for name, width in design_inputs:
                value = rng.randrange(1 << width)
                multi.poke(name, value)
                single.poke(name, value)
            multi.step()
            single.step()
        checkpoint = multi.snapshot()
        reference = {name: single.peek(name) for name in gcd_graph.outputs}
        multi.step(5)
        multi.restore(checkpoint)
        for name, value in reference.items():
            assert multi.peek(name) == value

    def test_restore_rejects_different_cut(self):
        graph = compiled_graph("rocket-1")
        greedy = RepCutSimulator(graph, num_partitions=2)
        refined = RepCutSimulator(graph, num_partitions=2,
                                  partitioner="refined")
        with pytest.raises(ValueError, match="different partitioning"):
            greedy.restore(refined.snapshot())

    def test_restore_rejects_mismatched_partitions(self):
        # gcd has enough register/output cones that neither count prunes.
        two = RepCutSimulator(library.gcd(), num_partitions=2)
        three = RepCutSimulator(library.gcd(), num_partitions=3)
        assert three.num_partitions == 3
        with pytest.raises(ValueError):
            three.restore(two.snapshot())
