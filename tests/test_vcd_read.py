"""VCD readback tests: writer->parser round trips and external dumps.

The acceptance bar: ``VcdWriter -> parse_vcd -> read_vcd_trace`` is
value-identical to the live trace on every registry design (B=8 on the
acceptance design, a cheaper sweep elsewhere), identifier codes stay
injective deep into the multi-character base-94 tail, and external-style
dumps (real timescales, x/z, clock-edge sampling) land on the same
``compare_traces`` currency as our own engines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchSimulator
from repro.designs.registry import compile_named_design, standard_designs
from repro.sim import Simulator, VcdWriter, compare_traces
from repro.sim.testbench import UNKNOWN
from repro.sim.waveform import _identifier
from repro.verify.differential import observable_outputs
from repro.verify.vcd_read import VcdVar, parse_vcd, read_vcd_trace
from repro.workloads.stimulus import batched_workload_for, workload_for


def _run_batched(design, lanes, cycles):
    """A batched run returning (writer, live lane-major trace)."""
    bundle = compile_named_design(design)
    watch = observable_outputs(design)
    signals = {
        name: bundle.slot_width[bundle.signal_slots[name]] for name in watch
    }
    workload = batched_workload_for(design, lanes)
    simulator = BatchSimulator(bundle, lanes=lanes)
    writer = VcdWriter(simulator, signals)
    live = {name: [[] for _ in range(lanes)] for name in watch}
    for cycle in range(cycles):
        workload.apply(simulator, cycle)
        writer.sample()
        for name in watch:
            row = simulator.peek(name)
            for lane in range(lanes):
                live[name][lane].append(row[lane])
        simulator.step()
    return writer, live


# ----------------------------------------------------------------------
# Acceptance: round-trip value identity on every registry design
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_acceptance_b8_merged_document(self):
        """B=8 merged dump reads back value-identical on rocket-1."""
        cycles = 12
        writer, live = _run_batched("rocket-1", 8, cycles)
        trace = read_vcd_trace(writer.document(), cycles=cycles)
        assert trace == live

    def test_acceptance_b8_per_lane_documents(self):
        cycles = 12
        writer, live = _run_batched("rocket-1", 8, cycles)
        for lane in range(8):
            flat = read_vcd_trace(writer.document(lane=lane), cycles=cycles)
            for name, rows in live.items():
                assert flat[name] == rows[lane], (name, lane)

    @pytest.mark.parametrize("design", standard_designs())
    def test_every_registry_design_round_trips(self, design):
        cycles = 6
        writer, live = _run_batched(design, 2, cycles)
        trace = read_vcd_trace(writer.document(), cycles=cycles)
        assert trace == live, f"{design}: VCD round trip not value-identical"

    def test_rank0_round_trip_matches_scalar_run(self):
        design = "small-1"
        cycles = 10
        bundle = compile_named_design(design)
        watch = observable_outputs(design)
        workload = workload_for(design)
        simulator = Simulator(bundle)
        writer = VcdWriter(
            simulator,
            {n: bundle.slot_width[bundle.signal_slots[n]] for n in watch},
        )
        live = {name: [] for name in watch}
        for cycle in range(cycles):
            workload.apply(simulator, cycle)
            writer.sample()
            for name in watch:
                live[name].append(simulator.peek(name))
            simulator.step()
        trace = read_vcd_trace(writer.document(), cycles=cycles)
        assert trace == live

    def test_round_trip_is_a_compare_traces_non_diff(self):
        cycles = 8
        writer, live = _run_batched("sha3", 2, cycles)
        trace = read_vcd_trace(writer.document(), cycles=cycles)
        assert compare_traces(live, trace) == []


# ----------------------------------------------------------------------
# Identifier codes: injective through the multi-character base-94 tail
# ----------------------------------------------------------------------
class TestIdentifierCodes:
    #: Where code length rolls over: 94 one-char codes, then 94**2 more.
    TAIL = 94 + 94**2

    @given(st.integers(0, 94 + 94**2 + 500))
    def test_codes_are_printable_non_space(self, index):
        code = _identifier(index)
        assert code
        assert all(33 <= ord(ch) <= 126 for ch in code)

    @given(
        st.integers(0, 94 + 94**2 + 500),
        st.integers(0, 94 + 94**2 + 500),
    )
    def test_codes_are_injective(self, a, b):
        assert (a == b) == (_identifier(a) == _identifier(b))

    def test_tail_rollover_is_dense_and_unique(self):
        window = [
            _identifier(i) for i in range(self.TAIL - 100, self.TAIL + 100)
        ]
        assert len(set(window)) == len(window)
        assert len(window[0]) == 2 and len(window[-1]) == 3

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(0, 94 + 94**2 + 200), min_size=1, max_size=8))
    def test_codes_survive_a_vcd_round_trip(self, indices):
        """Synthetic dump using deep-tail codes parses back per signal."""
        idents = {f"s{i}": _identifier(i) for i in sorted(indices)}
        lines = ["$timescale 1ns $end", "$scope module TOP $end"]
        lines += [
            f"$var wire 8 {ident} {name} $end"
            for name, ident in idents.items()
        ]
        lines += ["$upscope $end", "$enddefinitions $end", "#0"]
        lines += [
            f"b{value:b} {ident}"
            for value, ident in zip(range(1, len(idents) + 1), idents.values())
        ]
        trace = read_vcd_trace("\n".join(lines))
        assert trace == {
            name: [value] for value, name in enumerate(idents, start=1)
        }


# ----------------------------------------------------------------------
# External dumps: x/z, real timescales, clock-edge sampling
# ----------------------------------------------------------------------
EXTERNAL_VCD = """
$date today $end
$version an external simulator $end
$timescale 1ps $end
$scope module top $end
$var wire 1 ! clock $end
$var wire 8 " data [7:0] $end
$var wire 1 # valid $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
bxxxxxxxx "
x#
$end
#500
1!
b1010 "
1#
#1000
0!
#1500
1!
b1111 "
#2000
0!
#2500
1!
0#
"""


class TestExternalDumps:
    def test_clock_edge_sampling_collapses_timestamps(self):
        trace = read_vcd_trace(EXTERNAL_VCD, clock="clock")
        # Rising edges at #500, #1500, #2500 -> 3 samples per signal.
        assert trace["data"] == [10, 15, 15]
        assert trace["valid"] == [1, 1, 0]
        assert "clock" not in trace

    def test_x_and_z_digits_map_to_unknown(self):
        trace = read_vcd_trace(EXTERNAL_VCD)
        assert trace["data"][0] is UNKNOWN
        assert trace["valid"][0] is UNKNOWN
        zed = read_vcd_trace(
            "$var wire 4 ! w $end $enddefinitions $end #0 bz10x !"
        )
        assert zed["w"] == [UNKNOWN]

    def test_unknowns_are_compare_traces_non_diffs(self):
        trace = read_vcd_trace(EXTERNAL_VCD, clock="clock")
        reference = {"data": [10, 15, 15], "valid": [1, 1, 0]}
        assert compare_traces(reference, trace) == []

    def test_nested_scopes_and_var_lookup(self):
        document = parse_vcd(EXTERNAL_VCD)
        var = document.var_named("top.data")
        assert var == VcdVar("data", 8, '"', ("top",))
        assert document.var_named("data") is var
        with pytest.raises(KeyError):
            document.var_named("nope")

    def test_signal_selection_and_missing_signal(self):
        trace = read_vcd_trace(EXTERNAL_VCD, signals=["valid"], clock="clock")
        assert sorted(trace) == ["valid"]
        with pytest.raises(KeyError):
            read_vcd_trace(EXTERNAL_VCD, signals=["ghost"])

    def test_cycles_pads_and_truncates(self):
        padded = read_vcd_trace(EXTERNAL_VCD, clock="clock", cycles=5)
        assert padded["data"] == [10, 15, 15, 15, 15]
        cut = read_vcd_trace(EXTERNAL_VCD, clock="clock", cycles=2)
        assert cut["data"] == [10, 15]
