"""Tests for the shared lowered program IR (:mod:`repro.lower`): rank
parity with the OIM tensor formats, consumer-transpose and leaf-table
correctness, limb-plan structure, artifact-cache round-trips, and
cross-process fingerprint stability."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.designs.registry import compile_named_design
from repro.firrtl.elaborate import elaborate
from repro.firrtl.parser import parse
from repro.graph.build import build_dfg
from repro.graph.optimize import optimize
from repro.lower import (
    blockable,
    cached_program,
    is_narrow,
    limb_plan,
    lower_program,
)
from repro.lower.program import OimProgram
from repro.oim.builder import build_oim
from repro.oim.formats import lower_oim_fast

SRC_ROOT = str(Path(__file__).resolve().parent.parent / "src")


def fresh_bundle(source: str):
    """A bundle with no registry memo attached (cold-lowering path)."""
    graph, _ = optimize(build_dfg(elaborate(parse(source))))
    return build_oim(graph)


# ----------------------------------------------------------------------
# Structure: the program mirrors the bundle exactly
# ----------------------------------------------------------------------
class TestProgramStructure:
    def test_rows_mirror_bundle_records(self, mixed_bundle):
        program = lower_program(mixed_bundle)
        assert program.num_layers == len(mixed_bundle.layers)
        for layer, bundle_layer in zip(program.layers, mixed_bundle.layers):
            assert len(layer) == len(bundle_layer)
            for row, record in zip(layer, bundle_layer):
                n, s, operands, widths, out_width = row
                assert (n, s, operands) == (record.n, record.s, record.operands)
                assert widths == tuple(
                    mixed_bundle.slot_width[r] for r in operands
                )
                assert out_width == mixed_bundle.slot_width[s]

    def test_op_vocabulary(self, mixed_bundle):
        program = lower_program(mixed_bundle)
        assert program.op_names == tuple(
            entry.name for entry in mixed_bundle.op_table
        )
        assert program.op_arities == tuple(
            entry.arity for entry in mixed_bundle.op_table
        )

    def test_consumers_are_the_r_rank_transpose(self, mixed_bundle):
        program = lower_program(mixed_bundle)
        assert len(program.consumers) == program.num_slots
        for slot, sites in enumerate(program.consumers):
            for layer_index, record_index in sites:
                row = program.layers[layer_index][record_index]
                assert slot in row[2]
        # ...and complete: every operand use appears in its transpose.
        for layer_index, layer in enumerate(program.layers):
            for record_index, row in enumerate(layer):
                for slot in row[2]:
                    assert (layer_index, record_index) in program.consumers[slot]

    def test_leaf_slots(self, mixed_bundle):
        program = lower_program(mixed_bundle)
        expected = set(program.input_slots.values()) | {
            state for state, _next in program.register_commits
        }
        assert program.leaf_slots == tuple(sorted(expected))

    def test_records_iterates_in_walk_order(self, mixed_bundle):
        program = lower_program(mixed_bundle)
        rows = [row for layer in program.layers for row in layer]
        assert list(program.records()) == rows
        assert program.num_records == len(rows)


# ----------------------------------------------------------------------
# Rank parity: the program regenerates the paper's tensor formats
# ----------------------------------------------------------------------
class TestRankParity:
    @pytest.mark.parametrize("design", ("small-1", "gemmini-8", "sha3"))
    def test_flat_ranks_match_lower_oim_fast(self, design):
        bundle = compile_named_design(design)
        program = cached_program(bundle)
        ranks = program.flat_ranks()
        lowered = lower_oim_fast(bundle, "optimized")
        assert list(ranks.i_payloads) == list(lowered.ranks["I"].payloads)
        assert list(ranks.s_coords) == list(lowered.ranks["S"].coords)
        assert list(ranks.n_coords) == list(lowered.ranks["N"].coords)
        assert list(ranks.r_coords) == list(lowered.ranks["R"].coords)

    @pytest.mark.parametrize("design", ("small-1", "sha3"))
    def test_swizzled_ranks_match_lower_oim_fast(self, design):
        bundle = compile_named_design(design)
        program = cached_program(bundle)
        ranks = program.swizzled_ranks()
        lowered = lower_oim_fast(bundle, "swizzled")
        assert list(ranks.n_payloads) == list(lowered.ranks["N"].payloads)
        assert list(ranks.s_coords) == list(lowered.ranks["S"].coords)
        assert list(ranks.r_coords) == list(lowered.ranks["R"].coords)


# ----------------------------------------------------------------------
# The limb plan over the program
# ----------------------------------------------------------------------
class TestLimbPlan:
    def test_plan_covers_every_row_exactly_once(self):
        bundle = compile_named_design("sha3")  # has >64-bit slots
        program = cached_program(bundle)
        plan = limb_plan(program)
        replayed = [row for _mode, _name, rows in plan for row in rows]
        every = [row for layer in program.layers for row in layer]
        assert sorted(replayed) == sorted(every)
        modes = set()
        for mode, name, rows in plan:
            modes.add(mode)
            assert mode in ("block", "narrow", "wide")
            if mode == "block":
                assert len(rows) > 1  # singletons stay on the record path
                assert {program.op_names[row[0]] for row in rows} == {name}
                for _n, _s, _operands, widths, out_width in rows:
                    assert is_narrow(widths, out_width)
                    assert blockable(name, widths, out_width)
            else:
                assert name is None and len(rows) == 1
                _n, _s, _operands, widths, out_width = rows[0]
                assert is_narrow(widths, out_width) == (mode == "narrow")
        assert "wide" in modes  # sha3's 65-bit slots must route wide

    def test_narrow_design_has_no_wide_steps(self):
        program = cached_program(compile_named_design("small-1"))
        for mode, _name, _rows in limb_plan(program):
            assert mode != "wide"


# ----------------------------------------------------------------------
# Fingerprints and caching
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_within_process(self):
        bundle = compile_named_design("small-1")
        assert lower_program(bundle).fingerprint == (
            lower_program(bundle).fingerprint
        )

    def test_differs_across_designs(self):
        prints = {
            design: cached_program(compile_named_design(design)).fingerprint
            for design in ("small-1", "gemmini-8", "sha3")
        }
        assert len(set(prints.values())) == len(prints)

    def test_stable_across_processes(self):
        """The cbin/program cache key must not depend on process state
        (hash randomisation, id()s, dict order)."""
        bundle = compile_named_design("small-1")
        script = (
            "from repro.designs.registry import compile_named_design\n"
            "from repro.lower import lower_program\n"
            "print(lower_program(compile_named_design('small-1')).fingerprint)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT
        env["PYTHONHASHSEED"] = "12345"  # not this process's seed
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        )
        assert child.stdout.strip() == lower_program(bundle).fingerprint


class TestCachedProgram:
    def test_memoised_on_the_bundle(self, mixed_bundle):
        assert cached_program(mixed_bundle) is cached_program(mixed_bundle)

    def test_round_trips_through_artifact_cache(self, mixed_src, tmp_path):
        from repro.serve.artifacts import configure_cache, disable_cache

        try:
            cache = configure_cache(tmp_path)
            first = cached_program(fresh_bundle(mixed_src))
            assert cache.stats.puts == 1
            second = cached_program(fresh_bundle(mixed_src))
            assert cache.stats.hits == 1
            assert isinstance(second, OimProgram)
            assert second.fingerprint == first.fingerprint
            assert second.layers == first.layers
            assert second.consumers == first.consumers
        finally:
            disable_cache()
