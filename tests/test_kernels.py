"""Tests for kernel configs, expression codegen, executable kernels, C++."""

import pytest

from repro.designs import library
from repro.firrtl import ReferenceSimulator, elaborate, parse
from repro.kernels import (
    ALL_KERNELS,
    generate_cpp,
    get_kernel_config,
    kernel_profile,
    make_kernel,
)
from repro.kernels.expr import cpp_expr, needs_mask, python_expr
from repro.kernels.profile import INSTR_PER_OP
from repro.sim import Simulator

from conftest import drive_random_inputs

KERNEL_NAMES = [k.name for k in ALL_KERNELS]


class TestConfigs:
    def test_seven_kernels_in_paper_order(self):
        assert KERNEL_NAMES == ["RU", "OU", "NU", "PSU", "IU", "SU", "TI"]

    def test_unrolling_is_cumulative(self):
        """Each kernel unrolls a superset of its predecessor's ranks."""
        for previous, current in zip(ALL_KERNELS, ALL_KERNELS[1:]):
            assert previous.unrolled <= current.unrolled

    def test_swizzle_point(self):
        assert get_kernel_config("RU").oim_format == "optimized"
        assert get_kernel_config("NU").oim_format == "swizzled"
        assert get_kernel_config("NU").loop_order == ("I", "N", "S", "O", "R")

    def test_only_ti_inlines(self):
        assert get_kernel_config("TI").tensor_inline
        assert not get_kernel_config("SU").tensor_inline

    def test_lookup_case_insensitive(self):
        assert get_kernel_config("psu").name == "PSU"
        with pytest.raises(KeyError):
            get_kernel_config("XX")

    def test_fully_unrolled(self):
        assert get_kernel_config("SU").fully_unrolled
        assert not get_kernel_config("PSU").fully_unrolled


class TestExprCodegen:
    def test_python_add_masks(self):
        expr = python_expr("add", ["a", "b"], [8, 8], 8)
        assert eval(expr, {"a": 200, "b": 100}) == (300 & 0xFF)

    def test_python_mux(self):
        expr = python_expr("mux", ["s", "x", "y"], [1, 8, 8], 8)
        assert eval(expr, {"s": 1, "x": 5, "y": 9}) == 5
        assert eval(expr, {"s": 0, "x": 5, "y": 9}) == 9

    def test_python_muxchain_order(self):
        expr = python_expr(
            "muxchain2", ["s1", "v1", "s2", "v2", "d"],
            [1, 8, 1, 8, 8], 8,
        )
        env = {"s1": 0, "v1": 1, "s2": 1, "v2": 2, "d": 3}
        assert eval(expr, env) == 2
        env["s1"] = 1
        assert eval(expr, env) == 1

    def test_python_division_guard(self):
        expr = python_expr("div", ["a", "b"], [8, 8], 8)
        assert eval(expr, {"a": 9, "b": 0}) == 0

    def test_needs_mask_classification(self):
        assert needs_mask("add") and needs_mask("tail") and needs_mask("bits")
        assert not needs_mask("and") and not needs_mask("mux")
        assert not needs_mask("muxchain4")

    def test_cpp_renders(self):
        text = cpp_expr("cat", ["a", "b"], [4, 4], 8)
        assert "<< 4" in text
        text = cpp_expr("mux", ["s", "a", "b"], [1, 8, 8], 8)
        assert "?" in text

    def test_cpp_wide_mask_suffix(self):
        text = cpp_expr("add", ["a", "b"], [40, 40], 41)
        assert "ULL" in text

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            python_expr("bogus", ["a"], [1], 1)


@pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
class TestKernelEquivalence:
    """Every kernel must be bit-exact against the FIRRTL reference."""

    def test_mixed_design(self, kernel_name, mixed_src, mixed_design, rng):
        reference = ReferenceSimulator(mixed_design)
        simulator = Simulator(mixed_src, kernel=kernel_name)
        drive_random_inputs([reference, simulator], mixed_design, rng, 60)

    def test_gcd(self, kernel_name, gcd_src, rng):
        design = elaborate(parse(gcd_src))
        reference = ReferenceSimulator(design)
        simulator = Simulator(gcd_src, kernel=kernel_name)
        drive_random_inputs([reference, simulator], design, rng, 50)


class TestKernelInternals:
    def test_ti_writes_external_slots(self, mixed_bundle):
        kernel = make_kernel(mixed_bundle, "TI")
        values = mixed_bundle.initial_values()
        values[mixed_bundle.input_slots["a"]] = 9
        values[mixed_bundle.input_slots["b"]] = 4
        kernel.eval_comb(values)
        ou = make_kernel(mixed_bundle, "OU")
        expected = mixed_bundle.initial_values()
        expected[mixed_bundle.input_slots["a"]] = 9
        expected[mixed_bundle.input_slots["b"]] = 4
        ou.eval_comb(expected)
        for name, slot in mixed_bundle.output_slots.items():
            assert values[slot] == expected[slot], name
        for _, next_slot in mixed_bundle.register_commits:
            assert values[next_slot] == expected[next_slot]

    def test_psu_shares_nu_functional_path(self, mixed_bundle):
        from repro.kernels.pykernels import NUKernel

        assert isinstance(make_kernel(mixed_bundle, "PSU"), NUKernel)

    def test_iu_precomputes_schedule(self, mixed_bundle):
        kernel = make_kernel(mixed_bundle, "IU")
        assert len(kernel._groups) > 0
        total_ops = sum(len(s_list) for _, _, s_list, _ in kernel._groups)
        assert total_ops == mixed_bundle.num_ops


class TestCppCodegen:
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_generates_source(self, mixed_bundle, kernel_name):
        source = generate_cpp(mixed_bundle, kernel_name)
        assert "eval_cycle" in source.text
        assert source.kernel_statements > 0
        assert source.binary_code_bytes() > 0

    def test_rolled_kernels_design_independent_size(self, mixed_bundle):
        """RU/OU/NU/PSU binaries must not grow with the design (Table 4)."""
        from repro.designs.registry import compile_named_design

        small = generate_cpp(mixed_bundle, "PSU")
        large = generate_cpp(compile_named_design("rocket-1"), "PSU")
        # Kernel statements depend only on the op-type table, not op count.
        assert large.kernel_statements < small.kernel_statements * 5

    def test_su_statements_track_ops(self, mixed_bundle):
        source = generate_cpp(mixed_bundle, "SU")
        assert source.kernel_statements == mixed_bundle.num_ops

    def test_su_embeds_oim_in_code(self, mixed_bundle):
        assert generate_cpp(mixed_bundle, "SU").oim_data_bytes == 0
        assert generate_cpp(mixed_bundle, "RU").oim_data_bytes > 0

    def test_ordering_matches_table4(self):
        """At realistic design sizes the Table 4 ordering emerges."""
        from repro.designs.registry import compile_named_design

        bundle = compile_named_design("rocket-1")
        sizes = {
            name: generate_cpp(bundle, name).binary_code_bytes()
            for name in KERNEL_NAMES
        }
        assert sizes["RU"] < sizes["IU"] <= sizes["SU"]
        assert sizes["TI"] < sizes["SU"]


class TestProfiles:
    def test_instr_scale_with_extrapolation(self, mixed_bundle):
        one = kernel_profile(mixed_bundle, "PSU", extrapolation=1.0)
        ten = kernel_profile(mixed_bundle, "PSU", extrapolation=10.0)
        assert ten.ops == pytest.approx(10 * one.ops)
        # Instructions scale ~linearly (small constant layer overhead aside).
        assert ten.dyn_instr > 8.5 * one.dyn_instr
        assert ten.value_bytes == pytest.approx(10 * one.value_bytes)

    def test_instr_per_op_ordering(self, mixed_bundle):
        """Table 5's dynamic-instruction ordering RU >> OU > NU ~ PSU > SU."""
        profiles = {
            name: kernel_profile(mixed_bundle, name) for name in KERNEL_NAMES
        }
        assert profiles["RU"].dyn_instr > profiles["OU"].dyn_instr
        assert profiles["OU"].dyn_instr > profiles["NU"].dyn_instr
        assert profiles["NU"].dyn_instr > profiles["SU"].dyn_instr
        assert profiles["SU"].dyn_instr > profiles["TI"].dyn_instr

    def test_streamed_flags(self, mixed_bundle):
        assert not kernel_profile(mixed_bundle, "PSU").code_streamed
        assert kernel_profile(mixed_bundle, "SU").code_streamed

    def test_ti_touches_v_less(self, mixed_bundle):
        psu = kernel_profile(mixed_bundle, "PSU")
        ti = kernel_profile(mixed_bundle, "TI")
        assert ti.v_reads < psu.v_reads

    def test_calibration_constants_present(self):
        assert set(INSTR_PER_OP) == set(KERNEL_NAMES)
