"""Tests for the extended-Einsum IR and interpreter (Sections 2.3-2.4)."""

import pytest

from repro.einsum import (
    Cascade,
    Einsum,
    EinsumError,
    Index,
    MapSpec,
    PopulateSpec,
    ReduceSpec,
    TensorRef,
    evaluate,
    run_cascade,
)
from repro.einsum.operators import (
    ADD,
    ANY,
    COORD_LEFT,
    COORD_RIGHT,
    INTERSECT,
    MUL,
    PASS_THROUGH,
    SUB,
    TAKE_LEFT,
    TAKE_RIGHT,
    UNION,
    contextual_compute,
    max_n_populate,
)
from repro.tensor import Tensor


class TestIndexParsing:
    def test_plain(self):
        index = Index.parse("m")
        assert index.name == "m" and index.offset == 0 and not index.starred

    def test_iterative_offset(self):
        index = Index.parse("i+1")
        assert index.name == "i" and index.offset == 1

    def test_starred(self):
        index = Index.parse("o*")
        assert index.starred

    def test_bad_expression(self):
        with pytest.raises(ValueError):
            Index.parse("M")  # uppercase is a rank name, not an index

    def test_str_roundtrip(self):
        for text in ("m", "i+1", "o*"):
            assert str(Index.parse(text)) == text


class TestTensorRef:
    def test_parse_with_indices(self):
        ref = TensorRef.parse("OIM[i, n, o, r, s]")
        assert ref.name == "OIM"
        assert ref.index_names() == ("i", "n", "o", "r", "s")

    def test_parse_scalar(self):
        ref = TensorRef.parse("Z")
        assert ref.name == "Z" and ref.indices == ()

    def test_str(self):
        assert str(TensorRef.parse("A[k, m]")) == "A[k, m]"


class TestEinsumIr:
    def test_reduced_indices(self):
        einsum = Einsum(
            TensorRef.parse("Z[m]"),
            (TensorRef.parse("A[k, m]"), TensorRef.parse("B[k]")),
            MapSpec(MUL, INTERSECT),
            ReduceSpec(ADD),
        )
        assert einsum.reduced_index_names() == ("k",)

    def test_describe_contains_actions(self):
        einsum = Einsum(
            TensorRef.parse("Z"),
            (TensorRef.parse("A[m]"), TensorRef.parse("B[m]")),
            MapSpec(MUL, INTERSECT),
            ReduceSpec(ADD),
        )
        text = einsum.describe()
        assert "map x" in text and "reduce +" in text

    def test_input_arity_bounds(self):
        with pytest.raises(ValueError):
            Einsum(TensorRef.parse("Z[m]"), ())

    def test_cascade_tensor_names(self):
        einsum = Einsum(
            TensorRef.parse("Z[m]"),
            (TensorRef.parse("A[m]"),),
        )
        cascade = Cascade([einsum])
        assert cascade.tensor_names() == {"Z", "A"}
        assert len(cascade) == 1


class TestDotProduct:
    """The worked example of Figure 3."""

    def test_dot_product(self):
        a = Tensor.from_dense([2, 0, 4], ["m"])
        b = Tensor.from_dense([3, 7, 2], ["m"])
        einsum = Einsum(
            TensorRef.parse("Z"),
            (TensorRef.parse("A[m]"), TensorRef.parse("B[m]")),
            MapSpec(MUL, INTERSECT),
            ReduceSpec(ADD),
        )
        z = evaluate(einsum, {"A": a, "B": b})
        assert z.get((0,)) == 14  # 2*3 + 4*2, skipping the empty point

    def test_matvec(self):
        a = Tensor.from_dense([[1, 2], [3, 4], [5, 6]], ["k", "m"])
        b = Tensor.from_dense([1, 1, 1], ["k"])
        einsum = Einsum(
            TensorRef.parse("Z[m]"),
            (TensorRef.parse("A[k, m]"), TensorRef.parse("B[k]")),
            MapSpec(MUL, INTERSECT),
            ReduceSpec(ADD),
        )
        assert evaluate(einsum, {"A": a, "B": b}).to_dense() == [9, 12]


class TestTakeOperators:
    def test_take_left_take_right_figure4(self):
        """Einsum 2 / Figure 4: output A's value where B is non-empty."""
        a = Tensor.from_dense([3, 7, 2], ["m"])
        b = Tensor.from_points({(0,): 11, (2,): 1}, ["m"], [3])
        einsum = Einsum(
            TensorRef.parse("Z[m]"),
            (TensorRef.parse("A[m]"), TensorRef.parse("B[m]")),
            MapSpec(TAKE_LEFT, COORD_RIGHT),
        )
        assert evaluate(einsum, {"A": a, "B": b}).to_dense() == [3, 0, 2]

    def test_einsum3_copy_nonempty(self):
        """Einsum 3: copy all non-empty points of A.

        An explicitly stored zero is a *present* coordinate (occupancy is
        about coordinates, not values), so it is copied too.
        """
        a = Tensor.from_points({(1,): 5, (2,): 0}, ["m"], [4])
        einsum = Einsum(
            TensorRef.parse("Z[m]"),
            (TensorRef.parse("A[m]"),),
            MapSpec(PASS_THROUGH, COORD_LEFT),
        )
        z = evaluate(einsum, {"A": a})
        assert dict(z.points()) == {(1,): 5, (2,): 0}

    def test_einsum4_sum_nonempty(self):
        """Einsum 4: reduce the non-empty elements of A with take-right."""
        a = Tensor.from_points({(0,): 3, (3,): 9}, ["m"], [5])
        einsum = Einsum(
            TensorRef.parse("Z"),
            (TensorRef.parse("A[m]"),),
            MapSpec(PASS_THROUGH, COORD_LEFT),
            ReduceSpec(ADD, COORD_RIGHT),
        )
        assert evaluate(einsum, {"A": a}).get((0,)) == 12


class TestOrderingConstraint:
    def test_non_commutative_reduce_ascending(self):
        """Reduction visits contracted coordinates in ascending order."""
        a = Tensor.from_points({(0,): 10, (1,): 3, (2,): 2}, ["o"], [3])
        einsum = Einsum(
            TensorRef.parse("Z"),
            (TensorRef.parse("A[o]"),),
            MapSpec(PASS_THROUGH, COORD_LEFT),
            ReduceSpec(SUB, COORD_RIGHT),
        )
        # Copy-first semantics: 10 - 3 - 2 = 5.
        assert evaluate(einsum, {"A": a}).get((0,)) == 5


class TestPopulate:
    def test_max2_appendix_a(self):
        """Einsum 14: keep the two largest values via a populate operator."""
        a = Tensor.from_dense([1, 2, 2, 4], ["r"])
        einsum = Einsum(
            TensorRef.parse("B[r*]"),
            (TensorRef.parse("A[r]"),),
            MapSpec(PASS_THROUGH, COORD_LEFT),
            populate_spec=PopulateSpec(coordinate=max_n_populate(2)),
        )
        b = evaluate(einsum, {"A": a})
        kept = dict(b.points())
        assert len(kept) == 2
        assert sorted(kept.values()) == [2, 4]  # ties between equal 2s allowed
        assert (3,) in kept  # the unique maximum always survives


class TestContextualOperators:
    def test_contextual_compute_reads_bindings(self):
        """Operators like op_r[n] read coordinates (Algorithm 2)."""
        a = Tensor.from_points({(0, 0): 5, (1, 0): 5}, ["n", "s"], [2, 1])
        op = contextual_compute(
            "op_u[n]", lambda bindings, value: value * (bindings["n"] + 1)
        )
        einsum = Einsum(
            TensorRef.parse("Z[n, s]"),
            (TensorRef.parse("A[n, s]"),),
            MapSpec(op, COORD_LEFT),
        )
        z = evaluate(einsum, {"A": a})
        assert z.get((0, 0)) == 5 and z.get((1, 0)) == 10


class TestIterativeCascade:
    def test_prefix_sum_einsum5(self):
        """Algorithm 1 / Einsum 5: S[i+1] = S[i] + A[i]."""
        s = Tensor.from_points({(0,): 0}, ["i"], [5])
        a = Tensor.from_dense([1, 2, 3, 4], ["i"])
        einsum = Einsum(
            TensorRef.parse("S[i+1]"),
            (TensorRef.parse("S[i]"), TensorRef.parse("A[i]")),
            MapSpec(ADD, UNION),
        )
        env = run_cascade(
            Cascade([einsum], iterative_rank="I"), {"S": s, "A": a}, iterations=4
        )
        assert [env["S"].get((i,), 0) for i in range(5)] == [0, 1, 3, 6, 10]

    def test_iteration_count_required(self):
        einsum = Einsum(
            TensorRef.parse("S[i+1]"),
            (TensorRef.parse("S[i]"),),
            MapSpec(PASS_THROUGH, COORD_LEFT),
        )
        with pytest.raises(EinsumError):
            run_cascade(
                Cascade([einsum], iterative_rank="I"),
                {"S": Tensor.from_points({(0,): 1}, ["i"], [3])},
            )

    def test_condition_filters_points(self):
        a = Tensor.from_dense([5, 6, 7], ["n"])
        einsum = Einsum(
            TensorRef.parse("Z[n]"),
            (TensorRef.parse("A[n]"),),
            MapSpec(PASS_THROUGH, COORD_LEFT),
            condition=lambda bindings: bindings["n"] != 1,
            condition_text="n != 1",
        )
        z = evaluate(einsum, {"A": a})
        assert dict(z.points()) == {(0,): 5, (2,): 7}

    def test_any_reduce(self):
        a = Tensor.from_points({(0, 0): 4}, ["n", "s"], [2, 1])
        einsum = Einsum(
            TensorRef.parse("Z[s]"),
            (TensorRef.parse("A[n, s]"),),
            MapSpec(PASS_THROUGH, COORD_LEFT),
            ReduceSpec(ANY, COORD_RIGHT),
        )
        assert evaluate(einsum, {"A": a}).get((0,)) == 4


class TestErrors:
    def test_no_superset_input_rejected(self):
        einsum = Einsum(
            TensorRef.parse("Z[m, k]"),
            (TensorRef.parse("A[m]"), TensorRef.parse("B[k]")),
            MapSpec(MUL, INTERSECT),
        )
        with pytest.raises(EinsumError):
            evaluate(
                einsum,
                {
                    "A": Tensor.from_dense([1], ["m"]),
                    "B": Tensor.from_dense([1], ["k"]),
                },
            )

    def test_collision_without_reduce_rejected(self):
        a = Tensor.from_points({(0, 0): 1, (1, 0): 2}, ["k", "m"])
        einsum = Einsum(
            TensorRef.parse("Z[m]"),
            (TensorRef.parse("A[k, m]"),),
            MapSpec(PASS_THROUGH, COORD_LEFT),
        )
        with pytest.raises(EinsumError):
            evaluate(einsum, {"A": a})
