"""Tests for the dataflow-graph substrate: build, optimise, levelize."""

import random

import pytest

from repro.firrtl import ReferenceSimulator, elaborate, parse
from repro.graph import (
    GraphSimulator,
    build_dfg,
    eliminate_dead_code,
    evaluate_node,
    fuse_operator_chains,
    get_semantics,
    has_semantics,
    levelize,
    optimize,
)
from repro.graph.dfg import DataflowGraph
from repro.graph.opsem import MAX_CHAIN, REDUCE, SELECT, UNARY

from conftest import drive_random_inputs


class TestDfgStructure:
    def test_interning_gives_cse(self):
        graph = DataflowGraph()
        a = graph.add_input("a", 8)
        b = graph.add_input("b", 8)
        x = graph.add_op("add", (a, b), 9)
        y = graph.add_op("add", (a, b), 9)
        assert x == y
        assert graph.num_ops == 1

    def test_const_interning(self):
        graph = DataflowGraph()
        assert graph.add_const(5, 4) == graph.add_const(5, 4)
        assert graph.add_const(5, 4) != graph.add_const(5, 5)

    def test_duplicate_input_rejected(self):
        graph = DataflowGraph()
        graph.add_input("a", 1)
        with pytest.raises(ValueError):
            graph.add_input("a", 1)

    def test_validate_requires_register_next(self):
        graph = DataflowGraph()
        graph.add_register("r", 4)
        with pytest.raises(ValueError):
            graph.validate()

    def test_consumers(self):
        graph = DataflowGraph()
        a = graph.add_input("a", 4)
        x = graph.add_op("not", (a,), 4)
        y = graph.add_op("neg", (a,), 5)
        consumers = graph.consumers()
        assert sorted(consumers[a]) == sorted([x, y])

    def test_op_histogram(self, mixed_graph):
        histogram = mixed_graph.op_histogram()
        assert sum(histogram.values()) == mixed_graph.num_ops
        assert all(count > 0 for count in histogram.values())


class TestOpSemantics:
    def test_classes_cover_all_ops(self):
        from repro.graph.opsem import all_op_names

        for name in all_op_names():
            assert get_semantics(name).klass in (UNARY, REDUCE, SELECT)

    def test_arity_fixed_per_name(self):
        assert get_semantics("mux").arity == 3
        assert get_semantics("bits").arity == 3
        assert get_semantics("muxchain4").arity == 9
        assert get_semantics("orchain5").arity == 5

    def test_muxchain_semantics(self):
        # [s1, v1, s2, v2, default]
        assert evaluate_node("muxchain2", [0, 10, 1, 20, 30], [1, 8, 1, 8, 8], 8) == 20
        assert evaluate_node("muxchain2", [1, 10, 1, 20, 30], [1, 8, 1, 8, 8], 8) == 10
        assert evaluate_node("muxchain2", [0, 10, 0, 20, 30], [1, 8, 1, 8, 8], 8) == 30

    def test_param_ops_as_operands(self):
        # bits(x, hi, lo) with params as value operands.
        assert evaluate_node("bits", [0b110110, 4, 1], [6, 3, 1], 4) == 0b1011

    def test_cat_uses_right_width(self):
        assert evaluate_node("cat", [0b1, 0b0011], [1, 4], 5) == 0b10011

    def test_unknown_rejected(self):
        assert not has_semantics("bogus")
        with pytest.raises(KeyError):
            get_semantics("bogus")

    def test_ident_is_copy(self):
        assert evaluate_node("ident", [0x5A], [8], 8) == 0x5A


class TestBuild:
    def test_params_become_const_operands(self, mixed_design):
        graph = build_dfg(mixed_design)
        for node in graph.op_nodes():
            semantics = get_semantics(node.op)
            assert len(node.operands) == semantics.arity, node.op

    def test_reset_becomes_mux(self):
        design = elaborate(parse(
            "circuit T :\n  module T :\n    input clock : Clock\n"
            "    input reset : UInt<1>\n    input a : UInt<4>\n"
            "    output z : UInt<4>\n"
            "    regreset r : UInt<4>, clock, reset, UInt<4>(9)\n"
            "    r <= a\n    z <= r\n"
        ))
        graph = build_dfg(design)
        next_node = graph.node(graph.registers["r"].next_nid)
        assert next_node.op == "mux"

    def test_width_adapters_inserted(self):
        design = elaborate(parse(
            "circuit T :\n  module T :\n"
            "    input a : UInt<8>\n    input b : UInt<8>\n"
            "    output z : UInt<4>\n"
            "    z <= add(a, b)\n"  # 9 bits into a 4-bit output
        ))
        graph = build_dfg(design)
        assert graph.node(graph.outputs["z"]).width == 4

    def test_build_matches_reference(self, mixed_design, rng):
        reference = ReferenceSimulator(mixed_design)
        graph_sim = GraphSimulator(build_dfg(mixed_design))
        drive_random_inputs([reference, graph_sim], mixed_design, rng, 60)


class TestOptimize:
    def test_constant_folding(self):
        graph = DataflowGraph()
        a = graph.add_const(3, 4)
        b = graph.add_const(5, 4)
        s = graph.add_op("add", (a, b), 5)
        graph.set_output("z", s)
        optimized, stats = optimize(graph)
        assert stats.constants_folded >= 1
        assert optimized.node(optimized.outputs["z"]).op == "const"
        assert optimized.node(optimized.outputs["z"]).value == 8

    def test_copy_propagation_pad(self):
        graph = DataflowGraph()
        a = graph.add_input("a", 8)
        w = graph.add_const(8, 4)
        p = graph.add_op("pad", (a, w), 8)  # pad to same width = copy
        graph.set_output("z", p)
        optimized, stats = optimize(graph)
        assert stats.copies_propagated >= 1
        assert optimized.outputs["z"] == optimized.inputs["a"]

    def test_mux_constant_selector(self):
        graph = DataflowGraph()
        a = graph.add_input("a", 4)
        b = graph.add_input("b", 4)
        sel = graph.add_const(1, 1)
        m = graph.add_op("mux", (sel, a, b), 4)
        graph.set_output("z", m)
        optimized, _ = optimize(graph)
        assert optimized.outputs["z"] == optimized.inputs["a"]

    def test_dead_code_removed(self):
        graph = DataflowGraph()
        a = graph.add_input("a", 4)
        graph.add_op("not", (a,), 4)  # dead
        live = graph.add_op("neg", (a,), 5)
        graph.set_output("z", live)
        optimized, stats = optimize(graph)
        assert stats.dead_removed >= 1
        assert optimized.num_ops == 1

    def test_preserve_signals_keeps_named(self):
        graph = DataflowGraph()
        a = graph.add_input("a", 4)
        dead = graph.add_op("not", (a,), 4)
        graph.signal_map["observed"] = dead
        live = graph.add_op("neg", (a,), 5)
        graph.set_output("z", live)
        kept = eliminate_dead_code(graph, preserve_signals=True)
        assert "observed" in kept.signal_map
        dropped = eliminate_dead_code(graph, preserve_signals=False)
        assert "observed" not in dropped.signal_map

    def test_mux_chain_fused(self):
        graph = DataflowGraph()
        sels = [graph.add_input(f"s{i}", 1) for i in range(3)]
        vals = [graph.add_input(f"v{i}", 8) for i in range(4)]
        m = vals[3]
        for i in (2, 1, 0):
            m = graph.add_op("mux", (sels[i], vals[i], m), 8)
        graph.set_output("z", m)
        fused = fuse_operator_chains(graph)
        ops = {node.op for node in fused.op_nodes()}
        assert "muxchain3" in ops

    def test_long_chain_segmented(self):
        graph = DataflowGraph()
        count = MAX_CHAIN + 3
        sels = [graph.add_input(f"s{i}", 1) for i in range(count)]
        vals = [graph.add_input(f"v{i}", 8) for i in range(count + 1)]
        m = vals[count]
        for i in reversed(range(count)):
            m = graph.add_op("mux", (sels[i], vals[i], m), 8)
        graph.set_output("z", m)
        fused = fuse_operator_chains(graph)
        chains = [n.op for n in fused.op_nodes() if n.op.startswith("muxchain")]
        assert f"muxchain{MAX_CHAIN}" in chains
        assert len(chains) >= 2  # segmented, not truncated

    def test_logic_chain_fused(self):
        graph = DataflowGraph()
        inputs = [graph.add_input(f"x{i}", 8) for i in range(5)]
        x = inputs[0]
        for other in inputs[1:]:
            x = graph.add_op("xor", (x, other), 8)
        graph.set_output("z", x)
        fused = fuse_operator_chains(graph)
        ops = {node.op for node in fused.op_nodes()}
        assert "xorchain5" in ops

    def test_optimized_graph_equivalent(self, mixed_design, rng):
        raw = build_dfg(mixed_design)
        optimized, _ = optimize(raw)
        drive_random_inputs(
            [GraphSimulator(raw), GraphSimulator(optimized)],
            mixed_design, rng, 60,
        )

    def test_shared_value_not_absorbed(self, rng):
        """A mux used by two consumers must survive fusion."""
        graph = DataflowGraph()
        s0 = graph.add_input("s0", 1)
        s1 = graph.add_input("s1", 1)
        a = graph.add_input("a", 8)
        b = graph.add_input("b", 8)
        inner = graph.add_op("mux", (s1, a, b), 8)
        outer = graph.add_op("mux", (s0, a, inner), 8)
        graph.set_output("z", outer)
        graph.set_output("w", inner)  # second consumer
        fused = fuse_operator_chains(graph)
        design_inputs = {"s0": 1, "s1": 1, "a": 8, "b": 8}

        class FakeDesign:
            inputs = design_inputs
            outputs = ["z", "w"]

        drive_random_inputs(
            [GraphSimulator(graph), GraphSimulator(fused)],
            FakeDesign, rng, 40,
        )


class TestLevelize:
    def test_layers_respect_dependencies(self, mixed_graph):
        lv = levelize(mixed_graph)
        for nid, layer in lv.layer_of.items():
            for operand in mixed_graph.node(nid).operands:
                operand_node = mixed_graph.node(operand)
                if operand_node.is_op:
                    assert lv.layer_of[operand] < layer

    def test_effectual_count_matches_ops(self, mixed_graph):
        lv = levelize(mixed_graph)
        assert lv.effectual_ops == mixed_graph.num_ops

    def test_single_layer_no_identities(self):
        graph = DataflowGraph()
        a = graph.add_input("a", 4)
        b = graph.add_input("b", 4)
        graph.set_output("z", graph.add_op("add", (a, b), 5))
        lv = levelize(graph)
        assert lv.num_layers == 1
        assert lv.identity_ops == 0

    def test_skip_layer_costs_identity(self):
        """A value consumed two layers later needs one identity copy."""
        graph = DataflowGraph()
        a = graph.add_input("a", 4)
        l0 = graph.add_op("not", (a,), 4)          # layer 0
        l1 = graph.add_op("neg", (l0,), 5)         # layer 1
        both = graph.add_op("cat", (l1, l0), 9)    # layer 2 reads l0 again
        graph.set_output("z", both)
        lv = levelize(graph)
        assert lv.num_layers == 3
        # a: consumed at layer 0 only -> 0; l0: farthest consumer layer 2,
        # produced layer 0 -> 1 identity; l1: consumed next layer -> 0.
        assert lv.identity_ops == 1

    def test_identity_ratio(self, mixed_graph):
        lv = levelize(mixed_graph)
        assert lv.identity_ratio == lv.identity_ops / lv.effectual_ops


class TestGraphSimulator:
    def test_register_swap(self, rng):
        """Two-phase commit: r1 <= r2; r2 <= r1 must swap, not duplicate."""
        design = elaborate(parse(
            "circuit T :\n  module T :\n    input clock : Clock\n"
            "    input reset : UInt<1>\n"
            "    output a : UInt<4>\n    output b : UInt<4>\n"
            "    regreset r1 : UInt<4>, clock, reset, UInt<4>(3)\n"
            "    regreset r2 : UInt<4>, clock, reset, UInt<4>(12)\n"
            "    r1 <= r2\n    r2 <= r1\n"
            "    a <= r1\n    b <= r2\n"
        ))
        sim = GraphSimulator(build_dfg(design))
        assert (sim.peek("a"), sim.peek("b")) == (3, 12)
        sim.step()
        assert (sim.peek("a"), sim.peek("b")) == (12, 3)
        sim.step()
        assert (sim.peek("a"), sim.peek("b")) == (3, 12)

    def test_matches_reference_on_alu(self, alu_src, rng):
        design = elaborate(parse(alu_src))
        drive_random_inputs(
            [ReferenceSimulator(design), GraphSimulator(build_dfg(design))],
            design, rng, 80,
        )
