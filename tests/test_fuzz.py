"""Coverage-guided fuzzing tests.

The acceptance bar: a seeded injected-bug mutant (a flipped primop
mask -- one register commit narrowed by a bit) is found by the
coverage-guided fuzzer within a tier-1 budget and minimised to a replay
artifact whose saved repro command reproduces the failure, while the
clean engine matrix stays green on the same stimulus.
"""

import random

import pytest

from repro.designs.registry import compile_named_design
from repro.sim import run_lockstep
from repro.verify.fuzz import (
    CoverageFleet,
    build_buggy_engine,
    fuzz,
    inject_mask_bug,
    load_corpus,
    mutate,
    mutate_bitflip,
    mutate_jitter,
    mutate_splice,
    pick_buggy_commit,
)
from repro.verify.replay import ReplayArtifact, record_seeded, replay

DESIGN = "rocket-1"


# ----------------------------------------------------------------------
# The injected bug: a register commit with its mask narrowed by one bit
# ----------------------------------------------------------------------
class TestInjectedBug:
    def test_inject_mask_bug_narrows_one_commit(self):
        bundle = compile_named_design(DESIGN)
        buggy, index = inject_mask_bug(bundle)
        _, next_slot = bundle.register_commits[index]
        assert buggy.slot_width[next_slot] == bundle.slot_width[next_slot] - 1
        # Everything else is untouched (the bundle is a fresh copy).
        assert sum(
            a != b for a, b in zip(buggy.slot_width, bundle.slot_width)
        ) == 1
        assert bundle.slot_width != buggy.slot_width

    def test_pick_buggy_commit_is_observably_buggy(self):
        """The picked site diverges on outputs, not just internal state."""
        bundle = compile_named_design(DESIGN)
        index = pick_buggy_commit(bundle, design=DESIGN)
        name, engine = build_buggy_engine(DESIGN, lanes=2, index=index)
        assert name == f"buggy-mask{index}"
        artifact = record_seeded(DESIGN, lanes=2, cycles=16, sign=False)
        clean = CoverageFleet(compile_named_design(DESIGN), 2)
        from repro.sim import first_divergence
        from repro.verify.differential import observable_outputs

        traces = run_lockstep(
            {"scalar": clean, name: engine},
            artifact.stimulus(),
            observable_outputs(DESIGN),
            artifact.cycles,
        )
        assert first_divergence(traces, reference="scalar") is not None


# ----------------------------------------------------------------------
# Coverage instrumentation
# ----------------------------------------------------------------------
class TestCoverageFleet:
    def test_features_accumulate_under_stimulus(self):
        fleet = CoverageFleet(compile_named_design(DESIGN), 2)
        fleet.begin_run()
        assert fleet.features() == frozenset()
        artifact = record_seeded(DESIGN, lanes=2, cycles=8, sign=False)
        workload = artifact.stimulus()
        for cycle in range(artifact.cycles):
            workload.apply(fleet, cycle)
            fleet.step()
        features = fleet.features()
        assert features
        kinds = {feature[0] for feature in features}
        assert kinds <= {"reg", "sig"}

    def test_begin_run_resets_accumulated_coverage(self):
        fleet = CoverageFleet(compile_named_design(DESIGN), 1)
        fleet.begin_run()
        fleet.step(4)
        fleet.reset()
        fleet.begin_run()
        assert fleet.features() == frozenset()


# ----------------------------------------------------------------------
# Mutators preserve the artifact's shape
# ----------------------------------------------------------------------
class TestMutators:
    @pytest.fixture()
    def seed_artifact(self):
        return record_seeded(DESIGN, lanes=3, cycles=6, sign=False)

    def _widths(self):
        bundle = compile_named_design(DESIGN)
        return {
            name: bundle.slot_width[slot]
            for name, slot in bundle.input_slots.items()
        }

    def _assert_shape(self, artifact, lanes, cycles, widths):
        assert artifact.lanes == lanes and artifact.cycles == cycles
        for name, rows in artifact.inputs.items():
            assert len(rows) == lanes
            for row in rows:
                assert len(row) == cycles
                assert all(0 <= v < (1 << widths[name]) for v in row)

    @pytest.mark.parametrize("seed", range(5))
    def test_mutate_preserves_dimensions_and_widths(self, seed_artifact, seed):
        widths = self._widths()
        rng = random.Random(seed)
        for _ in range(20):
            child = mutate(seed_artifact, rng, widths)
            self._assert_shape(child, 3, 6, widths)
            # The parent is never mutated in place.
            self._assert_shape(seed_artifact, 3, 6, widths)

    def test_single_lane_splice_keeps_cycle_count(self):
        artifact = record_seeded(DESIGN, lanes=1, cycles=6, sign=False)
        rng = random.Random(7)
        for _ in range(20):
            mutate_splice(artifact, rng)
        self._assert_shape(artifact, 1, 6, self._widths())

    def test_named_mutators_run_in_place(self, seed_artifact):
        widths = self._widths()
        rng = random.Random(1)
        mutate_bitflip(seed_artifact, rng, widths)
        mutate_jitter(seed_artifact, rng)
        self._assert_shape(seed_artifact, 3, 6, widths)


# ----------------------------------------------------------------------
# Corpus persistence
# ----------------------------------------------------------------------
class TestCorpus:
    def test_fuzz_seeds_and_grows_a_corpus(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        result = fuzz(
            "small-1", runs=6, cycles=8, corpus_dir=corpus_dir,
            out_dir=tmp_path / "failures",
        )
        assert result.ok, result.summary()
        saved = load_corpus(corpus_dir, "small-1")
        assert saved, "fuzzing never persisted a corpus entry"
        assert result.corpus_size >= 1

    def test_load_corpus_filters_stale_fingerprints(self, tmp_path):
        artifact = record_seeded("small-1", lanes=1, cycles=4, sign=False)
        artifact.save(tmp_path / "fresh.json")
        stale = ReplayArtifact.from_json(artifact.to_json())
        stale.fingerprint = "0" * 16
        stale.save(tmp_path / "stale.json")
        other = record_seeded("sha3", lanes=1, cycles=4, sign=False)
        other.save(tmp_path / "other.json")
        loaded = load_corpus(tmp_path, "small-1")
        assert [a.fingerprint for a in loaded] == [artifact.fingerprint]

    def test_checked_in_corpus_is_fresh_and_replays_clean(self):
        """The starter corpus under tests/corpus matches the current
        design fingerprints (re-record with repro.experiments replay
        --record after changing a design) and replays divergence-free
        with matching signatures."""
        from pathlib import Path

        corpus_dir = Path(__file__).parent / "corpus"
        paths = sorted(corpus_dir.glob("seed-*.json"))
        assert paths, "starter corpus is missing"
        for path in paths:
            artifact = ReplayArtifact.load(path)
            artifact.check_fingerprint()
            loaded = load_corpus(corpus_dir, artifact.design)
            assert any(a.digest() == artifact.digest() for a in loaded), (
                f"{path.name}: stale fingerprint; re-record this artifact"
            )
            result = replay(artifact)
            assert result.ok, result.summary()

    def test_corpus_replay_is_deterministic(self, tmp_path):
        """Checked-in corpus entries replay to identical traces."""
        artifact = record_seeded("small-1", lanes=2, cycles=8)
        path = artifact.save(tmp_path / "seed.json")
        loaded = ReplayArtifact.load(path)
        first = replay(loaded, keep_traces=True)
        second = replay(loaded, keep_traces=True)
        assert first.ok and second.ok
        assert first.traces == second.traces


# ----------------------------------------------------------------------
# Acceptance: the injected bug is found, minimised, and reproducible
# ----------------------------------------------------------------------
class TestFuzzFindsInjectedBug:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("fuzz-failures")
        result = fuzz(
            DESIGN, runs=24, cycles=12, lanes=2,
            out_dir=out_dir, inject_bug=-1,
        )
        return result

    def test_bug_is_found_within_budget(self, campaign):
        assert not campaign.ok, campaign.summary()
        assert campaign.failure is not None
        assert "buggy-mask" in campaign.failure.divergence.simulator

    def test_failure_is_minimised(self, campaign):
        artifact = campaign.failure.artifact
        assert artifact.lanes == 1
        assert artifact.cycles <= 12

    def test_saved_artifact_reproduces_the_failure(self, campaign):
        path = campaign.failure.path
        assert path is not None and path.exists()
        loaded = ReplayArtifact.load(path)
        assert loaded.meta.get("inject_bug") is not None
        result = replay(loaded)
        assert not result.ok
        assert result.divergence is not None
        assert "buggy-mask" in result.divergence.simulator

    def test_clean_matrix_passes_the_same_stimulus(self, campaign):
        loaded = ReplayArtifact.load(campaign.failure.path)
        loaded.meta.pop("inject_bug", None)
        loaded.meta.pop("engines", None)
        result = replay(loaded, check_signature=False)
        assert result.ok, result.summary()
