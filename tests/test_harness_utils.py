"""Tests for experiment-harness utilities and remaining corners."""

import pytest

from repro.experiments.common import (
    EXTRAPOLATION,
    extrapolation_for,
    format_table,
    human_bytes,
    linear_extrapolation_for,
    paper_cycles,
    paper_ops,
    profile_for,
)
from repro.workloads.stimulus import PAPER_SIM_CYCLES_K


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [(1, 2.5), (33, 0.001)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert set(lines[2]) <= {"-", " "}

    def test_format_table_large_and_small_floats(self):
        text = format_table(["x"], [(123456.0,), (0.0001,), (0.0,)])
        assert "1.23e+05" in text
        assert "0.0001" in text

    def test_human_bytes(self):
        assert human_bytes(512) == "512.00 B"
        assert human_bytes(2048) == "2.00 KB"
        assert "MB" in human_bytes(5 * 1024 * 1024)
        assert "GB" in human_bytes(3 * 1024 ** 3)


class TestScaling:
    def test_paper_ops_power_laws(self):
        """Table 1 anchors: rocket-1 60K, rocket-8 ~139K; small-8 ~281K."""
        assert paper_ops("rocket-1") == pytest.approx(60_000)
        assert paper_ops("rocket-8") == pytest.approx(139_000, rel=0.02)
        assert paper_ops("small-8") == pytest.approx(281_000, rel=0.02)
        assert paper_ops("gemmini-8") is None

    def test_extrapolation_positive(self):
        assert extrapolation_for("rocket-1") > 1
        assert extrapolation_for("gemmini-8") == EXTRAPOLATION

    def test_linear_extrapolation_exceeds_sublinear_at_scale(self):
        assert (
            linear_extrapolation_for("rocket-8")
            > extrapolation_for("rocket-8")
        )

    def test_paper_cycles_table3(self):
        assert paper_cycles("rocket-8") == PAPER_SIM_CYCLES_K["rocket"] * 1000
        assert paper_cycles("gemmini-16") == PAPER_SIM_CYCLES_K["gemmini-16"] * 1000
        assert paper_cycles("sha3") == PAPER_SIM_CYCLES_K["sha3"] * 1000

    def test_profiles_cached(self):
        assert profile_for("rocket-1", "PSU") is profile_for("rocket-1", "PSU")


class TestPerfResultApi:
    def test_speedup_over(self):
        from repro.experiments.common import perf_for

        psu = perf_for("rocket-1", "PSU", "intel-xeon")
        verilator = perf_for("rocket-1", "Verilator", "intel-xeon")
        speedup = psu.speedup_over(verilator)
        assert speedup == pytest.approx(
            verilator.sim_time_s / psu.sim_time_s
        )

    def test_mpki_definition(self):
        from repro.experiments.common import perf_for

        result = perf_for("rocket-8", "SU", "intel-xeon")
        assert result.l1i_mpki == pytest.approx(
            1000 * result.l1i_misses / result.dyn_instr
        )


class TestCliCoverage:
    def test_every_renderer_is_registered(self):
        from repro.experiments.__main__ import RENDERERS

        expected = {
            "fig7", "fig8", "table1", "table4", "table5", "table6",
            "fig15", "fig16", "fig17", "table7", "fig18", "fig19",
            "fig20", "fig21",
        }
        assert expected <= set(RENDERERS)

    def test_name_normalisation(self):
        from repro.experiments.__main__ import _normalise

        assert _normalise("Figure7") == "fig7"
        assert _normalise("ablation_repcut") == "ablation-repcut"

    def test_help(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--help"]) == 0
        assert "available" in capsys.readouterr().out


class TestOpcodesAndProfilesEdges:
    def test_kernel_source_attached_to_profile(self):
        profile = profile_for("rocket-1", "SU")
        assert profile.source is not None
        assert profile.source.kernel == "SU"

    def test_o0_profiles_cost_more(self):
        o3 = profile_for("rocket-1", "PSU", "O3")
        o0 = profile_for("rocket-1", "PSU", "O0")
        assert o0.dyn_instr > 3 * o3.dyn_instr
        assert o0.ilp < o3.ilp

    def test_engine_profiles_have_distinct_kernels(self):
        names = {
            profile_for("rocket-1", engine).kernel
            for engine in ("PSU", "TI", "Verilator", "ESSENT")
        }
        assert names == {"PSU", "TI", "Verilator", "ESSENT"}
