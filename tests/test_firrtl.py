"""Tests for the FIRRTL frontend: lexer/parser, primops, elaboration."""

import pytest

from repro.firrtl import (
    ElaborationError,
    FirrtlSyntaxError,
    ReferenceSimulator,
    elaborate,
    parse,
    parse_expr_text,
)
from repro.firrtl.ast import Literal, Mux, PrimExpr, Ref, ValidIf
from repro.firrtl.primops import PRIM_OPS, get_op, mask, to_signed


class TestExpressionParsing:
    def test_literal(self):
        expr = parse_expr_text("UInt<8>(42)")
        assert isinstance(expr, Literal)
        assert expr.value == 42 and expr.width == 8

    def test_literal_too_wide_rejected(self):
        with pytest.raises(ValueError):
            parse_expr_text("UInt<3>(9)")

    def test_ref(self):
        assert parse_expr_text("foo") == Ref("foo")

    def test_dotted_ref(self):
        assert parse_expr_text("adder.sum") == Ref("adder.sum")

    def test_primop_args_and_params(self):
        expr = parse_expr_text("bits(x, 7, 0)")
        assert isinstance(expr, PrimExpr)
        assert expr.op == "bits"
        assert expr.args == (Ref("x"),)
        assert expr.params == (7, 0)

    def test_nested(self):
        expr = parse_expr_text("add(mul(a, b), UInt<4>(3))")
        assert isinstance(expr, PrimExpr) and expr.op == "add"
        assert isinstance(expr.args[0], PrimExpr)

    def test_mux(self):
        expr = parse_expr_text("mux(sel, a, b)")
        assert isinstance(expr, Mux)

    def test_validif(self):
        expr = parse_expr_text("validif(c, v)")
        assert isinstance(expr, ValidIf)

    def test_wrong_arity_rejected(self):
        with pytest.raises(FirrtlSyntaxError):
            parse_expr_text("add(a)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FirrtlSyntaxError):
            parse_expr_text("a b")

    def test_bare_integer_rejected(self):
        with pytest.raises(FirrtlSyntaxError):
            parse_expr_text("42")


class TestCircuitParsing:
    def test_minimal_circuit(self, counter_src):
        circuit = parse(counter_src)
        assert circuit.name == "Counter"
        assert circuit.top.name == "Counter"

    def test_ports_parsed(self, counter_src):
        top = parse(counter_src).top
        names = top.port_names()
        assert "clock" in names and "count" in names
        assert top.port("clock").is_clock

    def test_comments_ignored(self):
        circuit = parse(
            "circuit C : ; a comment\n"
            "  module C : ; another\n"
            "    input x : UInt<1> ; port\n"
            "    output y : UInt<1>\n"
            "    y <= x ; connect\n"
        )
        assert circuit.top.port_names() == ["x", "y"]

    def test_statement_before_circuit_rejected(self):
        with pytest.raises(FirrtlSyntaxError):
            parse("  input x : UInt<1>\n")

    def test_unknown_statement_rejected(self):
        with pytest.raises(FirrtlSyntaxError):
            parse("circuit C :\n  module C :\n    banana split\n")

    def test_missing_top_module_rejected(self):
        with pytest.raises(KeyError):
            parse("circuit Top :\n  module Other :\n    input x : UInt<1>\n")

    def test_inst_statement(self):
        circuit = parse(
            "circuit T :\n"
            "  module Sub :\n    input i : UInt<4>\n    output o : UInt<4>\n"
            "    o <= i\n"
            "  module T :\n    input a : UInt<4>\n    output z : UInt<4>\n"
            "    inst s of Sub\n    s.i <= a\n    z <= s.o\n"
        )
        assert len(circuit.modules) == 2


class TestPrimopSemantics:
    def test_mask(self):
        assert mask(0x1FF, 8) == 0xFF
        assert mask(-1, 4) == 0xF
        assert mask(5, 0) == 0

    def test_to_signed(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x7F, 8) == 127

    @pytest.mark.parametrize(
        "op,args,widths,params,expected",
        [
            ("add", [200, 100], [8, 8], [], 300),
            ("sub", [1, 2], [8, 8], [], (1 - 2) & 0x1FF),
            ("mul", [15, 15], [4, 4], [], 225),
            ("div", [7, 2], [4, 4], [], 3),
            ("div", [7, 0], [4, 4], [], 0),
            ("rem", [7, 3], [4, 4], [], 1),
            ("lt", [1, 2], [4, 4], [], 1),
            ("eq", [5, 5], [4, 4], [], 1),
            ("and", [0b1100, 0b1010], [4, 4], [], 0b1000),
            ("xor", [0b1100, 0b1010], [4, 4], [], 0b0110),
            ("cat", [0b11, 0b01], [2, 2], [], 0b1101),
            ("not", [0b1010], [4], [], 0b0101),
            ("neg", [1], [4], [], 0b11111),
            ("andr", [0xF], [4], [], 1),
            ("andr", [0xE], [4], [], 0),
            ("orr", [0], [4], [], 0),
            ("xorr", [0b0111], [4], [], 1),
            ("bits", [0b11010, 3, 1], [5], [3, 1], 0b101),
            ("shl", [0b11, 0], [2], [2], 0b1100),
            ("shr", [0b1100, 0], [4], [2], 0b11),
            ("head", [0b1011, 0], [4], [2], 0b10),
            ("tail", [0b1011, 0], [4], [1], 0b011),
            ("pad", [5, 0], [3], [8], 5),
        ],
    )
    def test_evaluates(self, op, args, widths, params, expected):
        prim = get_op(op)
        out_width = prim.width_rule(widths[: prim.num_args], params)
        value = prim.evaluate(args[: prim.num_args], widths[: prim.num_args], params, out_width)
        assert value == expected

    def test_width_rules(self):
        assert get_op("add").width_rule([8, 4], []) == 9
        assert get_op("mul").width_rule([8, 4], []) == 12
        assert get_op("cat").width_rule([3, 5], []) == 8
        assert get_op("bits").width_rule([8], [5, 2]) == 4
        assert get_op("eq").width_rule([9, 9], []) == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            get_op("frobnicate")

    def test_all_registered_ops_have_positive_arity(self):
        for name, op in PRIM_OPS.items():
            assert op.num_args >= 1, name


class TestElaboration:
    def test_instance_flattening(self):
        design = elaborate(parse(
            "circuit T :\n"
            "  module Sub :\n    input i : UInt<4>\n    output o : UInt<4>\n"
            "    o <= not(i)\n"
            "  module T :\n    input a : UInt<4>\n    output z : UInt<4>\n"
            "    inst s of Sub\n    s.i <= a\n    z <= s.o\n"
        ))
        assert "s.o" in design.definitions
        assert design.width_of("s.o") == 4

    def test_undriven_wire_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate(parse(
                "circuit T :\n  module T :\n"
                "    input a : UInt<1>\n    output z : UInt<1>\n"
                "    wire w : UInt<1>\n    z <= a\n"
            ))

    def test_undriven_register_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate(parse(
                "circuit T :\n  module T :\n    input clock : Clock\n"
                "    input a : UInt<1>\n    output z : UInt<1>\n"
                "    reg r : UInt<1>, clock\n    z <= a\n"
            ))

    def test_width_inference_through_nodes(self):
        design = elaborate(parse(
            "circuit T :\n  module T :\n"
            "    input a : UInt<8>\n    input b : UInt<8>\n"
            "    output z : UInt<20>\n"
            "    node p = mul(a, b)\n    node q = add(p, p)\n"
            "    z <= q\n"
        ))
        assert design.width_of("p") == 16
        assert design.width_of("q") == 17

    def test_clock_alias_resolution(self):
        design = elaborate(parse(
            "circuit T :\n"
            "  module Sub :\n    input clock : Clock\n    input i : UInt<2>\n"
            "    output o : UInt<2>\n    reg r : UInt<2>, clock\n"
            "    r <= i\n    o <= r\n"
            "  module T :\n    input clock : Clock\n    input a : UInt<2>\n"
            "    output z : UInt<2>\n    inst s of Sub\n"
            "    s.clock <= clock\n    s.i <= a\n    z <= s.o\n"
        ))
        assert design.registers["s.r"].clock == "clock"

    def test_combinational_cycle_detected(self):
        with pytest.raises(ElaborationError):
            elaborate(parse(
                "circuit T :\n  module T :\n"
                "    input a : UInt<1>\n    output z : UInt<1>\n"
                "    wire x : UInt<1>\n    wire y : UInt<1>\n"
                "    x <= and(y, a)\n    y <= or(x, a)\n    z <= x\n"
            ))

    def test_topo_definitions_order(self, mixed_design):
        order = mixed_design.topo_definitions()
        position = {name: i for i, name in enumerate(order)}
        # 's' must come before 'sel' which reads it.
        assert position["s"] < position["sel"]


class TestReferenceSimulator:
    def test_counter_counts(self, counter_src):
        sim = ReferenceSimulator(elaborate(parse(counter_src)))
        sim.poke("enable", 1)
        values = []
        for _ in range(5):
            values.append(sim.peek("count"))
            sim.step()
        assert values == [0, 1, 2, 3, 4]

    def test_enable_gates_counting(self, counter_src):
        sim = ReferenceSimulator(elaborate(parse(counter_src)))
        sim.poke("enable", 0)
        sim.step(3)
        assert sim.peek("count") == 0

    def test_synchronous_reset(self, counter_src):
        sim = ReferenceSimulator(elaborate(parse(counter_src)))
        sim.poke("enable", 1)
        sim.step(3)
        sim.poke("reset", 1)
        sim.step()
        assert sim.peek("count") == 0

    def test_poke_masks_to_width(self, counter_src):
        sim = ReferenceSimulator(elaborate(parse(counter_src)))
        sim.poke("enable", 0xFF)  # 1-bit input
        assert sim.peek("enable") == 1

    def test_unknown_input_rejected(self, counter_src):
        sim = ReferenceSimulator(elaborate(parse(counter_src)))
        with pytest.raises(KeyError):
            sim.poke("nonexistent", 1)

    def test_reset_method_restores_init(self, counter_src):
        sim = ReferenceSimulator(elaborate(parse(counter_src)))
        sim.poke("enable", 1)
        sim.step(4)
        sim.reset()
        assert sim.peek("count") == 0 and sim.cycle == 0

    def test_run_reference_helper(self, counter_src):
        from repro.firrtl import run_reference

        design = elaborate(parse(counter_src))
        trace = run_reference(
            design, stimulus={"enable": [1] * 4}, cycles=4, watch=["count"]
        )
        assert trace["count"] == [0, 1, 2, 3]
