"""Seeded randomized differential fuzz suite (repro.verify.differential).

Every registry design runs random per-lane stimulus through the engine
matrix -- scalar reference, batch backends, sharded executors and
partitioner strategies -- asserting bit-exact observed traces.  Seeds
are deterministic; a failure reprints the one-line repro CLI command.

Budget knobs (the nightly CI fuzz job raises them):

* ``REPRO_FUZZ_SEEDS``  -- seeds per design (default 3);
* ``REPRO_FUZZ_BASE_SEED`` -- first seed (default 0; the nightly job
  varies it per run so successive nights explore new stimulus, while
  failing seeds stay pinned in the repro command);
* ``REPRO_FUZZ_CYCLES`` -- cycles per run (default: per-test, 4-8);
* ``REPRO_FUZZ_FULL``   -- 1 = full engine matrix everywhere, including
  the refined partitioner on the heavy designs and the process
  executor (tier-1 keeps the expensive arms on the small designs);
* ``REPRO_FUZZ_REPRO_FILE`` -- append failing repro commands here (the
  nightly job uploads the file as an artifact).
"""

import os
from pathlib import Path

import pytest

from repro.designs.registry import standard_designs
from repro.sim import FleetDiff, TraceDiff, first_divergence
from repro.verify import engine_matrix, run_differential_suite
from repro.verify.differential import (
    DifferentialResult,
    ScalarFleet,
    _spec,
)

FUZZ_SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", "3"))
FUZZ_BASE_SEED = int(os.environ.get("REPRO_FUZZ_BASE_SEED", "0"))
FUZZ_CYCLES = int(os.environ.get("REPRO_FUZZ_CYCLES", "0"))
FUZZ_FULL = os.environ.get("REPRO_FUZZ_FULL", "") not in ("", "0")
REPRO_FILE = os.environ.get("REPRO_FUZZ_REPRO_FILE", "")

#: Small designs take the wide matrix (every batch backend + both
#: partitioner strategies) in tier-1; the heavy designs keep the
#: expensive refined-FM partitioning for the nightly budget.
SMALL_DESIGNS = ("rocket-1", "small-1", "gemmini-8", "sha3")
HEAVY_DESIGNS = tuple(
    design for design in standard_designs() if design not in SMALL_DESIGNS
)

#: Cheap trimmed matrix for the heavy designs: one engine per kernel
#: family (the scalar reference, the batched plane, the sharded RUM
#: exchange) still cross-checks every execution layer.
TRIMMED_MATRIX = [
    _spec("scalar", "scalar", kernel="PSU"),
    _spec("batch-auto", "batch", backend="auto", kernel="PSU"),
    _spec("shard-serial-greedy", "shard", executor="serial",
          partitioner="greedy", kernel="PSU"),
]


def _seeds():
    return list(range(FUZZ_BASE_SEED, FUZZ_BASE_SEED + FUZZ_SEEDS))


def _cycles(default):
    return FUZZ_CYCLES or default


def _record_failure(result: DifferentialResult) -> None:
    if REPRO_FILE:
        path = Path(REPRO_FILE)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as handle:
            handle.write(result.repro_command + "\n")


def _check(results) -> None:
    for result in results:
        if not result.ok:
            _record_failure(result)
            pytest.fail(result.summary())


class TestDifferentialFuzz:
    @pytest.mark.parametrize("design", SMALL_DESIGNS)
    def test_small_designs_wide_matrix(self, design):
        engines = engine_matrix(design, include_process=FUZZ_FULL)
        _check(
            run_differential_suite(
                design, _seeds(), cycles=_cycles(8), engines=engines
            )
        )

    @pytest.mark.parametrize("design", HEAVY_DESIGNS)
    def test_heavy_designs_trimmed_matrix(self, design):
        engines = (
            engine_matrix(design, include_process=True, full=True)
            if FUZZ_FULL
            else TRIMMED_MATRIX
        )
        _check(
            run_differential_suite(
                design, _seeds(), cycles=_cycles(4), engines=engines
            )
        )

    def test_engine_list_without_scalar_reference(self):
        """A custom matrix with no scalar fleet diffs against its first
        member instead of crashing."""
        engines = [
            _spec("batch-auto", "batch", backend="auto", kernel="PSU"),
            _spec("shard-serial-greedy", "shard", executor="serial",
                  partitioner="greedy", kernel="PSU"),
        ]
        results = run_differential_suite(
            "rocket-1", [0], cycles=4, engines=engines
        )
        assert results[0].ok
        with pytest.raises(ValueError):
            run_differential_suite("rocket-1", [0], engines=[])

    def test_custom_engine_list_round_trips_via_repro_command(self):
        """A run over a hand-built matrix records it as --engines, and
        spec_from_name rebuilds exactly those specs."""
        from repro.verify import spec_from_name

        result = run_differential_suite(
            "gemmini-8", [0], cycles=4, engines=TRIMMED_MATRIX
        )[0]
        assert result.repro_command.endswith(
            "--engines scalar,batch-auto,shard-serial-greedy"
        )
        rebuilt = [spec_from_name(name) for name in result.engines]
        assert rebuilt == TRIMMED_MATRIX
        with pytest.raises(KeyError):
            spec_from_name("warp-drive")

    def test_process_executor_arm(self):
        """The process executor joins the matrix for at least one design
        in tier-1 (every design under the nightly budget)."""
        engines = engine_matrix("rocket-1", include_process=True)
        assert any("process" in spec.name for spec in engines)
        _check(
            run_differential_suite(
                "rocket-1", [0], cycles=_cycles(8), engines=engines
            )
        )


class TestScalarFleet:
    def test_batched_surface(self, counter_src):
        fleet = ScalarFleet(counter_src, lanes=3)
        fleet.poke("enable", [1, 0, 1])
        fleet.step(2)
        assert fleet.peek("count") == [2, 0, 2]
        fleet.poke_lane("enable", 1, 1)
        fleet.step()
        assert fleet.peek("count") == [3, 1, 3]
        assert fleet.peek_lane("count", 2) == 3
        fleet.reset()
        assert fleet.cycle == 0 and fleet.peek("count") == [0, 0, 0]

    def test_lane_vector_length_validated(self, counter_src):
        fleet = ScalarFleet(counter_src, lanes=2)
        with pytest.raises(ValueError):
            fleet.poke("enable", [1, 0, 1])

    def test_signal_surface(self, counter_src):
        fleet = ScalarFleet(counter_src, lanes=2)
        assert "count" in fleet.signals
        assert fleet.signal_widths["count"] == 8


class TestDiagnostics:
    def _failed_result(self):
        return DifferentialResult(
            design="rocket-1",
            seed=7,
            lanes=2,
            cycles=16,
            engines=["scalar", "batch-u64"],
            watch=["out"],
            divergence=FleetDiff(
                "batch-u64", "scalar", TraceDiff(3, "out", 1, 2, lane=1)
            ),
        )

    def test_summary_names_signal_cycle_lane_engine(self):
        summary = self._failed_result().summary()
        assert "'out'" in summary
        assert "cycle 3" in summary
        assert "lane 1" in summary
        assert "'batch-u64'" in summary and "'scalar'" in summary

    def test_failure_reprints_repro_cli(self):
        result = self._failed_result()
        assert (
            "python -m repro.experiments differential "
            "--design rocket-1 --seed 7" in result.repro_command
        )
        assert result.repro_command in result.summary()

    def test_repro_command_records_process_arm(self):
        result = self._failed_result()
        result.include_process = True
        assert result.repro_command.endswith("--process")

    def test_first_divergence_picks_earliest(self):
        traces = {
            "scalar": {"out": [0, 1, 2, 3]},
            "late": {"out": [[0, 1, 2, 9], [0, 1, 2, 3]]},
            "early": {"out": [[0, 9, 2, 3], [0, 1, 2, 3]]},
        }
        diff = first_divergence(traces, reference="scalar")
        assert diff is not None
        assert diff.simulator == "early"
        assert diff.diff.cycle == 1 and diff.diff.signal == "out"
        assert diff.diff.lane == 0  # scalar reference broadcasts onto lane 0

    def test_fleet_agreement_returns_none(self):
        traces = {
            "scalar": {"out": [0, 1]},
            "batch": {"out": [[0, 1], [5, 6]]},  # lane 1 differs, lane 0 agrees
        }
        assert first_divergence(traces, reference="scalar") is None

    def test_cli_smoke(self, capsys):
        from repro.verify.differential import cli

        assert cli(["--design", "gemmini-8", "--seed", "1", "--cycles", "4"]) == 0
        out = capsys.readouterr().out
        assert "differential OK: gemmini-8 seed=1" in out

    def test_repro_file_recording(self, tmp_path, monkeypatch):
        import sys

        target = tmp_path / "artifacts" / "failing.txt"
        monkeypatch.setattr(sys.modules[__name__], "REPRO_FILE", str(target))
        result = self._failed_result()
        _record_failure(result)
        _record_failure(result)
        lines = target.read_text().splitlines()
        assert lines == [result.repro_command] * 2
