"""End-to-end integration tests: FIRRTL text to paper figures."""

import random

import pytest

from repro.baselines import EssentBackend, VerilatorBackend
from repro.designs import get_design, library
from repro.firrtl import ReferenceSimulator, elaborate, parse
from repro.repcut import RepCutSimulator
from repro.sim import FrontendServer, Simulator, Testbench, VcdWriter
from repro.workloads import workload_for

from conftest import drive_random_inputs


class TestFullPipeline:
    def test_firrtl_to_simulation_all_engines(self, rng):
        """One design through every engine in this repository."""
        src = library.alu()
        design = elaborate(parse(src))
        engines = [
            ReferenceSimulator(design),
            Simulator(src, kernel="RU"),
            Simulator(src, kernel="PSU"),
            Simulator(src, kernel="TI"),
            VerilatorBackend(src),
            EssentBackend(src),
            RepCutSimulator(src, num_partitions=2),
        ]
        drive_random_inputs(engines, design, rng, 30)

    def test_core_with_dmi_and_waveform(self, tmp_path):
        """A core SoC: run dhrystone, poke over DMI, dump a waveform."""
        simulator = Simulator(get_design("rocket-1"), preserve_signals=True)
        workload = workload_for("rocket-1")
        server = FrontendServer(simulator)
        writer = VcdWriter(simulator, {"out": 32, "dmi_resp_valid": 1})

        server.write(2, 0xCAFE)
        read = server.read(2)
        for cycle in range(40):
            workload.drivers["reset"](cycle)
            simulator.poke("reset", 1 if cycle < 2 else 0)
            simulator.poke("instr", workload.drivers["instr"](cycle))
            simulator.poke("mem_rdata", workload.drivers["mem_rdata"](cycle))
            server.tick()
            writer.sample()
            simulator.step()
        assert read.complete and read.response == 0xCAFE
        path = tmp_path / "core.vcd"
        writer.save(path)
        assert path.stat().st_size > 100

    def test_oim_json_flow(self, tmp_path, mixed_bundle):
        """Figure 14's flow: OIM to JSON, reload, simulate."""
        from repro.oim import lower_oim_fast, occupancy_rules
        from repro.tensor import load, save

        lowered = lower_oim_fast(mixed_bundle, "swizzled")
        path = tmp_path / "oim.json"
        save(lowered, path)
        reloaded = load(path)
        rules = occupancy_rules(mixed_bundle, "swizzled")
        tensor = reloaded.to_tensor(occupancy_rules=rules)
        assert tensor.occupancy == sum(
            len(record.operands)
            for layer in mixed_bundle.layers
            for record in layer
        )

    def test_experiment_cli_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "identity" in captured.out
        assert main(["bogus"]) == 1

    def test_long_run_stability(self):
        """A few thousand cycles of a real design: no drift, no crash."""
        simulator = Simulator(library.lfsr(16))
        seen = set()
        for _ in range(2000):
            seen.add(simulator.peek("value"))
            simulator.step()
        # Maximal-ish LFSR: many distinct states, never the all-zero state.
        assert len(seen) > 1000
        assert 0 not in seen

    def test_testbench_against_kernel_pair(self, rng):
        src = library.gcd()
        stimulus = {
            "load": [1, 0, 0, 0, 0, 0, 0, 0] * 5,
            "a": [rng.randrange(1, 1 << 16) for _ in range(40)],
            "b": [rng.randrange(1, 1 << 16) for _ in range(40)],
        }
        from repro.sim import compare_traces, run_lockstep

        traces = run_lockstep(
            {"ru": Simulator(src, kernel="RU"), "ti": Simulator(src, kernel="TI")},
            stimulus, ["result", "done"], 40,
        )
        assert compare_traces(traces["ru"], traces["ti"]) == []
