"""Lane-rank testbench & waveform tests.

Covers the verification-stack tentpole: per-lane VCDs bit-identical to
independent scalar runs (the B=8 acceptance test), lane-filtered
waveform capture, lane-targeted testbench stimulus, mixed-rank
``run_lockstep``/``compare_traces`` fleets, and VCD byte-identity
across a ``snapshot()``/``restore()`` boundary on both batched engines.
"""

import pytest

from repro.batch import BatchSimulator
from repro.designs.registry import compile_named_design, compiled_graph
from repro.shard import ShardedBatchSimulator
from repro.sim import (
    Simulator,
    Testbench,
    VcdWriter,
    compare_traces,
    extract_lane,
    first_divergence,
    lane_count,
    run_lockstep,
    trace_lanes,
)
from repro.workloads.stimulus import batched_workload_for


def outputs_of(design_name):
    bundle = compile_named_design(design_name)
    return sorted(set(bundle.output_slots) & set(bundle.signal_slots))


def output_widths(design_name):
    bundle = compile_named_design(design_name)
    return {
        name: bundle.slot_width[bundle.signal_slots[name]]
        for name in outputs_of(design_name)
    }


# ----------------------------------------------------------------------
# Acceptance: B=8 per-lane VCDs == 8 scalar VCDs on the same seeds
# ----------------------------------------------------------------------
class TestPerLaneVcdBitIdentity:
    DESIGN = "rocket-1"
    LANES = 8
    CYCLES = 12

    def _run_pair(self):
        bundle = compile_named_design(self.DESIGN)
        signals = output_widths(self.DESIGN)
        workload = batched_workload_for(self.DESIGN, self.LANES)
        batch = BatchSimulator(bundle, lanes=self.LANES)
        scalars = [Simulator(bundle) for _ in range(self.LANES)]
        batch_writer = VcdWriter(batch, signals)
        scalar_writers = [VcdWriter(sim, signals) for sim in scalars]
        for cycle in range(self.CYCLES):
            workload.apply(batch, cycle)
            for lane, sim in enumerate(scalars):
                workload.lane(lane).apply(sim, cycle)
            batch_writer.sample()
            for writer in scalar_writers:
                writer.sample()
            batch.step()
            for sim in scalars:
                sim.step()
        return batch_writer, scalar_writers

    def test_documents_bit_identical(self):
        batch_writer, scalar_writers = self._run_pair()
        for lane in range(self.LANES):
            assert batch_writer.document(lane=lane) == scalar_writers[lane].document(), (
                f"lane {lane} VCD differs from its scalar run"
            )

    def test_save_lanes_files_bit_identical(self, tmp_path):
        batch_writer, scalar_writers = self._run_pair()
        written = batch_writer.save_lanes(tmp_path / "wave_lane{lane}.vcd")
        assert sorted(written) == list(range(self.LANES))
        for lane, path in written.items():
            assert path.read_bytes() == scalar_writers[lane].document().encode()


class TestLaneVcdWriter:
    def test_lane_filter_records_selected_lanes_only(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=4)
        batch.poke("enable", [1, 0, 1, 1])
        writer = VcdWriter(batch, {"count": 8}, lanes=[1, 3])
        writer.run(3)
        assert writer.lanes == [1, 3]
        assert "b1" in writer.document(lane=3)
        with pytest.raises(ValueError, match="not recorded"):
            writer.document(lane=0)

    def test_merged_document_has_lane_scopes_and_unique_idents(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=3)
        batch.poke("enable", 1)
        writer = VcdWriter(batch, {"count": 8, "enable": 1})
        writer.run(2)
        document = writer.document()
        header = document.split("$enddefinitions")[0]
        for lane in range(3):
            assert f"$scope module lane{lane} $end" in header
        idents = [
            line.split()[3] for line in header.splitlines()
            if line.startswith("$var")
        ]
        assert len(idents) == len(set(idents)) == 6  # 2 signals x 3 lanes

    def test_lane_bounds_checked(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        with pytest.raises(ValueError):
            VcdWriter(batch, {"count": 8}, lanes=[2])
        with pytest.raises(ValueError):
            VcdWriter(batch, {"count": 8}, lanes=[0, 0])

    def test_scalar_writer_rejects_lane_filter(self, counter_src):
        simulator = Simulator(counter_src, preserve_signals=True)
        VcdWriter(simulator, {"count": 8}, lanes=[0])  # lane 0 is fine
        with pytest.raises(ValueError):
            VcdWriter(simulator, {"count": 8}, lanes=[1])
        writer = VcdWriter(simulator, {"count": 8})
        with pytest.raises(ValueError):
            writer.save_lanes("x_{lane}.vcd")

    def test_scalar_writer_is_its_own_lane_zero(self, counter_src):
        """Generic per-lane dumping code works on rank-0 fleet members:
        document(lane=0) is the whole document."""
        simulator = Simulator(counter_src, preserve_signals=True)
        simulator.poke("enable", 1)
        writer = VcdWriter(simulator, {"count": 8})
        writer.run(3)
        assert writer.document(lane=0) == writer.document()
        with pytest.raises(ValueError, match="lane 1"):
            writer.document(lane=1)

    def test_sharded_default_signals_from_signal_widths(self):
        graph = compiled_graph("rocket-1")
        with ShardedBatchSimulator(graph, lanes=2, num_partitions=2) as shard:
            writer = VcdWriter(shard)
            assert writer.signals  # defaults resolved without a bundle
            writer.run(2)
            assert "$scope module lane1 $end" in writer.document()


# ----------------------------------------------------------------------
# Satellite: VCD across a snapshot()/restore() boundary
# ----------------------------------------------------------------------
class TestSnapshotRestoreVcd:
    DESIGN = "gemmini-8"
    LANES = 2
    CYCLES = 10
    SPLIT = 5

    def _drive(self, sim, writer, workload, start, stop):
        for cycle in range(start, stop):
            workload.apply(sim, cycle)
            writer.sample()
            sim.step()

    def _straight_and_interrupted(self, make_sim):
        signals = output_widths(self.DESIGN)
        workload = batched_workload_for(self.DESIGN, self.LANES)

        straight = make_sim()
        straight_writer = VcdWriter(straight, signals)
        self._drive(straight, straight_writer, workload, 0, self.CYCLES)

        interrupted = make_sim()
        writer = VcdWriter(interrupted, signals)
        self._drive(interrupted, writer, workload, 0, self.SPLIT)
        checkpoint = interrupted.snapshot()
        # Scribble past the checkpoint (no sampling), then rewind.
        interrupted.poke("act_in", [3] * self.LANES)
        interrupted.step(3)
        interrupted.restore(checkpoint)
        self._drive(interrupted, writer, workload, self.SPLIT, self.CYCLES)

        for sim in (straight, interrupted):
            close = getattr(sim, "close", None)
            if close:
                close()
        return straight_writer, writer

    def test_batch_vcd_byte_identical_across_restore(self):
        straight, interrupted = self._straight_and_interrupted(
            lambda: BatchSimulator(
                compile_named_design(self.DESIGN), lanes=self.LANES
            )
        )
        assert interrupted.document() == straight.document()
        for lane in range(self.LANES):
            assert interrupted.document(lane=lane) == straight.document(lane=lane)

    def test_sharded_vcd_byte_identical_across_restore(self):
        graph = compiled_graph(self.DESIGN)
        straight, interrupted = self._straight_and_interrupted(
            lambda: ShardedBatchSimulator(
                graph, lanes=self.LANES, num_partitions=2
            )
        )
        assert interrupted.document() == straight.document()


# ----------------------------------------------------------------------
# Lane-aware Testbench
# ----------------------------------------------------------------------
class TestLaneTestbench:
    def test_batched_trace_is_lane_major(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        bench = Testbench(batch, watch=["count"])
        bench.drive("enable", lambda cycle: [1, 0])
        trace = bench.run(4)
        assert trace_lanes(trace) == 2
        assert trace["count"] == [[0, 1, 2, 3], [0, 0, 0, 0]]
        assert bench.lane_trace(1)["count"] == [0, 0, 0, 0]

    def test_lane_targeted_drive(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=3)
        bench = Testbench(batch, watch=["count"])
        bench.drive("enable", lambda cycle: 1)        # broadcast
        bench.drive("enable", [0, 0, 0, 1], lane=2)   # one lane overridden
        trace = bench.run(4)
        assert trace["count"][0] == [0, 1, 2, 3]
        assert trace["count"][2] == [0, 0, 0, 0]  # enabled only at cycle 3

    def test_lane_drive_validated(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        bench = Testbench(batch, watch=["count"])
        with pytest.raises(ValueError):
            bench.drive("enable", [1], lane=5)
        scalar_bench = Testbench(Simulator(counter_src), watch=["count"])
        scalar_bench.drive("enable", [1, 1], lane=0)  # lane 0 == the sim
        with pytest.raises(ValueError):
            scalar_bench.drive("enable", [1], lane=1)

    def test_workload_stimulus_object(self):
        design = "gemmini-8"
        lanes = 2
        workload = batched_workload_for(design, lanes)
        batch = BatchSimulator(compile_named_design(design), lanes=lanes)
        bench = Testbench(batch, stimulus=workload, watch=outputs_of(design))
        trace = bench.run(6)
        assert trace_lanes(trace) == lanes

    def test_lane_count_detection(self, counter_src):
        assert lane_count(Simulator(counter_src)) is None
        assert lane_count(BatchSimulator(counter_src, lanes=4)) == 4


class TestWorkloadLaneSurface:
    def test_scalar_workload_is_its_own_lane_zero(self):
        from repro.workloads.stimulus import workload_for

        workload = workload_for("rocket-1")
        assert workload.lane_count == 1
        assert workload.lane(0) is workload
        with pytest.raises(IndexError):
            workload.lane(1)

    def test_subset_matches_original_lanes(self):
        design = "gemmini-8"
        full = batched_workload_for(design, 4)
        subset = full.subset([1, 3])
        assert subset.lane_count == 2
        assert subset.lane(0) is full.lane(1)
        batch = BatchSimulator(compile_named_design(design), lanes=2)
        wide = BatchSimulator(compile_named_design(design), lanes=4)
        watch = outputs_of(design)
        for cycle in range(5):
            subset.apply(batch, cycle)
            full.apply(wide, cycle)
            for name in watch:
                narrow = batch.peek(name)
                row = wide.peek(name)
                assert narrow == [row[1], row[3]]
            batch.step()
            wide.step()

    def test_apply_validates_lane_count(self, counter_src):
        full = batched_workload_for("rocket-1", 4)
        batch = BatchSimulator(compile_named_design("rocket-1"), lanes=2)
        with pytest.raises(ValueError, match="subset"):
            full.apply(batch, 0)
        with pytest.raises(ValueError):
            full.subset([])


# ----------------------------------------------------------------------
# Mixed-rank compare_traces / run_lockstep
# ----------------------------------------------------------------------
class TestMixedRankComparison:
    def test_scalar_vs_batched_broadcasts_lane_zero(self):
        scalar = {"out": [1, 2, 3]}
        batched = {"out": [[1, 2, 3], [9, 9, 9]]}
        assert compare_traces(scalar, batched) == []
        diffs = compare_traces(scalar, batched, lanes=[1])
        assert [d.lane for d in diffs] == [1, 1, 1]

    def test_rank1_vs_rank1_lane_filter(self):
        a = {"out": [[1, 2], [3, 4], [5, 6]]}
        b = {"out": [[1, 2], [3, 0], [5, 0]]}
        assert len(compare_traces(a, b)) == 2
        filtered = compare_traces(a, b, lanes=[1])
        assert len(filtered) == 1 and filtered[0].lane == 1

    def test_diff_str_names_lane_and_cycle(self):
        diffs = compare_traces({"x": [[1]]}, {"x": [[2]]})
        assert "lane 0" in str(diffs[0]) and "cycle 0" in str(diffs[0])

    def test_extract_lane(self):
        trace = {"out": [[1, 2], [3, 4]]}
        assert extract_lane(trace, 1) == {"out": [3, 4]}
        flat = {"out": [1, 2]}
        assert extract_lane(flat, 0) is flat
        with pytest.raises(IndexError):
            extract_lane(flat, 1)

    def test_mixed_fleet_lockstep(self):
        """Acceptance: run_lockstep on scalar + batch + sharded at once."""
        design = "rocket-1"
        lanes = 2
        bundle = compile_named_design(design)
        graph = compiled_graph(design)
        workload = batched_workload_for(design, lanes)
        watch = outputs_of(design)
        with ShardedBatchSimulator(graph, lanes=lanes, num_partitions=2) as shard:
            fleet = {
                "batch": BatchSimulator(bundle, lanes=lanes),
                "scalar": Simulator(bundle),
                "shard": shard,
            }
            traces = run_lockstep(fleet, workload, watch, 10)
        assert trace_lanes(traces["scalar"]) is None
        assert trace_lanes(traces["batch"]) == lanes
        # Scalar ran lane 0's stream: broadcast comparison agrees, and the
        # whole mixed-rank fleet has no divergence from the batch trace.
        assert compare_traces(traces["scalar"], traces["batch"]) == []
        assert first_divergence(traces, reference="batch") is None

    def test_first_divergence_unknown_reference(self):
        with pytest.raises(KeyError):
            first_divergence({"a": {"x": [1]}}, reference="zzz")
