"""Tests for the Verilator-like and ESSENT-like baseline backends."""

import pytest

from repro.baselines import (
    EssentBackend,
    VerilatorBackend,
    essent_cpp,
    essent_profile,
    verilator_cpp,
    verilator_profile,
)
from repro.firrtl import ReferenceSimulator, elaborate, parse
from repro.sim import Simulator

from conftest import drive_random_inputs


class TestFunctionalEquivalence:
    def test_verilator_matches_reference(self, mixed_src, mixed_design, rng):
        drive_random_inputs(
            [ReferenceSimulator(mixed_design), VerilatorBackend(mixed_src)],
            mixed_design, rng, 60,
        )

    def test_essent_matches_reference(self, mixed_src, mixed_design, rng):
        drive_random_inputs(
            [ReferenceSimulator(mixed_design), EssentBackend(mixed_src)],
            mixed_design, rng, 60,
        )

    def test_three_engines_agree_on_gcd(self, gcd_src, rng):
        design = elaborate(parse(gcd_src))
        drive_random_inputs(
            [
                Simulator(gcd_src, kernel="PSU"),
                VerilatorBackend(gcd_src),
                EssentBackend(gcd_src),
            ],
            design, rng, 50,
        )

    def test_reset_interface(self, counter_src):
        backend = VerilatorBackend(counter_src)
        backend.poke("enable", 1)
        backend.step(3)
        backend.reset()
        assert backend.cycle == 0
        assert backend.peek("count") == 0


class TestGeneratedCode:
    def test_verilator_code_is_branchy(self, mixed_bundle):
        source = verilator_cpp(mixed_bundle)
        assert "if (" in source.text  # muxes become branches
        assert source.kernel == "Verilator"

    def test_essent_code_is_straight_line(self, mixed_bundle):
        source = essent_cpp(mixed_bundle)
        assert "if (" not in source.text  # no branches at all
        assert "?" in source.text or "sig[" in source.text

    def test_essent_single_giant_function(self, mixed_bundle):
        source = essent_cpp(mixed_bundle)
        eval_functions = [f for f in source.functions if f[0] == "eval"]
        assert len(eval_functions) == 1
        assert eval_functions[0][1] == mixed_bundle.num_ops

    def test_verilator_many_medium_functions(self):
        from repro.designs.registry import compile_named_design

        bundle = compile_named_design("rocket-4")
        source = verilator_cpp(bundle)
        eval_functions = [f for f in source.functions if f[0].startswith("eval_seq")]
        assert len(eval_functions) > 1
        assert source.max_function_statements < 3 * 3000


class TestPerformanceProfiles:
    def test_essent_fewest_instructions(self):
        """Section 7.3: ESSENT executes far fewer instructions than both
        Verilator and the PSU kernel (on core-class designs)."""
        from repro.designs.registry import compile_named_design
        from repro.kernels import kernel_profile

        bundle = compile_named_design("rocket-1")
        essent = essent_profile(bundle, "O3")
        verilator = verilator_profile(bundle, "O3")
        psu = kernel_profile(bundle, "PSU")
        assert essent.dyn_instr < verilator.dyn_instr < psu.dyn_instr

    def test_essent_o0_collapse(self, mixed_bundle):
        """Section 7.4: ~103x dynamic instructions at -O0."""
        o3 = essent_profile(mixed_bundle, "O3")
        o0 = essent_profile(mixed_bundle, "O0")
        ratio = o0.dyn_instr / o3.dyn_instr
        assert 80 < ratio < 130

    def test_verilator_o0_moderate(self, mixed_bundle):
        o3 = verilator_profile(mixed_bundle, "O3")
        o0 = verilator_profile(mixed_bundle, "O0")
        ratio = o0.dyn_instr / o3.dyn_instr
        assert 3.5 < ratio < 5.5  # paper: 4.42x

    def test_verilator_mispredicts_track_mux_density(self):
        """Branchy-ness follows the design's mux fraction."""
        from repro.designs.registry import compile_named_design

        core = compile_named_design("rocket-1")
        sha3 = compile_named_design("sha3")
        core_profile = verilator_profile(core)
        sha3_profile = verilator_profile(sha3)
        assert (
            core_profile.branches / core_profile.ops
            > 2 * sha3_profile.branches / sha3_profile.ops
        )

    def test_both_baselines_stream_code(self, mixed_bundle):
        assert verilator_profile(mixed_bundle).code_streamed
        assert essent_profile(mixed_bundle).code_streamed

    def test_essent_branch_free(self, mixed_bundle):
        essent = essent_profile(mixed_bundle)
        verilator = verilator_profile(mixed_bundle)
        assert essent.branches < verilator.branches
        assert essent.mispredict_rate < 0.01
