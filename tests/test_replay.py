"""Replayable stimulus artifacts: record, persist, replay, verify.

Covers the artifact life cycle the fuzzer and the corpus depend on:
seeded recording is deterministic, save/load is lossless, replay across
the engine matrix is a non-diff with matching signatures, a stale
fingerprint is refused, and the slicing helpers (``subset``,
``truncated``) preserve replay semantics.
"""

import json

import pytest

from repro.verify.replay import (
    REPLAY_VERSION,
    ReplayArtifact,
    design_fingerprint,
    record_seeded,
    record_stimulus,
    replay,
    repro_command,
    sign_artifact,
)

DESIGN = "small-1"


@pytest.fixture(scope="module")
def artifact():
    return record_seeded(DESIGN, lanes=2, cycles=8, seed=3)


class TestRecording:
    def test_seeded_recording_is_deterministic(self, artifact):
        again = record_seeded(DESIGN, lanes=2, cycles=8, seed=3)
        assert again.to_json() == artifact.to_json()
        assert again.digest() == artifact.digest()

    def test_different_seed_changes_the_digest(self, artifact):
        other = record_seeded(DESIGN, lanes=2, cycles=8, seed=4, sign=False)
        assert other.digest() != artifact.digest()

    def test_inputs_are_dense_and_lane_major(self, artifact):
        assert artifact.inputs
        for rows in artifact.inputs.values():
            assert len(rows) == artifact.lanes
            assert all(len(row) == artifact.cycles for row in rows)
            assert all(isinstance(v, int) for row in rows for v in row)

    def test_recording_is_signed(self, artifact):
        assert artifact.signature
        assert artifact.fingerprint == design_fingerprint(DESIGN)

    def test_record_stimulus_broadcast_and_hold(self):
        recorded = record_stimulus(
            DESIGN, {"instr": [5, 6], "mem_rdata": 9}, cycles=4, lanes=2,
            sign=False,
        )
        a = recorded.inputs["instr"]
        # Lists hold their last value; ints broadcast across lanes/cycles.
        assert a[0] == [5, 6, 6, 6] and a[0] == a[1]
        assert recorded.inputs["mem_rdata"][1] == [9, 9, 9, 9]
        # Undriven inputs are recorded explicitly as constant 0.
        assert recorded.inputs["reset"][0] == [0, 0, 0, 0]

    def test_record_stimulus_lane_vector_shape_checked(self):
        with pytest.raises(ValueError):
            record_stimulus(
                DESIGN, {"instr": [[1, 2, 3]]}, cycles=1, lanes=2, sign=False
            )


class TestPersistence:
    def test_save_load_round_trip(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "artifact.json")
        loaded = ReplayArtifact.load(path)
        assert loaded == artifact

    def test_json_is_versioned(self, artifact):
        payload = json.loads(artifact.to_json())
        assert payload["version"] == REPLAY_VERSION

    def test_unsupported_version_is_refused(self, artifact):
        payload = json.loads(artifact.to_json())
        payload["version"] = REPLAY_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            ReplayArtifact.from_json(json.dumps(payload))

    def test_malformed_dimensions_are_refused(self, artifact):
        payload = json.loads(artifact.to_json())
        name = next(iter(payload["inputs"]))
        payload["inputs"][name] = payload["inputs"][name][:1]
        with pytest.raises(ValueError):
            ReplayArtifact.from_json(json.dumps(payload))

    def test_repro_command_names_the_artifact(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "artifact.json")
        command = repro_command(path)
        assert "repro.experiments replay" in command
        assert str(path) in command


class TestReplay:
    def test_replay_on_default_matrix_is_ok(self, artifact):
        result = replay(artifact)
        assert result.ok, result.summary()
        assert "scalar" in result.engines and len(result.engines) >= 2

    def test_replay_is_deterministic_across_calls(self, artifact):
        first = replay(artifact, keep_traces=True)
        second = replay(artifact, keep_traces=True)
        assert first.traces == second.traces

    def test_explicit_engine_matrix(self, artifact):
        result = replay(artifact, engines=["scalar", "shard-serial-greedy"])
        assert result.ok, result.summary()
        assert result.engines == ["scalar", "shard-serial-greedy"]

    def test_stale_fingerprint_is_refused(self, artifact):
        stale = ReplayArtifact.from_json(artifact.to_json())
        stale.fingerprint = "0" * 16
        with pytest.raises(ValueError, match="fingerprint"):
            replay(stale)
        # ... unless the caller explicitly opts out.
        result = replay(stale, check_fingerprint=False)
        assert result.ok, result.summary()

    def test_tampered_signature_is_a_mismatch_not_a_divergence(self, artifact):
        tampered = ReplayArtifact.from_json(artifact.to_json())
        name = next(iter(tampered.signature))
        tampered.signature[name] = "f" * 16
        result = replay(tampered)
        assert not result.ok
        assert result.divergence is None
        assert result.signature_mismatches == [name]


class TestSlicing:
    def test_subset_keeps_selected_lanes(self, artifact):
        one = artifact.subset([1])
        assert one.lanes == 1
        for name, rows in one.inputs.items():
            assert rows == [artifact.inputs[name][1]]
        assert replay(sign_artifact(one)).ok

    def test_truncated_keeps_prefix(self, artifact):
        short = artifact.truncated(3)
        assert short.cycles == 3
        for name, rows in short.inputs.items():
            assert rows == [row[:3] for row in artifact.inputs[name]]
        assert replay(sign_artifact(short)).ok

    def test_slicing_invalidates_nothing_but_signature(self, artifact):
        sliced = artifact.subset([0]).truncated(2)
        assert sliced.design == artifact.design
        assert sliced.fingerprint == artifact.fingerprint
