"""Tests for tensor formats and array lowering (Sections 2.5.2, Figures 6/13)."""

import pytest

from repro.tensor import (
    AUTO,
    RankFormat,
    Tensor,
    TensorFormat,
    bits_for_value,
    compressed,
    dumps,
    loads,
    lower,
    uncompressed,
)


class TestRankFormat:
    def test_uncompressed_forces_zero_cbits(self):
        fmt = RankFormat(compressed=False, cbits=AUTO)
        assert fmt.cbits == 0
        assert not fmt.stores_coords

    def test_compressed_stores_coords(self):
        assert compressed().stores_coords

    def test_pbits_zero_elides_payloads(self):
        assert not compressed(pbits=0).stores_payloads
        assert compressed(pbits=4).stores_payloads

    def test_kind_letter(self):
        assert uncompressed().kind == "U"
        assert compressed().kind == "C"

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            RankFormat(compressed=True, cbits=-1)

    def test_describe_mentions_nonzero(self):
        text = compressed().describe()
        assert "C" in text and "non-zero" in text


class TestBitsForValue:
    @pytest.mark.parametrize("value,expected", [(0, 1), (1, 1), (2, 2), (3, 2), (255, 8), (256, 9)])
    def test_widths(self, value, expected):
        assert bits_for_value(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_for_value(-1)


class TestTensorFormat:
    def test_missing_rank_format_rejected(self):
        with pytest.raises(ValueError):
            TensorFormat(("M", "K"), {"M": uncompressed()})

    def test_extra_rank_format_rejected(self):
        with pytest.raises(ValueError):
            TensorFormat(("M",), {"M": uncompressed(), "K": compressed()})

    def test_describe_matches_figure6_shape(self):
        text = TensorFormat.csr().describe("A")
        assert "rank-order: [M, K]" in text
        assert "M: format: U" in text
        assert "K: format: C" in text


class TestCsrLowering:
    """The CSR example of Figure 6."""

    @pytest.fixture
    def matrix(self):
        # Figure 2/6's matrix: row 0 has {2: 1}, row 2 has {0:2, 1:3, 2:4}.
        return Tensor.from_points(
            {(0, 2): 1, (2, 0): 2, (2, 1): 3, (2, 2): 4}, ["M", "K"], [3, 3]
        )

    def test_row_payloads_are_occupancies(self, matrix):
        lowered = lower(matrix, TensorFormat.csr())
        # Dense M rank: 3 positions with occupancies [1, 0, 3].
        assert lowered.ranks["M"].payloads == [1, 0, 3]
        assert lowered.ranks["M"].coords is None

    def test_column_coords_concatenated(self, matrix):
        lowered = lower(matrix, TensorFormat.csr())
        assert lowered.ranks["K"].coords == [2, 0, 1, 2]
        assert lowered.ranks["K"].payloads == [1, 2, 3, 4]

    def test_roundtrip(self, matrix):
        lowered = lower(matrix, TensorFormat.csr())
        assert lowered.to_tensor() == matrix

    def test_auto_bit_widths(self, matrix):
        lowered = lower(matrix, TensorFormat.csr())
        assert lowered.ranks["K"].cbits == bits_for_value(2)
        assert lowered.ranks["K"].pbits == bits_for_value(4)

    def test_storage_bits_counts_only_materialised(self, matrix):
        lowered = lower(matrix, TensorFormat.csr())
        expected = (
            3 * lowered.ranks["M"].pbits  # payloads of dense M
            + 4 * lowered.ranks["K"].cbits
            + 4 * lowered.ranks["K"].pbits
        )
        assert lowered.storage_bits() == expected

    def test_rank_order_mismatch_rejected(self, matrix):
        with pytest.raises(ValueError):
            lower(matrix.swizzle(["K", "M"]), TensorFormat.csr())


class TestElidedPayloads:
    def test_mask_leaf_elision_roundtrips_with_rule(self):
        mask = Tensor.from_points({(0, 1): 1, (1, 0): 1, (1, 2): 1}, ["M", "K"], [2, 3])
        fmt = TensorFormat(
            ("M", "K"),
            {
                "M": uncompressed(pbits=AUTO),
                "K": compressed(cbits=AUTO, pbits=0),
            },
        )
        lowered = lower(mask, fmt)
        assert lowered.ranks["K"].payloads is None
        rebuilt = lowered.to_tensor()  # default leaf rule: constant 1
        assert rebuilt == mask

    def test_elided_intermediate_needs_rule(self):
        tensor = Tensor.from_points({(0, 0, 0): 1}, ["A", "B", "C"], [1, 1, 1])
        fmt = TensorFormat(
            ("A", "B", "C"),
            {
                "A": uncompressed(pbits=AUTO),
                "B": compressed(cbits=AUTO, pbits=0),
                "C": compressed(cbits=AUTO, pbits=AUTO),
            },
        )
        lowered = lower(tensor, fmt)
        with pytest.raises(ValueError):
            lowered.to_tensor()  # no occupancy rule for B
        rebuilt = lowered.to_tensor(occupancy_rules={"B": lambda ctx: 1})
        assert rebuilt == tensor


class TestSerialization:
    def test_json_roundtrip(self):
        matrix = Tensor.from_dense([[0, 1], [2, 3]], ["M", "K"])
        lowered = lower(matrix, TensorFormat.csr())
        again = loads(dumps(lowered))
        assert again.to_tensor() == matrix
        assert again.storage_bits() == lowered.storage_bits()

    def test_elided_arrays_absent_from_document(self):
        mask = Tensor.from_points({(0, 0): 1}, ["M", "K"], [1, 1])
        fmt = TensorFormat(
            ("M", "K"),
            {"M": uncompressed(pbits=AUTO), "K": compressed(cbits=AUTO, pbits=0)},
        )
        text = dumps(lower(mask, fmt))
        assert '"payloads"' not in text.split('"name": "K"')[1]

    def test_version_checked(self):
        import json
        from repro.tensor.serialize import from_document

        with pytest.raises(ValueError):
            from_document({"version": 999})

    def test_file_roundtrip(self, tmp_path):
        from repro.tensor import load, save

        matrix = Tensor.from_dense([[5, 0], [0, 9]], ["M", "K"])
        lowered = lower(matrix, TensorFormat.csr())
        path = tmp_path / "oim.json"
        save(lowered, path)
        assert load(path).to_tensor() == matrix
