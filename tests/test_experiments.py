"""The paper's qualitative claims, as executable assertions.

Every test here encodes a sentence from the evaluation section; EXPERIMENTS.md
records the corresponding quantitative paper-vs-measured comparison.
"""

import pytest

from repro.experiments import (
    ablations,
    kernel_study,
    main_eval,
    motivation,
    scalability,
)
from repro.experiments.common import (
    KERNEL_NAMES,
    best_kernel,
    compile_cost_for,
    perf_for,
)
from repro.perf.machines import ALL_MACHINES


class TestMotivation:
    def test_fig7_essent_less_frontend_bound(self):
        """'ESSENT consistently exhibits a lower fraction of frontend-bound
        and bad-speculation slots than Verilator.'"""
        rows = motivation.fig07_topdown(designs=("rocket-4", "small-4"))
        by_key = {(r["design"], r["engine"]): r for r in rows}
        for design in ("rocket-4", "small-4"):
            verilator = by_key[(design, "Verilator")]
            essent = by_key[(design, "ESSENT")]
            assert (
                essent["frontend_pct"] + essent["bad_speculation_pct"]
                < verilator["frontend_pct"] + verilator["bad_speculation_pct"]
            )

    def test_fig8_essent_costlier_to_compile(self):
        """'ESSENT incurs much higher overhead than Verilator' (Fig. 8)."""
        rows = motivation.fig08_compile_cost(designs=("rocket-4", "rocket-8"))
        by_key = {(r["design"], r["engine"]): r for r in rows}
        for design in ("rocket-4", "rocket-8"):
            assert (
                by_key[(design, "ESSENT")]["compile_time_s"]
                > by_key[(design, "Verilator")]["compile_time_s"]
            )
            assert (
                by_key[(design, "ESSENT")]["peak_memory_mb"]
                > 3 * by_key[(design, "Verilator")]["peak_memory_mb"]
            )

    def test_table1_identity_dominates(self):
        """Table 1: identity ops are ~6-10x the effectual ops."""
        rows = motivation.table1_identity(designs=("rocket-1", "small-1"))
        ratios = {r["design"]: r["ratio"] for r in rows}
        assert 5.0 <= ratios["rocket-1"] <= 9.0
        assert 7.5 <= ratios["small-1"] <= 12.0


class TestKernelStudy:
    def test_table4_rolled_kernels_small_and_flat(self):
        rows = {r["kernel"]: r["binary_mb"] for r in kernel_study.table4_binary_size()}
        # RU..PSU all well under a megabyte; SU/TI in the megabytes.
        for kernel in ("RU", "OU", "NU", "PSU"):
            assert rows[kernel] < 1.0
        assert rows["SU"] > 3.0
        assert rows["TI"] > 3.0
        assert rows["IU"] < rows["SU"]

    def test_table5_dyn_instr_ordering(self):
        rows = {r["kernel"]: r for r in kernel_study.table5_dyninst_ipc()}
        dyn = [rows[k]["dyn_instr_t"] for k in KERNEL_NAMES]
        # RU >> OU > NU ~ PSU, and SU > TI at the bottom.
        assert dyn[0] > 5 * dyn[1]
        assert dyn[1] > dyn[2] > dyn[3]
        assert dyn[5] > dyn[6]
        # Paper anchors: 26.9T for RU, 0.476T for TI (rocket-8).
        assert rows["RU"]["dyn_instr_t"] == pytest.approx(26.9, rel=0.1)
        assert rows["TI"]["dyn_instr_t"] == pytest.approx(0.476, rel=0.1)

    def test_table5_ipc_collapse_when_unrolled(self):
        rows = {r["kernel"]: r["ipc"] for r in kernel_study.table5_dyninst_ipc()}
        assert rows["RU"] > 3.5
        assert rows["SU"] < 1.0 and rows["TI"] < 1.5
        assert rows["NU"] > 2.0

    def test_table6_icache_explosion(self):
        """L1I misses explode at SU/TI; tiny for rolled kernels."""
        rows = {r["kernel"]: r for r in kernel_study.table6_cache()}
        assert rows["SU"]["l1i_miss_b"] > 100 * max(rows["PSU"]["l1i_miss_b"], 0.01)
        assert rows["IU"]["l1i_miss_b"] > rows["PSU"]["l1i_miss_b"]

    def test_table6_dcache_loads_fall(self):
        rows = {r["kernel"]: r for r in kernel_study.table6_cache()}
        assert rows["RU"]["l1d_load_b"] > 8 * rows["OU"]["l1d_load_b"]
        assert rows["TI"]["l1d_load_b"] < rows["PSU"]["l1d_load_b"]

    def test_table6_dcache_misses_flat_then_drop(self):
        """'Miss counts remain relatively stable ... LI is the primary
        source of D-cache misses'; TI's register allocation drops them."""
        rows = {r["kernel"]: r["l1d_miss_b"] for r in kernel_study.table6_cache()}
        stable = [rows[k] for k in ("RU", "OU", "NU", "PSU", "IU", "SU")]
        assert max(stable) < 1.35 * min(stable)
        assert rows["TI"] < 0.5 * rows["PSU"]

    def test_fig15_compile_cost_grows_with_unrolling(self):
        rows = kernel_study.fig15_kernel_compile()
        xeon = {
            r["kernel"]: r["compile_time_s"]
            for r in rows if "Xeon" in r["machine"]
        }
        assert xeon["RU"] <= xeon["IU"] <= xeon["SU"]
        assert xeon["SU"] > 20 * xeon["PSU"]

    def test_fig16_sweet_spot(self):
        """'PSU achieves the highest performance' on Xeon/AMD/AWS;
        'TI performs best on the Intel Core.'"""
        rows = kernel_study.fig16_kernel_sim()
        best = {
            r["machine"]: r["kernel"] for r in rows if r["best"]
        }
        assert best["Intel Xeon Gold 5512U"] == "PSU"
        assert best["AMD Ryzen 7 4800HS"] == "PSU"
        assert best["AWS Graviton 4"] == "PSU"
        assert best["Intel Core i9-13900K"] == "TI"

    def test_fig16_frontend_explains_su(self):
        """Frontend-bound ~5% for PSU vs huge for SU on the Xeon."""
        psu = perf_for("rocket-8", "PSU", "intel-xeon")
        su = perf_for("rocket-8", "SU", "intel-xeon")
        assert psu.topdown["frontend"] < 0.10
        assert su.topdown["frontend"] > 0.4


class TestScalability:
    def test_fig17_ti_wins_small_loses_big(self):
        """'TI performs best on the 1-core RocketChip ... NU and PSU
        outperform TI from the 4-core design onward.'"""
        rows = scalability.fig17_kernel_scaling(designs=("rocket-1", "rocket-4", "rocket-8"))
        table = {}
        for row in rows:
            table.setdefault(row["design"], {})[row["kernel"]] = row["sim_time_s"]
        assert table["rocket-1"]["TI"] < table["rocket-1"]["PSU"]
        assert table["rocket-4"]["PSU"] < table["rocket-4"]["TI"]
        assert table["rocket-8"]["PSU"] < table["rocket-8"]["TI"]

    def test_fig17_psu_near_linear(self):
        """PSU's frontend stalls stay flat as the design grows."""
        rows = scalability.fig17_kernel_scaling(designs=("rocket-1", "rocket-24"))
        psu = [r for r in rows if r["kernel"] == "PSU"]
        assert all(r["frontend_pct"] < 10 for r in psu)

    def test_fig17_ru_worst(self):
        rows = scalability.fig17_kernel_scaling(designs=("rocket-4",))
        times = {r["kernel"]: r["sim_time_s"] for r in rows}
        assert times["RU"] == max(times.values())

    def test_table7_psu_constant_compile(self):
        """'PSU exhibits a significantly lower and nearly constant
        compilation cost as design size increases.'"""
        rows = scalability.table7_compile_scaling(designs=("rocket-1", "rocket-24"))
        psu = [r for r in rows if r["engine"] == "PSU"]
        assert psu[1]["compile_time_s"] < 1.2 * psu[0]["compile_time_s"]
        assert psu[0]["compile_time_s"] < 15

    def test_table7_essent_superlinear(self):
        rows = scalability.table7_compile_scaling(designs=("rocket-1", "rocket-24"))
        essent = {r["design"]: r for r in rows if r["engine"] == "ESSENT"}
        verilator = {r["design"]: r for r in rows if r["engine"] == "Verilator"}
        essent_growth = (
            essent["rocket-24"]["compile_time_s"] / essent["rocket-1"]["compile_time_s"]
        )
        verilator_growth = (
            verilator["rocket-24"]["compile_time_s"]
            / verilator["rocket-1"]["compile_time_s"]
        )
        assert essent_growth > 3 * verilator_growth
        assert essent["rocket-24"]["peak_memory_gb"] > 100

    def test_fig18_ordering_o3(self):
        """'Verilator exhibits the longest simulation times, the PSU kernel
        is moderately faster, and ESSENT achieves the best performance.'"""
        rows = scalability.fig18_sim_o3(designs=("rocket-8", "rocket-16", "rocket-24"))
        table = {}
        for row in rows:
            table.setdefault(row["design"], {})[row["engine"]] = row["sim_time_s"]
        for design, times in table.items():
            assert times["ESSENT"] < times["PSU"] < times["Verilator"], design

    def test_fig19_essent_collapses_at_o0(self):
        """'Our kernel and Verilator exhibit comparable performance, whereas
        ESSENT suffers a severe degradation.'"""
        rows = scalability.fig19_sim_o0(designs=("rocket-8",))
        times = {r["engine"]: r["sim_time_s"] for r in rows}
        assert times["ESSENT"] > 2.5 * times["Verilator"]
        ratio = times["Verilator"] / times["PSU"]
        assert 0.5 < ratio < 2.0  # comparable


class TestMainEvaluation:
    def test_fig20_rteaal_beats_verilator_except_sha3(self):
        """'RTeAAL Sim consistently outperforms Verilator on all RTL designs
        except SHA3.'  (We allow a ±10% band on the near-tie cells.)"""
        rows = main_eval.fig20_speedup(designs=("rocket-8", "small-8", "gemmini-8", "sha3"))
        for row in rows:
            if row["design"] == "sha3":
                # SHA3 is the design where RTeAAL is at best competitive.
                assert row["rteaal_speedup"] < 1.2, row
            else:
                # "Speedups observed on every machine": we tolerate near-
                # parity (>= 0.85) on the AWS cells, where the paper also
                # reports its weakest results (see EXPERIMENTS.md).
                assert row["rteaal_speedup"] > 0.85, row

    def test_fig20_essent_generally_fastest(self):
        rows = main_eval.fig20_speedup(designs=("rocket-8",))
        for row in rows:
            assert row["essent_speedup"] > 1.5

    def test_fig20_aws_least_favourable(self):
        """'RTeAAL Sim performs worst relative to Verilator on the AWS
        Graviton 4' (Verilator's branch penalty disappears there)."""
        rows = main_eval.fig20_speedup(designs=("rocket-8", "small-4", "small-8"))
        by_machine = {}
        for row in rows:
            by_machine.setdefault(row["machine"], []).append(row["rteaal_speedup"])
        averages = {m: sum(v) / len(v) for m, v in by_machine.items()}
        assert averages["AWS Graviton 4"] == min(averages.values())

    def test_fig21_llc_sweep(self):
        """'As LLC capacity decreases, ESSENT's performance drops sharply
        ... RTeAAL Sim's PSU kernel maintains stable performance.'"""
        rows = main_eval.fig21_llc()
        assert [r["llc_mb"] for r in rows] == [10.5, 7.0, 3.5]
        # PSU stable across the sweep.
        psu_times = [r["psu_time_s"] for r in rows]
        assert max(psu_times) < 1.1 * min(psu_times)
        # ESSENT degrades sharply at 3.5 MB.
        assert rows[-1]["essent_time_s"] > 1.5 * rows[0]["essent_time_s"]
        # RTeAAL's speedup over Verilator grows as the LLC shrinks.
        assert rows[-1]["rteaal_speedup"] > rows[0]["rteaal_speedup"]
        # At 3.5 MB RTeAAL overtakes ESSENT (the only such setting).
        assert rows[-1]["psu_time_s"] < rows[-1]["essent_time_s"]
        assert rows[0]["psu_time_s"] > rows[0]["essent_time_s"]

    def test_fig20_best_kernel_is_design_dependent(self):
        """Section 7.5 reports per-design best kernels; SHA3's is TI."""
        kernel, _ = best_kernel("sha3", "intel-xeon")
        assert kernel == "TI"


class TestAblations:
    def test_oim_compression_monotone(self):
        rows = ablations.ablation_oim_formats("rocket-1")
        sizes = [r["bytes"] for r in rows]
        assert sizes[0] > sizes[1] > 0  # unoptimized > optimized
        assert sizes[2] < sizes[0]      # swizzled < unoptimized

    def test_identity_elision_saves_most_ops(self):
        rows = ablations.ablation_identity_elision("rocket-1")
        by_mode = {r["mode"]: r["ops_per_cycle"] for r in rows}
        assert (
            by_mode["identities materialised"]
            > 5 * by_mode["identities elided"]
        )

    def test_fusion_reduces_layers(self):
        rows = ablations.ablation_mux_fusion("rocket-1")
        off, on = rows[0], rows[1]
        assert on["layers"] < off["layers"]
        assert on["ops"] <= off["ops"]

    def test_repcut_overhead_grows_with_partitions(self):
        rows = ablations.ablation_repcut("rocket-1", partition_counts=(1, 2, 4))
        overheads = [r["replication_overhead"] for r in rows]
        assert overheads[0] == 0
        assert overheads[2] >= overheads[1] >= 0

    def test_repcut_refined_strategy_cuts_replication(self):
        rows = ablations.ablation_repcut(
            "rocket-1", partition_counts=(2,),
            strategies=("greedy", "refined"),
        )
        by_strategy = {r["strategy"]: r for r in rows}
        greedy = by_strategy["greedy"]["replication_overhead"]
        refined = by_strategy["refined"]["replication_overhead"]
        assert refined < 0.2 * greedy
        assert by_strategy["refined"]["effective_partitions"] >= 1
