"""Tests for the split-limb ``u64xN`` backend: lockstep equivalence with
the scalar simulator at the 63/64/65/128-bit boundary widths, randomized
operator fuzz at 63/64/65/127/128/129 bits against a Python big-int
reference, sha3 bit-exactness on the fast path (batch and shard
engines), checkpointing, ``poke_row`` validation, the popcount fallback,
and the perf gate's missing/zero-metric handling."""

import importlib.util
import os
from pathlib import Path

import pytest

from repro.batch import BatchSimulator, HAS_NUMPY, pick_backend
from repro.batch.backend import (
    combine_limbs,
    limb_layout,
    limbs_for_width,
    popcount_parity,
    split_limbs,
    supports_u64,
)
from repro.designs import keccak_f_reference, sha3_soc
from repro.designs.registry import compile_named_design, compiled_graph
from repro.designs.sha3 import NUM_ROUNDS, round_constants_for_step
from repro.shard import ShardedBatchSimulator
from repro.sim import Simulator

KERNELS = ("PSU", "SU")
BOUNDARY_WIDTHS = (63, 64, 65, 128)


def wide_alu_src(width: int) -> str:
    """An op-heavy design whose slot widths straddle ``width``.

    Exercises carry/borrow arithmetic, multi-limb multiply/divide,
    comparisons, reductions, data-dependent cross-limb shifts, cat/bits
    and mux at the requested width (intermediates grow wider still:
    ``add`` to width+1, ``mul`` to 2*width).
    """
    shift_width = max(1, min(8, width.bit_length()))
    return f"""circuit WideAlu :
  module WideAlu :
    input clock : Clock
    input a : UInt<{width}>
    input b : UInt<{width}>
    input s : UInt<{shift_width}>
    output o_add : UInt<{width}>
    output o_sub : UInt<{width}>
    output o_mul : UInt<{width}>
    output o_div : UInt<{width}>
    output o_rem : UInt<{width}>
    output o_cmp : UInt<6>
    output o_red : UInt<3>
    output o_dshl : UInt<{width}>
    output o_dshr : UInt<{width}>
    output o_cat : UInt<8>
    output o_mux : UInt<{width}>
    output o_acc : UInt<{width}>
    reg acc : UInt<{width}>, clock
    node t_add = tail(add(a, b), 1)
    node t_sub = tail(sub(a, b), 1)
    node t_mul = bits(mul(a, b), {width - 1}, 0)
    node t_not = not(a)
    o_add <= t_add
    o_sub <= t_sub
    o_mul <= t_mul
    o_div <= div(a, b)
    o_rem <= rem(a, b)
    o_cmp <= cat(lt(a, b), cat(leq(a, b), cat(gt(a, b), cat(geq(a, b), cat(eq(a, b), neq(a, b))))))
    o_red <= cat(andr(a), cat(orr(a), xorr(a)))
    o_dshl <= bits(dshl(a, s), {width - 1}, 0)
    o_dshr <= dshr(a, s)
    o_cat <= cat(head(a, 4), bits(a, 3, 0))
    o_mux <= mux(eq(a, b), t_not, xor(a, b))
    acc <= tail(add(acc, xor(a, t_mul)), 1)
    o_acc <= acc
"""


WIDE_OUTPUTS = (
    "o_add", "o_sub", "o_mul", "o_div", "o_rem", "o_cmp", "o_red",
    "o_dshl", "o_dshr", "o_cat", "o_mux", "o_acc",
)


def boundary_stimulus(rng, width: int, lanes: int):
    """Random lane values biased toward carry/borrow corner cases."""
    corners = (0, 1, (1 << width) - 1, 1 << (width - 1), (1 << 64) - 1 if width > 64 else (1 << width) - 1)
    return [
        rng.choice(corners) if rng.random() < 0.3 else rng.randrange(1 << width)
        for _ in range(lanes)
    ]


def assert_wide_lockstep(width, kernel, backend, rng, lanes=3, cycles=8):
    source = wide_alu_src(width)
    shift_width = max(1, min(8, width.bit_length()))
    batch = BatchSimulator(source, lanes=lanes, kernel=kernel, backend=backend)
    scalars = [Simulator(source, kernel=kernel) for _ in range(lanes)]
    for cycle in range(cycles):
        a = boundary_stimulus(rng, width, lanes)
        b = boundary_stimulus(rng, width, lanes)
        s = [rng.randrange(1 << shift_width) for _ in range(lanes)]
        for name, values in (("a", a), ("b", b), ("s", s)):
            batch.poke(name, values)
            for lane, scalar in enumerate(scalars):
                scalar.poke(name, values[lane])
        for name in WIDE_OUTPUTS:
            got = batch.peek(name)
            want = [scalar.peek(name) for scalar in scalars]
            assert got == want, (
                f"w={width}/{kernel}/{backend}: divergence on {name!r} at "
                f"cycle {cycle}: {got} != {want}"
            )
        batch.step()
        for scalar in scalars:
            scalar.step()
    return batch


# ----------------------------------------------------------------------
# Limb plumbing
# ----------------------------------------------------------------------
class TestLimbLayout:
    def test_limbs_for_width(self):
        assert [limbs_for_width(w) for w in (0, 1, 63, 64, 65, 128, 129)] == [
            1, 1, 1, 1, 2, 2, 3,
        ]

    def test_split_combine_roundtrip(self, rng):
        for width in BOUNDARY_WIDTHS:
            count = limbs_for_width(width)
            for _ in range(16):
                value = rng.randrange(1 << width)
                assert combine_limbs(split_limbs(value, count)) == value

    def test_layout_offsets(self):
        bundle = compile_named_design("sha3")
        layout = limb_layout(bundle)
        assert layout.total_rows == sum(layout.limbs)
        assert layout.total_rows > bundle.num_slots  # sha3 has 65-bit slots
        for slot in range(bundle.num_slots):
            piece = layout.slices[slot]
            assert piece.stop - piece.start == layout.limbs[slot]
            assert piece.start == layout.offsets[slot]


class TestBackendSelection:
    @pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
    def test_auto_prefers_limbs_over_object(self):
        sha3 = compile_named_design("sha3")
        assert not supports_u64(sha3)
        assert pick_backend(sha3, "auto") == "u64xN"

    @pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
    def test_u64xn_allowed_on_narrow_design(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2, backend="u64xN")
        assert batch.backend == "u64xN"
        batch.poke("enable", 1)
        batch.step(3)
        assert batch.peek("count") == [3, 3]

    def test_u64xn_without_numpy_raises(self):
        bundle = compile_named_design("rocket-1")
        assert pick_backend(bundle, "auto", np_module=None) == "python"
        with pytest.raises(RuntimeError):
            pick_backend(bundle, "u64xN", np_module=None)


# ----------------------------------------------------------------------
# Boundary-width lockstep equivalence
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
class TestBoundaryWidths:
    @pytest.mark.parametrize("width", BOUNDARY_WIDTHS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_u64xn_lockstep(self, width, kernel, rng):
        batch = assert_wide_lockstep(width, kernel, "u64xN", rng)
        assert batch.backend == "u64xN"

    @pytest.mark.parametrize("width", (64, 65))
    def test_object_reference_lockstep(self, width, rng):
        batch = assert_wide_lockstep(width, "PSU", "object", rng)
        assert batch.backend == "object"

    def test_u64_vs_u64xn_on_narrow_design(self, mixed_src, rng):
        """On a design that fits u64, both native backends agree lane-wise."""
        lanes = 3
        plain = BatchSimulator(mixed_src, lanes=lanes, backend="u64")
        limbed = BatchSimulator(mixed_src, lanes=lanes, backend="u64xN")
        assert plain.backend == "u64" and limbed.backend == "u64xN"
        for cycle in range(12):
            a = [rng.randrange(256) for _ in range(lanes)]
            b = [rng.randrange(256) for _ in range(lanes)]
            for sim in (plain, limbed):
                sim.poke("a", a)
                sim.poke("b", b)
            for name in ("out", "flag"):
                assert plain.peek(name) == limbed.peek(name)
            plain.step()
            limbed.step()


class TestPythonFallbackWide:
    def test_python_backend_wide_lockstep(self, rng):
        """The NumPy-free fallback handles >64-bit designs too (unbounded
        Python ints), so the subsystem stays complete offline."""
        batch = assert_wide_lockstep(65, "PSU", "python", rng, cycles=4)
        assert batch.backend == "python"


@pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
class TestSha3FastPath:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_batched_keccak_matches_reference(self, kernel, rng):
        """Full 24-round permutations, one random state per lane, on the
        split-limb fast path."""
        lanes, rpc = 2, 4
        batch = BatchSimulator(sha3_soc(64, rpc), lanes=lanes, kernel=kernel)
        assert batch.backend == "u64xN"
        states = [
            [rng.randrange(1 << 64) for _ in range(25)] for _ in range(lanes)
        ]
        for idx in range(25):
            batch.poke("absorb_valid", 1)
            batch.poke("absorb_idx", idx)
            batch.poke("absorb_lane", [state[idx] for state in states])
            batch.step()
        batch.poke("absorb_valid", 0)
        batch.poke("start", 1)
        batch.step()
        batch.poke("start", 0)
        for step in range(NUM_ROUNDS // rpc):
            for position, rc in enumerate(round_constants_for_step(step, 64, rpc)):
                batch.poke(f"rc{position}", rc)
            batch.step()
        for lane in range(lanes):
            got = [batch.peek(f"s_{x}_{y}")[lane] for y in range(5) for x in range(5)]
            assert got == keccak_f_reference(states[lane], 64)
        assert batch.peek("done") == [1] * lanes

    @pytest.mark.parametrize("executor", ("serial", "thread"))
    def test_sharded_sha3_stays_on_fast_path(self, executor, rng):
        """Sharded wide design: partitions resolve to native-width planes
        (u64 or u64xN, never object) and stay bit-exact vs scalar."""
        graph = compiled_graph("sha3")
        bundle = compile_named_design("sha3")
        lanes = 2
        scalars = [Simulator(bundle) for _ in range(lanes)]
        from repro.workloads.stimulus import batched_workload_for

        workload = batched_workload_for("sha3", lanes)
        with ShardedBatchSimulator(
            graph, lanes=lanes, num_partitions=2, executor=executor
        ) as shard:
            backends = [desc.split("/")[0] for desc in shard.describe_partitions()]
            assert all(backend in ("u64", "u64xN") for backend in backends)
            assert "u64xN" in backends  # the 65-bit slots live somewhere
            for cycle in range(8):
                workload.apply(shard, cycle)
                for lane, scalar in enumerate(scalars):
                    workload.lane(lane).apply(scalar, cycle)
                for name in ("digest", "done", "round_out"):
                    assert shard.peek(name) == [s.peek(name) for s in scalars]
                shard.step()
                for scalar in scalars:
                    scalar.step()


# ----------------------------------------------------------------------
# Width-boundary operator fuzz against a Python big-int reference
# ----------------------------------------------------------------------
def wide_reference(width: int, a: int, b: int, s: int, acc: int):
    """FIRRTL semantics of :func:`wide_alu_src`, in unbounded Python ints.

    An independent oracle: no simulator involved, so a systematic limb-
    kernel bug cannot hide behind a matching scalar-simulator bug.
    Returns ``(outputs, next_acc)`` for one cycle.
    """
    m = (1 << width) - 1
    mul = (a * b) & m
    outputs = {
        "o_add": (a + b) & m,
        "o_sub": (a - b) & m,
        "o_mul": mul,
        # FIRRTL leaves x/0 undefined; the repo picks 0 (see primops).
        "o_div": a // b if b else 0,
        "o_rem": a % b if b else 0,
        "o_cmp": (
            (int(a < b) << 5) | (int(a <= b) << 4) | (int(a > b) << 3)
            | (int(a >= b) << 2) | (int(a == b) << 1) | int(a != b)
        ),
        "o_red": (
            (int(a == m) << 2) | (int(a != 0) << 1)
            | (bin(a).count("1") & 1)
        ),
        "o_dshl": (a << s) & m,
        "o_dshr": a >> s,
        "o_cat": ((a >> (width - 4)) << 4) | (a & 0xF),
        "o_mux": (~a) & m if a == b else a ^ b,
        "o_acc": acc,
    }
    return outputs, (acc + (a ^ mul)) & m


class TestWidthBoundaryFuzz:
    """Randomized operands at the limb-boundary widths through the
    div/rem/shift/cat/comparison kernels, checked against
    :func:`wide_reference` (satellite: width-boundary operator fuzz).

    ``REPRO_FUZZ_CYCLES`` raises the per-width iteration budget (the
    nightly CI fuzz job sets it)."""

    WIDTHS = (63, 64, 65, 127, 128, 129)
    LANES = 4

    @pytest.mark.parametrize("width", WIDTHS)
    def test_bigint_reference_fuzz(self, width, rng):
        cycles = int(os.environ.get("REPRO_FUZZ_CYCLES", "0")) or 12
        backend = "u64xN" if HAS_NUMPY else "python"
        batch = BatchSimulator(
            wide_alu_src(width), lanes=self.LANES, backend=backend
        )
        shift_width = max(1, min(8, width.bit_length()))
        shift_max = (1 << shift_width) - 1
        accs = [0] * self.LANES
        for cycle in range(cycles):
            a = boundary_stimulus(rng, width, self.LANES)
            b = boundary_stimulus(rng, width, self.LANES)
            s = [rng.randrange(1 << shift_width) for _ in range(self.LANES)]
            if cycle == 0:
                b[0] = 0          # force the div/rem-by-zero path
                s[1] = shift_max  # force an over-width dynamic shift
            for name, values in (("a", a), ("b", b), ("s", s)):
                batch.poke(name, values)
            expected = []
            for lane in range(self.LANES):
                outputs, accs[lane] = wide_reference(
                    width, a[lane], b[lane], s[lane], accs[lane]
                )
                expected.append(outputs)
            for name in WIDE_OUTPUTS:
                got = batch.peek(name)
                want = [expected[lane][name] for lane in range(self.LANES)]
                assert got == want, (
                    f"w={width}/{backend}: {name!r} diverges from the "
                    f"big-int reference at cycle {cycle}: {got} != {want} "
                    f"(a={a}, b={b}, s={s})"
                )
            batch.step()


@pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
class TestVectorisedDivision:
    """Direct fuzz of the u64xN restoring-division evaluators at mixed
    operand widths (``wide_alu_src`` only ever divides equals-by-equals),
    against unbounded Python ints."""

    CASES = (
        (65, 65), (127, 64), (128, 65), (129, 129), (129, 1), (66, 130),
    )

    def _matrix(self, np, values, width):
        count = limbs_for_width(width)
        return np.array(
            [split_limbs(value, count) for value in values], dtype=np.uint64
        ).T

    def _ints(self, matrix):
        return [
            combine_limbs([int(matrix[row, lane]) for row in range(matrix.shape[0])])
            for lane in range(matrix.shape[1])
        ]

    @pytest.mark.parametrize("wa,wb", CASES)
    def test_divmod_matches_bigint(self, wa, wb, rng):
        import numpy as np

        from repro.batch.vecsem import make_limb_table

        table = make_limb_table(np)
        lanes = 5
        for _ in range(6):
            a = [rng.randrange(1 << wa) for _ in range(lanes)]
            b = [rng.randrange(1 << wb) for _ in range(lanes)]
            a[0] = (1 << wa) - 1
            b[1] = 0  # the zero-divisor lane must yield (0, 0)
            b[2] = 1
            am, bm = self._matrix(np, a, wa), self._matrix(np, b, wb)
            quo = table["div"]([am, bm], (wa, wb), wa)
            rem = table["rem"]([am, bm], (wa, wb), min(wa, wb))
            want_q = [x // y if y else 0 for x, y in zip(a, b)]
            want_r = [x % y if y else 0 for x, y in zip(a, b)]
            assert self._ints(quo) == want_q, (wa, wb, a, b)
            assert self._ints(rem) == want_r, (wa, wb, a, b)


# ----------------------------------------------------------------------
# Checkpointing on the limb plane
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
class TestLimbCheckpointing:
    SRC = wide_alu_src(65)

    def _driven(self, lanes=2, cycles=3):
        batch = BatchSimulator(self.SRC, lanes=lanes)
        batch.poke("a", [(1 << 65) - 1, 12345])
        batch.poke("b", [7, (1 << 64) + 1])
        batch.poke("s", 3)
        batch.step(cycles)
        return batch

    def test_snapshot_roundtrip(self):
        batch = self._driven()
        checkpoint = batch.snapshot()
        before = batch.peek("o_acc")
        batch.poke("a", 1)
        batch.step(4)
        assert batch.peek("o_acc") != before
        batch.restore(checkpoint)
        assert batch.cycle == 3
        assert batch.peek("o_acc") == before

    def test_snapshot_rejects_other_backend(self):
        batch = self._driven()
        other = BatchSimulator(self.SRC, lanes=2, backend="object")
        with pytest.raises(ValueError):
            other.restore(batch.snapshot())

    def test_export_import_is_backend_portable(self):
        """Exported state is slot-indexed ints: a u64xN plane reloads
        into an object-backend simulator bit-exactly."""
        batch = self._driven()
        rows, cycle = batch.export_state()
        assert len(rows) == batch.bundle.num_slots  # slot-indexed, not limb rows
        other = BatchSimulator(self.SRC, lanes=2, backend="object")
        other.import_state(rows, cycle)
        for name in WIDE_OUTPUTS:
            assert other.peek(name) == batch.peek(name)
        reloaded = BatchSimulator(self.SRC, lanes=2)
        reloaded.import_state(rows, cycle)
        for name in WIDE_OUTPUTS:
            assert reloaded.peek(name) == batch.peek(name)

    def test_sharded_wide_snapshot_roundtrip(self):
        source = wide_alu_src(128)
        with ShardedBatchSimulator(source, lanes=2, num_partitions=2) as shard:
            shard.poke("a", [(1 << 128) - 1, 99])
            shard.poke("b", [5, (1 << 127) + 3])
            shard.poke("s", 2)
            shard.step(3)
            checkpoint = shard.snapshot()
            before = shard.peek("o_acc")
            shard.step(4)
            assert shard.peek("o_acc") != before
            shard.restore(checkpoint)
            assert shard.peek("o_acc") == before


# ----------------------------------------------------------------------
# poke_row validation (RUM exchange hardening)
# ----------------------------------------------------------------------
class TestPokeRowValidation:
    def test_over_width_value_rejected(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        with pytest.raises(ValueError, match="does not fit"):
            batch.poke_row("enable", [1, 2])  # enable is 1 bit

    def test_negative_value_rejected(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        with pytest.raises(ValueError, match="does not fit"):
            batch.poke_row("enable", [0, -1])

    def test_wrong_lane_count_rejected(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        with pytest.raises(ValueError):
            batch.poke_row("enable", [1])

    def test_masked_row_accepted(self, counter_src):
        batch = BatchSimulator(counter_src, lanes=2)
        batch.poke_row("enable", [1, 0])
        batch.step()
        assert batch.peek("count") == [1, 0]

    @pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
    def test_wide_row_boundary(self):
        batch = BatchSimulator(wide_alu_src(65), lanes=2)
        batch.poke_row("a", [(1 << 65) - 1, 0])  # exactly in range
        with pytest.raises(ValueError, match="does not fit"):
            batch.poke_row("a", [1 << 65, 0])


# ----------------------------------------------------------------------
# Shared popcount fallback
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_NUMPY, reason="NumPy not installed")
class TestPopcountParity:
    class _NoBitwiseCount:
        """A numpy facade without ``bitwise_count`` (older NumPy)."""

        def __init__(self, np):
            self._np = np

        def __getattr__(self, name):
            if name == "bitwise_count":
                raise AttributeError(name)
            return getattr(self._np, name)

    def test_fallback_is_bit_exact_on_uint64(self, rng):
        import numpy as np

        shim = self._NoBitwiseCount(np)
        assert not hasattr(shim, "bitwise_count")
        fallback = popcount_parity(shim)
        native = popcount_parity(np)
        samples = [0, 1, (1 << 64) - 1, 0x8000000000000000] + [
            rng.randrange(1 << 64) for _ in range(64)
        ]
        values = np.array(samples, dtype=np.uint64)
        expected = [bin(value).count("1") & 1 for value in samples]
        assert fallback(values).tolist() == expected
        assert native(values).tolist() == expected
        assert fallback(values).dtype == np.uint64

    def test_object_mode_unbounded(self):
        import numpy as np

        pop = popcount_parity(np, object_mode=True)
        values = np.array([(1 << 200) - 1, 1 << 199, 0], dtype=object)
        assert [int(v) for v in pop(values)] == [0, 1, 0]


# ----------------------------------------------------------------------
# Perf gate: missing/zero metrics and backend-keyed rows
# ----------------------------------------------------------------------
def _load_perf_gate():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "perf_gate.py"
    spec = importlib.util.spec_from_file_location("perf_gate", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPerfGate:
    def _payload(self, rows):
        return {"numpy": True, "rows": rows}

    def test_missing_metric_rows_skipped(self, capsys):
        gate = _load_perf_gate()
        baseline = self._payload([
            {"design": "d", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 100.0},
            {"design": "e", "kernel": "PSU", "lanes": 8, "batch_lane_cps": None},
        ])
        current = self._payload([
            {"design": "d", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 90.0},
            {"design": "e", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 80.0},
        ])
        assert gate.gate(baseline, current, factor=5.0) == 0
        output = capsys.readouterr().out
        assert "skip" in output and "design=e" in output

    def test_zero_baseline_metric_skipped(self):
        gate = _load_perf_gate()
        baseline = self._payload([
            {"design": "d", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 0.0},
        ])
        current = self._payload([
            {"design": "d", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 10.0},
        ])
        # Must not divide by the zero baseline -- row is skipped, gate passes.
        assert gate.gate(baseline, current, factor=5.0) == 0

    def test_zero_current_metric_skipped(self):
        gate = _load_perf_gate()
        baseline = self._payload([
            {"design": "d", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 100.0},
        ])
        current = self._payload([
            {"design": "d", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 0},
        ])
        assert gate.gate(baseline, current, factor=5.0) == 0

    def test_backend_is_part_of_row_identity(self):
        gate = _load_perf_gate()
        fast = {"design": "sha3", "kernel": "SU", "lanes": 64,
                "backend": "u64xN", "batch_lane_cps": 30000.0}
        slow = {"design": "sha3", "kernel": "SU", "lanes": 64,
                "backend": "object", "batch_lane_cps": 7000.0}
        assert gate.row_key(fast) != gate.row_key(slow)
        # A u64xN current row must not gate against the object baseline:
        # no comparable rows -> pass.
        assert gate.gate(self._payload([slow]), self._payload([fast]), 5.0) == 0

    def test_regression_still_fails(self):
        gate = _load_perf_gate()
        baseline = self._payload([
            {"design": "d", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 1000.0},
        ])
        current = self._payload([
            {"design": "d", "kernel": "PSU", "lanes": 8, "batch_lane_cps": 100.0},
        ])
        assert gate.gate(baseline, current, factor=5.0) == 1
