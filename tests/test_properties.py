"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.perf.cache import CacheHierarchy, SetAssociativeCache
from repro.perf.machines import CacheLevelSpec, INTEL_XEON
from repro.perf.sweep import random_access_hit_rate
from repro.tensor import Fiber, Tensor, TensorFormat, dumps, loads, lower

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
points_2d = st.dictionaries(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    st.integers(1, 1000),
    max_size=30,
)

points_3d = st.dictionaries(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    st.integers(1, 100),
    max_size=25,
)


class TestFibertreeProperties:
    @given(st.lists(st.integers(0, 255), max_size=20))
    def test_fiber_dense_roundtrip(self, values):
        assert Fiber.from_dense(values).to_dense() == values

    @given(points_2d)
    def test_tensor_points_roundtrip(self, points):
        tensor = Tensor.from_points(points, ["M", "K"], [8, 8])
        assert dict(tensor.points()) == points

    @given(points_2d)
    def test_occupancy_equals_point_count(self, points):
        tensor = Tensor.from_points(points, ["M", "K"], [8, 8])
        assert tensor.occupancy == len(points)

    @given(points_3d, st.permutations(["A", "B", "C"]))
    def test_swizzle_preserves_points(self, points, order):
        tensor = Tensor.from_points(points, ["A", "B", "C"], [5, 5, 5])
        swizzled = tensor.swizzle(order)
        perm = [["A", "B", "C"].index(r) for r in order]
        expected = {
            tuple(coords[i] for i in perm): value
            for coords, value in points.items()
        }
        assert dict(swizzled.points()) == expected

    @given(points_2d)
    def test_csr_lowering_roundtrip(self, points):
        tensor = Tensor.from_points(points, ["M", "K"], [8, 8])
        lowered = lower(tensor, TensorFormat.csr())
        assert lowered.to_tensor() == tensor

    @given(points_2d)
    def test_json_roundtrip(self, points):
        tensor = Tensor.from_points(points, ["M", "K"], [8, 8])
        lowered = lower(tensor, TensorFormat.csr())
        assert loads(dumps(lowered)).to_tensor() == tensor

    @given(points_2d)
    def test_lowered_entries_match_occupancy(self, points):
        tensor = Tensor.from_points(points, ["M", "K"], [8, 8])
        lowered = lower(tensor, TensorFormat.csr())
        assert lowered.ranks["K"].num_entries == len(points)


class TestCacheProperties:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=200),
        st.sampled_from([2, 4, 8]),
    )
    def test_hits_plus_misses_is_accesses(self, lines, associativity):
        cache = SetAssociativeCache(
            CacheLevelSpec("L", 64 * 64, associativity, 64)
        )
        for line in lines:
            cache.access(line)
        assert cache.hits + cache.misses == len(lines)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=100))
    def test_repeat_access_hits(self, lines):
        """Accessing the same line twice in a row always hits the second time."""
        cache = SetAssociativeCache(CacheLevelSpec("L", 64 * 1024, 8, 64))
        for line in lines:
            cache.access(line)
            assert cache.access(line)

    @given(st.integers(1, 64))
    def test_fitting_working_set_all_hits_steady_state(self, num_lines):
        cache = SetAssociativeCache(CacheLevelSpec("L", 64 * 128, 8, 64))
        for _ in range(2):
            for line in range(num_lines):
                cache.access(line)
        cache.reset_counters()
        for line in range(num_lines):
            cache.access(line)
        assert cache.misses == 0

    @given(st.integers(100, 4000), st.integers(10, 900))
    def test_random_hit_rate_matches_simulation_direction(self, working, capacity):
        """The analytic skewed-random model is within the sim's ballpark."""
        rate = random_access_hit_rate(working, capacity)
        assert 0.0 <= rate <= 1.0
        if capacity >= working:
            assert rate == 1.0

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=300))
    def test_hierarchy_miss_counts_monotone(self, addresses):
        hierarchy = CacheHierarchy(INTEL_XEON, side="data")
        for address in addresses:
            hierarchy.access(address * 64)
        misses = hierarchy.miss_counts()
        assert misses[0] >= misses[1] >= misses[2]


class TestRandomCircuitEquivalence:
    """Random DFGs: every kernel and baseline agrees with direct evaluation."""

    @staticmethod
    def _random_graph(seed: int):
        from repro.graph.dfg import DataflowGraph

        rng = random.Random(seed)
        graph = DataflowGraph(f"rand{seed}")
        values = [graph.add_input(f"in{i}", rng.choice([1, 4, 8])) for i in range(3)]
        for i in range(rng.randrange(1, 4)):
            width = rng.choice([4, 8])
            values.append(graph.add_register(f"r{i}", width, rng.randrange(1 << width)))
        binary_ops = ["add", "sub", "and", "or", "xor", "mul", "eq", "lt"]
        for _ in range(rng.randrange(4, 20)):
            kind = rng.random()
            if kind < 0.6:
                op = rng.choice(binary_ops)
                a, b = rng.choice(values), rng.choice(values)
                wa, wb = graph.node(a).width, graph.node(b).width
                from repro.graph.opsem import get_semantics
                width = {"add": max(wa, wb) + 1, "sub": max(wa, wb) + 1,
                         "mul": wa + wb, "eq": 1, "lt": 1}.get(op, max(wa, wb))
                values.append(graph.add_op(op, (a, b), width))
            elif kind < 0.8:
                a = rng.choice(values)
                values.append(graph.add_op("not", (a,), graph.node(a).width))
            else:
                s, a, b = (rng.choice(values) for _ in range(3))
                width = max(graph.node(a).width, graph.node(b).width)
                values.append(graph.add_op("mux", (s, a, b), width))
        for i, name in enumerate(list(graph.registers)):
            candidates = [v for v in values if graph.node(v).width
                          == graph.registers[name].width]
            graph.set_register_next(name, rng.choice(candidates or [graph.registers[name].state_nid]))
        graph.set_output("out", values[-1])
        graph.validate()
        return graph

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000))
    def test_all_kernels_agree(self, seed):
        from repro.graph.evaluate import GraphSimulator
        from repro.sim import Simulator

        graph = self._random_graph(seed)
        golden = GraphSimulator(graph)
        simulators = [
            Simulator(graph, kernel=name, optimize_graph=False)
            for name in ("RU", "NU", "SU", "TI")
        ]
        rng = random.Random(seed ^ 0x5EED)
        for _ in range(8):
            for name, nid in graph.inputs.items():
                value = rng.randrange(1 << graph.node(nid).width)
                golden.poke(name, value)
                for simulator in simulators:
                    simulator.poke(name, value)
            expected = golden.peek("out")
            for simulator in simulators:
                assert simulator.peek("out") == expected
            golden.step()
            for simulator in simulators:
                simulator.step()

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 10_000))
    def test_optimizer_preserves_behaviour(self, seed):
        from repro.graph.evaluate import GraphSimulator
        from repro.graph.optimize import optimize

        graph = self._random_graph(seed)
        optimized, _ = optimize(graph)
        a, b = GraphSimulator(graph), GraphSimulator(optimized)
        rng = random.Random(seed ^ 0xBEEF)
        for _ in range(8):
            for name, nid in graph.inputs.items():
                value = rng.randrange(1 << graph.node(nid).width)
                a.poke(name, value)
                b.poke(name, value)
            assert a.peek("out") == b.peek("out")
            a.step()
            b.step()


class TestFirrtlRoundtripProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 16), st.integers(0, 2 ** 16 - 1))
    def test_literaccording_width(self, width, value):
        from repro.firrtl import parse_expr_text
        from repro.firrtl.ast import Literal

        value = value % (1 << width)
        expr = parse_expr_text(f"UInt<{width}>({value})")
        assert isinstance(expr, Literal)
        assert expr.value == value

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_counter_modular_arithmetic(self, start, steps):
        """Counter wraps modulo 2^8 regardless of starting point."""
        from repro.sim import Simulator
        from repro.designs import library

        simulator = Simulator(library.counter(8))
        simulator.poke("enable", 1)
        simulator.step(steps % 64)
        assert simulator.peek("count") == (steps % 64) % 256
