"""Tests for OIM construction, formats, and the Cascade 1 golden model."""

import pytest

from repro.graph.opsem import REDUCE, SELECT, UNARY
from repro.kernels.pykernels import make_kernel
from repro.oim import (
    OpTable,
    build_oim,
    lower_oim,
    lower_oim_fast,
    occupancy_rules,
    oim_format,
    oim_storage_bytes,
    run_cascade_cycle,
)
from repro.tensor import dumps, loads


class TestOpTable:
    def test_codes_deterministic(self, mixed_graph):
        a = OpTable.from_graph(mixed_graph)
        b = OpTable.from_graph(mixed_graph)
        assert a.names() == b.names()

    def test_roundtrip_document(self, mixed_graph):
        table = OpTable.from_graph(mixed_graph)
        again = OpTable.from_document(table.to_document())
        assert again.names() == table.names()

    def test_select_codes_match_class(self, mixed_graph):
        table = OpTable.from_graph(mixed_graph)
        for code in table.select_codes():
            assert table.klass_of(code) == SELECT

    def test_arity_from_code(self, mixed_graph):
        table = OpTable.from_graph(mixed_graph)
        for entry in table:
            assert table.arity_of(entry.code) == entry.semantics.arity

    def test_unknown_name_rejected(self, mixed_graph):
        with pytest.raises(KeyError):
            OpTable.from_graph(mixed_graph).code_of("nonexistent")


class TestBuilder:
    def test_every_op_recorded_once(self, mixed_graph, mixed_bundle):
        assert mixed_bundle.num_ops == mixed_graph.num_ops

    def test_slots_unique(self, mixed_bundle):
        slots = [r.s for layer in mixed_bundle.layers for r in layer]
        assert len(slots) == len(set(slots))

    def test_operand_slots_valid(self, mixed_bundle):
        for layer in mixed_bundle.layers:
            for record in layer:
                for r in record.operands:
                    assert 0 <= r < mixed_bundle.num_slots

    def test_layer_dependencies(self, mixed_bundle):
        """An op's operands must be leaves or outputs of earlier layers."""
        produced_in = {}
        for index, layer in enumerate(mixed_bundle.layers):
            for record in layer:
                produced_in[record.s] = index
        for index, layer in enumerate(mixed_bundle.layers):
            for record in layer:
                for r in record.operands:
                    assert produced_in.get(r, -1) < index

    def test_initial_values_have_constants(self, mixed_bundle):
        values = mixed_bundle.initial_values()
        for slot, value in mixed_bundle.const_slots:
            assert values[slot] == value
        for slot, init in mixed_bundle.register_inits:
            assert values[slot] == init

    def test_shape_reports_ranks(self, mixed_bundle):
        shape = mixed_bundle.shape()
        assert shape["I"] == mixed_bundle.num_layers
        assert shape["S"] == shape["R"] == mixed_bundle.num_slots
        assert shape["N"] == len(mixed_bundle.op_table)

    def test_identity_mode_adds_ident_ops(self, mixed_graph):
        elided = build_oim(mixed_graph)
        materialised = build_oim(mixed_graph, include_identities=True)
        assert materialised.num_ops > elided.num_ops
        ident = materialised.op_table.code_of("ident")
        ident_ops = [
            r for layer in materialised.layers for r in layer if r.n == ident
        ]
        # Identity ops copy in place (source slot == destination slot):
        # exactly the property that allows eliding them (Section 4.3).
        assert ident_ops
        assert all(r.operands == (r.s,) for r in ident_ops)


class TestFormats:
    def test_figure12_specs(self):
        unopt = oim_format("unoptimized")
        opt = oim_format("optimized")
        swz = oim_format("swizzled")
        # Fig 12a: everything materialised.
        assert unopt.fmt("S").stores_payloads
        # Fig 12b: one-hot and mask payloads elided.
        assert not opt.fmt("S").stores_payloads
        assert not opt.fmt("R").stores_payloads
        assert opt.fmt("I").stores_payloads
        # Fig 12c: swizzled order with uncompressed N carrying payloads.
        assert swz.rank_order == ("I", "N", "S", "O", "R")
        assert not swz.fmt("I").stores_payloads
        assert swz.fmt("N").stores_payloads

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            oim_format("bogus")

    @pytest.mark.parametrize("variant", ["unoptimized", "optimized", "swizzled"])
    def test_fast_path_matches_generic(self, mixed_bundle, variant):
        fast = lower_oim_fast(mixed_bundle, variant)
        generic = lower_oim(mixed_bundle, variant)
        for rank in fast.rank_order:
            assert fast.ranks[rank].coords == generic.ranks[rank].coords, rank
            assert fast.ranks[rank].payloads == generic.ranks[rank].payloads, rank
            assert fast.ranks[rank].num_entries == generic.ranks[rank].num_entries
        assert fast.storage_bits() == generic.storage_bits()

    @pytest.mark.parametrize("variant", ["unoptimized", "optimized", "swizzled"])
    def test_reconstruction_with_rules(self, mixed_bundle, variant):
        lowered = lower_oim_fast(mixed_bundle, variant)
        rules = occupancy_rules(mixed_bundle, variant)
        rebuilt = lowered.to_tensor(occupancy_rules=rules)
        expected = mixed_bundle.to_tensor(oim_format(variant).rank_order)
        assert rebuilt == expected

    def test_compression_monotone(self, mixed_bundle):
        """Figure 12: each step strictly shrinks the OIM."""
        unopt = oim_storage_bytes(mixed_bundle, "unoptimized")
        opt = oim_storage_bytes(mixed_bundle, "optimized")
        swz = oim_storage_bytes(mixed_bundle, "swizzled")
        assert unopt > opt > 0
        assert swz < unopt

    def test_json_roundtrip_preserves_size(self, mixed_bundle):
        lowered = lower_oim_fast(mixed_bundle, "optimized")
        again = loads(dumps(lowered))
        assert again.storage_bits() == lowered.storage_bits()
        rules = occupancy_rules(mixed_bundle, "optimized")
        assert again.to_tensor(occupancy_rules=rules) == mixed_bundle.to_tensor()


class TestCascadeGoldenModel:
    """Cascade 1 (with identities materialised) vs the elided kernel."""

    @pytest.mark.parametrize("inputs", [(3, 250), (0, 0), (255, 255), (17, 4)])
    def test_cascade_matches_kernel(self, mixed_graph, inputs):
        bundle = build_oim(mixed_graph)
        bundle_id = build_oim(mixed_graph, include_identities=True)
        assert bundle_id.num_slots == bundle.num_slots

        values = bundle.initial_values()
        values[bundle.input_slots["a"]] = inputs[0]
        values[bundle.input_slots["b"]] = inputs[1]
        seeded = list(values)

        kernel = make_kernel(bundle, "OU")
        kernel.eval_comb(values)

        final = run_cascade_cycle(bundle_id, seeded)
        checked = 0
        for slot, cascade_value in enumerate(final):
            if cascade_value is not None:
                assert cascade_value == values[slot], f"slot {slot}"
                checked += 1
        # Outputs and register next-values must all have been carried to LI_I.
        assert checked >= len(bundle.output_slots) + len(bundle.register_commits)

    def test_cascade_structure(self, mixed_bundle):
        from repro.oim import build_cascade

        cascade = build_cascade(mixed_bundle)
        assert len(cascade) == 5
        assert cascade.iterative_rank == "I"
        text = cascade.describe()
        assert "op_u[n]" in text and "op_r[n]" in text and "op_s[n]" in text
        assert "n not in n_sel" in text and "n in n_sel" in text
