"""Sparsity-aware execution: the activity engines stay bit-exact.

The fiber-driven activity walk (scalar ``kernel="activity"``, batched
:class:`~repro.batch.BatchActivityKernel` with lane compaction, and the
sharded settle-skipping composition) re-evaluates only what toggled --
an optimisation that is only admissible if it is *invisible*.  This
suite pins that down three ways:

* lockstep runs of the activity-enabled batch and shard engines against
  their plain counterparts (and the scalar reference) on every registry
  design, via the differential harness;
* low-activity stimulus (:func:`repro.workloads.sparsify`) asserting the
  engines actually skip work -- nonzero layer/op/lane skip rates, so the
  sparse path is exercised, not just bypassed;
* bit-identical VCD documents across ``snapshot()``/``restore()`` and
  against a plain-kernel run of the same stimulus, so the skip logic
  never leaks into observable waveforms.

Budget: the small designs take the activity arms at full width; the
heavy designs (rocket-4/8, small-4/8, gemmini-16/32) run a trimmed
single-seed pass like ``tests/test_differential.py`` does.
"""

import pytest

from repro.batch import BatchSimulator, HAS_NUMPY
from repro.designs.registry import compiled_graph, standard_designs
from repro.kernels.activity import ActivityStats, merge_stats
from repro.shard import ShardedBatchSimulator
from repro.sim import Simulator, VcdWriter
from repro.verify.differential import (
    _spec,
    observable_outputs,
    run_differential_suite,
)
from repro.workloads import (
    batched_workload_for,
    sparse_batched_workload_for,
    sparsify,
    workload_for,
)

SMALL_DESIGNS = ("rocket-1", "small-1", "gemmini-8", "sha3")
HEAVY_DESIGNS = tuple(
    design for design in standard_designs() if design not in SMALL_DESIGNS
)

#: Activity engines vs their plain counterparts, scalar reference first.
ACTIVITY_MATRIX = [
    _spec("scalar", "scalar", kernel="PSU"),
    _spec("batch-auto", "batch", backend="auto", kernel="PSU"),
    _spec("batch-activity", "batch", backend="auto", kernel="activity:PSU"),
    _spec("shard-serial-greedy", "shard", executor="serial",
          partitioner="greedy", kernel="PSU"),
    _spec("shard-activity", "shard", executor="serial",
          partitioner="greedy", kernel="activity:PSU"),
]

#: Heavy designs: one plain batch reference against both sparse engines.
TRIMMED_ACTIVITY_MATRIX = [
    _spec("batch-auto", "batch", backend="auto", kernel="PSU"),
    _spec("batch-activity", "batch", backend="auto", kernel="activity:PSU"),
    _spec("shard-activity", "shard", executor="serial",
          partitioner="greedy", kernel="activity:PSU"),
]


def _check(results):
    for result in results:
        assert result.ok, result.summary()


class TestActivityLockstep:
    """Differential runs: sparse engines vs dense on every design."""

    @pytest.mark.parametrize("design", SMALL_DESIGNS)
    def test_small_designs_full_matrix(self, design):
        _check(run_differential_suite(
            design, seeds=[0, 1], lanes=2, cycles=12,
            engines=ACTIVITY_MATRIX,
        ))

    @pytest.mark.parametrize("design", HEAVY_DESIGNS)
    def test_heavy_designs_trimmed(self, design):
        _check(run_differential_suite(
            design, seeds=[0], lanes=2, cycles=6,
            engines=TRIMMED_ACTIVITY_MATRIX,
        ))

    @pytest.mark.parametrize("design", SMALL_DESIGNS)
    def test_sparse_stimulus_lockstep(self, design):
        """Held (low-activity) stimulus through the same matrix: the
        regime the sparse engines are built for is also cross-checked."""
        fleet = {}
        try:
            for spec in ACTIVITY_MATRIX:
                from repro.verify.differential import build_engine
                fleet[spec.name] = build_engine(spec, design, 2)
            workload = sparse_batched_workload_for(design, 2, period=6)
            from repro.sim import first_divergence, run_lockstep
            traces = run_lockstep(
                fleet, workload, observable_outputs(design), 18
            )
            diff = first_divergence(traces, reference="scalar")
            assert diff is None, diff
        finally:
            for engine in fleet.values():
                close = getattr(engine, "close", None)
                if close is not None:
                    close()


class TestSkipRates:
    """Low-activity stimulus must actually skip work."""

    def test_batch_skips_under_held_stimulus(self):
        sim = BatchSimulator(
            compiled_graph("rocket-1"), lanes=4, kernel="activity"
        )
        workload = sparse_batched_workload_for("rocket-1", 4, period=8)
        for cycle in range(32):
            workload.apply(sim, cycle)
            sim.step()
        stats = sim.activity_stats
        assert stats is not None and stats.cycles == 32
        assert stats.op_skip_rate > 0.0
        assert stats.layer_skip_rate > 0.0
        assert stats.ops_evaluated > 0  # it did run the design, too

    def test_lane_compaction_skips_quiet_lanes(self):
        """Lanes whose inputs hold still are compacted out of the pass."""
        sim = BatchSimulator(
            compiled_graph("rocket-1"), lanes=4, kernel="activity"
        )
        dense = batched_workload_for("rocket-1", 4)
        held = sparsify(dense, period=1 << 20)  # lanes 1-3 frozen streams
        for cycle in range(24):
            # Lane 0 gets fresh stimulus every cycle, others hold.
            for name in dense.lane(0).drivers:
                values = [dense.lane(0).drivers[name](cycle)]
                values += [held.lane(i).drivers[name](cycle)
                           for i in range(1, 4)]
                sim.poke(name, values)
            sim.step()
        stats = sim.activity_stats
        assert stats.lanes_skipped > 0
        assert stats.lane_skip_rate > 0.0

    def test_scalar_kernel_skips(self):
        sim = Simulator(compiled_graph("rocket-1"), kernel="activity")
        workload = sparsify(workload_for("rocket-1"), period=8)
        for cycle in range(32):
            workload.apply(sim, cycle)
            sim.step()
        stats = sim.activity_stats
        assert stats is not None and stats.op_skip_rate > 0.0

    def test_shard_skips_and_merges(self):
        sim = ShardedBatchSimulator(
            compiled_graph("rocket-1"), lanes=2, num_partitions=2,
            kernel="activity",
        )
        try:
            workload = sparse_batched_workload_for("rocket-1", 2, period=8)
            for cycle in range(32):
                workload.apply(sim, cycle)
                sim.step()
            stats = sim.activity_stats
            assert isinstance(stats, ActivityStats)
            assert stats.cycles == 32  # merge() takes max, not sum
            assert stats.op_skip_rate > 0.0
        finally:
            sim.close()

    def test_plain_kernels_report_none(self):
        sim = BatchSimulator(compiled_graph("rocket-1"), lanes=2)
        assert sim.activity_stats is None
        shard = ShardedBatchSimulator(
            compiled_graph("rocket-1"), lanes=2, num_partitions=2
        )
        try:
            assert shard.activity_stats is None
        finally:
            shard.close()


class TestActivityVcd:
    """Waveform identity: restore replays and plain runs match bit-for-bit."""

    WARMUP = 6
    SEGMENT = 10

    def _segment_document(self, sim, workload, signals, start):
        writer = VcdWriter(sim, signals)
        for cycle in range(start, start + self.SEGMENT):
            workload.apply(sim, cycle)
            sim.step()
            writer.sample()
        return writer.document()

    def test_vcd_identical_across_snapshot_restore(self):
        design = "rocket-1"
        signals = {
            name: width
            for name, width in BatchSimulator(
                compiled_graph(design), lanes=2
            ).signal_widths.items()
            if name in observable_outputs(design)
        }
        workload = sparse_batched_workload_for(design, 2, period=4)

        sim = BatchSimulator(compiled_graph(design), lanes=2,
                             kernel="activity")
        for cycle in range(self.WARMUP):
            workload.apply(sim, cycle)
            sim.step()
        snap = sim.snapshot()
        first = self._segment_document(sim, workload, signals, self.WARMUP)

        # restore() invalidates the fiber snapshot: the replay's first
        # pass is cold, yet the waveform must not change by a bit.
        sim.restore(snap)
        replay = self._segment_document(sim, workload, signals, self.WARMUP)
        assert replay == first

        # ... and a plain-kernel run of the same stream matches too.
        plain = BatchSimulator(compiled_graph(design), lanes=2)
        for cycle in range(self.WARMUP):
            workload.apply(plain, cycle)
            plain.step()
        dense = self._segment_document(plain, workload, signals, self.WARMUP)
        assert dense == first


class TestActivityStatsApi:
    def test_merge_and_dict_round_trip(self):
        a = ActivityStats(cycles=4, layers_evaluated=8, layers_skipped=2,
                          ops_evaluated=30, ops_skipped=10,
                          lanes_active=6, lanes_skipped=2)
        b = ActivityStats(cycles=6, layers_evaluated=1, layers_skipped=9,
                          ops_evaluated=5, ops_skipped=35,
                          lanes_active=1, lanes_skipped=7)
        a.merge(b)  # in-place accumulation
        assert a.cycles == 6  # max, not sum: shard partitions share cycles
        assert a.ops_evaluated == 35 and a.ops_skipped == 45
        assert a.op_skip_rate == pytest.approx(45 / 80)
        assert ActivityStats.from_dict(a.as_dict()) == a

    def test_merge_stats_folds_optionals(self):
        a = ActivityStats(cycles=2, ops_evaluated=4)
        assert merge_stats([None, a, None]) == a
        assert merge_stats([]) == ActivityStats()

    def test_sparsify_validation(self):
        workload = workload_for("rocket-1")
        with pytest.raises(ValueError):
            sparsify(workload, 0)
        held = sparsify(workload, 4)
        assert held.drivers["reset"](1) == workload.drivers["reset"](1)
        for cycle in range(12):
            base = cycle - cycle % 4
            assert held.drivers["instr"](cycle) == \
                workload.drivers["instr"](base)


if HAS_NUMPY:
    class TestActivityBackends:
        """The activity kernel composes with every value-plane backend."""

        @pytest.mark.parametrize("backend", ["u64", "object", "python"])
        def test_backend_lockstep(self, backend):
            plain = BatchSimulator(compiled_graph("rocket-1"), lanes=2,
                                   backend=backend)
            sparse = BatchSimulator(compiled_graph("rocket-1"), lanes=2,
                                    backend=backend, kernel="activity")
            workload = batched_workload_for("rocket-1", 2)
            for cycle in range(10):
                workload.apply(plain, cycle)
                workload.apply(sparse, cycle)
                plain.step()
                sparse.step()
                for name in observable_outputs("rocket-1"):
                    assert sparse.peek(name) == plain.peek(name), (
                        f"{name} diverged at cycle {cycle}"
                    )

        def test_u64xn_backend_lockstep(self):
            # sha3 slots exceed 64 bits: the limb plane's activity path.
            plain = BatchSimulator(compiled_graph("sha3"), lanes=2,
                                   backend="u64xN")
            sparse = BatchSimulator(compiled_graph("sha3"), lanes=2,
                                    backend="u64xN", kernel="activity")
            workload = batched_workload_for("sha3", 2)
            for cycle in range(10):
                workload.apply(plain, cycle)
                workload.apply(sparse, cycle)
                plain.step()
                sparse.step()
                for name in observable_outputs("sha3"):
                    assert sparse.peek(name) == plain.peek(name), (
                        f"{name} diverged at cycle {cycle}"
                    )
