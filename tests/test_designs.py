"""Tests for the design generators and workloads."""

import random

import pytest

from repro.designs import (
    compile_named_design,
    get_design,
    keccak_f_reference,
    library,
    parse_design_name,
    sha3_soc,
    standard_designs,
)
from repro.designs.sha3 import NUM_ROUNDS, round_constants_for_step
from repro.firrtl import ReferenceSimulator, elaborate, parse
from repro.graph import build_dfg, levelize, optimize
from repro.sim import Simulator
from repro.workloads import sim_cycles_for, workload_for

from conftest import drive_random_inputs


class TestRegistry:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("rocket-4", ("rocket", 4)),
            ("r-4", ("rocket", 4)),
            ("small-8", ("small", 8)),
            ("s-1", ("small", 1)),
            ("gemmini-16", ("gemmini", 16)),
            ("g-8", ("gemmini", 8)),
            ("sha3", ("sha3", 64)),
        ],
    )
    def test_name_parsing(self, name, expected):
        assert parse_design_name(name) == expected

    def test_bad_names_rejected(self):
        with pytest.raises(KeyError):
            parse_design_name("pentium")
        with pytest.raises(KeyError):
            parse_design_name("rocket")  # missing size

    def test_standard_designs_all_resolve(self):
        for name in standard_designs():
            parse_design_name(name)

    def test_compile_cached(self):
        a = compile_named_design("gemmini-4")
        b = compile_named_design("gemmini-4")
        assert a is b


class TestLibraryCircuits:
    @pytest.mark.parametrize(
        "factory", [library.counter, library.accumulator, library.lfsr,
                    library.alu, library.shift_fifo, library.gcd],
    )
    def test_kernel_matches_reference(self, factory, rng):
        src = factory()
        design = elaborate(parse(src))
        drive_random_inputs(
            [ReferenceSimulator(design), Simulator(src, kernel="NU")],
            design, rng, 40,
        )

    def test_gcd_computes_gcd(self):
        import math

        simulator = Simulator(library.gcd())
        simulator.poke("load", 1)
        simulator.poke("a", 48)
        simulator.poke("b", 36)
        simulator.step()
        simulator.poke("load", 0)
        for _ in range(64):
            if simulator.peek("done"):
                break
            simulator.step()
        assert simulator.peek("result") == math.gcd(48, 36)

    def test_accumulator_saturates(self):
        simulator = Simulator(library.accumulator(width=8))
        simulator.poke("in", 255)
        simulator.step(4)
        assert simulator.peek("total") == 255
        assert simulator.peek("saturated") == 1

    def test_lfsr_has_long_period(self):
        simulator = Simulator(library.lfsr(width=8))
        seen = set()
        for _ in range(40):
            seen.add(simulator.peek("value"))
            simulator.step()
        assert len(seen) > 30  # no short cycle

    def test_fifo_latency(self):
        simulator = Simulator(library.shift_fifo(width=8, depth=3))
        simulator.poke("push", 1)
        simulator.poke("data_in", 0x5A)
        simulator.step()
        simulator.poke("data_in", 0)
        assert simulator.peek("valid_out") == 0
        simulator.step(2)
        assert simulator.peek("valid_out") == 1
        assert simulator.peek("data_out") == 0x5A


class TestCoreGenerators:
    def test_identity_ratio_band(self):
        """Table 1's ratios: rocket ~6.9x, small ~9.5x (we accept a band)."""
        rocket = compile_named_design("rocket-1")
        small = compile_named_design("small-1")
        assert 5.0 <= rocket.levelization.identity_ratio <= 9.0
        assert 7.5 <= small.levelization.identity_ratio <= 12.0
        assert small.levelization.identity_ratio > rocket.levelization.identity_ratio

    def test_ops_scale_with_cores(self):
        one = compile_named_design("rocket-1")
        four = compile_named_design("rocket-4")
        assert 3.0 <= four.num_ops / one.num_ops <= 4.5

    def test_smallboom_bigger_and_deeper(self):
        rocket = compile_named_design("rocket-1")
        small = compile_named_design("small-1")
        assert small.num_ops > rocket.num_ops
        assert small.num_layers > rocket.num_layers

    def test_core_runs_dhrystone(self, rng):
        simulator = Simulator(get_design("rocket-1"))
        workload = workload_for("rocket-1")
        for cycle in range(30):
            workload.apply(simulator, cycle)
            simulator.step()
        assert simulator.cycle == 30
        # The design must actually be doing work: output changes over time.
        values = set()
        for cycle in range(30, 45):
            workload.apply(simulator, cycle)
            values.add(simulator.peek("out"))
            simulator.step()
        assert len(values) > 5


class TestGemmini:
    def test_mac_mode(self):
        from repro.designs import gemmini_soc

        simulator = Simulator(gemmini_soc(2))
        simulator.poke("reset", 1); simulator.step(); simulator.poke("reset", 0)
        simulator.poke("load_w", 1); simulator.poke("weight_in", 2)
        simulator.step()
        simulator.poke("load_w", 0)
        simulator.poke("act_in", 3); simulator.poke("mode_add", 0)
        simulator.step(6)
        assert simulator.peek("result") != 0

    def test_dims_scale_quadratically(self):
        small = compile_named_design("gemmini-4")
        large = compile_named_design("gemmini-8")
        assert 3.0 <= large.num_ops / small.num_ops <= 5.0


class TestSha3:
    @pytest.mark.parametrize("lane_width,rpc", [(16, 4), (16, 1), (64, 4)])
    def test_matches_software_keccak(self, lane_width, rpc, rng):
        simulator = Simulator(sha3_soc(lane_width, rpc), kernel="IU")
        state = [rng.randrange(1 << lane_width) for _ in range(25)]
        for idx, lane in enumerate(state):
            simulator.poke("absorb_valid", 1)
            simulator.poke("absorb_idx", idx)
            simulator.poke("absorb_lane", lane)
            simulator.step()
        simulator.poke("absorb_valid", 0)
        simulator.poke("start", 1)
        simulator.step()
        simulator.poke("start", 0)
        for step in range(NUM_ROUNDS // rpc):
            for position, rc in enumerate(
                round_constants_for_step(step, lane_width, rpc)
            ):
                simulator.poke(f"rc{position}", rc)
            simulator.step()
        got = [simulator.peek(f"s_{x}_{y}") for y in range(5) for x in range(5)]
        assert got == keccak_f_reference(state, lane_width)
        assert simulator.peek("done") == 1

    def test_rounds_per_cycle_must_divide(self):
        with pytest.raises(ValueError):
            sha3_soc(16, 5)

    def test_workload_drives_constants(self):
        simulator = Simulator(sha3_soc(64, 4))
        workload = workload_for("sha3")
        for cycle in range(40):
            workload.apply(simulator, cycle)
            simulator.step()
        assert simulator.cycle == 40


class TestWorkloads:
    def test_table3_cycle_counts(self):
        """Table 3 (scaled): rocket 540K, small 750K, sha3 1200K ..."""
        assert sim_cycles_for("rocket-1") < sim_cycles_for("small-1")
        assert sim_cycles_for("sha3") > sim_cycles_for("gemmini-8")
        assert sim_cycles_for("gemmini-8") < sim_cycles_for("gemmini-32")

    def test_dhrystone_deterministic(self):
        a = workload_for("rocket-1")
        b = workload_for("rocket-1")
        assert [a.drivers["instr"](c) for c in range(10)] == [
            b.drivers["instr"](c) for c in range(10)
        ]

    def test_dhrystone_opcode_mix(self):
        workload = workload_for("rocket-1")
        opcodes = [workload.drivers["instr"](c) & 0x7F for c in range(500)]
        alu_fraction = sum(1 for op in opcodes if op in (0x13, 0x33)) / len(opcodes)
        assert 0.4 < alu_fraction < 0.8  # dhrystone is ALU-heavy

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            workload_for("vax-780")

    def test_matrix_add_sets_mode(self):
        workload = workload_for("gemmini-8")
        assert workload.drivers["mode_add"](100) == 1
