"""Tests for the machine performance model: caches, sweep, estimator, compile."""

import pytest

from repro.perf import (
    ALL_MACHINES,
    CacheHierarchy,
    CacheLevelSpec,
    SetAssociativeCache,
    StridePrefetcher,
    compile_cost,
    cyclic_sweep_misses,
    estimate,
    get_machine,
    random_access_hit_rate,
    random_miss_profile,
    sweep_miss_profile,
    with_llc_capacity,
)
from repro.perf.machines import INTEL_XEON, KIB, MIB


class TestMachines:
    def test_table2_cache_sizes(self):
        """The four hosts carry the paper's Table 2 cache capacities."""
        core = get_machine("intel-core")
        assert core.l1i.capacity == 32 * KIB and core.l1d.capacity == 48 * KIB
        assert core.l2.capacity == 2 * MIB and core.llc.capacity == 36 * MIB
        xeon = get_machine("intel-xeon")
        assert xeon.llc.capacity == int(52.5 * MIB)
        amd = get_machine("amd")
        assert amd.l2.capacity == 512 * KIB and amd.llc.capacity == 8 * MIB
        aws = get_machine("aws")
        assert aws.l1i.capacity == 64 * KIB and aws.l1d.capacity == 64 * KIB

    def test_xeon_llc_latency_roughly_double_core(self):
        """Section 7.2: Xeon LLC latency ~2x the Intel Core's."""
        ratio = INTEL_XEON.llc.latency / get_machine("intel-core").llc.latency
        assert 1.8 <= ratio <= 2.5

    def test_graviton_predictor_quality(self):
        """Section 7.5: 22% -> 0.22% misprediction moving to Graviton 4."""
        assert get_machine("aws").predictor_quality == pytest.approx(0.01)

    def test_llc_clamp(self):
        clamped = with_llc_capacity(INTEL_XEON, int(3.5 * MIB))
        assert clamped.llc.capacity == int(3.5 * MIB)
        assert clamped.l2.capacity == INTEL_XEON.l2.capacity

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError):
            get_machine("cray-1")


class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(CacheLevelSpec("L1", 1024, 2, 64))
        assert not cache.access(0)
        assert cache.access(0)

    def test_lru_eviction(self):
        # 2-way, so a third distinct line mapping to the same set evicts LRU.
        cache = SetAssociativeCache(CacheLevelSpec("L1", 2 * 64 * 4, 2, 64))
        sets = cache.num_sets
        lines = [0, sets, 2 * sets]  # all map to set 0
        cache.access(lines[0])
        cache.access(lines[1])
        cache.access(lines[0])      # line0 now MRU
        cache.access(lines[2])      # evicts line1
        assert cache.contains(lines[0])
        assert not cache.contains(lines[1])

    def test_counters(self):
        cache = SetAssociativeCache(CacheLevelSpec("L1", 1024, 2, 64))
        cache.access(0)
        cache.access(0)
        assert (cache.hits, cache.misses) == (1, 1)


class TestPrefetcher:
    def test_stride_detected_after_two_steps(self):
        prefetcher = StridePrefetcher(degree=2)
        assert prefetcher.observe(0, 10) == []
        assert prefetcher.observe(0, 11) == []  # stride seen once
        assert prefetcher.observe(0, 12) == [13, 14]

    def test_streams_independent(self):
        prefetcher = StridePrefetcher(degree=1)
        prefetcher.observe(0, 0)
        prefetcher.observe(0, 1)
        assert prefetcher.observe(1, 100) == []


class TestSweepModelVsSimulator:
    """The analytic model's cliffs match the trace-driven simulator."""

    def _steady_state_misses(self, footprint_lines, capacity_lines):
        spec = CacheLevelSpec("L", capacity_lines * 64, 8, 64)
        cache = SetAssociativeCache(spec)
        for _ in range(3):  # warm up
            for line in range(footprint_lines):
                cache.access(line)
        cache.reset_counters()
        for line in range(footprint_lines):
            cache.access(line)
        return cache.misses

    def test_fitting_sweep_never_misses(self):
        simulated = self._steady_state_misses(100, 256)
        assert simulated == 0
        assert cyclic_sweep_misses(100, 256) == 0

    def test_thrashing_sweep_misses_everything(self):
        simulated = self._steady_state_misses(600, 256)
        assert simulated == 600  # LRU cyclic pathology
        # The analytic model saturates to the same value beyond 2x capacity.
        assert cyclic_sweep_misses(600, 256) == pytest.approx(600, rel=0.05)

    def test_model_is_upper_bounded_by_lru(self):
        """In the ramp region the model stays below full LRU thrash."""
        simulated = self._steady_state_misses(280, 256)
        model = cyclic_sweep_misses(280, 256)
        assert 0 <= model <= simulated

    def test_miss_profile_levels_monotone(self):
        misses = sweep_miss_profile(4 * MIB, INTEL_XEON, side="inst")
        assert misses[0] >= misses[1] >= misses[2]

    def test_random_hit_rate_bounds(self):
        assert random_access_hit_rate(100, 200) == 1.0
        assert 0.0 < random_access_hit_rate(10_000, 100) < 1.0

    def test_random_profile_monotone_in_capacity(self):
        small = random_miss_profile(1 * MIB, 1000, with_llc_capacity(INTEL_XEON, 2 * MIB))
        large = random_miss_profile(1 * MIB, 1000, INTEL_XEON)
        assert small[-1] >= large[-1]


class TestEstimator:
    def _profile(self, **overrides):
        from repro.kernels.profile import KernelProfile

        base = dict(
            kernel="PSU", design="toy", ops=10_000, operands=23_000,
            layers=40, num_slots=12_000, dyn_instr=165_000,
            code_bytes=400_000, hot_code_bytes=40_000, oim_data_bytes=200_000,
            value_bytes=48_000, v_reads=33_000, loads=80_000,
            branches=7_000, mispredict_rate=0.0012, code_streamed=False,
            ilp=5.0,
        )
        base.update(overrides)
        return KernelProfile(**base)

    def test_topdown_sums_to_one(self):
        result = estimate(self._profile(), INTEL_XEON, 1000)
        assert sum(result.topdown.values()) == pytest.approx(1.0)

    def test_ipc_bounded_by_width_and_ilp(self):
        result = estimate(self._profile(), INTEL_XEON, 1000)
        assert 0 < result.ipc <= 5.0

    def test_streamed_code_pays_frontend(self):
        rolled = estimate(self._profile(), INTEL_XEON, 1000)
        streamed = estimate(
            self._profile(code_streamed=True, hot_code_bytes=6 * MIB,
                          code_bytes=6 * MIB, kernel="SU"),
            INTEL_XEON, 1000,
        )
        assert streamed.topdown["frontend"] > rolled.topdown["frontend"]
        assert streamed.sim_time_s > rolled.sim_time_s

    def test_branchy_profile_pays_bad_speculation(self):
        quiet = estimate(self._profile(), INTEL_XEON, 1000)
        branchy = estimate(
            self._profile(branches=12_000, mispredict_rate=0.22), INTEL_XEON, 1000
        )
        assert branchy.topdown["bad_speculation"] > quiet.topdown["bad_speculation"]

    def test_predictor_quality_rescues_branchy_code(self):
        branchy = self._profile(branches=12_000, mispredict_rate=0.22)
        xeon = estimate(branchy, INTEL_XEON, 1000)
        aws = estimate(branchy, get_machine("aws"), 1000)
        assert aws.branch_miss_rate < xeon.branch_miss_rate / 10

    def test_time_scales_with_cycles(self):
        one = estimate(self._profile(), INTEL_XEON, 1000)
        ten = estimate(self._profile(), INTEL_XEON, 10_000)
        assert ten.sim_time_s == pytest.approx(10 * one.sim_time_s)

    def test_llc_cliff(self):
        """Figure 21's mechanism: a big streamed binary hits the LLC wall."""
        big = self._profile(
            code_streamed=True, hot_code_bytes=5 * MIB, code_bytes=5 * MIB,
            kernel="ESSENT",
        )
        roomy = estimate(big, INTEL_XEON, 1000)
        tight = estimate(big, with_llc_capacity(INTEL_XEON, int(3.5 * MIB)), 1000)
        assert tight.sim_time_s > 1.5 * roomy.sim_time_s


class TestCompileModel:
    def test_small_function_linear(self):
        small = compile_cost(10_000, 3_000)
        tiny = compile_cost(1_000, 1_000)
        assert small.seconds > tiny.seconds
        assert small.seconds < 30

    def test_giant_function_superlinear(self):
        """Table 7's ESSENT scaling: ~N^1.5 beyond the threshold."""
        r1 = compile_cost(60_000, 60_000)
        r24 = compile_cost(24 * 60_000, 24 * 60_000)
        ratio = r24.seconds / r1.seconds
        assert 24 ** 1.3 < ratio < 24 ** 1.7

    def test_table7_essent_magnitudes(self):
        """Calibration anchors: ~121 s / 2.8 GB at r1; ~13.7 Ks / 234 GB at r24."""
        r1 = compile_cost(60_000 * 1.05, 60_000 * 1.05)
        assert 60 < r1.seconds < 250
        assert 1.5e9 < r1.peak_memory_bytes < 6e9
        r24 = compile_cost(1_440_000 * 1.05, 1_440_000 * 1.05)
        assert 8_000 < r24.seconds < 22_000
        assert 120e9 < r24.peak_memory_bytes < 400e9

    def test_o0_avoids_superlinear(self):
        o3 = compile_cost(500_000, 500_000, "O3")
        o0 = compile_cost(500_000, 500_000, "O0")
        assert o0.seconds < o3.seconds / 5

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            compile_cost(1, 1, "O9")

    def test_machine_speed_applied(self):
        slow = compile_cost(100_000, 1_000, machine=get_machine("amd"))
        fast = compile_cost(100_000, 1_000, machine=get_machine("intel-core"))
        assert fast.seconds < slow.seconds
