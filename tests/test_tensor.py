"""Unit tests for the fibertree Tensor (paper Section 2.2, Figure 2)."""

import pytest

from repro.tensor import Fiber, Tensor


class TestConstruction:
    def test_requires_ranks(self):
        with pytest.raises(ValueError):
            Tensor([])

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            Tensor(["M", "M"])

    def test_shape_parallel_to_ranks(self):
        with pytest.raises(ValueError):
            Tensor(["M", "K"], [3])

    def test_figure2_matrix(self):
        """The matrix of Figure 2: A[0,2]=1, A[2,0]=2, A[2,1]=3, A[2,2]=4."""
        a = Tensor.from_points(
            {(0, 2): 1, (2, 0): 2, (2, 1): 3, (2, 2): 4}, ["M", "K"], [3, 3]
        )
        assert a.get((0, 2)) == 1
        assert a.get((1, 1)) is None
        # Rank M has one fiber with occupancy 2 (rows 0 and 2).
        assert a.root.occupancy == 2
        # The two K fibers have occupancies 1 and 3.
        assert a.root.get(0).occupancy == 1
        assert a.root.get(2).occupancy == 3

    def test_from_dense(self):
        a = Tensor.from_dense([[0, 1], [2, 0]], ["M", "K"])
        assert dict(a.points()) == {(0, 1): 1, (1, 0): 2}
        assert a.shape == (2, 2)

    def test_to_dense_roundtrip(self):
        dense = [[0, 1, 0], [2, 0, 3]]
        assert Tensor.from_dense(dense, ["M", "K"]).to_dense() == dense

    def test_to_dense_requires_shape(self):
        tensor = Tensor(["M"])
        tensor.set((0,), 5)
        with pytest.raises(ValueError):
            tensor.to_dense()


class TestAccess:
    def test_point_arity_checked(self):
        tensor = Tensor(["M", "K"])
        with pytest.raises(ValueError):
            tensor.get((0,))
        with pytest.raises(ValueError):
            tensor.set((0, 1, 2), 5)

    def test_set_creates_intermediate_fibers(self):
        tensor = Tensor(["I", "J", "K"], [2, 2, 2])
        tensor.set((1, 0, 1), 9)
        assert isinstance(tensor.root.get(1), Fiber)
        assert tensor.get((1, 0, 1)) == 9

    def test_occupancy_counts_leaves(self):
        tensor = Tensor.from_points({(0, 0): 1, (0, 1): 2, (1, 0): 3}, ["M", "K"])
        assert tensor.occupancy == 3

    def test_points_sorted_lexicographically(self):
        tensor = Tensor.from_points(
            {(1, 0): "c", (0, 1): "b", (0, 0): "a"}, ["M", "K"]
        )
        assert [c for c, _ in tensor.points()] == [(0, 0), (0, 1), (1, 0)]

    def test_rank_index_and_shape(self):
        tensor = Tensor(["M", "K"], [4, 5])
        assert tensor.rank_index("K") == 1
        assert tensor.rank_shape("M") == 4
        with pytest.raises(KeyError):
            tensor.rank_index("Z")


class TestSwizzle:
    def test_swizzle_transposes(self):
        a = Tensor.from_dense([[1, 2], [3, 4]], ["M", "K"])
        at = a.swizzle(["K", "M"])
        assert at.get((0, 1)) == a.get((1, 0))
        assert at.rank_names == ("K", "M")
        assert at.shape == (2, 2)

    def test_swizzle_is_involution(self):
        a = Tensor.from_points({(0, 1, 2): 5, (1, 0, 0): 7}, ["I", "S", "N"])
        assert a.swizzle(["N", "I", "S"]).swizzle(["I", "S", "N"]) == a

    def test_swizzle_requires_permutation(self):
        a = Tensor(["M", "K"])
        with pytest.raises(ValueError):
            a.swizzle(["M", "Z"])

    def test_sn_swizzle_matches_paper(self):
        """Section 5.1: the [I,S,N,O,R] -> [I,N,S,O,R] swizzle."""
        tensor = Tensor.from_points(
            {(0, 1, 0, 0, 2): 1, (0, 2, 3, 1, 0): 1},
            ["I", "S", "N", "O", "R"],
        )
        swizzled = tensor.swizzle(["I", "N", "S", "O", "R"])
        assert swizzled.get((0, 0, 1, 0, 2)) == 1
        assert swizzled.get((0, 3, 2, 1, 0)) == 1


class TestEquality:
    def test_copy_independent(self):
        a = Tensor.from_points({(0, 0): 1}, ["M", "K"])
        b = a.copy()
        b.set((1, 1), 2)
        assert a.get((1, 1)) is None
        assert a != b

    def test_equality_ignores_shape(self):
        a = Tensor.from_points({(0,): 1}, ["M"], [4])
        b = Tensor.from_points({(0,): 1}, ["M"], [8])
        assert a == b

    def test_inequality_on_rank_names(self):
        a = Tensor.from_points({(0,): 1}, ["M"])
        b = Tensor.from_points({(0,): 1}, ["K"])
        assert a != b

    def test_explicit_zero_is_a_point(self):
        """Values stored explicitly (even zero) are real points."""
        a = Tensor(["M"], [3])
        a.set((1,), 0)
        assert (1,) in dict(a.points())
