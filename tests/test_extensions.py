"""Tests for the Box 1 extension features: activity-aware simulation,
differential exchange, and the Einsum notation parser."""

import random

import pytest

from repro.designs import library
from repro.einsum import NotationError, evaluate, parse_einsum
from repro.firrtl import elaborate, parse
from repro.graph import build_dfg, optimize
from repro.kernels import ActivityAwareKernel, make_activity_aware
from repro.oim import build_oim
from repro.repcut import RepCutSimulator
from repro.sim import Simulator
from repro.tensor import Tensor

from conftest import drive_random_inputs


class TestActivityAwareKernel:
    def test_lockstep_with_plain_kernel(self, mixed_src, mixed_design, rng):
        plain = Simulator(mixed_src, kernel="PSU")
        aware = Simulator(mixed_src, kernel="activity:PSU")
        drive_random_inputs([plain, aware], mixed_design, rng, 60)

    def test_constant_inputs_skip_everything(self, mixed_bundle):
        kernel = make_activity_aware(mixed_bundle)
        values = mixed_bundle.initial_values()
        kernel.eval_comb(values)           # cold: evaluates all layers
        first = kernel.stats.layers_evaluated
        assert kernel.stats.layers_skipped == 0
        kernel.eval_comb(values)           # nothing changed
        assert kernel.stats.layers_evaluated == first
        assert kernel.stats.layers_skipped == mixed_bundle.num_layers

    def test_low_activity_design_skips_layers(self):
        """A quiescent counter (enable=0): steady state skips all layers."""
        simulator = Simulator(library.counter(), kernel="activity")
        simulator.poke("enable", 0)
        simulator.step(10)
        stats = simulator.kernel.stats
        assert stats.layers_skipped > 0
        assert stats.layer_skip_rate > 0.5

    def test_activity_resumes_on_change(self):
        simulator = Simulator(library.counter(), kernel="activity")
        simulator.poke("enable", 0)
        simulator.step(5)
        simulator.poke("enable", 1)
        simulator.step(3)
        assert simulator.peek("count") == 3

    def test_reset_activity_clears_snapshots(self, mixed_bundle):
        kernel = make_activity_aware(mixed_bundle)
        values = mixed_bundle.initial_values()
        kernel.eval_comb(values)
        kernel.reset_activity()
        assert kernel.stats.cycles == 0
        kernel.eval_comb(values)
        assert kernel.stats.layers_skipped == 0  # cold again

    def test_stats_rates(self, mixed_bundle):
        kernel = make_activity_aware(mixed_bundle)
        values = mixed_bundle.initial_values()
        kernel.eval_comb(values)
        kernel.eval_comb(values)
        assert 0.0 <= kernel.stats.layer_skip_rate <= 1.0
        assert kernel.stats.op_skip_rate == pytest.approx(0.5)

    def test_register_feedback_keeps_layers_live(self):
        """An LFSR changes its own inputs each cycle: the state-dependent
        layers must keep re-evaluating (only constant-fed layers may skip),
        and the sequence must match the plain kernel's."""
        aware = Simulator(library.lfsr(), kernel="activity")
        plain = Simulator(library.lfsr(), kernel="PSU")
        values = []
        for _ in range(10):
            assert aware.peek("value") == plain.peek("value")
            values.append(aware.peek("value"))
            aware.step()
            plain.step()
        assert len(set(values)) == 10  # state advanced every cycle
        stats = aware.kernel.stats
        assert stats.ops_evaluated > stats.ops_skipped


class TestDifferentialExchange:
    def test_savings_accumulate_when_quiescent(self):
        src = library.shift_fifo(depth=4)
        graph, _ = optimize(build_dfg(elaborate(parse(src))))
        multi = RepCutSimulator(graph, num_partitions=3)
        multi.poke("push", 0)  # nothing moves
        multi.step(20)
        assert multi.differential_savings > 0.5

    def test_lockstep_preserved_with_differential_exchange(self, rng):
        src = library.gcd()
        graph, _ = optimize(build_dfg(elaborate(parse(src))))
        single = Simulator(graph, optimize_graph=False)
        multi = RepCutSimulator(graph, num_partitions=4)
        design = elaborate(parse(src))
        drive_random_inputs([single, multi], design, rng, 50)

    def test_reset_resends_everything(self):
        src = library.shift_fifo(depth=4)
        graph, _ = optimize(build_dfg(elaborate(parse(src))))
        multi = RepCutSimulator(graph, num_partitions=3)
        multi.poke("push", 1)
        multi.poke("data_in", 0x3C)
        multi.step(6)
        multi.reset()
        multi.poke("push", 0)
        # After reset every replica must reflect init state, not stale data.
        assert multi.peek("data_out") == 0


class TestNotationParser:
    def test_matvec(self):
        einsum = parse_einsum("Z[m] = A[k, m] . B[k] :: map *(^) reduce +(v)")
        a = Tensor.from_dense([[1, 2], [3, 4], [5, 6]], ["k", "m"])
        b = Tensor.from_dense([1, 1, 1], ["k"])
        assert evaluate(einsum, {"A": a, "B": b}).to_dense() == [9, 12]

    def test_traditional_defaults(self):
        """Two inputs with contracted indices default to x(^) and +."""
        einsum = parse_einsum("Z[m] = A[k, m] . B[k]")
        assert einsum.map_spec.compute.name == "mul"
        assert einsum.reduce_spec.compute.name == "add"

    def test_single_input_default(self):
        einsum = parse_einsum("Z[m] = A[m]")
        assert einsum.map_spec.compute.name == "pass_through"
        assert einsum.map_spec.coordinate.mode == "left"

    def test_take_operators(self):
        einsum = parse_einsum("Z[m] = A[m] . B[m] :: map <-(->)")
        a = Tensor.from_dense([3, 7, 2], ["m"])
        b = Tensor.from_points({(0,): 1, (2,): 1}, ["m"], [3])
        assert evaluate(einsum, {"A": a, "B": b}).to_dense() == [3, 0, 2]

    def test_iterative_subscript(self):
        einsum = parse_einsum("S[i+1] = S[i] . A[i] :: map +(v)")
        assert einsum.output.indices[0].offset == 1

    def test_errors(self):
        with pytest.raises(NotationError):
            parse_einsum("no equals sign here")
        with pytest.raises(NotationError):
            parse_einsum("Z[m] = A[m] :: map @(^)")
        with pytest.raises(NotationError):
            parse_einsum("Z[m] = ")

    def test_describe_roundtrip_style(self):
        einsum = parse_einsum("Z = A[m] . B[m] :: map *(^) reduce +(v)")
        text = einsum.describe()
        assert "map x" in text and "reduce +" in text
