"""Tests for the distributed shard transports: the socket executor and
worker protocol (repro.shard.remote) plus the process executor's
shared-memory lane planes -- including the hardening paths (killed and
wedged workers, stale cache refs, mismatched state lengths)."""

import os
import signal
import socket
import time

import pytest

from repro.batch import HAS_NUMPY
from repro.designs.registry import compiled_graph
from repro.shard import ShardedBatchSimulator
from repro.shard.executors import ProcessExecutor, _is_pgraph_cache_miss
from repro.shard.remote import (
    MAX_FRAME,
    _parse_host,
    recv_frame,
    send_frame,
    spawn_local_workers,
)
from repro.workloads.stimulus import batched_workload_for

LANES = 2
CYCLES = 6


def _reap(procs):
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)


def _lockstep(design, cycles=CYCLES, lanes=LANES, **shard_kwargs):
    """Run a sharded sim against a serial-executor reference, bit-exact
    on every output every cycle; returns the sharded sim's transport."""
    graph = compiled_graph(design)
    workload = batched_workload_for(design, lanes)
    outputs = sorted(graph.outputs)
    with ShardedBatchSimulator(
        graph, lanes=lanes, num_partitions=1
    ) as reference, ShardedBatchSimulator(
        graph, lanes=lanes, **shard_kwargs
    ) as shard:
        for cycle in range(cycles):
            workload.apply(reference, cycle)
            workload.apply(shard, cycle)
            reference.step()
            shard.step()
            for name in outputs:
                assert shard.peek(name) == reference.peek(name), (
                    f"{design}: divergence on {name!r} at cycle {cycle}"
                )
        return shard.transport


# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------
class TestFraming:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5)
        right.settimeout(5)
        return left, right

    def test_roundtrip(self):
        left, right = self._pair()
        try:
            payload = {"rows": [[1, 2**63], [0, 1]], "name": "x"}
            send_frame(left, payload)
            assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_oversized_length_prefix_rejected(self):
        left, right = self._pair()
        try:
            left.sendall((MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(ConnectionError, match="MAX_FRAME"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame(self):
        left, right = self._pair()
        try:
            left.sendall((64).to_bytes(4, "big") + b"short")
            left.close()
            with pytest.raises(ConnectionError, match="closed mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_parse_host(self):
        assert _parse_host("10.0.0.2:7001") == ("10.0.0.2", 7001)
        assert _parse_host(("box", 7002)) == ("box", 7002)
        host, port = _parse_host("box")
        assert host == "box" and port > 0  # DEFAULT_PORT


# ----------------------------------------------------------------------
# Socket executor behaviour beyond the shared lockstep matrix
# ----------------------------------------------------------------------
class TestSocketExecutor:
    def test_multiple_partitions_per_worker(self):
        """P=4 over 2 workers: host-local routes are applied worker-side
        and the result still matches the serial reference."""
        hosts, procs = spawn_local_workers(2)
        try:
            transport = _lockstep(
                "gemmini-8", num_partitions=4, executor="socket",
                hosts=hosts,
            )
            assert transport == "socket"
        finally:
            _reap(procs)

    def test_snapshot_restore_over_socket(self):
        graph = compiled_graph("gemmini-8")
        workload = batched_workload_for("gemmini-8", LANES)
        outputs = sorted(graph.outputs)
        with ShardedBatchSimulator(
            graph, lanes=LANES, num_partitions=2, executor="socket"
        ) as sim:
            for cycle in range(3):
                workload.apply(sim, cycle)
                sim.step()
            snap = sim.snapshot()
            mark = {name: sim.peek(name) for name in outputs}
            for cycle in range(3, 6):
                workload.apply(sim, cycle)
                sim.step()
            sim.restore(snap)
            assert sim.cycle == 3
            assert {name: sim.peek(name) for name in outputs} == mark

    def test_worker_serves_sequential_sessions(self, counter_src):
        """A worker outlives an executor: after close(), a fresh
        coordinator can connect to the same host."""
        hosts, procs = spawn_local_workers(1)
        try:
            for _ in range(2):
                with ShardedBatchSimulator(
                    counter_src, lanes=LANES, num_partitions=2,
                    executor="socket", hosts=hosts,
                ) as sim:
                    sim.poke("enable", 1)
                    sim.step(2)
                    assert sim.peek("count") == [2, 2]
        finally:
            _reap(procs)

    def test_killed_worker_is_diagnosed_and_closeable(self, counter_src):
        sim = ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2, executor="socket"
        )
        try:
            sim.poke("enable", 1)
            sim.step()
            victim = sim.executor._procs[0]
            victim.kill()
            victim.join(timeout=5)
            with pytest.raises(RuntimeError, match=r"shard worker 127\.0"):
                sim.step(4)
        finally:
            start = time.monotonic()
            sim.close()
            assert time.monotonic() - start < 30
        # The failure does not poison the design: a fresh executor works.
        with ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2, executor="socket"
        ) as fresh:
            fresh.poke("enable", 1)
            fresh.step()
            assert fresh.peek("count") == [1, 1]

    def test_make_executor_rejects_hosts_elsewhere(self, counter_src):
        with pytest.raises(ValueError, match="hosts="):
            ShardedBatchSimulator(
                counter_src, lanes=LANES, num_partitions=2,
                executor="process", hosts=["127.0.0.1:1"],
            )

    def test_make_executor_rejects_shm_planes_on_socket(self, counter_src):
        with pytest.raises(ValueError, match="shm_planes="):
            ShardedBatchSimulator(
                counter_src, lanes=LANES, num_partitions=2,
                executor="socket", shm_planes=True,
            )


# ----------------------------------------------------------------------
# Process executor hardening
# ----------------------------------------------------------------------
class TestProcessWorkerFaults:
    def test_sigkilled_worker_mid_run(self, counter_src):
        sim = ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2, executor="process"
        )
        try:
            sim.poke("enable", 1)
            sim.step()
            victim = sim.executor._procs[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5)
            with pytest.raises(RuntimeError, match="shard worker 1"):
                sim.step(4)
        finally:
            start = time.monotonic()
            sim.close()
            assert time.monotonic() - start < 30
        with ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2, executor="process"
        ) as fresh:
            fresh.poke("enable", 1)
            fresh.step()
            assert fresh.peek("count") == [1, 1]

    def test_wedged_worker_close_is_bounded(self, counter_src):
        """close() on a SIGSTOPped worker falls through the poll guard
        to terminate/kill instead of blocking on the ack forever."""
        sim = ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2, executor="process"
        )
        sim.executor.close_timeout = 0.5
        procs = list(sim.executor._procs)
        os.kill(procs[0].pid, signal.SIGSTOP)
        try:
            start = time.monotonic()
            sim.close()
            elapsed = time.monotonic() - start
            assert elapsed < 15, f"close() took {elapsed:.1f}s on a wedge"
            for proc in procs:
                assert not proc.is_alive()
        finally:
            for proc in procs:  # belt and braces if close() failed
                if proc.is_alive():
                    os.kill(proc.pid, signal.SIGCONT)
            _reap(procs)


class TestStateLengthValidation:
    @pytest.mark.parametrize("executor", ("serial", "process"))
    def test_mismatched_lengths_raise(self, counter_src, executor):
        with ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2, executor=executor
        ) as sim:
            ex = sim.executor
            with pytest.raises(ValueError, match="expected 2"):
                ex.apply_sync([{}])
            with pytest.raises(ValueError, match="restore"):
                ex.restore(ex.snapshot()[:1])
            with pytest.raises(ValueError, match="import_lane"):
                ex.import_lane(0, ex.export_lane(0)[:1])


# ----------------------------------------------------------------------
# Cache-keyed graph shipping
# ----------------------------------------------------------------------
class TestGraphShipping:
    def test_is_pgraph_cache_miss(self):
        assert _is_pgraph_cache_miss(
            "RuntimeError: pgraph cache entry ab12cd34ef56 missing from /x"
        )
        assert not _is_pgraph_cache_miss("ValueError: genuine failure")
        assert not _is_pgraph_cache_miss("")

    @pytest.mark.parametrize("executor", ("process", "socket"))
    def test_stale_cache_ref_respawns_inline(
        self, counter_src, executor, tmp_path, monkeypatch
    ):
        """A pgraph ref no worker can resolve retries with the inline
        graph instead of failing the build."""
        monkeypatch.setattr(
            ProcessExecutor, "_graph_ref",
            staticmethod(
                lambda partition: ("cache", str(tmp_path), "0" * 40)
            ),
        )
        with ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2, executor=executor
        ) as sim:
            sim.poke("enable", 1)
            sim.step(3)
            assert sim.peek("count") == [3, 3]

    def test_genuine_worker_error_not_buried(self, counter_src, monkeypatch):
        """A non-cache-miss worker failure propagates its traceback
        (no silent retry that would mask the original error)."""
        monkeypatch.setattr(
            ProcessExecutor, "_graph_ref",
            staticmethod(lambda partition: ("graph", None)),
        )
        with pytest.raises(RuntimeError, match="Traceback"):
            ShardedBatchSimulator(
                counter_src, lanes=LANES, num_partitions=2,
                executor="process",
            )


# ----------------------------------------------------------------------
# Shared-memory lane planes
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_NUMPY, reason="shm lane planes need NumPy")
class TestShmPlanes:
    def test_auto_uses_shm_on_u64_design(self):
        transport = _lockstep(
            "gemmini-8", num_partitions=2, executor="process"
        )
        assert transport == "shm"

    def test_wide_design_falls_back_to_pipes(self):
        with ShardedBatchSimulator(
            compiled_graph("sha3"), lanes=LANES, num_partitions=2,
            executor="process",
        ) as sim:
            assert sim.transport == "pipe"

    def test_forcing_shm_on_wide_design_raises(self):
        with pytest.raises(RuntimeError, match="shm_planes=True but"):
            ShardedBatchSimulator(
                compiled_graph("sha3"), lanes=LANES, num_partitions=2,
                executor="process", shm_planes=True,
            )

    def test_forcing_pipes_is_honoured(self, counter_src):
        with ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2,
            executor="process", shm_planes=False,
        ) as sim:
            assert sim.transport == "pipe"
            sim.poke("enable", 1)
            sim.step(3)
            assert sim.peek("count") == [3, 3]

    def test_restore_invalidates_change_mask(self, counter_src):
        """After restore() the next exchange reports every row, even
        rows whose plane value happens to equal the pre-restore value
        (the change mask must not suppress against stale history)."""
        with ShardedBatchSimulator(
            counter_src, lanes=LANES, num_partitions=2, executor="process"
        ) as sim:
            assert sim.transport == "shm"
            sim.poke("enable", 1)
            sim.step(2)
            snap = sim.snapshot()
            mark = sim.peek("count")
            sim.step(3)
            sim.restore(snap)
            assert sim.peek("count") == mark
            sim.step()
            assert sim.peek("count") == [v + 1 for v in mark]

    def test_differential_counters_still_track(self):
        """Plane rows suppressed by the parent-side change mask count as
        suppressed traffic, as they did over pipes."""
        with ShardedBatchSimulator(
            compiled_graph("gemmini-8"), lanes=LANES, num_partitions=2,
            executor="process",
        ) as sim:
            assert sim.transport == "shm"
            workload = batched_workload_for("gemmini-8", LANES)
            for cycle in range(6):
                workload.apply(sim, cycle)
                sim.step()
            assert sim.sync_sent > 0
            assert 0.0 <= sim.differential_savings <= 1.0
