"""Tests for repro.serve: artifact cache, lane fleet, and the server.

Covers the service layer's contracts end to end:

* deterministic design fingerprints, stable across *processes*;
* cache invalidation when the design or any shaping parameter changes;
* corruption tolerance (a damaged entry is a recompute, never a crash);
* warm-vs-cold bit-identity of cached simulator construction;
* >= 8 concurrent fleet sessions bit-identical to independent scalar
  runs, plus checkpoint/restore and migration;
* the asyncio server over its JSON wire protocol;
* the lane-aware DMI frontend.
"""

from __future__ import annotations

import os
import pickle
import random
import subprocess
import sys
import threading

import pytest

from repro.designs.registry import get_design
from repro.serve.artifacts import (
    ArtifactCache,
    cache_through,
    configure_cache,
    design_fingerprint,
    disable_cache,
    get_cache,
    source_digest,
)
from repro.sim import Simulator

ROCKET = "rocket-1"


def _cache_writer_child(root: str, seed: int, cap: int) -> None:
    """One concurrent-writer process for the shared-directory test
    (module level so it pickles under the spawn start method)."""
    writer_rng = random.Random(seed)
    store = ArtifactCache(root, max_bytes=cap)
    for index in range(50):
        payload = bytes(writer_rng.randrange(400, 1200))
        store.put("program", f"{seed}-{index:03d}", payload)


@pytest.fixture()
def cache(tmp_path):
    """An active cache for the duration of one test, then deactivated."""
    active = configure_cache(tmp_path / "cache")
    try:
        yield active
    finally:
        disable_cache()


@pytest.fixture(autouse=True)
def _no_cache_leak():
    """No test leaves a configured cache behind for its neighbours."""
    yield
    disable_cache()


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_deterministic_within_process(self, mixed_graph):
        assert design_fingerprint(mixed_graph) == design_fingerprint(mixed_graph)

    def test_parameters_change_digest(self, mixed_graph):
        base = design_fingerprint(mixed_graph, stage="partition", p=2)
        assert base != design_fingerprint(mixed_graph, stage="partition", p=4)
        assert base != design_fingerprint(mixed_graph, stage="rum", p=2)

    def test_design_change_changes_digest(self, mixed_src, mixed_graph):
        from repro.sim.simulator import compile_graph

        other = compile_graph(mixed_src.replace("UInt<8>(170)", "UInt<8>(171)"))
        assert design_fingerprint(other) != design_fingerprint(mixed_graph)

    def test_source_digest_params(self, mixed_src):
        assert source_digest(mixed_src) == source_digest(mixed_src)
        assert source_digest(mixed_src) != source_digest(mixed_src + " ")
        assert source_digest(mixed_src, k=1) != source_digest(mixed_src, k=2)

    def test_stable_across_processes(self, mixed_src, mixed_graph, tmp_path):
        """The cache key a second process computes must equal ours --
        the whole point of a persistent cache."""
        script = tmp_path / "fp.py"
        script.write_text(
            "import sys\n"
            "from repro.sim.simulator import compile_graph\n"
            "from repro.serve.artifacts import design_fingerprint\n"
            "src = open(sys.argv[1]).read()\n"
            "print(design_fingerprint(compile_graph(src), stage='t', p=3))\n"
        )
        src_file = tmp_path / "design.fir"
        src_file.write_text(mixed_src)
        env = dict(os.environ)
        repro_src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__import__("repro").__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [os.path.join(repro_src, "src"),
                        env.get("PYTHONPATH", "")] if p
        )
        env.pop("REPRO_CACHE_DIR", None)
        out = subprocess.run(
            [sys.executable, str(script), str(src_file)],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == design_fingerprint(
            mixed_graph, stage="t", p=3
        )


# ----------------------------------------------------------------------
# Cache mechanics
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_roundtrip_and_stats(self, tmp_path):
        store = ArtifactCache(tmp_path)
        assert store.get("graph", "abc") is None
        store.put("graph", "abc", {"x": 1})
        assert store.get("graph", "abc") == {"x": 1}
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.puts == 1

    def test_corrupt_entry_is_a_miss_and_dropped(self, tmp_path):
        store = ArtifactCache(tmp_path)
        store.put("graph", "abc", [1, 2, 3])
        path = store.path_of("graph", "abc")
        path.write_bytes(b"not a pickle at all")
        assert store.get("graph", "abc") is None
        assert store.stats.corrupt_drops == 1
        assert not path.exists()

    def test_wrong_schema_is_a_miss(self, tmp_path):
        store = ArtifactCache(tmp_path)
        path = store.path_of("graph", "abc")
        path.write_bytes(pickle.dumps(
            {"schema": -1, "kind": "graph", "digest": "abc", "payload": 1}
        ))
        assert store.get("graph", "abc") is None
        assert store.stats.corrupt_drops == 1

    def test_digest_mismatch_inside_envelope_is_a_miss(self, tmp_path):
        store = ArtifactCache(tmp_path)
        store.put("graph", "abc", 42)
        os.rename(store.path_of("graph", "abc"), store.path_of("graph", "def"))
        assert store.get("graph", "def") is None

    def test_unpicklable_payload_degrades_to_no_store(self, tmp_path):
        store = ArtifactCache(tmp_path)
        assert store.put("graph", "abc", lambda: None) is None
        assert store.get("graph", "abc") is None

    def test_lru_gc_respects_byte_cap(self, tmp_path):
        store = ArtifactCache(tmp_path, max_bytes=10_000_000)
        for index in range(6):
            store.put("graph", f"d{index}", bytes(1000))
        store.max_bytes = 3 * (store.entries()[0].size_bytes)
        evicted = store.gc()
        assert evicted >= 2
        remaining = {entry.digest for entry in store.entries()}
        # Oldest writes go first.
        assert "d0" not in remaining and "d5" in remaining

    def test_cache_through_inactive_computes(self):
        disable_cache()
        calls = []
        assert cache_through("graph", "x", lambda: calls.append(1) or 7) == 7
        assert cache_through("graph", "x", lambda: calls.append(1) or 7) == 7
        assert len(calls) == 2  # no cache: computed every time

    def test_cache_through_active_computes_once(self, cache):
        calls = []
        assert cache_through("graph", "x", lambda: calls.append(1) or 7) == 7
        assert cache_through("graph", "x", lambda: calls.append(1) or 7) == 7
        assert len(calls) == 1

    def test_get_cache_env_activation(self, tmp_path, monkeypatch):
        import repro.serve.artifacts as artifacts

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        monkeypatch.setattr(artifacts, "_active", None)
        monkeypatch.setattr(artifacts, "_resolved_env", False)
        active = get_cache()
        assert active is not None
        assert active.root == tmp_path / "envcache"
        disable_cache()

    def test_concurrent_writers_share_one_directory(self, tmp_path):
        """Several processes hammering one cache root (the fleet/CI
        sharing scenario): the advisory file lock serialises store +
        eviction, so no entry is ever corrupt and the byte cap holds."""
        import multiprocessing

        cap = 60_000
        procs = [
            multiprocessing.Process(
                target=_cache_writer_child, args=(str(tmp_path), seed, cap)
            )
            for seed in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert [proc.exitcode for proc in procs] == [0] * 4
        store = ArtifactCache(tmp_path, max_bytes=cap)
        entries = store.entries()
        assert entries, "every writer evicted everything?"
        assert sum(entry.size_bytes for entry in entries) <= cap
        for entry in entries:
            assert store.get(entry.kind, entry.digest) is not None
        assert store.stats.corrupt_drops == 0

    def test_gc_and_clear_reenter_safely_under_put(self, tmp_path):
        """put holds the lock while it evicts; the public gc()/clear()
        take it themselves -- none of these may deadlock in-process."""
        store = ArtifactCache(tmp_path, max_bytes=2_000)
        for index in range(8):
            store.put("graph", f"d{index}", bytes(600))  # forces GC inside put
        assert store.total_bytes <= 2_000
        store.gc()
        assert store.clear() >= 0
        assert store.entries() == []


# ----------------------------------------------------------------------
# Warm-vs-cold construction equivalence
# ----------------------------------------------------------------------
class TestWarmColdEquivalence:
    def _run(self, sim, scalar, inputs, cycles, seed):
        rng = random.Random(seed)
        for _ in range(cycles):
            for name in inputs:
                value = rng.randrange(1 << 16)
                sim.poke(name, value)
                scalar.poke(name, value)
            sim.step()
            scalar.step()

    def test_sharded_warm_matches_cold_and_scalar(self, cache):
        from repro.designs.registry import compiled_graph
        from repro.shard import ShardedBatchSimulator

        source = get_design(ROCKET)
        graph = compiled_graph(ROCKET)
        inputs = sorted(graph.inputs)
        watch = sorted(graph.outputs)

        cold = ShardedBatchSimulator(
            source, lanes=4, num_partitions=2, partitioner="refined"
        )
        assert cache.stats.puts > 0 and cache.stats.hits == 0
        warm = ShardedBatchSimulator(
            source, lanes=4, num_partitions=2, partitioner="refined"
        )
        assert cache.stats.hits > 0

        scalar = Simulator(source)
        rng = random.Random(3)
        for _ in range(10):
            for name in inputs:
                value = rng.randrange(1 << 16)
                cold.poke(name, value)
                warm.poke(name, value)
                scalar.poke(name, value)
            cold.step()
            warm.step()
            scalar.step()
        for name in watch:
            assert cold.peek(name) == warm.peek(name) == [scalar.peek(name)] * 4

    def test_batch_codegen_warm_matches_cold(self, mixed_src, cache):
        from repro.batch import BatchSimulator

        cold = BatchSimulator(mixed_src, lanes=3, kernel="SU")
        warm = BatchSimulator(mixed_src, lanes=3, kernel="SU")
        assert cache.stats.hits > 0
        rng = random.Random(1)
        for _ in range(20):
            for name in ("a", "b"):
                row = [rng.randrange(256) for _ in range(3)]
                cold.poke(name, row)
                warm.poke(name, row)
            cold.step()
            warm.step()
        for name in ("out", "flag"):
            assert cold.peek(name) == warm.peek(name)

    def test_corrupted_artifacts_fall_back_to_recompute(self, mixed_src, cache):
        from repro.shard import ShardedBatchSimulator

        reference = ShardedBatchSimulator(mixed_src, lanes=2, num_partitions=2)
        # Smash every artifact the build produced.
        for entry in cache.entries():
            entry.path.write_bytes(b"\x80garbage")
        rebuilt = ShardedBatchSimulator(mixed_src, lanes=2, num_partitions=2)
        assert cache.stats.corrupt_drops > 0
        for sim in (reference, rebuilt):
            sim.poke("a", [5, 9])
            sim.poke("b", [7, 7])
            sim.step(4)
        assert rebuilt.peek("out") == reference.peek("out")

    def test_process_executor_ships_cache_keys(self, mixed_src, cache):
        from repro.shard import ShardedBatchSimulator

        with ShardedBatchSimulator(
            mixed_src, lanes=2, num_partitions=2, executor="process"
        ) as sim:
            assert any(e.kind == "pgraph" for e in cache.entries())
            scalar = Simulator(mixed_src)
            rng = random.Random(9)
            for _ in range(6):
                a, b = rng.randrange(256), rng.randrange(256)
                sim.poke("a", a)
                sim.poke("b", b)
                scalar.poke("a", a)
                scalar.poke("b", b)
                sim.step()
                scalar.step()
            assert sim.peek("out") == [scalar.peek("out")] * 2


# ----------------------------------------------------------------------
# Lane export/import (the unit of session preemption)
# ----------------------------------------------------------------------
class TestLaneTransfer:
    def test_batch_lane_roundtrip(self, mixed_src):
        from repro.batch import BatchSimulator

        sim = BatchSimulator(mixed_src, lanes=3)
        sim.poke("a", [1, 2, 3])
        sim.poke("b", [4, 5, 6])
        sim.step(5)
        state = sim.export_lane(1)
        other = BatchSimulator(mixed_src, lanes=2)
        other.import_lane(0, state)
        assert other.peek("out")[0] == sim.peek("out")[1]

    def test_shard_lane_cut_validation(self, mixed_src):
        from repro.shard import ShardedBatchSimulator

        one = ShardedBatchSimulator(mixed_src, lanes=2, num_partitions=1)
        two = ShardedBatchSimulator(mixed_src, lanes=2, num_partitions=2)
        state = one.export_lane(0)
        with pytest.raises(ValueError, match="different partitioning"):
            two.import_lane(0, state)

    def test_shard_lane_roundtrip_continues_lockstep(self, mixed_src):
        from repro.shard import ShardedBatchSimulator

        sim = ShardedBatchSimulator(mixed_src, lanes=3, num_partitions=2)
        scalar = Simulator(mixed_src)
        rng = random.Random(4)
        for _ in range(5):
            a, b = rng.randrange(256), rng.randrange(256)
            sim.poke_lane("a", 2, a)
            sim.poke_lane("b", 2, b)
            scalar.poke("a", a)
            scalar.poke("b", b)
            sim.step()
            scalar.step()
        other = ShardedBatchSimulator(mixed_src, lanes=2, num_partitions=2)
        other.import_lane(1, sim.export_lane(2))
        for _ in range(5):
            a, b = rng.randrange(256), rng.randrange(256)
            other.poke_lane("a", 1, a)
            other.poke_lane("b", 1, b)
            scalar.poke("a", a)
            scalar.poke("b", b)
            other.step()
            scalar.step()
        assert other.peek("out")[1] == scalar.peek("out")
        assert other.peek("flag")[1] == scalar.peek("flag")


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------
class TestLaneFleet:
    def _drive_lockstep(self, sessions, scalars, inputs, cycles, rngs):
        for _ in range(cycles):
            for rng, session, scalar in zip(rngs, sessions, scalars):
                for name in inputs:
                    value = rng.randrange(1 << 16)
                    session.poke(name, value)
                    scalar.poke(name, value)
            for session in sessions:
                session.step(1)
            for scalar in scalars:
                scalar.step()

    @pytest.mark.parametrize("engine,kwargs", [
        ("batch", {}),
        ("shard", {"num_partitions": 2, "partitioner": "refined"}),
    ])
    def test_eight_sessions_match_scalar(self, engine, kwargs):
        from repro.designs.registry import compiled_graph
        from repro.serve.fleet import LaneFleet

        source = get_design(ROCKET)
        graph = compiled_graph(ROCKET)
        inputs = sorted(graph.inputs)
        watch = sorted(graph.outputs)
        with LaneFleet(source, engine=engine, lanes=4, max_members=2,
                       **kwargs) as fleet:
            sessions = [fleet.open_session() for _ in range(8)]
            assert fleet.num_members == 2
            scalars = [Simulator(source) for _ in range(8)]
            rngs = [random.Random(50 + i) for i in range(8)]
            self._drive_lockstep(sessions, scalars, inputs, 8, rngs)
            for index, (session, scalar) in enumerate(zip(sessions, scalars)):
                assert session.cycle == 8
                for name in watch:
                    assert session.peek(name) == scalar.peek(name), (
                        engine, index, name
                    )

    def test_fleet_full_and_lane_recycling(self, mixed_src):
        from repro.serve.fleet import FleetFullError, LaneFleet

        with LaneFleet(mixed_src, engine="batch", lanes=2,
                       max_members=1) as fleet:
            first = fleet.open_session()
            second = fleet.open_session()
            with pytest.raises(FleetFullError):
                fleet.open_session()
            first.poke("a", 200)
            first.step(1)
            second.step(1)
            first.close()
            # A fresh checkout on the recycled lane sees pristine state.
            fresh_scalar = Simulator(mixed_src)
            third = fleet.open_session()
            assert third.peek("out") == fresh_scalar.peek("out")
            assert third.cycle == 0

    def test_coalescing_barrier_bursts_min_pending(self, mixed_src):
        from repro.serve.fleet import LaneFleet

        with LaneFleet(mixed_src, engine="batch", lanes=2,
                       max_members=1) as fleet:
            fast = fleet.open_session()
            slow = fleet.open_session()
            advanced = fast.step(5)
            assert advanced == 0 and fast.pending == 5
            slow.step(2)
            assert fast.cycle == 2 and fast.pending == 3
            assert slow.cycle == 2 and slow.pending == 0
            slow.step(3)
            assert fast.cycle == 5 and fast.pending == 0

    def test_closing_a_sibling_unblocks_the_barrier(self, mixed_src):
        from repro.serve.fleet import LaneFleet

        with LaneFleet(mixed_src, engine="batch", lanes=2,
                       max_members=1) as fleet:
            runner = fleet.open_session()
            idler = fleet.open_session()
            runner.step(3)
            assert runner.cycle == 0
            idler.close()
            assert runner.cycle == 3 and runner.pending == 0

    def test_blocking_step_coalesces_across_threads(self, mixed_src):
        from repro.serve.fleet import LaneFleet

        with LaneFleet(mixed_src, engine="batch", lanes=4,
                       max_members=1) as fleet:
            sessions = [fleet.open_session() for _ in range(4)]
            errors = []

            def drive(session):
                try:
                    for _ in range(5):
                        session.poke("a", session.lane + 1)
                        assert session.step(1, wait=True, timeout=30) == 1
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=drive, args=(s,))
                       for s in sessions]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert all(s.cycle == 5 for s in sessions)

    def test_checkpoint_restore_rewinds(self, mixed_src):
        from repro.serve.fleet import LaneFleet

        with LaneFleet(mixed_src, engine="batch", lanes=1,
                       max_members=2) as fleet:
            session = fleet.open_session()
            session.poke("a", 11)
            session.poke("b", 22)
            session.step(4)
            mark = session.checkpoint()
            out_at_mark = session.peek("out")
            session.poke("a", 99)
            session.step(3)
            assert session.cycle == 7
            session.restore(mark)
            assert session.cycle == 4
            assert session.peek("out") == out_at_mark

    def test_migration_preserves_state_and_stimulus(self, mixed_src):
        from repro.serve.fleet import LaneFleet

        with LaneFleet(mixed_src, engine="shard", lanes=1, max_members=2,
                       num_partitions=2) as fleet:
            session = fleet.open_session()
            scalar = Simulator(mixed_src)
            rng = random.Random(6)
            for _ in range(5):
                a, b = rng.randrange(256), rng.randrange(256)
                session.poke("a", a)
                session.poke("b", b)
                scalar.poke("a", a)
                scalar.poke("b", b)
                session.step(1)
                scalar.step()
            origin = session.member
            fleet.migrate(session)
            assert session.member != origin
            assert fleet.num_members == 2
            for _ in range(5):
                a, b = rng.randrange(256), rng.randrange(256)
                session.poke("a", a)
                session.poke("b", b)
                scalar.poke("a", a)
                scalar.poke("b", b)
                session.step(1)
                scalar.step()
            assert session.peek("out") == scalar.peek("out")
            assert session.peek("flag") == scalar.peek("flag")

    def test_closed_session_surface_raises(self, mixed_src):
        from repro.serve.fleet import LaneFleet

        with LaneFleet(mixed_src, engine="batch", lanes=1) as fleet:
            session = fleet.open_session()
            session.close()
            session.close()  # idempotent
            with pytest.raises(RuntimeError, match="closed"):
                session.poke("a", 1)
            with pytest.raises(RuntimeError, match="closed"):
                session.step(1)


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class TestFleetServer:
    def test_wire_roundtrip_single_session(self, mixed_src):
        from repro.serve.fleet import LaneFleet
        from repro.serve.server import FleetClient, serve_in_thread

        with LaneFleet(mixed_src, engine="batch", lanes=1,
                       max_members=1) as fleet:
            with serve_in_thread(fleet) as handle:
                host, port = handle.address
                with FleetClient(host, port) as client:
                    info = client.info()
                    assert info["engine"] == "batch"
                    assert info["capacity"] == 1
                    session = client.open_session()
                    scalar = Simulator(mixed_src)
                    rng = random.Random(2)
                    for _ in range(6):
                        a, b = rng.randrange(256), rng.randrange(256)
                        session.poke("a", a)
                        session.poke("b", b)
                        scalar.poke("a", a)
                        scalar.poke("b", b)
                        assert session.step(1, timeout=30) == 1
                        scalar.step()
                    assert session.cycle == 6
                    assert session.peek("out") == scalar.peek("out")
                    # Checkpoint round-trips through JSON.
                    state = session.checkpoint()
                    out_before = session.peek("out")
                    session.poke("a", 255)
                    session.step(2, timeout=30)
                    session.restore(state)
                    assert session.cycle == 6
                    assert session.peek("out") == out_before
                    session.close()

    def test_errors_cross_the_wire_typed(self, mixed_src):
        from repro.serve.fleet import LaneFleet
        from repro.serve.server import FleetClient, serve_in_thread

        with LaneFleet(mixed_src, engine="batch", lanes=1,
                       max_members=1) as fleet:
            with serve_in_thread(fleet) as handle:
                host, port = handle.address
                with FleetClient(host, port) as client:
                    session = client.open_session()
                    with pytest.raises(KeyError):
                        session.poke("not_an_input", 1)
                    with pytest.raises(KeyError):
                        client.call(op="peek", session=999, name="out")
                    with pytest.raises((ValueError, RuntimeError)):
                        client.call(op="frobnicate")
                    # The fleet is full; a second open is a typed error.
                    from repro.serve.fleet import FleetFullError

                    with pytest.raises(FleetFullError):
                        client.open_session()
                    session.close()

    def test_disconnect_closes_sessions(self, mixed_src):
        import time

        from repro.serve.fleet import LaneFleet
        from repro.serve.server import FleetClient, serve_in_thread

        with LaneFleet(mixed_src, engine="batch", lanes=1,
                       max_members=1) as fleet:
            with serve_in_thread(fleet) as handle:
                host, port = handle.address
                client = FleetClient(host, port)
                client.open_session()
                assert fleet.open_session_count == 1
                client.close()
                deadline = time.monotonic() + 10
                while (fleet.open_session_count and
                       time.monotonic() < deadline):
                    time.sleep(0.02)
                assert fleet.open_session_count == 0

    def test_concurrent_remote_sessions_coalesce(self, mixed_src):
        from repro.serve.fleet import LaneFleet
        from repro.serve.server import connect_session, serve_in_thread

        with LaneFleet(mixed_src, engine="batch", lanes=4,
                       max_members=1) as fleet:
            with serve_in_thread(fleet) as handle:
                host, port = handle.address
                results = [None] * 4
                errors = []

                def drive(index):
                    try:
                        session = connect_session(host, port)
                        rng = random.Random(70 + index)
                        trace = []
                        for _ in range(5):
                            a = rng.randrange(256)
                            b = rng.randrange(256)
                            session.poke("a", a)
                            session.poke("b", b)
                            trace.append((a, b))
                            assert session.step(1, timeout=60) == 1
                        results[index] = (
                            trace, session.peek("out"), session.peek("flag")
                        )
                        session.close()
                    except Exception as exc:
                        errors.append((index, exc))

                threads = [threading.Thread(target=drive, args=(i,))
                           for i in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                assert not errors, errors
                for trace, out, flag in results:
                    scalar = Simulator(mixed_src)
                    for a, b in trace:
                        scalar.poke("a", a)
                        scalar.poke("b", b)
                        scalar.step()
                    assert out == scalar.peek("out")
                    assert flag == scalar.peek("flag")


# ----------------------------------------------------------------------
# Lane-aware DMI frontend
# ----------------------------------------------------------------------
class TestLaneAwareDmi:
    def test_lane_on_scalar_rejected(self, mixed_src):
        from repro.sim.dmi import FrontendServer

        with pytest.raises(TypeError, match="scalar"):
            FrontendServer(Simulator(mixed_src), lane=0)

    def test_batched_without_lane_rejected(self, mixed_src):
        from repro.batch import BatchSimulator
        from repro.sim.dmi import FrontendServer

        with pytest.raises(ValueError, match="lane"):
            FrontendServer(BatchSimulator(mixed_src, lanes=2))

    def test_lane_frontend_matches_scalar_frontend(self):
        from repro.batch import BatchSimulator
        from repro.designs.cores import rocket_soc
        from repro.sim.dmi import FrontendServer

        source = rocket_soc(1)
        scalar = Simulator(source)
        scalar_fesvr = FrontendServer(scalar)
        batched = BatchSimulator(source, lanes=3)
        lane_fesvr = FrontendServer(batched, lane=1)
        words = [17, 34, 51]
        scalar_fesvr.load_image(4, words)
        lane_fesvr.load_image(4, words)
        scalar_cycles = scalar_fesvr.run_until_idle()
        lane_cycles = lane_fesvr.run_until_idle()
        assert lane_cycles == scalar_cycles
        assert (
            [t.response for t in lane_fesvr.completed]
            == [t.response for t in scalar_fesvr.completed]
        )
        read_scalar = scalar_fesvr.read(5)
        read_lane = lane_fesvr.read(5)
        scalar_fesvr.run_until_idle()
        lane_fesvr.run_until_idle()
        assert read_lane.response == read_scalar.response

    def test_session_hosts_a_frontend(self):
        """A fleet session composes with the scalar FrontendServer --
        the 'checked-out lane behaves like a private simulator' claim."""
        from repro.designs.cores import rocket_soc
        from repro.serve.fleet import LaneFleet
        from repro.sim.dmi import FrontendServer

        source = rocket_soc(1)
        with LaneFleet(source, engine="batch", lanes=2,
                       max_members=1) as fleet:
            session = fleet.open_session()
            sibling = fleet.open_session()
            fesvr = FrontendServer(session)  # session is scalar-shaped
            fesvr.write(3, 77)
            read = fesvr.read(3)
            cycles = 0
            while not fesvr.idle and cycles < 1000:
                fesvr.tick()
                session.step(1)
                sibling.step(1)
                cycles += 1
            assert read.response == 77

            scalar = Simulator(source)
            ref = FrontendServer(scalar)
            ref.write(3, 77)
            ref_read = ref.read(3)
            ref.run_until_idle()
            assert read.response == ref_read.response
