#!/usr/bin/env python3
"""Bench for sharded batched simulation (repro.shard).

Measures lane-cycles/sec of a :class:`ShardedBatchSimulator` over a
B × P grid per executor (serial / thread / process), and records the
measured barrier critical path (the per-cycle rate a host with >= P free
cores pays).  Doubles as a CLI so CI can smoke it and so a JSON baseline
(``BENCH_shard.json``) feeds the perf-regression gate:

    PYTHONPATH=src python benchmarks/bench_shard.py --tiny
    PYTHONPATH=src python benchmarks/bench_shard.py --json BENCH_shard.json

As with all measured (non-modelled) numbers, absolute rates are
host-dependent.  On a single-CPU host the thread/process wall-clock
rates are time-sliced serial execution; the parallel win only shows in
wall-clock on multi-core hosts (e.g. the CI perf-smoke runners) and in
the critical-path column everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ and bench_common importable
    root = Path(__file__).resolve().parent
    sys.path.insert(0, str(root))
    sys.path.insert(0, str(root.parent / "src"))

from repro.batch import HAS_NUMPY
from repro.experiments.shard_throughput import render_rows, throughput_rows

from bench_common import show, warm

DESIGNS = ("rocket-1", "gemmini-8")
LANES = (8, 32)
PARTITIONS = (1, 2, 4)
EXECUTORS = ("serial", "thread", "process", "socket")
STRATEGIES = ("greedy", "refined")
CYCLES = 12

TINY_DESIGNS = ("rocket-1",)
TINY_LANES = (8,)
TINY_PARTITIONS = (1, 2)
TINY_EXECUTORS = ("serial", "process", "socket")
TINY_STRATEGIES = ("greedy", "refined")
TINY_CYCLES = 6


def _render(rows) -> str:
    return render_rows(
        rows, title="Sharded batched throughput: B lanes x P partitions "
        "(measured)"
    )


# ----------------------------------------------------------------------
# pytest entry points (same harness idiom as the sibling benches)
# ----------------------------------------------------------------------
def test_shard_critical_path_scales(benchmark):
    """At P=2 the measured barrier critical path beats one partition's
    share of the serial wall-clock: the exchange exposes parallelism."""
    warm("gemmini-8")
    rows = benchmark(
        throughput_rows, ("gemmini-8",), (8,), (2,), ("serial", "process"),
        "PSU", CYCLES,
    )
    by_executor = {row.executor: row for row in rows}
    process = by_executor["process"]
    serial = by_executor["serial"]
    # The process executor's critical path is what >=2 free cores pay.
    assert process.critical_path_lane_cps > serial.lane_cps
    if (os.cpu_count() or 1) >= 2:
        # With real cores available the wall-clock must beat serial too.
        assert process.lane_cps > serial.lane_cps
    show(_render(rows))


def test_shard_single_partition_overhead(benchmark):
    """P=1 sharding is the flat batch engine plus bounded orchestration
    overhead (no exchange traffic: nothing crosses a partition)."""
    warm("gemmini-8")
    rows = benchmark(
        throughput_rows, ("gemmini-8",), (8,), (1,), ("serial",), "PSU", CYCLES
    )
    assert rows[0].lane_cps > 0
    assert rows[0].replication_overhead == 0.0
    show(_render(rows))


def test_shm_planes_not_slower_than_pipes(benchmark):
    """Same-host shared-memory lane planes must not lose to the pickled
    pipe exchange they replace at P>=2 (the perf_gate shm floor: both
    arms measured back-to-back in one process, so the ratio is
    host-independent)."""
    import pytest

    from repro.batch import HAS_NUMPY

    if not HAS_NUMPY:
        pytest.skip("shm lane planes need NumPy")
    warm("rocket-1")
    rows = benchmark(
        throughput_rows, ("rocket-1",), (8,), (2,), ("process",), "PSU",
        CYCLES,
    )
    shm = [row for row in rows if row.transport == "shm"]
    assert shm and shm[0].shm_speedup is not None
    # The gate floors the best-of-grid ratio at 1.0; a single tiny point
    # gets headroom for scheduler noise.
    assert shm[0].shm_speedup > 0.7
    show(_render(rows))


def test_refined_partitioner_beats_greedy_replication(benchmark):
    """On a heavily shared design the KL/FM-refined cut replicates far
    less than the greedy balanced assignment, so the serial sharded rate
    recovers (refined does ~half the total work of greedy at P=2)."""
    warm("rocket-1")
    rows = benchmark(
        throughput_rows, ("rocket-1",), (8,), (2,), ("serial",), "PSU",
        CYCLES, ("greedy", "refined"),
    )
    by_strategy = {row.strategy: row for row in rows}
    greedy, refined = by_strategy["greedy"], by_strategy["refined"]
    assert refined.replication_overhead < 0.5 * greedy.replication_overhead
    # Refined does ~half greedy's total work at P=2, so it should be ~2x
    # faster serially; assert with wide margin (wall-clock is noisy).
    assert refined.lane_cps > 0.5 * greedy.lane_cps
    show(_render(rows))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test sweep (CI): one design, small grid")
    parser.add_argument("--designs", nargs="+", default=None)
    parser.add_argument("--lanes", nargs="+", type=int, default=None)
    parser.add_argument("--partitions", nargs="+", type=int, default=None)
    parser.add_argument("--executors", nargs="+", default=None)
    parser.add_argument("--strategies", nargs="+", default=None,
                        help="partitioner strategies (greedy / refined)")
    parser.add_argument("--kernel", default="PSU")
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write rows + metadata as JSON")
    args = parser.parse_args(argv)

    designs = tuple(args.designs or (TINY_DESIGNS if args.tiny else DESIGNS))
    lanes = tuple(args.lanes or (TINY_LANES if args.tiny else LANES))
    partitions = tuple(
        args.partitions or (TINY_PARTITIONS if args.tiny else PARTITIONS)
    )
    executors = tuple(
        args.executors or (TINY_EXECUTORS if args.tiny else EXECUTORS)
    )
    strategies = tuple(
        args.strategies or (TINY_STRATEGIES if args.tiny else STRATEGIES)
    )
    cycles = args.cycles or (TINY_CYCLES if args.tiny else CYCLES)

    warm(*designs)
    rows = throughput_rows(designs, lanes, partitions, executors,
                           args.kernel, cycles, strategies)
    print(_render(rows))
    if not HAS_NUMPY:
        print("\n(NumPy not installed: pure-Python lane fallback measured)")
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(f"\n(host has {cpus} CPU: thread/process wall-clock rates are "
              "time-sliced; the crit-path column is the >=P-core rate)")

    if args.json:
        payload = {
            "bench": "bench_shard",
            "numpy": HAS_NUMPY,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": cpus,
            "cycles_per_lane": cycles,
            "rows": [row.as_dict() for row in rows],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
