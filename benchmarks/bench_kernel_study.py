"""Benches for the Section 7.2 kernel-configuration study (Tables 4-6,
Figures 15-16)."""

from repro.experiments import kernel_study
from repro.experiments.common import KERNEL_NAMES

from bench_common import show, warm


def test_table4_binary_size(benchmark):
    """Table 4: binary sizes across the unrolling spectrum."""
    warm("rocket-8")
    rows = benchmark(kernel_study.table4_binary_size)
    sizes = {r["kernel"]: r["binary_mb"] for r in rows}
    assert sizes["RU"] < 1.0 and sizes["SU"] > 3.0
    show(kernel_study.render_table4())


def test_table5_dyninst_ipc(benchmark):
    """Table 5: dynamic instructions and IPC on the Intel Xeon."""
    warm("rocket-8")
    rows = benchmark(kernel_study.table5_dyninst_ipc)
    table = {r["kernel"]: r for r in rows}
    assert table["RU"]["dyn_instr_t"] > 20  # paper: 26.9T
    assert table["TI"]["dyn_instr_t"] < 1   # paper: 0.476T
    assert table["RU"]["ipc"] > table["SU"]["ipc"]
    show(kernel_study.render_table5())


def test_table6_cache_profile(benchmark):
    """Table 6: I-cache/D-cache pressure shifts with unrolling."""
    warm("rocket-8")
    rows = benchmark(kernel_study.table6_cache)
    table = {r["kernel"]: r for r in rows}
    assert table["SU"]["l1i_miss_b"] > 10  # paper: 50.8B
    assert table["RU"]["l1d_load_b"] > 1000  # paper: 8190B
    show(kernel_study.render_table6())


def test_fig15_kernel_compile(benchmark):
    """Figure 15: kernel compile time/memory on all four machines."""
    warm("rocket-8")
    rows = benchmark(kernel_study.fig15_kernel_compile)
    assert len(rows) == len(KERNEL_NAMES) * 4
    show(kernel_study.render_fig15())


def test_fig16_kernel_sim(benchmark):
    """Figure 16: the PSU sweet spot (and TI on the Intel Core)."""
    warm("rocket-8")
    rows = benchmark(kernel_study.fig16_kernel_sim)
    best = {r["machine"]: r["kernel"] for r in rows if r["best"]}
    assert best["Intel Xeon Gold 5512U"] == "PSU"
    assert best["Intel Core i9-13900K"] == "TI"
    show(kernel_study.render_fig16())
