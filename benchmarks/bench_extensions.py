"""Ablation benches for the Box 1 extension features."""

from repro.designs import library
from repro.firrtl.elaborate import elaborate
from repro.firrtl.parser import parse
from repro.graph.build import build_dfg
from repro.graph.optimize import optimize
from repro.kernels import make_activity_aware, make_kernel
from repro.oim import build_oim
from repro.repcut import RepCutSimulator

from bench_common import show


def _bundle(source: str):
    graph, _ = optimize(build_dfg(elaborate(parse(source))))
    return build_oim(graph)


def test_ablation_activity_skipping(benchmark):
    """Activity-aware evaluation: skip rate on a low-activity workload."""
    bundle = _bundle(library.shift_fifo(width=8, depth=8))

    def run():
        kernel = make_activity_aware(bundle, "PSU")
        values = bundle.initial_values()
        # Two pushes, then a long quiescent tail (low activity factor).
        push_slot = bundle.input_slots["push"]
        data_slot = bundle.input_slots["data_in"]
        for cycle in range(50):
            values[push_slot] = 1 if cycle < 2 else 0
            values[data_slot] = 0x5A if cycle < 2 else 0
            kernel.eval_comb(values)
            staged = [
                (state, values[next_slot])
                for state, next_slot in bundle.register_commits
            ]
            for state, value in staged:
                values[state] = value
        return kernel.stats

    stats = benchmark(run)
    assert stats.op_skip_rate > 0.3
    show(
        "Ablation: activity-aware skipping (shift FIFO, 50 cycles)\n"
        f"layers evaluated/skipped: {stats.layers_evaluated}/"
        f"{stats.layers_skipped}  (op skip rate "
        f"{stats.op_skip_rate:.1%})"
    )


def test_ablation_differential_exchange(benchmark):
    """Differential exchange: suppressed synchronisation traffic."""
    source = library.shift_fifo(width=8, depth=6)
    graph, _ = optimize(build_dfg(elaborate(parse(source))))

    def run():
        multi = RepCutSimulator(graph, num_partitions=3)
        multi.poke("push", 1)
        multi.poke("data_in", 0x77)
        multi.step(3)
        multi.poke("push", 0)
        multi.step(30)
        return multi

    multi = benchmark(run)
    assert multi.differential_savings > 0.3
    show(
        "Ablation: differential exchange (3 partitions, 33 cycles)\n"
        f"sent {multi.sync_sent}, suppressed {multi.sync_suppressed} "
        f"({multi.differential_savings:.1%} saved vs full exchange of "
        f"{multi.sync_traffic_per_cycle()}/cycle)"
    )
