#!/usr/bin/env python
"""Line-coverage ratchet: fail CI if coverage drops below the floor.

Reads the Cobertura XML produced by ``pytest --cov-report=xml`` and
compares its overall ``line-rate`` against the checked-in floor file
(``coverage_floor.txt``).  The gate fails when coverage falls more than
``--slack`` (default 0.02, i.e. two percentage points) below the floor,
so ordinary churn doesn't flake but a PR that lands a swath of untested
code does.

The floor only moves by explicit commit: run with ``--update-floor``
after a coverage run to ratchet it up to the measured value.

Usage (the 3.12+numpy tier-1 leg)::

    python benchmarks/coverage_gate.py --xml coverage.xml \
        --floor coverage_floor.txt
"""

from __future__ import annotations

import argparse
import sys
import xml.etree.ElementTree as ET
from pathlib import Path


def read_line_rate(xml_path: Path) -> float:
    root = ET.parse(xml_path).getroot()
    rate = root.get("line-rate")
    if rate is None:
        # Fall back to counting <line hits=...> entries for non-Cobertura
        # shapes; pytest-cov always emits line-rate, so this is belt and
        # braces rather than an expected path.
        lines = root.iter("line")
        hits = total = 0
        for line in lines:
            total += 1
            hits += int(line.get("hits", "0")) > 0
        if not total:
            raise SystemExit(f"{xml_path}: no line-rate and no <line> entries")
        return hits / total
    return float(rate)


def read_floor(floor_path: Path) -> float:
    for raw in floor_path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            return float(line)
    raise SystemExit(f"{floor_path}: no floor value found")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--xml", default="coverage.xml",
                        help="Cobertura XML report from pytest-cov")
    parser.add_argument("--floor", default="coverage_floor.txt",
                        help="checked-in floor file")
    parser.add_argument("--slack", type=float, default=0.02,
                        help="allowed drop below the floor (fraction)")
    parser.add_argument("--update-floor", action="store_true",
                        help="rewrite the floor file to the measured value")
    args = parser.parse_args(argv)

    current = read_line_rate(Path(args.xml))
    floor = read_floor(Path(args.floor))
    print(f"line coverage: {current:.2%} (floor {floor:.2%}, "
          f"slack {args.slack:.0%})")

    if args.update_floor:
        Path(args.floor).write_text(
            "# Line-coverage floor for benchmarks/coverage_gate.py.\n"
            "# Ratchet with: python benchmarks/coverage_gate.py "
            "--update-floor\n"
            f"{current:.4f}\n"
        )
        print(f"floor updated to {current:.4f}")
        return 0

    if current < floor - args.slack:
        print(f"FAIL: coverage {current:.2%} is more than "
              f"{args.slack:.0%} below the floor {floor:.2%}")
        return 1
    if current > floor + args.slack:
        print(f"note: coverage is well above the floor -- consider "
              f"ratcheting with --update-floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
