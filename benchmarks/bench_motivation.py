"""Benches for the Section 3 motivation: Figures 7-8 and Table 1."""

from repro.experiments import motivation

from bench_common import show, warm

DESIGNS = ("rocket-1", "rocket-4", "small-1", "small-4")


def test_fig07_topdown(benchmark):
    """Figure 7: Verilator vs ESSENT top-down breakdown on Graviton 4."""
    warm(*DESIGNS)
    rows = benchmark(motivation.fig07_topdown, DESIGNS)
    by_key = {(r["design"], r["engine"]): r for r in rows}
    for design in DESIGNS:
        verilator = by_key[(design, "Verilator")]
        essent = by_key[(design, "ESSENT")]
        assert (
            essent["frontend_pct"] + essent["bad_speculation_pct"]
            <= verilator["frontend_pct"] + verilator["bad_speculation_pct"]
        )
    show(motivation.render_fig07(DESIGNS))


def test_fig08_compile_cost(benchmark):
    """Figure 8: compilation time and peak memory, Verilator vs ESSENT."""
    warm(*DESIGNS)
    rows = benchmark(motivation.fig08_compile_cost, DESIGNS)
    by_key = {(r["design"], r["engine"]): r for r in rows}
    for design in DESIGNS:
        assert (
            by_key[(design, "ESSENT")]["compile_time_s"]
            > by_key[(design, "Verilator")]["compile_time_s"]
        )
    show(motivation.render_fig08(DESIGNS))


def test_table1_identity_ops(benchmark):
    """Table 1: identity operations dominate effectual operations."""
    designs = ("rocket-1", "small-1", "rocket-8", "small-8")
    warm(*designs)
    rows = benchmark(motivation.table1_identity, designs)
    for row in rows:
        assert row["identity_ops"] > 4 * row["effectual_ops"]
    show(motivation.render_table1(designs))
