#!/usr/bin/env python3
"""CI perf-regression gate: fresh bench JSON vs the checked-in baseline.

Loose by design -- benches run on whatever host CI hands us, so the gate
only fails when a row's lane-cycles/sec drops more than ``--factor``
(default 5x) below the recorded baseline: it catches order-of-magnitude
regressions (an accidentally de-vectorised kernel, a quadratic sync
loop), not scheduling noise.

    python benchmarks/perf_gate.py --baseline BENCH_batch.json \
        --current /tmp/batch_tiny.json --factor 5

Rows are matched on their identity fields (mode / design / kernel /
lanes / partitions / executor / strategy / sessions -- whichever are
present); rows only
one side has are ignored, so a ``--tiny`` sweep gates against the full
recorded grid.  Matched rows that record a ``replication_overhead`` are
additionally gated *tightly* (the partitioner is deterministic): rising
more than ``--replication-slack`` above the baseline fails.
A NumPy-availability mismatch between baseline and current skips the
gate (the engines measured are not comparable), as does a missing
baseline file, so new benches can land before their first baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Tuple

#: Fields identifying a row (used when present, in this order).  The
#: backend is part of the identity: a ``u64xN`` fast-path row and an
#: ``object`` comparison row of the same design/kernel/B are different
#: measurements and must never gate against each other.  Likewise the
#: partitioner ``strategy``: greedy and refined rows of the same grid
#: point have deliberately different replication overheads.
KEY_FIELDS = (
    "mode", "design", "kernel", "lanes", "backend", "partitions",
    "executor", "strategy", "transport", "engine", "sessions", "period",
)
#: The gated metric, by preference: sharded rows record ``lane_cps``,
#: batched rows ``batch_lane_cps``, serve startup rows ``warm_speedup``
#: (cache effectiveness -- a ratio, but gated the same way: falling more
#: than ``factor``x below the recorded baseline fails), activity-sweep
#: rows ``sparse_speedup`` (dense-vs-sparse on one host, also a ratio).
METRIC_FIELDS = ("lane_cps", "batch_lane_cps", "warm_speedup",
                 "sparse_speedup")

#: Floor rule for the activity sweep: at input activity at or below this
#: factor, *and* where the stimulus actually makes the design quiescent
#: (measured op skip rate above ``SPARSE_FLOOR_MIN_SKIP``), the sparse
#: engine's best speedup must exceed 1 -- skipping work may never cost
#: more than doing it.  Designs whose internal state free-runs under
#: held inputs (a fetching CPU core) never reach the skip threshold and
#: are exempt with a notice: there is no sparsity there to exploit.
SPARSE_FLOOR_ACTIVITY = 0.10
SPARSE_FLOOR_MIN_SKIP = 0.5

#: Floor rule for the shared-memory lane planes: at or above this many
#: partitions, a sharded row recording ``shm_speedup`` (shm vs the
#: pickled-pipe process executor, same host and sweep) must keep its
#: per-design best at or above 1x -- zero-copy index writes may never
#: lose to the pipe exchange they replace.  Both arms of a pair are
#: kernel-dominated on small cuts, so single points are noisy; the rule
#: takes the best over the measured grid, like the other floors.
SHM_FLOOR_MIN_PARTITIONS = 2

#: Floor rule for the compiled C batch backend: at or above this many
#: lanes, a row recording ``compiled_speedup`` (compiled vs the SU NumPy
#: codegen kernel, same host and process) must stay at or above 1x --
#: the compiled pass may never lose to the kernel it replaces.  Rows
#: below the lane threshold are informational (tiny batches measure
#: dispatch overhead, not the pass).
COMPILED_FLOOR_MIN_LANES = 8


def row_key(row: Dict[str, object]) -> Tuple:
    return tuple((field, row[field]) for field in KEY_FIELDS if field in row)


def row_metric(row: Dict[str, object]):
    """The first present, non-null, non-zero metric of a row.

    ``None`` and ``0`` both mean "nothing comparable was measured" (a
    skipped arm, a failed timer): comparing against a missing value or
    dividing by a zero baseline would crash or divide by zero, so such
    rows are skipped with a notice in :func:`gate` instead.
    """
    for field in METRIC_FIELDS:
        value = row.get(field)
        if value is None:
            continue
        value = float(value)
        if value != 0.0:
            return field, value
    return None, None


def sparse_floor(current: dict, floor: float = 1.0) -> Tuple[int, list]:
    """The activity-sweep floor: (checks run, failure labels).

    Per design, among current rows with ``activity_factor`` at or below
    :data:`SPARSE_FLOOR_ACTIVITY` whose measured ``op_skip_rate``
    clears :data:`SPARSE_FLOOR_MIN_SKIP`, the best ``sparse_speedup``
    must be at least ``floor``.  Absolute, not baseline-relative: the
    dense and sparse arms run on the same host in the same process, so
    their ratio is host-independent in a way lane-cycles/sec is not.
    """
    eligible: Dict[str, float] = {}
    for row in current.get("rows", []):
        speedup = row.get("sparse_speedup")
        activity = row.get("activity_factor")
        skip = row.get("op_skip_rate")
        if speedup is None or activity is None:
            continue
        if float(activity) > SPARSE_FLOOR_ACTIVITY:
            continue
        design = str(row.get("design"))
        if skip is None or float(skip) < SPARSE_FLOOR_MIN_SKIP:
            print(
                f"  [exempt] design={design}, activity={float(activity):.3f}: "
                f"op_skip_rate {float(skip or 0):.2f} below "
                f"{SPARSE_FLOOR_MIN_SKIP} -- design never went quiescent"
            )
            continue
        best = eligible.get(design, 0.0)
        eligible[design] = max(best, float(speedup))
    failures = []
    for design, best in sorted(eligible.items()):
        status = "ok" if best >= floor else "FAIL"
        print(
            f"  [{status}] design={design}: best sparse_speedup at "
            f"activity<={SPARSE_FLOOR_ACTIVITY:.0%} is {best:.2f}x "
            f"(floor {floor:.2f}x)"
        )
        if best < floor:
            failures.append(f"design={design} (sparse_speedup floor)")
    return len(eligible), failures


def compiled_floor(current: dict, floor: float = 1.0) -> Tuple[int, list]:
    """The compiled-backend floor: (checks run, failure labels).

    Per design, among current rows with a ``compiled_speedup`` at
    :data:`COMPILED_FLOOR_MIN_LANES` lanes or more, the best ratio must
    be at least ``floor``.  Absolute, not baseline-relative: the
    compiled and SU arms ran on the same host in the same process, so
    their ratio is host-independent in a way lane-cycles/sec is not.
    Hosts without a toolchain record no ``compiled_speedup`` rows and
    run zero checks here.
    """
    eligible: Dict[str, float] = {}
    for row in current.get("rows", []):
        speedup = row.get("compiled_speedup")
        lanes = row.get("lanes")
        if speedup is None or lanes is None:
            continue
        if int(lanes) < COMPILED_FLOOR_MIN_LANES:
            continue
        design = str(row.get("design"))
        eligible[design] = max(eligible.get(design, 0.0), float(speedup))
    failures = []
    for design, best in sorted(eligible.items()):
        status = "ok" if best >= floor else "FAIL"
        print(
            f"  [{status}] design={design}: best compiled_speedup at "
            f"B>={COMPILED_FLOOR_MIN_LANES} is {best:.2f}x "
            f"(floor {floor:.2f}x)"
        )
        if best < floor:
            failures.append(f"design={design} (compiled_speedup floor)")
    return len(eligible), failures


def shm_floor(current: dict, floor: float = 1.0) -> Tuple[int, list]:
    """The shared-memory lane-plane floor: (checks run, failure labels).

    Per design, among current rows with a ``shm_speedup`` at
    :data:`SHM_FLOOR_MIN_PARTITIONS` partitions or more, the best ratio
    must be at least ``floor``.  Absolute, not baseline-relative: the
    shm and pipe arms ran back-to-back on the same host in the same
    sweep, so their ratio is host-independent in a way lane-cycles/sec
    is not.  Hosts without NumPy take the pipe path everywhere, record
    no ``shm_speedup`` rows, and run zero checks here.
    """
    eligible: Dict[str, float] = {}
    for row in current.get("rows", []):
        speedup = row.get("shm_speedup")
        partitions = row.get("partitions")
        if speedup is None or partitions is None:
            continue
        if int(partitions) < SHM_FLOOR_MIN_PARTITIONS:
            continue
        design = str(row.get("design"))
        eligible[design] = max(eligible.get(design, 0.0), float(speedup))
    failures = []
    for design, best in sorted(eligible.items()):
        status = "ok" if best >= floor else "FAIL"
        print(
            f"  [{status}] design={design}: best shm_speedup at "
            f"P>={SHM_FLOOR_MIN_PARTITIONS} is {best:.2f}x "
            f"(floor {floor:.2f}x)"
        )
        if best < floor:
            failures.append(f"design={design} (shm_speedup floor)")
    return len(eligible), failures


def gate(
    baseline: dict,
    current: dict,
    factor: float,
    replication_slack: float = 0.01,
) -> int:
    """Gate ``current`` rows against ``baseline`` rows.

    Two checks per matched row:

    * lane-cycles/sec may not fall more than ``factor``x below the
      baseline (loose: hosts differ);
    * ``replication_overhead``, when both sides record it, may not rise
      more than ``replication_slack`` (absolute) above the baseline --
      the partitioner is deterministic, so this gate is tight and keyed
      by strategy: a refined row quietly regressing back to greedy-level
      replication fails even if the host is fast enough to hide it.
    """
    if bool(baseline.get("numpy")) != bool(current.get("numpy")):
        print(
            f"perf-gate: numpy availability differs (baseline="
            f"{baseline.get('numpy')}, current={current.get('numpy')}); "
            "engines are not comparable -- skipping"
        )
        return 0
    base_rows = {row_key(row): row for row in baseline.get("rows", [])}
    compared = 0
    failures = []
    for row in current.get("rows", []):
        reference = base_rows.get(row_key(row))
        if reference is None:
            continue
        label = ", ".join(f"{k}={v}" for k, v in row_key(row))
        metric, value = row_metric(row)
        ref_metric, ref_value = row_metric(reference)
        if metric is None or ref_metric is None:
            side = "current" if metric is None else "baseline"
            print(f"  [skip] {label}: no usable metric on the {side} side")
        else:
            compared += 1
            floor = ref_value / factor
            status = "ok" if value >= floor else "FAIL"
            print(
                f"  [{status}] {label}: {metric} {value:.1f} "
                f"(baseline {ref_value:.1f}, floor {floor:.1f})"
            )
            if value < floor:
                failures.append(f"{label} ({metric})")
        rep = row.get("replication_overhead")
        ref_rep = reference.get("replication_overhead")
        if rep is not None and ref_rep is not None:
            compared += 1
            ceiling = float(ref_rep) + replication_slack
            status = "ok" if float(rep) <= ceiling else "FAIL"
            print(
                f"  [{status}] {label}: replication_overhead {float(rep):.4f} "
                f"(baseline {float(ref_rep):.4f}, ceiling {ceiling:.4f})"
            )
            if float(rep) > ceiling:
                failures.append(f"{label} (replication_overhead)")
    # The absolute floor rules run regardless of baseline matches.
    floor_checks, floor_failures = sparse_floor(current)
    failures.extend(floor_failures)
    compared += floor_checks
    floor_checks, floor_failures = compiled_floor(current)
    failures.extend(floor_failures)
    compared += floor_checks
    floor_checks, floor_failures = shm_floor(current)
    failures.extend(floor_failures)
    compared += floor_checks
    if compared == 0:
        print("perf-gate: no comparable rows between baseline and current")
        return 0
    if failures:
        print(
            f"perf-gate: {len(failures)}/{compared} checks regressed "
            f"past their thresholds"
        )
        return 1
    print(f"perf-gate: {compared} checks within thresholds")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly measured bench JSON")
    parser.add_argument("--factor", type=float, default=5.0,
                        help="allowed slowdown before failing (default 5x)")
    parser.add_argument("--replication-slack", type=float, default=0.01,
                        help="allowed absolute replication-overhead rise "
                        "above baseline (default 0.01; deterministic)")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    current = json.loads(Path(args.current).read_text())
    if not baseline_path.exists():
        # No trajectory to compare against, but the absolute floor rules
        # (sparse_speedup) need no baseline -- a brand-new bench is still
        # gated on the day it lands.
        print(f"perf-gate: no baseline at {baseline_path} -- "
              "floor rules only")
        _, failures = sparse_floor(current)
        _, compiled_failures = compiled_floor(current)
        failures.extend(compiled_failures)
        _, shm_failures = shm_floor(current)
        failures.extend(shm_failures)
        return 1 if failures else 0
    baseline = json.loads(baseline_path.read_text())
    return gate(baseline, current, args.factor, args.replication_slack)


if __name__ == "__main__":
    sys.exit(main())
