"""Shared helpers for the benchmark harness.

Every paper table/figure has a bench that (a) regenerates the rows, (b)
asserts the paper's qualitative shape, and (c) prints the rendered table
(visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations


def show(text: str) -> None:
    print()
    print(text)


def warm(*design_names: str) -> None:
    """Pre-compile designs so benches measure row generation, not parsing."""
    from repro.designs.registry import compile_named_design

    for name in design_names:
        compile_named_design(name)
