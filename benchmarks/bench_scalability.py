"""Benches for the Sections 7.3-7.4 scalability studies (Figure 17-19,
Table 7)."""

from repro.experiments import scalability

from bench_common import show, warm

DESIGNS = ("rocket-1", "rocket-4", "rocket-8", "rocket-12")


def test_fig17_kernel_scaling(benchmark):
    """Figure 17: kernel sim time vs design size; TI loses from r4."""
    warm(*DESIGNS)
    rows = benchmark(scalability.fig17_kernel_scaling, DESIGNS)
    table = {}
    for row in rows:
        table.setdefault(row["design"], {})[row["kernel"]] = row["sim_time_s"]
    assert table["rocket-1"]["TI"] < table["rocket-1"]["PSU"]
    assert table["rocket-4"]["PSU"] < table["rocket-4"]["TI"]
    show(scalability.render_fig17(DESIGNS))


def test_table7_compile_scaling(benchmark):
    """Table 7: PSU constant; ESSENT super-linear compile costs."""
    warm(*DESIGNS)
    rows = benchmark(scalability.table7_compile_scaling, DESIGNS)
    psu = [r["compile_time_s"] for r in rows if r["engine"] == "PSU"]
    assert max(psu) < 1.2 * min(psu)
    show(scalability.render_table7(DESIGNS))


def test_fig18_sim_o3(benchmark):
    """Figure 18: ESSENT < PSU < Verilator at clang -O3."""
    warm(*DESIGNS)
    rows = benchmark(scalability.fig18_sim_o3, DESIGNS)
    table = {}
    for row in rows:
        table.setdefault(row["design"], {})[row["engine"]] = row["sim_time_s"]
    for design in ("rocket-4", "rocket-8", "rocket-12"):
        assert table[design]["ESSENT"] < table[design]["PSU"] < table[design]["Verilator"]
    show(scalability.render_fig18(DESIGNS))


def test_fig19_sim_o0(benchmark):
    """Figure 19: ESSENT collapses at -O0; PSU ~ Verilator."""
    warm(*DESIGNS)
    rows = benchmark(scalability.fig19_sim_o0, DESIGNS)
    table = {}
    for row in rows:
        table.setdefault(row["design"], {})[row["engine"]] = row["sim_time_s"]
    for design in DESIGNS:
        assert table[design]["ESSENT"] > 2 * table[design]["Verilator"]
    show(scalability.render_fig19(DESIGNS))
