"""Raw-substrate benchmarks: compiler pipeline, kernels, cache simulator.

These measure the repository's own machinery (in contrast to the
figure-regeneration benches, which measure the modelled numbers).
"""

import random

from repro.designs import get_design, library
from repro.firrtl.elaborate import elaborate
from repro.firrtl.parser import parse
from repro.graph.build import build_dfg
from repro.graph.optimize import optimize
from repro.kernels.pykernels import make_kernel
from repro.oim.builder import build_oim
from repro.perf.cache import CacheHierarchy
from repro.perf.machines import INTEL_XEON


def _compile_pipeline(source: str):
    graph, _ = optimize(build_dfg(elaborate(parse(source))))
    return build_oim(graph)


def test_bench_compile_pipeline(benchmark):
    """FIRRTL -> elaborate -> DFG -> optimise -> OIM for a 1-core SoC."""
    source = get_design("rocket-1")
    bundle = benchmark(_compile_pipeline, source)
    assert bundle.num_ops > 1000


def test_bench_firrtl_parse(benchmark):
    source = get_design("rocket-4")
    circuit = benchmark(parse, source)
    assert circuit.name == "RocketSoc"


def _run_cycles(kernel, bundle, cycles=50):
    values = bundle.initial_values()
    for _ in range(cycles):
        kernel.eval_comb(values)
    return values


def _kernel_bench(benchmark, name):
    bundle = _compile_pipeline(get_design("gemmini-4"))
    kernel = make_kernel(bundle, name)
    values = benchmark(_run_cycles, kernel, bundle)
    assert any(values)


def test_bench_kernel_ru(benchmark):
    """Rolled interpreter throughput (Algorithm 3)."""
    _kernel_bench(benchmark, "RU")


def test_bench_kernel_psu(benchmark):
    """Swizzled per-op-type loops (Algorithm 4)."""
    _kernel_bench(benchmark, "PSU")


def test_bench_kernel_ti(benchmark):
    """Generated straight-line code with tensor inlining."""
    _kernel_bench(benchmark, "TI")


def test_bench_cache_hierarchy(benchmark):
    """Trace-driven cache simulator throughput."""
    rng = random.Random(7)
    trace = [rng.randrange(1 << 22) * 64 for _ in range(20_000)]

    def run():
        hierarchy = CacheHierarchy(INTEL_XEON, side="data")
        for address in trace:
            hierarchy.access(address)
        return hierarchy.miss_counts()

    misses = benchmark(run)
    assert misses[0] > 0


def test_bench_einsum_interpreter(benchmark):
    """EDGE interpreter on a matrix-vector cascade."""
    from repro.einsum import Einsum, MapSpec, ReduceSpec, TensorRef, evaluate
    from repro.einsum.operators import ADD, INTERSECT, MUL
    from repro.tensor import Tensor

    rng = random.Random(3)
    matrix = Tensor.from_points(
        {
            (rng.randrange(64), rng.randrange(64)): rng.randrange(1, 100)
            for _ in range(500)
        },
        ["k", "m"], [64, 64],
    )
    vector = Tensor.from_dense([rng.randrange(1, 10) for _ in range(64)], ["k"])
    einsum = Einsum(
        TensorRef.parse("Z[m]"),
        (TensorRef.parse("A[k, m]"), TensorRef.parse("B[k]")),
        MapSpec(MUL, INTERSECT),
        ReduceSpec(ADD),
    )
    result = benchmark(evaluate, einsum, {"A": matrix, "B": vector})
    assert result.occupancy > 0
