#!/usr/bin/env python3
"""Bench for the service layer (repro.serve): cache + fleet.

Two measurements:

* **startup** -- wall-clock to construct a refined-partition
  :class:`ShardedBatchSimulator` from FIRRTL source in a *fresh process*,
  cold (empty artifact cache: full elaborate + partition + lower) versus
  warm (second process, same ``REPRO_CACHE_DIR``): the artifact cache's
  raison d'etre.  ``warm_speedup`` is the gated metric.
* **sessions** -- aggregate lane-cycles/sec of N concurrent fleet
  sessions driven round-robin through the coalescing barrier, versus the
  same stimulus on one scalar simulator at a time: the multiplexing win.

CLI (CI smoke + JSON baseline for the perf gate)::

    PYTHONPATH=src python benchmarks/bench_serve.py --tiny
    PYTHONPATH=src python benchmarks/bench_serve.py --json BENCH_serve.json

Subprocess timing covers *construction only* (imports happen before the
timer): the claim is about elaboration/partitioning/lowering time saved,
not interpreter startup.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

if __name__ == "__main__":  # script mode: make src/ and bench_common importable
    root = Path(__file__).resolve().parent
    sys.path.insert(0, str(root))
    sys.path.insert(0, str(root.parent / "src"))

from repro.batch import HAS_NUMPY

DESIGNS = ("rocket-1", "gemmini-8")
PARTITIONS = 4
STRATEGY = "refined"
LANES = 8
SESSIONS = 8
SESSION_CYCLES = 40

TINY_DESIGNS = ("rocket-1",)
TINY_SESSION_CYCLES = 10

_CHILD_SCRIPT = """\
import json, sys, time
design, partitions, strategy, lanes = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4])
)
from repro.designs.registry import get_design
from repro.shard import ShardedBatchSimulator
import repro.serve.artifacts  # noqa: F401  (lazy import kept off the clock)
source = get_design(design)
start = time.perf_counter()
sim = ShardedBatchSimulator(
    source, lanes=lanes, num_partitions=partitions, partitioner=strategy,
)
seconds = time.perf_counter() - start
sim.step(1)  # prove the cached build actually simulates
print(json.dumps({"seconds": seconds, "partitions": sim.num_partitions}))
sim.close()
"""


def _child_env(cache_dir: str) -> Dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [src, env.get("PYTHONPATH", "")] if p
    )
    env["REPRO_CACHE_DIR"] = cache_dir
    return env


def _spawn_build(design: str, partitions: int, strategy: str, lanes: int,
                 cache_dir: str) -> float:
    """Construct the sharded simulator in a fresh process; returns the
    construction wall-clock in seconds."""
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, design, str(partitions),
         strategy, str(lanes)],
        capture_output=True, text=True, env=_child_env(cache_dir),
        check=True,
    )
    return float(json.loads(out.stdout.strip().splitlines()[-1])["seconds"])


def startup_rows(
    designs: Sequence[str] = DESIGNS,
    partitions: int = PARTITIONS,
    strategy: str = STRATEGY,
    lanes: int = LANES,
) -> List[Dict[str, object]]:
    """Cold-vs-warm second-process construction, one row per design."""
    rows: List[Dict[str, object]] = []
    for design in designs:
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cd:
            cold = _spawn_build(design, partitions, strategy, lanes, cd)
            warm = _spawn_build(design, partitions, strategy, lanes, cd)
        rows.append({
            "mode": "startup",
            "design": design,
            "partitions": partitions,
            "strategy": strategy,
            "lanes": lanes,
            "cold_seconds": cold,
            "warm_seconds": warm,
            "warm_speedup": cold / warm if warm > 0 else None,
        })
    return rows


def session_rows(
    designs: Sequence[str] = DESIGNS,
    engine: str = "batch",
    lanes: int = LANES,
    sessions: int = SESSIONS,
    cycles: int = SESSION_CYCLES,
) -> List[Dict[str, object]]:
    """N concurrent fleet sessions vs N sequential scalar runs."""
    import random

    from repro.designs.registry import compiled_graph, get_design
    from repro.serve.fleet import LaneFleet
    from repro.sim import Simulator

    rows: List[Dict[str, object]] = []
    for design in designs:
        source = get_design(design)
        inputs = sorted(compiled_graph(design).inputs)
        members = max(1, (sessions + lanes - 1) // lanes)
        with LaneFleet(source, engine=engine, lanes=lanes,
                       max_members=members) as fleet:
            opened = [fleet.open_session() for _ in range(sessions)]
            rngs = [random.Random(index) for index in range(sessions)]
            start = time.perf_counter()
            for _ in range(cycles):
                for rng, session in zip(rngs, opened):
                    for name in inputs:
                        session.poke(name, rng.randrange(1 << 16))
                for session in opened:
                    session.step(1)
            fleet_seconds = time.perf_counter() - start

        scalar = Simulator(source)
        rng = random.Random(0)
        start = time.perf_counter()
        for _ in range(cycles):
            for name in inputs:
                scalar.poke(name, rng.randrange(1 << 16))
            scalar.step()
        scalar_seconds = time.perf_counter() - start

        lane_cps = sessions * cycles / fleet_seconds if fleet_seconds else None
        scalar_cps = cycles / scalar_seconds if scalar_seconds else None
        rows.append({
            "mode": "sessions",
            "design": design,
            "engine": engine,
            "lanes": lanes,
            "sessions": sessions,
            "cycles": cycles,
            "lane_cps": lane_cps,
            "scalar_cps": scalar_cps,
            "multiplex_gain": (
                lane_cps / scalar_cps if lane_cps and scalar_cps else None
            ),
        })
    return rows


def render_rows(rows: Sequence[Dict[str, object]]) -> str:
    lines = ["Simulation-as-a-service (measured)", ""]
    startup = [r for r in rows if r["mode"] == "startup"]
    if startup:
        lines.append(f"{'design':<12} {'P':>2} {'strategy':<8} "
                     f"{'cold s':>8} {'warm s':>8} {'speedup':>8}")
        for row in startup:
            lines.append(
                f"{row['design']:<12} {row['partitions']:>2} "
                f"{row['strategy']:<8} {row['cold_seconds']:>8.3f} "
                f"{row['warm_seconds']:>8.3f} {row['warm_speedup']:>7.1f}x"
            )
        lines.append("")
    sessions = [r for r in rows if r["mode"] == "sessions"]
    if sessions:
        lines.append(f"{'design':<12} {'engine':<6} {'N':>3} "
                     f"{'fleet l-cps':>12} {'scalar cps':>11} {'gain':>6}")
        for row in sessions:
            lines.append(
                f"{row['design']:<12} {row['engine']:<6} "
                f"{row['sessions']:>3} {row['lane_cps']:>12.1f} "
                f"{row['scalar_cps']:>11.1f} {row['multiplex_gain']:>5.2f}x"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry points (tier-1 smoke: fast, loose assertions)
# ----------------------------------------------------------------------
def test_warm_startup_beats_cold():
    """A second process constructing from a warm cache must be decisively
    faster than the cold elaborate+partition+lower pipeline.  (The full
    CLI run records the ~10x+ figure in BENCH_serve.json; here the bound
    is loose to stay robust on noisy CI hosts.)"""
    rows = startup_rows(designs=("rocket-1",))
    row = rows[0]
    assert row["warm_seconds"] < row["cold_seconds"]
    assert row["warm_speedup"] > 2.0
    print()
    print(render_rows(rows))


def test_fleet_sessions_throughput():
    """Eight coalesced sessions finish their cycles, and the aggregate
    session-cycle rate beats a single scalar simulator's rate (the
    batched sweep amortises across lanes)."""
    rows = session_rows(designs=("rocket-1",), sessions=8,
                        cycles=TINY_SESSION_CYCLES)
    row = rows[0]
    assert row["lane_cps"] and row["lane_cps"] > 0
    assert row["multiplex_gain"] and row["multiplex_gain"] > 1.0
    print()
    print(render_rows(rows))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test sweep (CI): one design, few cycles")
    parser.add_argument("--designs", nargs="+", default=None)
    parser.add_argument("--partitions", type=int, default=PARTITIONS)
    parser.add_argument("--strategy", default=STRATEGY)
    parser.add_argument("--lanes", type=int, default=LANES)
    parser.add_argument("--sessions", type=int, default=SESSIONS)
    parser.add_argument("--cycles", type=int, default=None,
                        help="cycles per session for the throughput rows")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write rows + metadata as JSON")
    args = parser.parse_args(argv)

    designs = tuple(args.designs or (TINY_DESIGNS if args.tiny else DESIGNS))
    cycles = args.cycles or (
        TINY_SESSION_CYCLES if args.tiny else SESSION_CYCLES
    )

    rows = startup_rows(designs, args.partitions, args.strategy, args.lanes)
    rows += session_rows(designs, "batch", args.lanes, args.sessions, cycles)
    print(render_rows(rows))
    if not HAS_NUMPY:
        print("\n(NumPy not installed: pure-Python lane fallback measured)")

    if args.json:
        payload = {
            "bench": "bench_serve",
            "numpy": HAS_NUMPY,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
            "rows": rows,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
