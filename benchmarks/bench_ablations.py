"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.experiments import ablations

from bench_common import show, warm


def test_ablation_oim_formats(benchmark):
    """Figure 12 stepwise compression: each format variant shrinks the OIM."""
    warm("rocket-1")
    rows = benchmark(ablations.ablation_oim_formats, "rocket-1")
    sizes = [r["bytes"] for r in rows]
    assert sizes[0] > sizes[1] and sizes[2] < sizes[0]
    show(ablations.render_oim_formats("rocket-1"))


def test_ablation_identity_elision(benchmark):
    """Section 4.3: elision removes the dominant identity-op cost."""
    warm("rocket-1")
    rows = benchmark(ablations.ablation_identity_elision, "rocket-1")
    by_mode = {r["mode"]: r["ops_per_cycle"] for r in rows}
    assert by_mode["identities materialised"] > 4 * by_mode["identities elided"]
    show(ablations.render_identity_elision("rocket-1"))


def test_ablation_mux_fusion(benchmark):
    """Appendix B operator fusion: fewer ops, shallower layers."""
    rows = benchmark(ablations.ablation_mux_fusion, "rocket-1")
    off, on = rows
    assert on["layers"] < off["layers"]
    show(ablations.render_mux_fusion("rocket-1"))


def test_ablation_repcut(benchmark):
    """Appendix C: replication overhead vs partition count."""
    warm("rocket-1")
    rows = benchmark(ablations.ablation_repcut, "rocket-1", (1, 2, 4))
    assert rows[0]["replication_overhead"] == 0
    assert rows[-1]["replication_overhead"] >= rows[1]["replication_overhead"]
    show(ablations.render_repcut("rocket-1"))
