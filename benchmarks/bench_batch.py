#!/usr/bin/env python3
"""Bench for the batched tensor simulation engine (repro.batch).

Measures lane-cycles/sec of one B-lane :class:`BatchSimulator` against
running B scalar simulators sequentially, across designs, kernels, and
batch sizes.  Doubles as a CLI so CI can smoke it and so a JSON baseline
(``BENCH_batch.json``) can be recorded for the perf trajectory:

    PYTHONPATH=src python benchmarks/bench_batch.py --tiny
    PYTHONPATH=src python benchmarks/bench_batch.py --json BENCH_batch.json

As with all measured (non-modelled) numbers, absolute rates are
host-dependent; the recorded result is the speedup ratio.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ and bench_common importable
    root = Path(__file__).resolve().parent
    sys.path.insert(0, str(root))
    sys.path.insert(0, str(root.parent / "src"))

from repro.batch import HAS_NUMPY
from repro.batch.backend import supports_u64
from repro.designs.registry import compile_named_design
from repro.experiments.batch_throughput import (
    attach_compiled_speedup,
    render_rows,
    throughput_rows,
)
from repro.lower.cbackend import has_toolchain

from bench_common import show, warm

DESIGNS = ("rocket-1", "gemmini-8", "sha3")
KERNELS = ("PSU", "SU")
LANES = (1, 8, 64)
CYCLES = 96

#: The tiny CI smoke includes sha3 so the wide-design (u64xN split-limb)
#: fast path is perf-gated on every push, not just rocket's u64 path.
TINY_DESIGNS = ("rocket-1", "sha3")
TINY_KERNELS = ("PSU",)
TINY_LANES = (1, 8)
TINY_CYCLES = 16

#: Wide designs also record an ``object``-backend comparison arm at the
#: largest B, so BENCH_batch.json documents the split-limb speedup.
WIDE_COMPARE_DESIGNS = ("sha3",)


def _render(rows) -> str:
    return render_rows(
        rows, title="Batched vs sequential-scalar lane throughput (measured)"
    )


# ----------------------------------------------------------------------
# pytest entry points (same harness idiom as the sibling benches)
# ----------------------------------------------------------------------
def test_batch_speedup(benchmark):
    """One B-lane OIM pass beats B sequential scalar sweeps at B=64."""
    warm("rocket-1")
    rows = benchmark(
        throughput_rows, ("rocket-1",), ("PSU",), (64,), CYCLES
    )
    assert rows[0].speedup > (5.0 if HAS_NUMPY else 0.2)
    show(_render(rows))


def test_compiled_beats_su_codegen(benchmark):
    """The compiled C pass beats the SU NumPy codegen it replaces at B=64
    on rocket-1 (the compiled-backend acceptance bar; also enforced on
    recorded baselines by perf_gate's compiled floor)."""
    import pytest

    if not (HAS_NUMPY and has_toolchain()):
        pytest.skip("compiled backend unavailable (NumPy or C toolchain)")
    warm("rocket-1")
    rows = benchmark(
        throughput_rows, ("rocket-1",), ("SU", "compiled"), (64,), CYCLES
    )
    by_kernel = {row.kernel: row for row in rows}
    assert by_kernel["compiled"].style == "compiled"  # no silent fallback
    assert (
        by_kernel["compiled"].batch_lane_cps > by_kernel["SU"].batch_lane_cps
    )
    show(_render(rows))


def test_batch_lockstep_overhead(benchmark):
    """B=1 batching costs only constant-factor overhead, not asymptotics."""
    warm("rocket-1")
    rows = benchmark(
        throughput_rows, ("rocket-1",), ("PSU",), (1,), CYCLES
    )
    assert rows[0].speedup > 0.02
    show(_render(rows))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test sweep (CI): one design, B<=8")
    parser.add_argument("--designs", nargs="+", default=None)
    parser.add_argument("--kernels", nargs="+", default=None)
    parser.add_argument("--lanes", nargs="+", type=int, default=None)
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write rows + metadata as JSON")
    parser.add_argument("--no-wide-compare", action="store_true",
                        help="skip the object-backend comparison rows for "
                             "wide designs (full sweeps only)")
    args = parser.parse_args(argv)

    designs = tuple(args.designs or (TINY_DESIGNS if args.tiny else DESIGNS))
    kernels = tuple(args.kernels or (TINY_KERNELS if args.tiny else KERNELS))
    lanes = tuple(args.lanes or (TINY_LANES if args.tiny else LANES))
    cycles = args.cycles or (TINY_CYCLES if args.tiny else CYCLES)

    warm(*designs)
    rows = throughput_rows(designs, kernels, lanes, cycles)
    # The compiled C batch backend, wherever it can actually compile:
    # u64-plane designs on hosts with a toolchain.  An SU arm rides along
    # when the main sweep lacks one, so compiled_speedup (compiled vs the
    # SU NumPy codegen it replaces) is always computable.
    if HAS_NUMPY and has_toolchain():
        compiled_designs = tuple(
            d for d in designs if supports_u64(compile_named_design(d))
        )
        if compiled_designs:
            compiled_kernels = (
                ("compiled",) if "SU" in kernels else ("SU", "compiled")
            )
            rows += throughput_rows(
                compiled_designs, compiled_kernels, lanes, cycles
            )
    elif HAS_NUMPY:
        print("(no C toolchain found: compiled-backend rows skipped)")
    wide_compare = [d for d in designs if d in WIDE_COMPARE_DESIGNS]
    if wide_compare and HAS_NUMPY and not args.tiny and not args.no_wide_compare:
        # The object reference arm at the largest B: BENCH_batch.json then
        # records the u64xN-vs-object ratio the wide fast path buys.
        rows += throughput_rows(
            tuple(wide_compare), kernels, (max(lanes),), cycles,
            backends=("object",),
        )
    print(_render(rows))
    if not HAS_NUMPY:
        print("\n(NumPy not installed: pure-Python lane fallback measured)")

    if args.json:
        payload = {
            "bench": "bench_batch",
            "numpy": HAS_NUMPY,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cycles_per_lane": cycles,
            "rows": attach_compiled_speedup([row.as_dict() for row in rows]),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
