"""Benches for the Section 7.5 main evaluation (Figures 20-21)."""

from repro.experiments import main_eval

from bench_common import show, warm

DESIGNS = (
    "rocket-1", "rocket-4", "rocket-8",
    "small-1", "small-4", "small-8",
    "gemmini-8", "gemmini-16",
    "sha3",
)


def test_fig20_speedup(benchmark):
    """Figure 20: RTeAAL vs Verilator vs ESSENT across designs/machines."""
    warm(*DESIGNS)
    rows = benchmark(main_eval.fig20_speedup, DESIGNS)
    for row in rows:
        if row["design"] == "sha3":
            assert row["rteaal_speedup"] < 1.25
        else:
            assert row["rteaal_speedup"] > 0.85
    show(main_eval.render_fig20(DESIGNS))


def test_fig21_llc_sweep(benchmark):
    """Figure 21: LLC shrink stabilises RTeAAL, cripples ESSENT."""
    warm("small-8")
    rows = benchmark(main_eval.fig21_llc)
    psu = [r["psu_time_s"] for r in rows]
    assert max(psu) < 1.1 * min(psu)                      # RTeAAL stable
    assert rows[-1]["essent_time_s"] > rows[0]["essent_time_s"]  # ESSENT degrades
    assert rows[-1]["psu_time_s"] < rows[-1]["essent_time_s"]    # RTeAAL wins at 3.5MB
    show(main_eval.render_fig21())
