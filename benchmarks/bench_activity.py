#!/usr/bin/env python3
"""Bench for sparsity-aware execution (kernel="activity").

Sweeps the input activity factor (stimulus hold period, nominal activity
``1/period``) and measures dense vs fiber-driven sparse engine
lane-cycles/sec on the same held stimulus -- the per-cycle-cost-scales-
with-activity claim, measured.  Doubles as a CLI so CI can smoke it and
so a JSON baseline (``BENCH_activity.json``) records the curve:

    PYTHONPATH=src python benchmarks/bench_activity.py --tiny
    PYTHONPATH=src python benchmarks/bench_activity.py --json BENCH_activity.json

Two regimes show up in the sweep and both are the point:

* ``sha3`` (input-driven accelerator): once absorption ends and
  ``start`` holds low, the design goes quiescent -- op skip rates reach
  ~0.99 and the sparse engine wins big (the perf gate's floor rule
  lives here: at deep sparsity the speedup must exceed 1);
* ``rocket-1`` (free-running core): internal state toggles every cycle
  no matter how still the inputs hold, skip rates stay low, and the
  sparse engine pays its bookkeeping without winning -- the honest cost
  of activity tracking on activity-saturated designs.

As with all measured (non-modelled) numbers, absolute rates are
host-dependent; the recorded results are the ratios.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

if __name__ == "__main__":  # script mode: make src/ and bench_common importable
    root = Path(__file__).resolve().parent
    sys.path.insert(0, str(root))
    sys.path.insert(0, str(root.parent / "src"))

from repro.batch import HAS_NUMPY
from repro.experiments.activity_sweep import render_rows, sweep_rows

from bench_common import show, warm

DESIGNS = ("rocket-1", "sha3")
PERIODS = (1, 4, 16, 64)
LANES = 8
CYCLES = 96

#: The tiny CI smoke keeps the quiescent-regime design (the floor rule's
#: subject) at the sweep's two endpoints: dense stimulus and deep hold.
TINY_DESIGNS = ("sha3",)
TINY_PERIODS = (1, 64)
#: Lanes match the full sweep so tiny rows key-match the JSON baseline
#: (the cycle count is not part of a row's identity and can stay small).
TINY_LANES = 8
TINY_CYCLES = 72


def _render(rows) -> str:
    return render_rows(
        rows, title="Dense vs activity-engine lane throughput on held "
        "stimulus (measured)"
    )


# ----------------------------------------------------------------------
# pytest entry points (same harness idiom as the sibling benches)
# ----------------------------------------------------------------------
def test_sparse_wins_when_quiescent(benchmark):
    """Deep-hold sha3 stimulus: the sparse engine beats the dense one."""
    warm("sha3")
    rows = benchmark(sweep_rows, ("sha3",), (64,), "PSU", LANES, CYCLES)
    assert rows[0].op_skip_rate > 0.5
    assert rows[0].sparse_speedup > (1.0 if HAS_NUMPY else 0.2)
    show(_render(rows))


def test_cost_scales_with_activity(benchmark):
    """Sparse-engine throughput rises as input activity falls."""
    warm("sha3")
    rows = benchmark(sweep_rows, ("sha3",), (1, 64), "PSU", LANES, CYCLES)
    dense_point, quiet_point = rows
    assert quiet_point.sparse_lane_cps > dense_point.sparse_lane_cps
    show(_render(rows))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test sweep (CI): sha3 endpoints only")
    parser.add_argument("--designs", nargs="+", default=None)
    parser.add_argument("--periods", nargs="+", type=int, default=None)
    parser.add_argument("--kernel", default="PSU")
    parser.add_argument("--lanes", type=int, default=None)
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write rows + metadata as JSON")
    args = parser.parse_args(argv)

    designs = tuple(args.designs or (TINY_DESIGNS if args.tiny else DESIGNS))
    periods = tuple(args.periods or (TINY_PERIODS if args.tiny else PERIODS))
    lanes = args.lanes or (TINY_LANES if args.tiny else LANES)
    cycles = args.cycles or (TINY_CYCLES if args.tiny else CYCLES)

    warm(*designs)
    rows = sweep_rows(designs, periods, kernel=args.kernel,
                      lanes=lanes, cycles=cycles)
    print(_render(rows))
    if not HAS_NUMPY:
        print("\n(NumPy not installed: pure-Python lane fallback measured)")

    if args.json:
        payload = {
            "bench": "bench_activity",
            "numpy": HAS_NUMPY,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cycles": cycles,
            "rows": [row.as_dict() for row in rows],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
