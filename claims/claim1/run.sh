#!/bin/sh
# Claim 1: one-command pass/fail check. CLAIM_BUDGET=tiny|full (default tiny).
# Writes the machine-readable verdict next to this script as verdict.json.
set -eu
here=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
cd "$here/../.."
PYTHONPATH=src exec python -m repro.experiments claims \
    --claim 1 --budget "${CLAIM_BUDGET:-tiny}" --json "$here/verdict.json"
