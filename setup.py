"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` take the legacy
``setup.py develop`` path, which needs no wheel support.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
