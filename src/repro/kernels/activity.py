"""Activity-aware simulation: the OIM walk driven by a toggled-value fiber.

Box 1 classifies ESSENT's signature optimisation -- "skipping partitions
w/o activity" -- as a *cascade-level* change: the cascade gains signal
recording and conditional evaluation.  This module implements it for the
RTeAAL kernels at *record* granularity: the per-cycle toggled-value set
is a compressed :class:`~repro.tensor.fiber.Fiber` (built by
:mod:`repro.kernels.fiberwalk`), and only the operations downstream of it
re-evaluate.  Between combinational passes only the walk's leaves --
input slots and register state slots -- can change, so one leaf diff
seeds the fiber and change propagation does the rest.

This is sound for full-cycle semantics because operations are pure
functions of their operand slots: unchanged inputs imply unchanged
outputs, transitively.  The tests drive an activity-aware kernel in
lockstep with its plain counterpart and also check that low-activity
stimulus actually skips work (the paper's RTL designs have activity
factors well below 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..oim.builder import OimBundle
from .config import KernelConfig, get_kernel_config
from .fiberwalk import FiberWalkSchedule, PendingLayers, cached_fiber_walk
from .pykernels import Kernel


@dataclass
class ActivityStats:
    """Counters for the activity tracker, uniform across engines.

    The layer/op counters are filled by scalar and batch kernels; the
    lane counters only by batch kernels (lane compaction); shards merge
    their partitions' stats with :meth:`merge`.
    """

    cycles: int = 0
    layers_evaluated: int = 0
    layers_skipped: int = 0
    ops_evaluated: int = 0
    ops_skipped: int = 0
    lanes_active: int = 0
    lanes_skipped: int = 0

    @property
    def layer_skip_rate(self) -> float:
        total = self.layers_evaluated + self.layers_skipped
        return self.layers_skipped / total if total else 0.0

    @property
    def op_skip_rate(self) -> float:
        total = self.ops_evaluated + self.ops_skipped
        return self.ops_skipped / total if total else 0.0

    @property
    def lane_skip_rate(self) -> float:
        total = self.lanes_active + self.lanes_skipped
        return self.lanes_skipped / total if total else 0.0

    def merge(self, other: "ActivityStats") -> None:
        """Accumulate ``other`` into ``self`` (shard/fleet aggregation)."""
        self.cycles = max(self.cycles, other.cycles)
        self.layers_evaluated += other.layers_evaluated
        self.layers_skipped += other.layers_skipped
        self.ops_evaluated += other.ops_evaluated
        self.ops_skipped += other.ops_skipped
        self.lanes_active += other.lanes_active
        self.lanes_skipped += other.lanes_skipped

    def as_dict(self) -> Dict[str, float]:
        """A JSON-safe view (counters plus derived rates)."""
        return {
            "cycles": self.cycles,
            "layers_evaluated": self.layers_evaluated,
            "layers_skipped": self.layers_skipped,
            "ops_evaluated": self.ops_evaluated,
            "ops_skipped": self.ops_skipped,
            "lanes_active": self.lanes_active,
            "lanes_skipped": self.lanes_skipped,
            "layer_skip_rate": self.layer_skip_rate,
            "op_skip_rate": self.op_skip_rate,
            "lane_skip_rate": self.lane_skip_rate,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "ActivityStats":
        return cls(**{
            key: int(payload.get(key, 0))
            for key in (
                "cycles", "layers_evaluated", "layers_skipped",
                "ops_evaluated", "ops_skipped",
                "lanes_active", "lanes_skipped",
            )
        })


def merge_stats(parts: Iterable[Optional[ActivityStats]]) -> ActivityStats:
    """Fold per-partition/per-member stats into one aggregate."""
    total = ActivityStats()
    for part in parts:
        if part is not None:
            total.merge(part)
    return total


class ActivityAwareKernel(Kernel):
    """The scalar fiber-driven walk.

    Keeps a snapshot of the leaf slots (inputs + register state) from
    the last pass; their diff seeds the toggled fiber, and the walk
    evaluates exactly the records queued by
    :class:`~repro.kernels.fiberwalk.PendingLayers` -- marking each
    record's consumers only when its output value actually changed, so
    quiescent cones cost nothing at all.
    """

    def __init__(self, bundle: OimBundle, config: KernelConfig | str = "PSU") -> None:
        if isinstance(config, str):
            config = get_kernel_config(config)
        super().__init__(bundle, config)
        self.stats = ActivityStats()
        self.schedule: FiberWalkSchedule = cached_fiber_walk(bundle)
        self._semantics = [
            bundle.op_table.entry(code).semantics
            for code in range(len(bundle.op_table))
        ]
        #: Leaf values from the last pass (None = cold: full walk next).
        self._last_leaves: Optional[List[int]] = None

    def eval_comb(self, values: List[int]) -> None:
        self.stats.cycles += 1
        schedule = self.schedule
        leaves = schedule.leaf_slots
        semantics = self._semantics
        if self._last_leaves is None:
            # Cold pass: the plane's intermediates are unsettled (fresh
            # reset, restored snapshot), so run the full dense walk.
            for layer in schedule.layers:
                for n, s, operands, widths, out_width in layer:
                    values[s] = semantics[n](
                        [values[r] for r in operands], widths, out_width
                    )
                self.stats.layers_evaluated += 1
                self.stats.ops_evaluated += len(layer)
            self._last_leaves = [values[slot] for slot in leaves]
            return

        last = self._last_leaves
        changed = [
            slot for index, slot in enumerate(leaves)
            if values[slot] != last[index]
        ]
        if not changed:
            self.stats.layers_skipped += schedule.num_layers
            self.stats.ops_skipped += schedule.num_records
            return

        pending = PendingLayers(schedule.num_layers, schedule.consumers)
        for slot in changed:
            pending.mark(slot)
        for layer_index, layer in enumerate(schedule.layers):
            queued = pending.pending(layer_index)
            if not queued:
                self.stats.layers_skipped += 1
                self.stats.ops_skipped += len(layer)
                continue
            for record_index in queued:
                n, s, operands, widths, out_width = layer[record_index]
                result = semantics[n](
                    [values[r] for r in operands], widths, out_width
                )
                if result != values[s]:
                    values[s] = result
                    pending.mark(s)
            self.stats.layers_evaluated += 1
            self.stats.ops_evaluated += len(queued)
            self.stats.ops_skipped += len(layer) - len(queued)
        self._last_leaves = [values[slot] for slot in leaves]

    def invalidate(self) -> None:
        """Forget the leaf snapshot: the next pass runs the full walk.

        Must be called whenever the value plane is replaced wholesale
        (reset, snapshot restore, state import) -- a fresh plane's
        intermediates are unsettled, so a leaf-only diff could wrongly
        skip them.
        """
        self._last_leaves = None

    def reset_activity(self) -> None:
        """Forget the snapshot *and* zero the counters."""
        self.invalidate()
        self.stats = ActivityStats()


def make_activity_aware(bundle: OimBundle, config: KernelConfig | str = "PSU") -> ActivityAwareKernel:
    """Convenience constructor mirroring :func:`make_kernel`."""
    return ActivityAwareKernel(bundle, config)
