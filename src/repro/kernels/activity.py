"""Activity-aware simulation: skipping partitions without activity.

Box 1 classifies ESSENT's signature optimisation -- "skipping partitions
w/o activity" -- as a *cascade-level* change: the cascade gains signal
recording and conditional evaluation.  This module implements it for the
RTeAAL kernels at layer granularity: a layer is re-evaluated only when at
least one of its operand slots changed since the layer last ran.

This is sound for full-cycle semantics because layer outputs are pure
functions of their operand slots: unchanged inputs imply unchanged
outputs.  The tests drive an activity-aware kernel in lockstep with its
plain counterpart and also check that low-activity stimulus actually
skips work (the paper's RTL designs have activity factors well below 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..oim.builder import OimBundle
from .config import KernelConfig, get_kernel_config
from .pykernels import Kernel, make_kernel


@dataclass
class ActivityStats:
    """Counters for the activity tracker."""

    cycles: int = 0
    layers_evaluated: int = 0
    layers_skipped: int = 0
    ops_evaluated: int = 0
    ops_skipped: int = 0

    @property
    def layer_skip_rate(self) -> float:
        total = self.layers_evaluated + self.layers_skipped
        return self.layers_skipped / total if total else 0.0

    @property
    def op_skip_rate(self) -> float:
        total = self.ops_evaluated + self.ops_skipped
        return self.ops_skipped / total if total else 0.0


class ActivityAwareKernel(Kernel):
    """Wraps per-layer evaluation with change tracking.

    Each layer keeps a snapshot of its operand slots' values from its last
    evaluation; the layer re-runs only when a snapshot entry differs.  The
    underlying computation reuses the IU-style per-layer schedule, so every
    kernel semantics is preserved exactly.
    """

    def __init__(self, bundle: OimBundle, config: KernelConfig | str = "PSU") -> None:
        if isinstance(config, str):
            config = get_kernel_config(config)
        super().__init__(bundle, config)
        self.stats = ActivityStats()
        # Per-layer: ordered operand slot list (reads) and op schedule.
        self._layer_reads: List[List[int]] = []
        self._layer_ops: List[List] = []
        width = bundle.slot_width
        for layer in bundle.layers:
            reads: List[int] = sorted(
                {r for record in layer for r in record.operands}
            )
            schedule = []
            for record in layer:
                entry = bundle.op_table.entry(record.n)
                schedule.append(
                    (record.s, entry.semantics, record.operands,
                     [width[r] for r in record.operands], width[record.s])
                )
            self._layer_reads.append(reads)
            self._layer_ops.append(schedule)
        #: Last-seen operand values per layer (None = never evaluated).
        self._snapshots: List[Optional[List[int]]] = [None] * len(bundle.layers)

    def eval_comb(self, values: List[int]) -> None:
        self.stats.cycles += 1
        for index, reads in enumerate(self._layer_reads):
            current = [values[r] for r in reads]
            snapshot = self._snapshots[index]
            if snapshot is not None and snapshot == current:
                self.stats.layers_skipped += 1
                self.stats.ops_skipped += len(self._layer_ops[index])
                continue
            for s, semantics, operands, widths, out_width in self._layer_ops[index]:
                values[s] = semantics(
                    [values[r] for r in operands], widths, out_width
                )
            # Snapshot *after* evaluating: later layers may overwrite slots
            # this layer read only if the graph had a cycle, which
            # levelization forbids.
            self._snapshots[index] = current
            self.stats.layers_evaluated += 1
            self.stats.ops_evaluated += len(self._layer_ops[index])

    def reset_activity(self) -> None:
        """Forget all snapshots (forces full re-evaluation next cycle)."""
        self._snapshots = [None] * len(self._snapshots)
        self.stats = ActivityStats()


def make_activity_aware(bundle: OimBundle, config: KernelConfig | str = "PSU") -> ActivityAwareKernel:
    """Convenience constructor mirroring :func:`make_kernel`."""
    return ActivityAwareKernel(bundle, config)
