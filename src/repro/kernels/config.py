"""Kernel configurations: the unrolling spectrum of Section 5.2.

Each kernel in the sequence implements all of its predecessors'
optimisations plus new ones:

====  =========================  ==========  =====================
name  unrolled ranks             loop order  OIM format
====  =========================  ==========  =====================
RU    R                          I,S,N,O,R   optimized (Fig. 12b)
OU    R, O                       I,S,N,O,R   optimized
NU    R, O, N                    I,N,S,O,R   swizzled  (Fig. 12c)
PSU   R, O, N, partial S         I,N,S,O,R   swizzled
IU    R, O, N, partial S, I      I,N,S,O,R   swizzled (I in code)
SU    all                        --          fully embedded in code
TI    all + tensor inlining      --          fully embedded in code
====  =========================  ==========  =====================

The partial-unroll factors (24 for the write-back Einsum, 8 for common
operator loops) are the paper's empirically chosen values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

#: Partial unroll factor for the final (write-back) Einsum's S loop.
PSU_WRITEBACK_UNROLL = 24
#: Partial unroll factor for the most common operators' S loops.
PSU_COMMON_UNROLL = 8


@dataclass(frozen=True)
class KernelConfig:
    """One point on the rolled/unrolled spectrum."""

    name: str
    loop_order: Tuple[str, ...]
    unrolled: FrozenSet[str]
    #: S-rank partial unroll factor (1 = rolled).
    s_unroll: int = 1
    #: Whether LI/LO live in scalar variables instead of arrays (TI).
    tensor_inline: bool = False
    #: Which OIM format variant the kernel traverses.
    oim_format: str = "optimized"
    description: str = ""

    @property
    def fully_unrolled(self) -> bool:
        return {"I", "S", "N", "O", "R"} <= set(self.unrolled)

    @property
    def metadata_in_code(self) -> FrozenSet[str]:
        """Ranks whose OIM metadata is embedded in instructions, not data."""
        return self.unrolled


RU = KernelConfig(
    name="RU",
    loop_order=("I", "S", "N", "O", "R"),
    unrolled=frozenset({"R"}),
    oim_format="optimized",
    description="R-rank unrolling only (Algorithm 3); the rolled extreme.",
)

OU = KernelConfig(
    name="OU",
    loop_order=("I", "S", "N", "O", "R"),
    unrolled=frozenset({"R", "O"}),
    oim_format="optimized",
    description="Fully unrolled O rank: operands gathered without a loop.",
)

NU = KernelConfig(
    name="NU",
    loop_order=("I", "N", "S", "O", "R"),
    unrolled=frozenset({"R", "O", "N"}),
    oim_format="swizzled",
    description="S-N swizzle plus a dedicated loop per operation type "
    "(Algorithm 4).",
)

PSU = KernelConfig(
    name="PSU",
    loop_order=("I", "N", "S", "O", "R"),
    unrolled=frozenset({"R", "O", "N"}),
    s_unroll=PSU_COMMON_UNROLL,
    oim_format="swizzled",
    description="NU plus partial S-rank unrolling (8x common ops, 24x "
    "write-back).",
)

IU = KernelConfig(
    name="IU",
    loop_order=("N", "S", "O", "R"),
    unrolled=frozenset({"R", "O", "N", "I"}),
    s_unroll=PSU_COMMON_UNROLL,
    oim_format="swizzled",
    description="PSU plus complete I-rank unrolling: per-layer code, "
    "zero-iteration S loops eliminated.",
)

SU = KernelConfig(
    name="SU",
    loop_order=(),
    unrolled=frozenset({"R", "O", "N", "I", "S"}),
    oim_format="swizzled",
    description="Complete unrolling: the OIM is fully encoded in the "
    "binary; LI/LO remain arrays.",
)

TI = KernelConfig(
    name="TI",
    loop_order=(),
    unrolled=frozenset({"R", "O", "N", "I", "S"}),
    tensor_inline=True,
    oim_format="swizzled",
    description="SU plus tensor inlining: LI/LO become individual "
    "variables the compiler can register-allocate.",
)

#: All seven kernels, in the paper's order.
ALL_KERNELS: Tuple[KernelConfig, ...] = (RU, OU, NU, PSU, IU, SU, TI)

KERNELS_BY_NAME: Dict[str, KernelConfig] = {k.name: k for k in ALL_KERNELS}


def get_kernel_config(name: str) -> KernelConfig:
    try:
        return KERNELS_BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; choose from "
            f"{', '.join(KERNELS_BY_NAME)}"
        ) from None
