"""Per-operation expression code generation.

Shared by the unrolled Python kernels (IU/SU/TI), the C++ kernel generator,
and the baseline backends.  Given an operation, operand expressions, operand
widths and the output width, produce a source-level expression string.

Constant operands (FIRRTL static parameters) are inlined by callers before
reaching here where beneficial.
"""

from __future__ import annotations

from typing import List, Sequence


def _mask_literal(width: int, lang: str) -> str:
    value = (1 << width) - 1
    if lang == "py":
        return hex(value)
    if width > 32:
        return f"{hex(value)}ULL"
    return hex(value)


#: Ops whose result already fits the output width when the operands do.
_NO_MASK = {
    "and", "or", "xor", "mux", "lt", "leq", "gt", "geq", "eq",
    "neq", "andr", "orr", "xorr", "pad", "asUInt", "asSInt", "ident",
    "shr", "dshr", "head",
}


def needs_mask(op: str) -> bool:
    base = op.rstrip("0123456789")
    if base in ("muxchain", "orchain", "andchain", "xorchain"):
        return False
    return op not in _NO_MASK


def python_expr(
    op: str, args: Sequence[str], widths: Sequence[int], out_width: int
) -> str:
    """Render one operation as a Python expression over ``args`` strings."""
    expr = _core_expr(op, args, widths, out_width, lang="py")
    if needs_mask(op):
        return f"({expr}) & {_mask_literal(out_width, 'py')}"
    return expr


def cpp_expr(
    op: str, args: Sequence[str], widths: Sequence[int], out_width: int
) -> str:
    """Render one operation as a C/C++ expression over ``args`` strings."""
    expr = _core_expr(op, args, widths, out_width, lang="cpp")
    if needs_mask(op):
        return f"({expr}) & {_mask_literal(out_width, 'cpp')}"
    return expr


def numpy_expr(
    op: str, args: Sequence[str], widths: Sequence[int], out_width: int
) -> str:
    """Render one operation as a NumPy expression over lane-vector ``args``.

    Used by the batched straight-line kernel (:mod:`repro.batch.kernels`):
    each arg names a uint64 lane vector (one row of the batched value
    plane), so Python conditionals become ``_where`` and the data-dependent
    or shift-guarded operations call helpers (``_div``, ``_rem``, ``_dshl``,
    ``_dshr``, ``_head``, ``_pop``) that the kernel injects into the
    generated namespace.  Only valid when every slot width fits uint64;
    wider designs take the object-array walk kernel instead.
    """
    expr = _numpy_core(op, args, widths, out_width)
    if needs_mask(op):
        return f"({expr}) & {_mask_literal(out_width, 'py')}"
    return expr


#: Base op names with a split-limb evaluator (suffix digits allowed for
#: the chain ops).  This is the canonical op vocabulary shared with
#: :func:`repro.batch.vecsem.make_limb_table` (which defines an evaluator
#: per name) and the layer-blocked builders in :mod:`repro.batch.kernels`.
LIMB_OP_BASES = frozenset({
    "add", "sub", "mul", "div", "rem", "lt", "leq", "gt", "geq", "eq",
    "neq", "and", "or", "xor", "cat", "dshl", "shl", "dshr", "shr",
    "pad", "head", "tail", "not", "neg", "cvt", "andr", "orr", "xorr",
    "asUInt", "asSInt", "ident", "mux", "bits",
    "muxchain", "orchain", "andchain", "xorchain",
})


def numpy_limb_expr(
    op: str, args: Sequence[str], widths: Sequence[int], out_width: int
) -> str:
    """Render one >64-bit operation as a split-limb evaluator call.

    Used by the batched straight-line kernel on ``u64xN`` planes for the
    (rare) statements whose operand or result widths exceed 64 bits: each
    arg names a ``(limbs, B)`` slice of the flat limb-row plane
    (``V[40:42]``), and the emitted expression calls the matching
    ``_limb_<op>`` evaluator (:func:`repro.batch.vecsem.make_limb_table`)
    that the kernel injects into the generated namespace.  The evaluator
    applies the output-width mask itself, so no trailing mask is emitted.
    """
    base = op.rstrip("0123456789")
    if base not in LIMB_OP_BASES or (base != op and base not in
                                     ("muxchain", "orchain", "andchain", "xorchain")):
        raise KeyError(f"no split-limb expression template for op {op!r}")
    arg_list = ", ".join(args) + ("," if len(args) == 1 else "")
    width_list = ", ".join(str(w) for w in widths) + ("," if len(widths) == 1 else "")
    return f"_limb_{op}(({arg_list}), ({width_list}), {out_width})"


def _const_shift(text: str) -> int | None:
    """Shift amounts reach codegen as inlined decimal constants."""
    try:
        return int(text, 0)
    except ValueError:
        return None


def _numpy_core(
    op: str, args: Sequence[str], widths: Sequence[int], out_width: int
) -> str:
    a = list(args)
    if op == "add":
        return f"{a[0]} + {a[1]}"
    if op == "sub":
        return f"{a[0]} - {a[1]}"
    if op == "mul":
        return f"{a[0]} * {a[1]}"
    if op == "div":
        return f"_div({a[0]}, {a[1]})"
    if op == "rem":
        return f"_rem({a[0]}, {a[1]})"
    if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
        symbol = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=", "eq": "==", "neq": "!="}[op]
        return f"({a[0]} {symbol} {a[1]})"
    if op == "and":
        return f"{a[0]} & {a[1]}"
    if op == "or":
        return f"{a[0]} | {a[1]}"
    if op == "xor":
        return f"{a[0]} ^ {a[1]}"
    if op == "cat":
        if widths[1] >= 64:
            return a[1]  # a 64-bit shift only arises with a zero-width lhs
        return f"({a[0]} << {widths[1]}) | {a[1]}"
    if op in ("dshl", "shl"):
        shift = _const_shift(a[1])
        if shift is None:
            return f"_dshl({a[0]}, {a[1]}, {out_width})"
        if shift >= out_width:
            return f"{a[0]} & 0"
        return f"{a[0]} << {shift}"
    if op in ("dshr", "shr"):
        shift = _const_shift(a[1])
        if shift is None:
            return f"_dshr({a[0]}, {a[1]}, {widths[0]})"
        if shift >= widths[0]:
            return f"{a[0]} & 0"
        return f"{a[0]} >> {shift}"
    if op == "pad":
        return a[0]
    if op == "tail":
        return a[0]
    if op == "head":
        head = _const_shift(a[1])
        if head is None:
            return f"_head({a[0]}, {a[1]}, {widths[0]})"
        shift = max(widths[0] - head, 0)
        if shift >= widths[0] and widths[0] > 0:
            return f"{a[0]} & 0"
        return f"{a[0]} >> {shift}" if shift else a[0]
    if op == "not":
        return f"~{a[0]}"
    if op == "neg":
        return f"-{a[0]}"
    if op in ("cvt", "asUInt", "asSInt", "ident"):
        return a[0]
    if op == "andr":
        full = (1 << widths[0]) - 1
        return f"({a[0]} == {hex(full)})"
    if op == "orr":
        return f"({a[0]} != 0)"
    if op == "xorr":
        return f"_pop({a[0]})"
    if op == "mux":
        return f"_where({a[0]}, {a[1]}, {a[2]})"
    if op == "bits":
        # a = [value, hi, lo]; hi/lo reach codegen as inline constants.
        shift = _const_shift(a[2])
        if shift is None:
            return f"_dshr({a[0]}, {a[2]}, {widths[0]})"
        if shift >= widths[0] and widths[0] > 0:
            return f"{a[0]} & 0"
        return f"({a[0]} >> {shift})"

    base = op.rstrip("0123456789")
    if base == "muxchain":
        # a = [s1, v1, s2, v2, ..., default]; build from the innermost out.
        expression = a[-1]
        for position in range(len(a) - 3, -1, -2):
            expression = f"_where({a[position]}, {a[position + 1]}, {expression})"
        return expression
    if base in ("orchain", "andchain", "xorchain"):
        symbol = {"orchain": "|", "andchain": "&", "xorchain": "^"}[base]
        return f" {symbol} ".join(a)
    raise KeyError(f"no numpy expression template for op {op!r}")


def _core_expr(
    op: str, args: Sequence[str], widths: Sequence[int], out_width: int, lang: str
) -> str:
    a = list(args)
    ternary = (
        (lambda c, t, f: f"({t} if {c} else {f})")
        if lang == "py"
        else (lambda c, t, f: f"(({c}) ? ({t}) : ({f}))")
    )
    truthy = (lambda x: f"1 if {x} else 0") if lang == "py" else (lambda x: f"(({x}) != 0)")

    if op == "add":
        return f"{a[0]} + {a[1]}"
    if op == "sub":
        return f"{a[0]} - {a[1]}"
    if op == "mul":
        return f"{a[0]} * {a[1]}"
    if op == "div":
        if lang == "py":
            return f"({a[0]} // {a[1]} if {a[1]} else 0)"
        return f"(({a[1]}) ? ({a[0]} / {a[1]}) : 0)"
    if op == "rem":
        if lang == "py":
            return f"({a[0]} % {a[1]} if {a[1]} else 0)"
        return f"(({a[1]}) ? ({a[0]} % {a[1]}) : 0)"
    if op in ("lt", "leq", "gt", "geq", "eq", "neq"):
        symbol = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=", "eq": "==", "neq": "!="}[op]
        comparison = f"{a[0]} {symbol} {a[1]}"
        if lang == "py":
            return f"(1 if {comparison} else 0)"
        return f"({comparison})"
    if op == "and":
        return f"{a[0]} & {a[1]}"
    if op == "or":
        return f"{a[0]} | {a[1]}"
    if op == "xor":
        return f"{a[0]} ^ {a[1]}"
    if op == "cat":
        return f"({a[0]} << {widths[1]}) | {a[1]}"
    if op in ("dshl", "shl"):
        return f"{a[0]} << {a[1]}"
    if op in ("dshr", "shr"):
        return f"{a[0]} >> {a[1]}"
    if op == "pad":
        return a[0]
    if op == "tail":
        return a[0]
    if op == "head":
        return f"{a[0]} >> ({widths[0]} - {a[1]})" if widths[0] else a[0]
    if op == "not":
        return f"~{a[0]}"
    if op == "neg":
        return f"-{a[0]}"
    if op in ("cvt", "asUInt", "asSInt", "ident"):
        return a[0]
    if op == "andr":
        full = (1 << widths[0]) - 1
        comparison = f"{a[0]} == {hex(full)}"
        return f"(1 if {comparison} else 0)" if lang == "py" else f"({comparison})"
    if op == "orr":
        return f"({truthy(a[0])})"
    if op == "xorr":
        if lang == "py":
            return f"bin({a[0]}).count('1') & 1"
        return f"(__builtin_popcountll({a[0]}) & 1)"
    if op == "mux":
        return ternary(a[0], a[1], a[2])
    if op == "bits":
        # a = [value, hi, lo]; hi/lo reach codegen as inline constants.
        return f"({a[0]} >> {a[2]})"

    base = op.rstrip("0123456789")
    if base == "muxchain":
        # a = [s1, v1, s2, v2, ..., default]; build from the innermost out.
        expression = a[-1]
        for position in range(len(a) - 3, -1, -2):
            expression = ternary(a[position], a[position + 1], expression)
        return expression
    if base in ("orchain", "andchain", "xorchain"):
        symbol = {"orchain": "|", "andchain": "&", "xorchain": "^"}[base]
        return f" {symbol} ".join(a)
    raise KeyError(f"no expression template for op {op!r}")
