"""Kernel configurations, executable kernels, C++ codegen, profiles.

Public API::

    from repro.kernels import ALL_KERNELS, make_kernel, generate_cpp
    from repro.kernels import kernel_profile
"""

from .activity import ActivityAwareKernel, ActivityStats, make_activity_aware
from .codegen_cpp import CppSource, generate_cpp
from .config import (
    ALL_KERNELS,
    IU,
    KernelConfig,
    NU,
    OU,
    PSU,
    RU,
    SU,
    TI,
    get_kernel_config,
)
from .profile import KernelProfile, kernel_profile
from .pykernels import Kernel, make_kernel

__all__ = [
    "ALL_KERNELS",
    "ActivityAwareKernel",
    "ActivityStats",
    "make_activity_aware",
    "CppSource",
    "IU",
    "Kernel",
    "KernelConfig",
    "KernelProfile",
    "NU",
    "OU",
    "PSU",
    "RU",
    "SU",
    "TI",
    "generate_cpp",
    "get_kernel_config",
    "kernel_profile",
    "make_kernel",
]
