"""Static per-cycle kernel characterisation for the performance model.

A :class:`KernelProfile` captures what one simulated cycle of a kernel does
to the host machine: dynamic instructions, code and data footprints,
irregular value-array accesses, and branch behaviour.  The
instruction-cost constants are calibrated to the paper's Table 5
measurements of 8-core RocketChip on the Intel Xeon (dynamic instructions
per effectual operation for each kernel); footprint numbers come from the
*actual* generated code and lowered OIM arrays.

``extrapolation`` scales footprints and op counts up to paper-scale
designs (our generators build ~1/18-size designs; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..oim.builder import OimBundle
from .codegen_cpp import CppSource, generate_cpp
from .config import KernelConfig, get_kernel_config

#: Dynamic instructions per effectual operation, per kernel (Table 5:
#: dyn-inst totals / (540K cycles x 139K ops) for 8-core RocketChip).
INSTR_PER_OP: Dict[str, float] = {
    "RU": 358.0,
    "OU": 37.2,
    "NU": 17.7,
    "PSU": 16.5,
    "IU": 17.5,
    "SU": 7.2,
    "TI": 6.3,
}

#: Fraction of dynamic instructions that are data loads (Table 6 L1D loads
#: / Table 5 dyn-inst).
LOAD_FRACTION: Dict[str, float] = {
    "RU": 0.30,
    "OU": 0.33,
    "NU": 0.47,
    "PSU": 0.50,
    "IU": 0.50,
    "SU": 0.45,
    "TI": 0.41,
}

#: Conditional branches per effectual operation.
BRANCHES_PER_OP: Dict[str, float] = {
    "RU": 4.0,
    "OU": 2.0,
    "NU": 1.1,
    "PSU": 0.7,
    "IU": 0.7,
    "SU": 0.05,
    "TI": 0.05,
}

#: Sustainable ILP of each kernel's instruction mix: interpreter loops
#: carry dependent chains (pointer chasing, dispatch); straight-line code
#: schedules freely.  Caps the effective issue width.
KERNEL_ILP: Dict[str, float] = {
    "RU": 4.4,
    "OU": 5.5,
    "NU": 5.0,
    "PSU": 5.0,
    "IU": 5.0,
    "SU": 6.0,
    "TI": 6.0,
}

#: Branch misprediction rate (the paper reports 0.12% for PSU).
MISPREDICT_RATE: Dict[str, float] = {
    "RU": 0.004,
    "OU": 0.003,
    "NU": 0.002,
    "PSU": 0.0012,
    "IU": 0.0012,
    "SU": 0.001,
    "TI": 0.001,
}


def _natural_bytes(width: int) -> int:
    """Storage bytes of one slot value (C natural integer widths)."""
    if width <= 8:
        return 1
    if width <= 16:
        return 2
    if width <= 32:
        return 4
    return 8


@dataclass
class KernelProfile:
    """Per-simulated-cycle characterisation of one kernel on one design."""

    kernel: str
    design: str
    ops: float
    operands: float
    layers: int
    num_slots: float
    dyn_instr: float
    code_bytes: float          # binary size (Table 4 model)
    hot_code_bytes: float      # code streamed each cycle (I-side footprint)
    oim_data_bytes: float      # OIM arrays resident as data
    value_bytes: float         # the V (LI/LO) array
    v_reads: float             # irregular value-array reads per cycle
    loads: float               # total data loads per cycle
    branches: float
    mispredict_rate: float
    #: Whether per-cycle code is a small reused loop (fits L1I) or a
    #: straight-line stream (swept every cycle).
    code_streamed: bool = False
    #: Sustainable instruction-level parallelism (caps issue width).
    ilp: float = 6.0
    #: Fraction of fetch-miss latency hidden by code prefetching.  Compiler
    #: -laid-out baseline code streams well; RTeAAL's straight-line kernels
    #: (giant immediates) are what the paper measures as frontend-bound.
    fetch_prefetch_hidden: float = 0.0
    source: Optional[CppSource] = None

    @property
    def instr_per_op(self) -> float:
        return self.dyn_instr / self.ops if self.ops else 0.0


def kernel_profile(
    bundle: OimBundle,
    config: KernelConfig | str,
    extrapolation: float = 1.0,
    source: Optional[CppSource] = None,
) -> KernelProfile:
    """Build the profile for ``bundle`` under kernel ``config``."""
    if isinstance(config, str):
        config = get_kernel_config(config)
    if source is None:
        source = generate_cpp(bundle, config)

    ops = bundle.num_ops * extrapolation
    operands = (
        sum(len(r.operands) for layer in bundle.layers for r in layer)
        * extrapolation
    )
    value_bytes = (
        sum(_natural_bytes(w) for w in bundle.slot_width) * extrapolation
    )
    commits = len(bundle.register_commits) * extrapolation

    name = config.name
    dyn_instr = ops * INSTR_PER_OP[name] + commits * 4 + bundle.num_layers * 6
    loads = dyn_instr * LOAD_FRACTION[name]
    branches = ops * BRANCHES_PER_OP[name] + commits

    # Irregular V-array traffic: every operand read + every result write for
    # array kernels; TI only touches V at chunk boundaries.
    if name == "TI":
        externals = len(bundle.output_slots) + len(bundle.register_commits)
        leaves = len(bundle.input_slots) + len(bundle.register_inits)
        v_reads = (leaves + 0.25 * bundle.num_ops) * extrapolation
        v_writes = (externals + 0.25 * bundle.num_ops) * extrapolation
    else:
        v_reads = operands
        v_writes = ops
    v_reads += commits * 2  # register commit reads/writes

    code_streamed = name in ("IU", "SU", "TI")
    hot_code = source.hot_code_bytes(extrapolation)
    if not code_streamed:
        # Rolled kernels: the per-cycle loop is the kernel function only;
        # it is reused across every operation.
        hot_code = min(hot_code, 48_000)

    return KernelProfile(
        kernel=name,
        design=bundle.design_name,
        ops=ops,
        operands=operands,
        layers=bundle.num_layers,
        num_slots=bundle.num_slots * extrapolation,
        dyn_instr=dyn_instr,
        code_bytes=source.binary_code_bytes(extrapolation),
        hot_code_bytes=hot_code,
        oim_data_bytes=source.oim_data_bytes * extrapolation,
        value_bytes=value_bytes,
        v_reads=v_reads + v_writes,
        loads=loads,
        branches=branches,
        mispredict_rate=MISPREDICT_RATE[name],
        code_streamed=code_streamed,
        ilp=KERNEL_ILP[name],
        source=source,
    )
