"""Executable Python kernels for every configuration of Section 5.2.

Each kernel consumes the value array ``V`` (the paper's ``LI``/``LO``
collapsed by identity elision: one persistent slot per value) and evaluates
one cycle of combinational logic:

* **RU** walks the optimised-format OIM arrays with an operand-at-a-time
  map/reduce loop -- a faithful rendering of Algorithm 3;
* **OU** gathers each operation's operands in one step (O rank unrolled);
* **NU/PSU** traverse the swizzled format with a dedicated loop per
  operation type (Algorithm 4); PSU shares NU's functional path -- partial
  unrolling only changes the generated machine code, which the performance
  model captures;
* **IU** resolves the layer structure at build time ("compile time"),
  eliminating zero-iteration S loops;
* **SU** generates straight-line Python with array accesses;
* **TI** generates straight-line Python over local variables, touching
  ``V`` only at the boundaries (loads of leaves, stores of externally
  visible values).

All kernels are bit-exact and are cross-checked against the FIRRTL
reference interpreter in the tests.

Every kernel builds from the shared lowered program
(:func:`repro.lower.cached_program`): the rank-array walkers (RU/OU/NU/
PSU) consume its derived Figure-12 views, IU/SU/TI consume its rows
directly.  No kernel re-lowers the OIM privately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..graph.opsem import REDUCE, SELECT, UNARY
from ..lower.program import ProgramRow, cached_program
from ..oim.builder import OimBundle
from .config import KernelConfig, get_kernel_config
from .expr import python_expr

#: Straight-line codegen emits one function per this many statements to
#: keep CPython compile times reasonable on large designs.
CODEGEN_CHUNK = 4000


class Kernel:
    """Base class: evaluates one cycle of combinational logic over ``V``."""

    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        self.bundle = bundle
        self.config = config

    def eval_comb(self, values: List[int]) -> None:
        raise NotImplementedError

    def invalidate(self) -> None:
        """Drop any cached view of the value plane.

        Called by the simulators whenever they replace the plane
        wholesale (reset, snapshot restore, state import).  Stateless
        kernels ignore it; activity-aware kernels drop their leaf
        snapshots so the next pass re-settles everything.
        """

    @property
    def name(self) -> str:
        return self.config.name


# ----------------------------------------------------------------------
# RU: Algorithm 3 over the optimised arrays
# ----------------------------------------------------------------------
class RUKernel(Kernel):
    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        ranks = cached_program(bundle).flat_ranks()
        self._i_payloads = ranks.i_payloads
        self._s_coords = ranks.s_coords
        self._n_coords = ranks.n_coords
        self._r_coords = ranks.r_coords
        self._entries = [bundle.op_table.entry(c) for c in range(len(bundle.op_table))]
        self._width = bundle.slot_width

    def eval_comb(self, values: List[int]) -> None:
        width = self._width
        s_coords, n_coords, r_coords = self._s_coords, self._n_coords, self._r_coords
        entries = self._entries
        op_index = 0
        r_index = 0
        for layer_count in self._i_payloads:          # Rank I
            for _ in range(layer_count):              # Rank S
                s = s_coords[op_index]
                entry = entries[n_coords[op_index]]   # Rank N (one-hot)
                op_index += 1
                out_width = width[s]
                sel_inputs: List[int] = []
                sel_widths: List[int] = []
                accumulator = 0
                for o in range(entry.arity):          # Rank O
                    r = r_coords[r_index]             # Rank R (unrolled)
                    r_index += 1
                    operand = values[r]
                    operand_width = width[r]
                    sel_inputs.append(operand)
                    sel_widths.append(operand_width)
                    if entry.klass == UNARY:
                        accumulator = entry.semantics(
                            [operand], [operand_width], out_width
                        )
                    elif entry.klass == REDUCE:
                        if o == 0:
                            accumulator = operand
                        else:
                            accumulator = entry.semantics(
                                [accumulator, operand],
                                [out_width, operand_width],
                                out_width,
                            )
                if entry.klass == SELECT:
                    accumulator = entry.semantics(sel_inputs, sel_widths, out_width)
                values[s] = accumulator


# ----------------------------------------------------------------------
# OU: O rank unrolled -- gather all operands at once
# ----------------------------------------------------------------------
class OUKernel(Kernel):
    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        ranks = cached_program(bundle).flat_ranks()
        self._i_payloads = ranks.i_payloads
        self._s_coords = ranks.s_coords
        self._n_coords = ranks.n_coords
        self._r_coords = ranks.r_coords
        self._entries = [bundle.op_table.entry(c) for c in range(len(bundle.op_table))]
        self._width = bundle.slot_width

    def eval_comb(self, values: List[int]) -> None:
        width = self._width
        s_coords, n_coords, r_coords = self._s_coords, self._n_coords, self._r_coords
        entries = self._entries
        op_index = 0
        r_index = 0
        for layer_count in self._i_payloads:
            for _ in range(layer_count):
                s = s_coords[op_index]
                entry = entries[n_coords[op_index]]
                op_index += 1
                arity = entry.arity
                operands = r_coords[r_index:r_index + arity]
                r_index += arity
                values[s] = entry.semantics(
                    [values[r] for r in operands],
                    [width[r] for r in operands],
                    width[s],
                )


# ----------------------------------------------------------------------
# NU / PSU: swizzled format, one loop per operation type (Algorithm 4)
# ----------------------------------------------------------------------
class NUKernel(Kernel):
    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        ranks = cached_program(bundle).swizzled_ranks()
        self._n_payloads = ranks.n_payloads
        self._s_coords = ranks.s_coords
        self._r_coords = ranks.r_coords
        self._num_codes = len(bundle.op_table)
        self._entries = [bundle.op_table.entry(c) for c in range(self._num_codes)]
        self._width = bundle.slot_width

    def eval_comb(self, values: List[int]) -> None:
        width = self._width
        s_coords, r_coords = self._s_coords, self._r_coords
        entries = self._entries
        payload_index = 0
        s_index = 0
        r_index = 0
        for _layer in range(self.bundle.num_layers):       # Rank I
            for code in range(self._num_codes):            # Unrolled rank N
                count = self._n_payloads[payload_index]
                payload_index += 1
                if count == 0:
                    continue
                entry = entries[code]
                semantics = entry.semantics
                arity = entry.arity
                for _ in range(count):                      # Rank S
                    s = s_coords[s_index]
                    s_index += 1
                    operands = r_coords[r_index:r_index + arity]
                    r_index += arity
                    values[s] = semantics(
                        [values[r] for r in operands],
                        [width[r] for r in operands],
                        width[s],
                    )


# ----------------------------------------------------------------------
# IU: layer structure resolved at kernel-build time
# ----------------------------------------------------------------------
class IUKernel(Kernel):
    """PSU plus full I-rank unrolling: zero-iteration S loops are gone.

    The per-(layer, op-type) groups are flattened into a static schedule at
    construction -- the Python analogue of emitting per-layer code.
    """

    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        self._groups: List[Tuple[Callable, int, List[int], List[int]]] = []
        for layer in cached_program(bundle).layers:
            by_code: Dict[int, List[ProgramRow]] = {}
            for row in layer:
                by_code.setdefault(row[0], []).append(row)
            for code in sorted(by_code):
                rows = by_code[code]
                entry = bundle.op_table.entry(code)
                s_list = [s for _n, s, *_rest in rows]
                r_list = [r for _n, _s, operands, *_rest in rows for r in operands]
                self._groups.append((entry.semantics, entry.arity, s_list, r_list))
        self._width = bundle.slot_width

    def eval_comb(self, values: List[int]) -> None:
        width = self._width
        for semantics, arity, s_list, r_list in self._groups:
            r_index = 0
            for s in s_list:
                operands = r_list[r_index:r_index + arity]
                r_index += arity
                values[s] = semantics(
                    [values[r] for r in operands],
                    [width[r] for r in operands],
                    width[s],
                )


# ----------------------------------------------------------------------
# SU / TI: generated straight-line code
# ----------------------------------------------------------------------
def _operand_exprs(
    operands: Sequence[int],
    const_values: Dict[int, int],
    slot_expr: Callable[[int], str],
) -> List[str]:
    return [
        str(const_values[r]) if r in const_values else slot_expr(r)
        for r in operands
    ]


def _compile_chunks(
    sources: List[str], chunk_names: List[str]
) -> List[Callable[[List[int]], None]]:
    functions: List[Callable[[List[int]], None]] = []
    for source, name in zip(sources, chunk_names):
        namespace: Dict[str, object] = {}
        code = compile(source, f"<kernel:{name}>", "exec")
        exec(code, namespace)
        functions.append(namespace[name])  # type: ignore[arg-type]
    return functions


class SUKernel(Kernel):
    """Fully unrolled straight-line code over the ``V`` array."""

    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        program = cached_program(bundle)
        const_values = program.const_values()
        statements: List[str] = []
        for n, s, operands, widths, out_width in program.records():
            args = _operand_exprs(operands, const_values, lambda r: f"V[{r}]")
            expression = python_expr(
                program.op_names[n], args, widths, out_width
            )
            statements.append(f"    V[{s}] = {expression}")
        self._functions = self._build(statements)

    def _build(self, statements: List[str]) -> List[Callable]:
        sources: List[str] = []
        names: List[str] = []
        for start in range(0, max(len(statements), 1), CODEGEN_CHUNK):
            chunk = statements[start:start + CODEGEN_CHUNK]
            name = f"su_chunk_{start // CODEGEN_CHUNK}"
            body = "\n".join(chunk) if chunk else "    pass"
            sources.append(f"def {name}(V):\n{body}\n")
            names.append(name)
        return _compile_chunks(sources, names)

    def eval_comb(self, values: List[int]) -> None:
        for function in self._functions:
            function(values)


class TIKernel(Kernel):
    """SU plus tensor inlining: values live in local variables.

    Loads happen once per chunk for leaf slots and cross-chunk values;
    stores happen only for externally visible slots (register next values,
    outputs, watched signals) and for values consumed by later chunks.
    """

    def __init__(
        self,
        bundle: OimBundle,
        config: KernelConfig,
        extra_stores: Optional[Set[int]] = None,
    ) -> None:
        super().__init__(bundle, config)
        program = cached_program(bundle)
        const_values = program.const_values()
        external: Set[int] = set(program.output_slots.values())
        external.update(next_slot for _, next_slot in program.register_commits)
        if extra_stores:
            external.update(extra_stores)

        records = list(program.records())
        chunks = [
            records[start:start + CODEGEN_CHUNK]
            for start in range(0, max(len(records), 1), CODEGEN_CHUNK)
        ] or [[]]

        # A slot must cross V when defined in one chunk and used in another.
        defining_chunk: Dict[int, int] = {}
        for index, chunk in enumerate(chunks):
            for _n, s, *_rest in chunk:
                defining_chunk[s] = index
        cross_chunk: Set[int] = set()
        for index, chunk in enumerate(chunks):
            for _n, _s, operands, *_rest in chunk:
                for r in operands:
                    owner = defining_chunk.get(r)
                    if owner is not None and owner != index:
                        cross_chunk.add(r)

        sources: List[str] = []
        names: List[str] = []
        for index, chunk in enumerate(chunks):
            name = f"ti_chunk_{index}"
            defined_here: Set[int] = set()
            loads: Set[int] = set()
            lines: List[str] = []
            for n, s, operands, widths, out_width in chunk:
                for r in operands:
                    if r not in defined_here and r not in const_values:
                        loads.add(r)
                args = _operand_exprs(operands, const_values, lambda r: f"v{r}")
                expression = python_expr(
                    program.op_names[n], args, widths, out_width
                )
                lines.append(f"    v{s} = {expression}")
                defined_here.add(s)
            header = [
                f"    v{r} = V[{r}]" for r in sorted(loads - defined_here)
            ]
            stores = sorted(
                s for s in defined_here if s in external or s in cross_chunk
            )
            footer = [f"    V[{s}] = v{s}" for s in stores]
            body = "\n".join(header + lines + footer) or "    pass"
            sources.append(f"def {name}(V):\n{body}\n")
            names.append(name)
        self._functions = _compile_chunks(sources, names)

    def eval_comb(self, values: List[int]) -> None:
        for function in self._functions:
            function(values)


_KERNEL_CLASSES: Dict[str, type] = {
    "RU": RUKernel,
    "OU": OUKernel,
    "NU": NUKernel,
    "PSU": NUKernel,  # functional path shared; codegen/perf differ
    "IU": IUKernel,
    "SU": SUKernel,
    "TI": TIKernel,
}


def make_kernel(
    bundle: OimBundle,
    config: KernelConfig | str,
    extra_stores: Optional[Set[int]] = None,
) -> Kernel:
    """Instantiate the executable kernel for a configuration."""
    if isinstance(config, str):
        config = get_kernel_config(config)
    cls = _KERNEL_CLASSES[config.name]
    if cls is TIKernel:
        return TIKernel(bundle, config, extra_stores=extra_stores)
    return cls(bundle, config)
