"""Executable Python kernels for every configuration of Section 5.2.

Each kernel consumes the value array ``V`` (the paper's ``LI``/``LO``
collapsed by identity elision: one persistent slot per value) and evaluates
one cycle of combinational logic:

* **RU** walks the optimised-format OIM arrays with an operand-at-a-time
  map/reduce loop -- a faithful rendering of Algorithm 3;
* **OU** gathers each operation's operands in one step (O rank unrolled);
* **NU/PSU** traverse the swizzled format with a dedicated loop per
  operation type (Algorithm 4); PSU shares NU's functional path -- partial
  unrolling only changes the generated machine code, which the performance
  model captures;
* **IU** resolves the layer structure at build time ("compile time"),
  eliminating zero-iteration S loops;
* **SU** generates straight-line Python with array accesses;
* **TI** generates straight-line Python over local variables, touching
  ``V`` only at the boundaries (loads of leaves, stores of externally
  visible values).

All kernels are bit-exact and are cross-checked against the FIRRTL
reference interpreter in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..graph.opsem import REDUCE, SELECT, UNARY
from ..oim.builder import OimBundle, OpRecord
from ..oim.formats import lower_oim_fast
from .config import KernelConfig, get_kernel_config
from .expr import python_expr

#: Straight-line codegen emits one function per this many statements to
#: keep CPython compile times reasonable on large designs.
CODEGEN_CHUNK = 4000


class Kernel:
    """Base class: evaluates one cycle of combinational logic over ``V``."""

    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        self.bundle = bundle
        self.config = config

    def eval_comb(self, values: List[int]) -> None:
        raise NotImplementedError

    def invalidate(self) -> None:
        """Drop any cached view of the value plane.

        Called by the simulators whenever they replace the plane
        wholesale (reset, snapshot restore, state import).  Stateless
        kernels ignore it; activity-aware kernels drop their leaf
        snapshots so the next pass re-settles everything.
        """

    @property
    def name(self) -> str:
        return self.config.name


# ----------------------------------------------------------------------
# RU: Algorithm 3 over the optimised arrays
# ----------------------------------------------------------------------
class RUKernel(Kernel):
    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        lowered = lower_oim_fast(bundle, "optimized")
        self._i_payloads = lowered.ranks["I"].payloads
        self._s_coords = lowered.ranks["S"].coords
        self._n_coords = lowered.ranks["N"].coords
        self._r_coords = lowered.ranks["R"].coords
        self._entries = [bundle.op_table.entry(c) for c in range(len(bundle.op_table))]
        self._width = bundle.slot_width

    def eval_comb(self, values: List[int]) -> None:
        width = self._width
        s_coords, n_coords, r_coords = self._s_coords, self._n_coords, self._r_coords
        entries = self._entries
        op_index = 0
        r_index = 0
        for layer_count in self._i_payloads:          # Rank I
            for _ in range(layer_count):              # Rank S
                s = s_coords[op_index]
                entry = entries[n_coords[op_index]]   # Rank N (one-hot)
                op_index += 1
                out_width = width[s]
                sel_inputs: List[int] = []
                sel_widths: List[int] = []
                accumulator = 0
                for o in range(entry.arity):          # Rank O
                    r = r_coords[r_index]             # Rank R (unrolled)
                    r_index += 1
                    operand = values[r]
                    operand_width = width[r]
                    sel_inputs.append(operand)
                    sel_widths.append(operand_width)
                    if entry.klass == UNARY:
                        accumulator = entry.semantics(
                            [operand], [operand_width], out_width
                        )
                    elif entry.klass == REDUCE:
                        if o == 0:
                            accumulator = operand
                        else:
                            accumulator = entry.semantics(
                                [accumulator, operand],
                                [out_width, operand_width],
                                out_width,
                            )
                if entry.klass == SELECT:
                    accumulator = entry.semantics(sel_inputs, sel_widths, out_width)
                values[s] = accumulator


# ----------------------------------------------------------------------
# OU: O rank unrolled -- gather all operands at once
# ----------------------------------------------------------------------
class OUKernel(Kernel):
    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        lowered = lower_oim_fast(bundle, "optimized")
        self._i_payloads = lowered.ranks["I"].payloads
        self._s_coords = lowered.ranks["S"].coords
        self._n_coords = lowered.ranks["N"].coords
        self._r_coords = lowered.ranks["R"].coords
        self._entries = [bundle.op_table.entry(c) for c in range(len(bundle.op_table))]
        self._width = bundle.slot_width

    def eval_comb(self, values: List[int]) -> None:
        width = self._width
        s_coords, n_coords, r_coords = self._s_coords, self._n_coords, self._r_coords
        entries = self._entries
        op_index = 0
        r_index = 0
        for layer_count in self._i_payloads:
            for _ in range(layer_count):
                s = s_coords[op_index]
                entry = entries[n_coords[op_index]]
                op_index += 1
                arity = entry.arity
                operands = r_coords[r_index:r_index + arity]
                r_index += arity
                values[s] = entry.semantics(
                    [values[r] for r in operands],
                    [width[r] for r in operands],
                    width[s],
                )


# ----------------------------------------------------------------------
# NU / PSU: swizzled format, one loop per operation type (Algorithm 4)
# ----------------------------------------------------------------------
class NUKernel(Kernel):
    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        lowered = lower_oim_fast(bundle, "swizzled")
        self._n_payloads = lowered.ranks["N"].payloads
        self._s_coords = lowered.ranks["S"].coords
        self._r_coords = lowered.ranks["R"].coords
        self._num_codes = len(bundle.op_table)
        self._entries = [bundle.op_table.entry(c) for c in range(self._num_codes)]
        self._width = bundle.slot_width

    def eval_comb(self, values: List[int]) -> None:
        width = self._width
        s_coords, r_coords = self._s_coords, self._r_coords
        entries = self._entries
        payload_index = 0
        s_index = 0
        r_index = 0
        for _layer in range(self.bundle.num_layers):       # Rank I
            for code in range(self._num_codes):            # Unrolled rank N
                count = self._n_payloads[payload_index]
                payload_index += 1
                if count == 0:
                    continue
                entry = entries[code]
                semantics = entry.semantics
                arity = entry.arity
                for _ in range(count):                      # Rank S
                    s = s_coords[s_index]
                    s_index += 1
                    operands = r_coords[r_index:r_index + arity]
                    r_index += arity
                    values[s] = semantics(
                        [values[r] for r in operands],
                        [width[r] for r in operands],
                        width[s],
                    )


# ----------------------------------------------------------------------
# IU: layer structure resolved at kernel-build time
# ----------------------------------------------------------------------
class IUKernel(Kernel):
    """PSU plus full I-rank unrolling: zero-iteration S loops are gone.

    The per-(layer, op-type) groups are flattened into a static schedule at
    construction -- the Python analogue of emitting per-layer code.
    """

    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        width = bundle.slot_width
        self._groups: List[Tuple[Callable, int, List[int], List[int]]] = []
        for layer in bundle.layers:
            by_code: Dict[int, List[OpRecord]] = {}
            for record in layer:
                by_code.setdefault(record.n, []).append(record)
            for code in sorted(by_code):
                records = by_code[code]
                entry = bundle.op_table.entry(code)
                s_list = [record.s for record in records]
                r_list = [r for record in records for r in record.operands]
                self._groups.append((entry.semantics, entry.arity, s_list, r_list))
        self._width = width

    def eval_comb(self, values: List[int]) -> None:
        width = self._width
        for semantics, arity, s_list, r_list in self._groups:
            r_index = 0
            for s in s_list:
                operands = r_list[r_index:r_index + arity]
                r_index += arity
                values[s] = semantics(
                    [values[r] for r in operands],
                    [width[r] for r in operands],
                    width[s],
                )


# ----------------------------------------------------------------------
# SU / TI: generated straight-line code
# ----------------------------------------------------------------------
def _operand_exprs(
    bundle: OimBundle,
    record: OpRecord,
    const_values: Dict[int, int],
    slot_expr: Callable[[int], str],
) -> Tuple[List[str], List[int]]:
    args: List[str] = []
    widths: List[int] = []
    for r in record.operands:
        if r in const_values:
            args.append(str(const_values[r]))
        else:
            args.append(slot_expr(r))
        widths.append(bundle.slot_width[r])
    return args, widths


def _compile_chunks(
    sources: List[str], chunk_names: List[str]
) -> List[Callable[[List[int]], None]]:
    functions: List[Callable[[List[int]], None]] = []
    for source, name in zip(sources, chunk_names):
        namespace: Dict[str, object] = {}
        code = compile(source, f"<kernel:{name}>", "exec")
        exec(code, namespace)
        functions.append(namespace[name])  # type: ignore[arg-type]
    return functions


class SUKernel(Kernel):
    """Fully unrolled straight-line code over the ``V`` array."""

    def __init__(self, bundle: OimBundle, config: KernelConfig) -> None:
        super().__init__(bundle, config)
        const_values = dict(bundle.const_slots)
        statements: List[str] = []
        for layer in bundle.layers:
            for record in layer:
                entry = bundle.op_table.entry(record.n)
                args, widths = _operand_exprs(
                    bundle, record, const_values, lambda r: f"V[{r}]"
                )
                expression = python_expr(
                    entry.name, args, widths, bundle.slot_width[record.s]
                )
                statements.append(f"    V[{record.s}] = {expression}")
        self._functions = self._build(statements)

    def _build(self, statements: List[str]) -> List[Callable]:
        sources: List[str] = []
        names: List[str] = []
        for start in range(0, max(len(statements), 1), CODEGEN_CHUNK):
            chunk = statements[start:start + CODEGEN_CHUNK]
            name = f"su_chunk_{start // CODEGEN_CHUNK}"
            body = "\n".join(chunk) if chunk else "    pass"
            sources.append(f"def {name}(V):\n{body}\n")
            names.append(name)
        return _compile_chunks(sources, names)

    def eval_comb(self, values: List[int]) -> None:
        for function in self._functions:
            function(values)


class TIKernel(Kernel):
    """SU plus tensor inlining: values live in local variables.

    Loads happen once per chunk for leaf slots and cross-chunk values;
    stores happen only for externally visible slots (register next values,
    outputs, watched signals) and for values consumed by later chunks.
    """

    def __init__(
        self,
        bundle: OimBundle,
        config: KernelConfig,
        extra_stores: Optional[Set[int]] = None,
    ) -> None:
        super().__init__(bundle, config)
        const_values = dict(bundle.const_slots)
        produced_by_op: Set[int] = {
            record.s for layer in bundle.layers for record in layer
        }
        external: Set[int] = set(bundle.output_slots.values())
        external.update(next_slot for _, next_slot in bundle.register_commits)
        if extra_stores:
            external.update(extra_stores)

        records = [record for layer in bundle.layers for record in layer]
        chunks = [
            records[start:start + CODEGEN_CHUNK]
            for start in range(0, max(len(records), 1), CODEGEN_CHUNK)
        ] or [[]]

        # A slot must cross V when defined in one chunk and used in another.
        defining_chunk: Dict[int, int] = {}
        for index, chunk in enumerate(chunks):
            for record in chunk:
                defining_chunk[record.s] = index
        cross_chunk: Set[int] = set()
        for index, chunk in enumerate(chunks):
            for record in chunk:
                for r in record.operands:
                    owner = defining_chunk.get(r)
                    if owner is not None and owner != index:
                        cross_chunk.add(r)

        sources: List[str] = []
        names: List[str] = []
        for index, chunk in enumerate(chunks):
            name = f"ti_chunk_{index}"
            defined_here: Set[int] = set()
            loads: Set[int] = set()
            lines: List[str] = []
            for record in chunk:
                entry = bundle.op_table.entry(record.n)
                for r in record.operands:
                    if r not in defined_here and r not in const_values:
                        loads.add(r)
                args, widths = _operand_exprs(
                    bundle, record, const_values, lambda r: f"v{r}"
                )
                expression = python_expr(
                    entry.name, args, widths, bundle.slot_width[record.s]
                )
                lines.append(f"    v{record.s} = {expression}")
                defined_here.add(record.s)
            header = [
                f"    v{r} = V[{r}]" for r in sorted(loads - defined_here)
            ]
            stores = sorted(
                s for s in defined_here if s in external or s in cross_chunk
            )
            footer = [f"    V[{s}] = v{s}" for s in stores]
            body = "\n".join(header + lines + footer) or "    pass"
            sources.append(f"def {name}(V):\n{body}\n")
            names.append(name)
        self._functions = _compile_chunks(sources, names)

    def eval_comb(self, values: List[int]) -> None:
        for function in self._functions:
            function(values)


_KERNEL_CLASSES: Dict[str, type] = {
    "RU": RUKernel,
    "OU": OUKernel,
    "NU": NUKernel,
    "PSU": NUKernel,  # functional path shared; codegen/perf differ
    "IU": IUKernel,
    "SU": SUKernel,
    "TI": TIKernel,
}


def make_kernel(
    bundle: OimBundle,
    config: KernelConfig | str,
    extra_stores: Optional[Set[int]] = None,
) -> Kernel:
    """Instantiate the executable kernel for a configuration."""
    if isinstance(config, str):
        config = get_kernel_config(config)
    cls = _KERNEL_CLASSES[config.name]
    if cls is TIKernel:
        return TIKernel(bundle, config, extra_stores=extra_stores)
    return cls(bundle, config)
