"""The fiber-driven OIM walk: activity as a first-class tensor dimension.

The repo's sparse-tensor substrate (:mod:`repro.tensor.fiber`, the
TeAAL lineage) represents tensors as fibers that *omit* empty
coordinates, so traversal cost scales with occupancy rather than shape.
This module applies the same idea to simulation time: the per-cycle
**toggled-value set** -- the slots whose values changed since the last
combinational pass -- is a compressed :class:`~repro.tensor.fiber.Fiber`
over the slot rank, and the OIM walk is driven from it instead of from
the dense layer schedule.  Real RTL workloads have activity factors far
below 1 (ESSENT's Box-1 observation), so the toggled fiber's occupancy
is usually a small fraction of ``num_slots`` and the walk touches only
the operations downstream of it.

Both activity-aware kernels consume the schedule built here: the scalar
:class:`repro.kernels.activity.ActivityAwareKernel` and the batched
:class:`repro.batch.kernels.BatchActivityKernel` (which adds per-lane
masks and lane compaction on top).  Sharing one schedule keeps the two
paths semantically identical and lets the :mod:`repro.serve` artifact
cache serve both from the same entry.

Soundness: layers are dependence levels, and every operation is a pure
function of its operand slots.  A record therefore needs re-evaluation
only when at least one operand slot is in the toggled fiber, and its
output joins the fiber only when the recomputed value actually differs
-- unchanged inputs imply unchanged outputs, transitively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..oim.builder import OimBundle
from ..oim.formats import lower_oim_fast
from ..tensor.fiber import Fiber

#: One walk record: ``(n, s, operands, widths, out_width)`` with ``n``
#: the opcode index (rebound to live op-table entries on use -- what
#: keeps the rows picklable for the artifact cache).
WalkRow = Tuple[int, int, Tuple[int, ...], Tuple[int, ...], int]


def walk_layer_rows(bundle: OimBundle) -> List[List[WalkRow]]:
    """The optimized-format OIM walk as per-layer row lists.

    The traversal order is the RU kernel's: rank I outermost, rank S
    concordant within each layer, operands in O order.  Resolving it at
    build time keeps the per-cycle loop free of format bookkeeping.
    Layers are dependence levels, so records within one layer never read
    each other's outputs.
    """
    lowered = lower_oim_fast(bundle, "optimized")
    i_payloads = lowered.ranks["I"].payloads
    s_coords = lowered.ranks["S"].coords
    n_coords = lowered.ranks["N"].coords
    r_coords = lowered.ranks["R"].coords
    width = bundle.slot_width
    entry_of = bundle.op_table.entry

    layers: List[List[WalkRow]] = []
    op_index = 0
    r_index = 0
    for layer_count in i_payloads:                    # Rank I
        layer: List[WalkRow] = []
        for _ in range(layer_count):                  # Rank S
            s = s_coords[op_index]
            n = n_coords[op_index]
            op_index += 1
            arity = entry_of(n).arity
            operands = tuple(r_coords[r_index:r_index + arity])
            r_index += arity                          # Ranks O, R
            layer.append((
                n,
                s,
                operands,
                tuple(width[r] for r in operands),
                width[s],
            ))
        layers.append(layer)
    return layers


def cached_walk_layer_rows(bundle: OimBundle) -> List[List[WalkRow]]:
    """:func:`walk_layer_rows` through the :mod:`repro.serve` artifact
    cache (kind ``oimwalk``), keyed by the bundle fingerprint.  A warm
    server start thereby skips ``lower_oim_fast`` and the rank-pointer
    walk entirely; backend/lane count never enter the key because rows
    address slots, not planes."""
    from ..serve import artifacts

    if artifacts.get_cache() is None:
        return walk_layer_rows(bundle)
    digest = artifacts.bundle_fingerprint(bundle, stage="oimwalk")
    return artifacts.cache_through(
        "oimwalk", digest, lambda: walk_layer_rows(bundle)
    )


@dataclass
class FiberWalkSchedule:
    """Everything a fiber-driven walk needs, in picklable form.

    ``layers`` is the plain walk (same rows as the dense kernels run);
    ``consumers[slot]`` lists the ``(layer, record_index)`` pairs that
    read the slot -- the transpose of the OIM's R rank, which is what
    turns a toggled-slot fiber into a per-layer pending-record fiber;
    ``leaf_slots`` are the walk's sources (inputs and register state
    slots): the only slots whose values change *between* combinational
    passes, and therefore the only ones an activity tracker must
    snapshot.  Constants never change and operation outputs are tracked
    by the walk itself.
    """

    layers: List[List[WalkRow]]
    consumers: List[Tuple[Tuple[int, int], ...]]
    leaf_slots: Tuple[int, ...]
    num_slots: int

    @property
    def num_records(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)


def build_fiber_walk(bundle: OimBundle) -> FiberWalkSchedule:
    """Lower ``bundle`` to a :class:`FiberWalkSchedule`."""
    layers = cached_walk_layer_rows(bundle)
    consumer_map: List[List[Tuple[int, int]]] = [
        [] for _ in range(bundle.num_slots)
    ]
    for layer_index, layer in enumerate(layers):
        for record_index, (_n, _s, operands, _w, _ow) in enumerate(layer):
            for r in set(operands):
                consumer_map[r].append((layer_index, record_index))
    leaves = set(bundle.input_slots.values())
    leaves.update(state for state, _next in bundle.register_commits)
    return FiberWalkSchedule(
        layers=layers,
        consumers=[tuple(pairs) for pairs in consumer_map],
        leaf_slots=tuple(sorted(leaves)),
        num_slots=bundle.num_slots,
    )


def cached_fiber_walk(bundle: OimBundle) -> FiberWalkSchedule:
    """:func:`build_fiber_walk` through the artifact cache (its own kind,
    ``fiberwalk``): the consumer transpose is a full sweep over the R
    rank, so warm starts skip it along with the walk lowering."""
    from ..serve import artifacts

    if artifacts.get_cache() is None:
        return build_fiber_walk(bundle)
    digest = artifacts.bundle_fingerprint(bundle, stage="fiberwalk")
    return artifacts.cache_through(
        "fiberwalk", digest, lambda: build_fiber_walk(bundle)
    )


def toggled_fiber(changed_slots: Iterable[int], num_slots: int) -> Fiber:
    """The per-cycle toggled-value set as a compressed fiber.

    Coordinates are slot indices; the payload (1) marks presence -- the
    occupancy/shape ratio *is* the cycle's activity factor.
    """
    return Fiber(((slot, 1) for slot in changed_slots), shape=num_slots)


class PendingLayers:
    """Per-layer pending-record fibers, fed by the toggled fiber.

    Marking a slot inserts its consumer records into their layers'
    fibers; draining a layer iterates its fiber in coordinate order
    (concordant with the dense walk, so evaluation order -- and thus
    bit-exactness -- matches the plain kernels record for record).
    """

    __slots__ = ("_layers", "_consumers")

    def __init__(
        self,
        num_layers: int,
        consumers: Sequence[Tuple[Tuple[int, int], ...]],
    ) -> None:
        self._layers = [Fiber() for _ in range(num_layers)]
        self._consumers = consumers

    def mark(self, slot: int) -> None:
        """Queue every record reading ``slot`` (idempotent)."""
        for layer_index, record_index in self._consumers[slot]:
            self._layers[layer_index].set(record_index, 1)

    def mark_fiber(self, toggled: Fiber) -> None:
        for slot, _payload in toggled:
            self.mark(slot)

    def pending(self, layer_index: int) -> List[int]:
        """The layer's queued record indices, in coordinate order."""
        return self._layers[layer_index].coords()

    def occupancy(self, layer_index: int) -> int:
        return self._layers[layer_index].occupancy
