"""The fiber-driven OIM walk: activity as a first-class tensor dimension.

The repo's sparse-tensor substrate (:mod:`repro.tensor.fiber`, the
TeAAL lineage) represents tensors as fibers that *omit* empty
coordinates, so traversal cost scales with occupancy rather than shape.
This module applies the same idea to simulation time: the per-cycle
**toggled-value set** -- the slots whose values changed since the last
combinational pass -- is a compressed :class:`~repro.tensor.fiber.Fiber`
over the slot rank, and the OIM walk is driven from it instead of from
the dense layer schedule.  Real RTL workloads have activity factors far
below 1 (ESSENT's Box-1 observation), so the toggled fiber's occupancy
is usually a small fraction of ``num_slots`` and the walk touches only
the operations downstream of it.

Both activity-aware kernels consume the schedule built here: the scalar
:class:`repro.kernels.activity.ActivityAwareKernel` and the batched
:class:`repro.batch.kernels.BatchActivityKernel` (which adds per-lane
masks and lane compaction on top).  Sharing one schedule keeps the two
paths semantically identical and lets the :mod:`repro.serve` artifact
cache serve both from the same entry.

Soundness: layers are dependence levels, and every operation is a pure
function of its operand slots.  A record therefore needs re-evaluation
only when at least one operand slot is in the toggled fiber, and its
output joins the fiber only when the recomputed value actually differs
-- unchanged inputs imply unchanged outputs, transitively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..lower.program import ProgramRow, cached_program, lower_program
from ..oim.builder import OimBundle
from ..tensor.fiber import Fiber

#: One walk record: ``(n, s, operands, widths, out_width)`` -- the
#: shared :data:`repro.lower.program.ProgramRow` shape (the opcode index
#: is rebound to live op-table entries on use, which is what keeps the
#: rows picklable for the artifact cache).
WalkRow = ProgramRow


def walk_layer_rows(bundle: OimBundle) -> List[List[WalkRow]]:
    """The OIM walk as per-layer row lists (the shared program's layers).

    The traversal order is the RU kernel's: rank I outermost, rank S
    concordant within each layer, operands in O order -- the canonical
    order of :func:`repro.lower.lower_program`.  Layers are dependence
    levels, so records within one layer never read each other's outputs.
    """
    return lower_program(bundle).layers


def cached_walk_layer_rows(bundle: OimBundle) -> List[List[WalkRow]]:
    """:func:`walk_layer_rows` via the cached shared program (kind
    ``program`` in the :mod:`repro.serve` artifact cache).  A warm
    server start thereby skips the lowering sweep entirely; backend and
    lane count never enter the key because rows address slots, not
    planes."""
    return cached_program(bundle).layers


@dataclass
class FiberWalkSchedule:
    """Everything a fiber-driven walk needs, in picklable form.

    ``layers`` is the plain walk (same rows as the dense kernels run);
    ``consumers[slot]`` lists the ``(layer, record_index)`` pairs that
    read the slot -- the transpose of the OIM's R rank, which is what
    turns a toggled-slot fiber into a per-layer pending-record fiber;
    ``leaf_slots`` are the walk's sources (inputs and register state
    slots): the only slots whose values change *between* combinational
    passes, and therefore the only ones an activity tracker must
    snapshot.  Constants never change and operation outputs are tracked
    by the walk itself.
    """

    layers: List[List[WalkRow]]
    consumers: List[Tuple[Tuple[int, int], ...]]
    leaf_slots: Tuple[int, ...]
    num_slots: int

    @property
    def num_records(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)


def build_fiber_walk(bundle: OimBundle) -> FiberWalkSchedule:
    """Lower ``bundle`` to a :class:`FiberWalkSchedule`.

    A thin view over the shared program: the walk layers, the consumer
    transpose, and the leaf table are all carried by
    :class:`~repro.lower.program.OimProgram` now, so this just rebinds
    them under the schedule's historical field names.
    """
    program = cached_program(bundle)
    return FiberWalkSchedule(
        layers=program.layers,
        consumers=list(program.consumers),
        leaf_slots=program.leaf_slots,
        num_slots=program.num_slots,
    )


def cached_fiber_walk(bundle: OimBundle) -> FiberWalkSchedule:
    """:func:`build_fiber_walk` over the cached shared program.  The
    consumer transpose is a full sweep over the R rank; it persists as
    part of the ``program`` artifact, so warm starts skip it along with
    the walk lowering."""
    return build_fiber_walk(bundle)


def toggled_fiber(changed_slots: Iterable[int], num_slots: int) -> Fiber:
    """The per-cycle toggled-value set as a compressed fiber.

    Coordinates are slot indices; the payload (1) marks presence -- the
    occupancy/shape ratio *is* the cycle's activity factor.
    """
    return Fiber(((slot, 1) for slot in changed_slots), shape=num_slots)


class PendingLayers:
    """Per-layer pending-record fibers, fed by the toggled fiber.

    Marking a slot inserts its consumer records into their layers'
    fibers; draining a layer iterates its fiber in coordinate order
    (concordant with the dense walk, so evaluation order -- and thus
    bit-exactness -- matches the plain kernels record for record).
    """

    __slots__ = ("_layers", "_consumers")

    def __init__(
        self,
        num_layers: int,
        consumers: Sequence[Tuple[Tuple[int, int], ...]],
    ) -> None:
        self._layers = [Fiber() for _ in range(num_layers)]
        self._consumers = consumers

    def mark(self, slot: int) -> None:
        """Queue every record reading ``slot`` (idempotent)."""
        for layer_index, record_index in self._consumers[slot]:
            self._layers[layer_index].set(record_index, 1)

    def mark_fiber(self, toggled: Fiber) -> None:
        for slot, _payload in toggled:
            self.mark(slot)

    def pending(self, layer_index: int) -> List[int]:
        """The layer's queued record indices, in coordinate order."""
        return self._layers[layer_index].coords()

    def occupancy(self, layer_index: int) -> int:
        return self._layers[layer_index].occupancy
