"""C++ kernel generation (Figure 14's "C++ Kernel Generation" stage).

Generates the C++ source each kernel configuration would hand to clang.
The rolled kernels (RU/OU/NU/PSU) are small, design-independent interpreter
loops over the OIM arrays; IU emits per-layer code; SU/TI emit one
statement per operation (the OIM fully encoded in the binary).

The returned :class:`CppSource` carries both the text and the statement
statistics that drive the compile-cost and binary-size models
(:mod:`repro.perf.compile_model`).  Binary sizes are *estimated from the
generated statements*, calibrated against the paper's Table 4.

This module is the paper's *modelled* C++ generation; the **executable**
compiled path is :mod:`repro.lower.cbackend`, which emits a batched,
guard-exact C translation unit from the same shared
:class:`~repro.lower.program.OimProgram` these generators now iterate
(``cpp_expr`` here is the paper's unguarded single-lane rendering and is
never compiled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph.opsem import REDUCE, SELECT, UNARY
from ..lower.program import ProgramRow, cached_program
from ..oim.builder import OimBundle
from ..oim.formats import oim_storage_bytes
from .config import (
    KernelConfig,
    PSU_COMMON_UNROLL,
    PSU_WRITEBACK_UNROLL,
    get_kernel_config,
)
from .expr import cpp_expr

#: Bytes of fixed runtime in the binary (driver, JSON loader, libc++ bits);
#: calibrated to Table 4's 0.34-0.35 MB for the rolled kernels.
RUNTIME_BASE_BYTES = 340_000

#: Estimated binary bytes per generated kernel statement, per kernel, at
#: clang -O3.  Calibrated to Table 4 (rocket-8: IU 0.91 MB, SU 6.0 MB,
#: TI 5.3 MB at 139K effectual ops).
BYTES_PER_STATEMENT: Dict[str, float] = {
    "RU": 14.0,
    "OU": 14.0,
    "NU": 13.0,
    "PSU": 13.0,
    "IU": 35.0,
    "SU": 40.7,
    "TI": 28.0,
}


@dataclass
class CppSource:
    """Generated C++ plus the statistics used by the cost models."""

    kernel: str
    text: str
    #: (function name, statement count) for every generated function.
    functions: List[Tuple[str, int]]
    #: Statements belonging to the per-cycle kernel (excludes runtime).
    kernel_statements: int
    #: OIM bytes that remain *data* at runtime (shrinks as ranks unroll).
    oim_data_bytes: int
    #: Many small translation units compiled under make -j (Verilator).
    parallel_compile: bool = False

    @property
    def total_statements(self) -> int:
        return sum(count for _, count in self.functions)

    @property
    def max_function_statements(self) -> int:
        return max((count for _, count in self.functions), default=0)

    def binary_code_bytes(self, extrapolation: float = 1.0) -> int:
        """Estimated binary size (Table 4 model)."""
        per_statement = BYTES_PER_STATEMENT[self.kernel]
        return int(
            RUNTIME_BASE_BYTES + per_statement * self.kernel_statements * extrapolation
        )

    def hot_code_bytes(self, extrapolation: float = 1.0) -> int:
        """Bytes of code touched every simulated cycle (I-side footprint)."""
        per_statement = BYTES_PER_STATEMENT[self.kernel]
        return int(per_statement * self.kernel_statements * extrapolation)


_PRELUDE = """\
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>
#include "oim_loader.h"   // loads the OIM JSON into flat arrays

using u64 = uint64_t;

extern std::vector<u64> V;        // LI/LO value array (slot-indexed)
extern OimArrays oim;             // coordinate/payload arrays
"""

_COMMIT = """\
static inline void commit_registers() {
  for (size_t k = 0; k < oim.num_commits; ++k)
    commit_stage[k] = V[oim.commit_next[k]];
  for (size_t k = 0; k < oim.num_commits; ++k)
    V[oim.commit_state[k]] = commit_stage[k];
}
"""


def _count_statements(body: str) -> int:
    return sum(
        1
        for line in body.splitlines()
        if line.strip() and not line.strip().startswith(("//", "#", "}", "{"))
    )


def _rolled_interpreter(bundle: OimBundle, config: KernelConfig) -> str:
    """The RU/OU Algorithm-3 interpreter over the optimised format."""
    gather = (
        "      u64 args[MAX_ARITY];\n"
        "      for (int o = 0; o < arity; ++o)            // rank O\n"
        "        args[o] = V[oim.r_coords[r_idx++]];      // rank R (unrolled)\n"
        if config.name == "RU"
        else "      u64 args[MAX_ARITY];\n"
        "      load_operands(args, &oim.r_coords[r_idx], arity);  // O unrolled\n"
        "      r_idx += arity;\n"
    )
    cases = "".join(
        f"        case {entry.code}: out = eval_{entry.name}(args, s); break;\n"
        for entry in bundle.op_table
    )
    return (
        "void eval_cycle() {\n"
        "  size_t op_idx = 0, r_idx = 0;\n"
        "  for (size_t i = 0; i < oim.num_layers; ++i) {   // rank I\n"
        "    for (u64 k = 0; k < oim.i_payloads[i]; ++k) { // rank S\n"
        "      const u64 s = oim.s_coords[op_idx];\n"
        "      const u64 n = oim.n_coords[op_idx];         // rank N (one-hot)\n"
        "      ++op_idx;\n"
        "      const int arity = oim.arity_of[n];\n"
        f"{gather}"
        "      u64 out;\n"
        "      switch (n) {\n"
        f"{cases}"
        "        default: __builtin_unreachable();\n"
        "      }\n"
        "      V[s] = out;\n"
        "    }\n"
        "  }\n"
        "}\n"
    )


def _op_body(entry, indent: str, args: str = "args") -> str:
    names = [f"{args}[{k}]" for k in range(entry.arity)]
    widths = [64] * entry.arity
    expression = cpp_expr(entry.name, names, widths, 64)
    return f"{indent}V[s] = {expression};\n"


def _nu_interpreter(bundle: OimBundle, config: KernelConfig) -> str:
    """Algorithm 4: swizzled order, one loop per operation type."""
    unroll = config.s_unroll if config.name == "PSU" else 1
    blocks: List[str] = []
    for entry in bundle.op_table:
        body = (
            "      load_operands(args, &oim.r_coords[r_idx], "
            f"{entry.arity}); r_idx += {entry.arity};\n"
            "      const u64 s = oim.s_coords[s_idx++];\n"
            f"{_op_body(entry, '      ')}"
        )
        repeat = unroll if entry.klass in (REDUCE, SELECT) else 1
        unrolled_body = body * repeat
        step = f" += {repeat}" if repeat > 1 else "++"
        blocks.append(
            f"    // rank N unrolled: {entry.name}\n"
            f"    for (u64 k = oim.n_payloads[p_idx++]; k; k{step}) {{\n"
            "      u64 args[MAX_ARITY];\n"
            f"{unrolled_body}"
            "    }\n"
        )
    writeback = ""
    if config.name == "PSU":
        writeback = (
            f"  // write-back Einsum S loop, unrolled {PSU_WRITEBACK_UNROLL}x\n"
        )
    return (
        "void eval_cycle() {\n"
        "  size_t p_idx = 0, s_idx = 0, r_idx = 0;\n"
        "  for (size_t i = 0; i < oim.num_layers; ++i) {   // rank I\n"
        + "".join(blocks)
        + "  }\n"
        + writeback
        + "}\n"
    )


def _iu_source(bundle: OimBundle, config: KernelConfig) -> Tuple[str, List[Tuple[str, int]]]:
    """Per-layer functions; zero-iteration S loops eliminated."""
    functions: List[Tuple[str, int]] = []
    parts: List[str] = []
    program = cached_program(bundle)
    for i, layer in enumerate(program.layers):
        by_code: Dict[int, List[ProgramRow]] = {}
        for row in layer:
            by_code.setdefault(row[0], []).append(row)
        lines: List[str] = [f"static void layer_{i}() {{"]
        for code in sorted(by_code):
            entry = bundle.op_table.entry(code)
            count = len(by_code[code])
            lines.append(f"  for (u64 k = 0; k < {count}; ++k) {{  // {entry.name}")
            lines.append("    u64 args[MAX_ARITY];")
            lines.append(
                f"    load_operands(args, &oim.r_coords[r_idx], {entry.arity}); "
                f"r_idx += {entry.arity};"
            )
            lines.append(f"    V[oim.s_coords[s_idx++]] = eval_{entry.name}(args);")
            lines.append("  }")
        lines.append("}")
        text = "\n".join(lines) + "\n"
        parts.append(text)
        functions.append((f"layer_{i}", _count_statements(text)))
    driver = (
        "void eval_cycle() {\n"
        + "".join(f"  layer_{i}();\n" for i in range(program.num_layers))
        + "}\n"
    )
    parts.append(driver)
    functions.append(("eval_cycle", program.num_layers))
    return "".join(parts), functions


def _straight_line_source(
    bundle: OimBundle, config: KernelConfig
) -> Tuple[str, List[Tuple[str, int]]]:
    """SU (array accesses) / TI (local variables): fully unrolled code."""
    tensor_inline = config.tensor_inline
    program = cached_program(bundle)
    const_values = program.const_values()
    lines: List[str] = ["void eval_cycle() {"]
    statements = 0
    if tensor_inline:
        leaf_slots = sorted(
            set(program.input_slots.values())
            | {slot for slot, _ in bundle.register_inits}
        )
        for slot in leaf_slots:
            lines.append(f"  const u64 v{slot} = V[{slot}];")
            statements += 1
    for n, s, operands, widths, out_width in program.records():
        args = []
        for r in operands:
            if r in const_values:
                args.append(f"{const_values[r]}ULL")
            elif tensor_inline:
                args.append(f"v{r}")
            else:
                args.append(f"V[{r}]")
        expression = cpp_expr(program.op_names[n], args, widths, out_width)
        target = f"const u64 v{s}" if tensor_inline else f"V[{s}]"
        lines.append(f"  {target} = {expression};")
        statements += 1
    if tensor_inline:
        externals = sorted(
            set(program.output_slots.values())
            | {next_slot for _, next_slot in program.register_commits}
        )
        for slot in externals:
            lines.append(f"  V[{slot}] = v{slot};")
            statements += 1
    lines.append("}")
    text = "\n".join(lines) + "\n"
    return text, [("eval_cycle", statements)]


def generate_cpp(bundle: OimBundle, config: KernelConfig | str) -> CppSource:
    """Generate the C++ kernel for one configuration."""
    if isinstance(config, str):
        config = get_kernel_config(config)

    if config.name in ("RU", "OU"):
        kernel_text = _rolled_interpreter(bundle, config)
        functions = [("eval_cycle", _count_statements(kernel_text))]
        oim_bytes = oim_storage_bytes(bundle, "optimized")
    elif config.name in ("NU", "PSU"):
        kernel_text = _nu_interpreter(bundle, config)
        functions = [("eval_cycle", _count_statements(kernel_text))]
        oim_bytes = oim_storage_bytes(bundle, "swizzled")
    elif config.name == "IU":
        kernel_text, functions = _iu_source(bundle, config)
        # Layer structure moves into code; S/R coordinate arrays stay data.
        lowered = oim_storage_bytes(bundle, "swizzled")
        oim_bytes = int(lowered * 0.85)
    else:  # SU / TI: the OIM is fully encoded in the binary.
        kernel_text, functions = _straight_line_source(bundle, config)
        oim_bytes = 0

    text = _PRELUDE + kernel_text + _COMMIT
    kernel_statements = sum(count for _, count in functions)
    return CppSource(
        kernel=config.name,
        text=text,
        functions=functions,
        kernel_statements=kernel_statements,
        oim_data_bytes=oim_bytes,
    )
