"""Experiment harness: one module per paper table/figure.

Public API::

    from repro.experiments import common, motivation, kernel_study
    from repro.experiments import scalability, main_eval, ablations
"""

from . import (
    ablations,
    batch_throughput,
    common,
    kernel_study,
    main_eval,
    motivation,
    scalability,
    shard_throughput,
)

__all__ = [
    "ablations",
    "batch_throughput",
    "common",
    "kernel_study",
    "main_eval",
    "motivation",
    "scalability",
    "shard_throughput",
]
