"""Section 3 motivation experiments: Figures 7 and 8, Table 1.

* Figure 7: top-down breakdown of Verilator vs ESSENT (activity-oblivious
  -O2) on the AWS Graviton 4 across 1-12-core RocketChip/SmallBOOM designs.
* Figure 8: compilation time and peak memory for Verilator and ESSENT.
* Table 1: identity vs effectual operation counts.
"""

from __future__ import annotations

from typing import Dict, List

from ..designs.registry import compiled_graph
from ..graph.levelize import levelize
from .common import (
    compile_cost_for,
    extrapolation_for,
    format_table,
    perf_for,
)

MOTIVATION_DESIGNS = (
    "rocket-1", "rocket-4", "rocket-8", "rocket-12",
    "small-1", "small-4", "small-8", "small-12",
)


def fig07_topdown(designs=MOTIVATION_DESIGNS) -> List[Dict]:
    """Figure 7: frontend-bound / bad-speculation / others breakdown."""
    rows: List[Dict] = []
    for design in designs:
        for engine, opt in (("Verilator", "O3"), ("ESSENT", "O2")):
            result = perf_for(design, engine, "aws", opt)
            topdown = result.topdown
            rows.append({
                "design": design,
                "engine": engine,
                "frontend_pct": 100 * topdown["frontend"],
                "bad_speculation_pct": 100 * topdown["bad_speculation"],
                "others_pct": 100 * (topdown["backend"] + topdown["retiring"]),
                "l1i_mpki": result.l1i_mpki,
            })
    return rows


def render_fig07(designs=MOTIVATION_DESIGNS) -> str:
    rows = fig07_topdown(designs)
    return format_table(
        ["design", "engine", "frontend%", "bad-spec%", "others%", "L1I MPKI"],
        [
            (r["design"], r["engine"], r["frontend_pct"],
             r["bad_speculation_pct"], r["others_pct"], r["l1i_mpki"])
            for r in rows
        ],
        title="Figure 7: top-down breakdown (AWS Graviton 4, dhrystone)",
    )


def fig08_compile_cost(designs=MOTIVATION_DESIGNS) -> List[Dict]:
    """Figure 8: compile time (s) and peak memory (MB), log-scale in paper."""
    rows: List[Dict] = []
    for design in designs:
        for engine in ("Verilator", "ESSENT"):
            cost = compile_cost_for(design, engine, "aws")
            rows.append({
                "design": design,
                "engine": engine,
                "compile_time_s": cost.seconds,
                "peak_memory_mb": cost.peak_memory_mb,
            })
    return rows


def render_fig08(designs=MOTIVATION_DESIGNS) -> str:
    rows = fig08_compile_cost(designs)
    return format_table(
        ["design", "engine", "compile time (s)", "peak memory (MB)"],
        [
            (r["design"], r["engine"], r["compile_time_s"], r["peak_memory_mb"])
            for r in rows
        ],
        title="Figure 8: compilation costs (clang -O3)",
    )


TABLE1_DESIGNS = ("rocket-1", "small-1", "rocket-8", "small-8")


def table1_identity(designs=TABLE1_DESIGNS) -> List[Dict]:
    """Table 1: effectual vs (elided) identity operation counts."""
    rows: List[Dict] = []
    for design in designs:
        graph = compiled_graph(design)
        lv = levelize(graph)
        factor = extrapolation_for(design)
        rows.append({
            "design": design,
            "effectual_ops": int(lv.effectual_ops * factor),
            "identity_ops": int(lv.identity_ops * factor),
            "ratio": lv.identity_ratio,
        })
    return rows


def render_table1(designs=TABLE1_DESIGNS) -> str:
    rows = table1_identity(designs)
    return format_table(
        ["design", "effectual ops", "identity ops", "identity/effectual"],
        [(r["design"], r["effectual_ops"], r["identity_ops"], r["ratio"])
         for r in rows],
        title="Table 1: required identity operations (paper-scale)",
    )
