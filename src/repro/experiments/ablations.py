"""Design-choice ablations beyond the paper's figures.

These quantify the individual optimisations DESIGN.md calls out:

* OIM format compression (Figure 12a vs 12b vs 12c storage);
* identity elision on/off (operation counts and per-cycle work);
* mux-chain operator fusion on/off;
* RepCut partition-count sweep (replication overhead, Appendix C).
"""

from __future__ import annotations

from typing import Dict, List

from ..designs.registry import compiled_graph
from ..graph.build import build_dfg
from ..graph.levelize import levelize
from ..graph.optimize import optimize
from ..oim.builder import build_oim
from ..oim.formats import VARIANTS, oim_storage_bytes
from .common import format_table


def ablation_oim_formats(design: str = "rocket-1") -> List[Dict]:
    """Storage of each OIM format variant (Figure 12 stepwise compression)."""
    bundle = build_oim(compiled_graph(design))
    rows = []
    baseline = None
    for variant in VARIANTS:
        size = oim_storage_bytes(bundle, variant)
        if baseline is None:
            baseline = size
        rows.append({
            "variant": variant,
            "bytes": size,
            "relative": size / baseline,
        })
    return rows


def render_oim_formats(design: str = "rocket-1") -> str:
    rows = ablation_oim_formats(design)
    return format_table(
        ["format variant", "OIM bytes", "vs unoptimized"],
        [(r["variant"], r["bytes"], r["relative"]) for r in rows],
        title=f"Ablation: OIM format compression ({design})",
    )


def ablation_identity_elision(design: str = "rocket-1") -> List[Dict]:
    """Operation counts with and without identity elision (Section 4.3)."""
    graph = compiled_graph(design)
    elided = build_oim(graph, include_identities=False)
    materialised = build_oim(graph, include_identities=True)
    return [
        {"mode": "identities materialised", "ops_per_cycle": materialised.num_ops},
        {"mode": "identities elided", "ops_per_cycle": elided.num_ops},
        {
            "mode": "elision saving",
            "ops_per_cycle": materialised.num_ops - elided.num_ops,
        },
    ]


def render_identity_elision(design: str = "rocket-1") -> str:
    rows = ablation_identity_elision(design)
    return format_table(
        ["mode", "ops per simulated cycle"],
        [(r["mode"], r["ops_per_cycle"]) for r in rows],
        title=f"Ablation: identity elision ({design})",
    )


def ablation_mux_fusion(design: str = "rocket-1") -> List[Dict]:
    """Operator fusion on/off: op count, layers, OIM size."""
    from ..designs.registry import get_design
    from ..firrtl.elaborate import elaborate
    from ..firrtl.parser import parse

    raw = build_dfg(elaborate(parse(get_design(design))))
    rows = []
    for fused in (False, True):
        graph, _ = optimize(raw, fuse_chains=fused)
        lv = levelize(graph)
        bundle = build_oim(graph)
        rows.append({
            "fusion": "on" if fused else "off",
            "ops": graph.num_ops,
            "layers": lv.num_layers,
            "oim_bytes": oim_storage_bytes(bundle, "swizzled"),
        })
    return rows


def render_mux_fusion(design: str = "rocket-1") -> str:
    rows = ablation_mux_fusion(design)
    return format_table(
        ["operator fusion", "effectual ops", "layers", "OIM bytes (swizzled)"],
        [(r["fusion"], r["ops"], r["layers"], r["oim_bytes"]) for r in rows],
        title=f"Ablation: mux/logic chain fusion ({design})",
    )


def ablation_repcut(
    design: str = "rocket-4",
    partition_counts=(1, 2, 4, 8),
    strategies=("greedy",),
) -> List[Dict]:
    """RepCut partitioning: replication overhead vs partition count.

    With ``strategies=("greedy", "refined")`` this is the partitioner
    ablation: the balanced greedy cone assignment against the
    replication-capped KL/FM refinement (:mod:`repro.repcut.refine`).
    The greedy strategy replicates shared fan-in into every partition
    (~97% on rocket designs at P=2); the refined cut trades a bounded
    imbalance for near-zero replication.
    """
    import warnings

    from ..repcut.partition import partition_graph

    graph = compiled_graph(design)
    rows = []
    base_ops = graph.num_ops
    for strategy in strategies:
        for count in partition_counts:
            with warnings.catch_warnings():
                # P beyond the design's cone count prunes to fewer
                # partitions; the row records the effective number.
                warnings.simplefilter("ignore", RuntimeWarning)
                result = partition_graph(graph, count, strategy=strategy)
            total_ops = sum(p.num_ops for p in result.partitions)
            effective = len(result.partitions)
            rows.append({
                "strategy": strategy,
                "partitions": count,
                "effective_partitions": effective,
                "total_ops": total_ops,
                "replication_overhead": total_ops / base_ops - 1.0,
                "max_partition_ops": result.max_partition_ops,
                "balance": (
                    result.max_partition_ops / (total_ops / effective)
                    if total_ops else 1.0
                ),
            })
    return rows


def render_repcut(design: str = "rocket-4") -> str:
    rows = ablation_repcut(design, strategies=("greedy", "refined"))
    return format_table(
        ["strategy", "partitions", "effective", "total ops",
         "replication overhead", "max partition", "imbalance"],
        [
            (r["strategy"], r["partitions"], r["effective_partitions"],
             r["total_ops"], r["replication_overhead"],
             r["max_partition_ops"], r["balance"])
            for r in rows
        ],
        title=f"Ablation: RepCut-style partitioning ({design})",
    )
