"""Batched-throughput experiment: lane-cycles/sec, batched vs scalar.

Not a paper figure -- this measures the ROADMAP's batching direction on
*this* reproduction: how much faster does one B-lane
:class:`repro.batch.BatchSimulator` advance B seeds than running B scalar
:class:`repro.sim.Simulator` sweeps sequentially?  Unlike the modelled
experiments (``perf/``), these are measured wall-clock numbers of the
executable Python kernels, so absolute rates are host-dependent; the
*ratio* (lane-throughput speedup) is the result.

The scalar arm reuses one simulator across lanes (``reset`` between
seeds) so it never pays per-lane kernel construction -- the comparison
is strictly per-cycle work, which favours the scalar side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..designs.registry import compile_named_design
from ..workloads.stimulus import batched_workload_for
from .common import format_table

#: Defaults keep the CLI run quick; benchmarks pass larger values.
DEFAULT_DESIGNS: Tuple[str, ...] = ("rocket-1", "sha3")
DEFAULT_KERNELS: Tuple[str, ...] = ("PSU", "SU")
DEFAULT_LANES: Tuple[int, ...] = (8, 64)
DEFAULT_CYCLES = 48


@dataclass
class ThroughputRow:
    """One (design, kernel, B, backend) measurement."""

    design: str
    kernel: str
    lanes: int
    backend: str
    style: str
    cycles: int
    scalar_lane_cps: float
    batch_lane_cps: float

    @property
    def speedup(self) -> float:
        return self.batch_lane_cps / max(self.scalar_lane_cps, 1e-12)

    def as_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "kernel": self.kernel,
            "lanes": self.lanes,
            "backend": self.backend,
            "style": self.style,
            "cycles": self.cycles,
            "scalar_lane_cps": self.scalar_lane_cps,
            "batch_lane_cps": self.batch_lane_cps,
            "speedup": self.speedup,
        }


def measure_backends(
    design_name: str,
    kernel: str = "PSU",
    lanes: int = 8,
    cycles: int = DEFAULT_CYCLES,
    base_seed: int = 0xB47C4,
    backends: Sequence[str] = ("auto",),
) -> List[ThroughputRow]:
    """Measure one design/kernel/B point, one row per storage backend.

    The scalar arm is measured once and shared across the backend rows
    (it has no plane backend), so backend-comparison sweeps -- e.g. the
    split-limb ``u64xN`` fast path against the ``object`` reference on a
    wide design -- only re-run the batched arm.  Identical stimulus in
    every arm.
    """
    from ..batch import BatchSimulator
    from ..sim.simulator import Simulator

    bundle = compile_named_design(design_name)
    workload = batched_workload_for(design_name, lanes, base_seed=base_seed)

    # The compiled C pass is batch-only; its scalar reference arm is the
    # SU kernel it was lowered from (same straight-line program).
    scalar_kernel = "SU" if kernel == "compiled" else kernel
    scalar = Simulator(bundle, kernel=scalar_kernel)
    start = time.perf_counter()
    for lane in range(lanes):
        scalar.reset()
        drivers = workload.lane(lane).drivers
        for cycle in range(cycles):
            for name, driver in drivers.items():
                scalar.poke(name, driver(cycle))
            scalar.step()
    scalar_elapsed = time.perf_counter() - start

    lane_cycles = lanes * cycles
    rows: List[ThroughputRow] = []
    for backend in backends:
        batch = BatchSimulator(bundle, lanes=lanes, kernel=kernel, backend=backend)
        start = time.perf_counter()
        for cycle in range(cycles):
            workload.apply(batch, cycle)
            batch.step()
        batch_elapsed = time.perf_counter() - start
        rows.append(ThroughputRow(
            design=design_name,
            kernel=kernel,
            lanes=lanes,
            backend=batch.backend,
            style=batch.kernel.style,
            cycles=cycles,
            scalar_lane_cps=lane_cycles / max(scalar_elapsed, 1e-12),
            batch_lane_cps=lane_cycles / max(batch_elapsed, 1e-12),
        ))
    return rows


def measure(
    design_name: str,
    kernel: str = "PSU",
    lanes: int = 8,
    cycles: int = DEFAULT_CYCLES,
    base_seed: int = 0xB47C4,
    backend: str = "auto",
) -> ThroughputRow:
    """Measure one design/kernel/B/backend point (both arms)."""
    return measure_backends(
        design_name, kernel, lanes, cycles, base_seed, (backend,)
    )[0]


def throughput_rows(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    lanes_list: Sequence[int] = DEFAULT_LANES,
    cycles: int = DEFAULT_CYCLES,
    backends: Sequence[str] = ("auto",),
) -> List[ThroughputRow]:
    """The full sweep, one row per (design, kernel, B, backend)."""
    rows: List[ThroughputRow] = []
    for design in designs:
        for kernel in kernels:
            for lanes in lanes_list:
                rows.extend(
                    measure_backends(design, kernel, lanes, cycles, backends=backends)
                )
    return rows


def attach_compiled_speedup(row_dicts: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Annotate compiled-kernel row dicts with ``compiled_speedup``: the
    ratio over the SU NumPy codegen kernel at the same (design, B,
    backend) -- the metric the perf gate's compiled floor enforces.
    Rows whose compiled request fell back (style != "compiled") are left
    unannotated; they measured the fallback, not the C pass."""
    su = {
        (d["design"], d["lanes"], d["backend"]): float(d["batch_lane_cps"])
        for d in row_dicts
        if d["kernel"] == "SU" and d["batch_lane_cps"]
    }
    for d in row_dicts:
        if d["kernel"] != "compiled" or d.get("style") != "compiled":
            continue
        base = su.get((d["design"], d["lanes"], d["backend"]))
        if base:
            d["compiled_speedup"] = float(d["batch_lane_cps"]) / base
    return row_dicts


def render_rows(rows: Sequence[ThroughputRow], title: str) -> str:
    """The sweep as a table (shared with ``benchmarks/bench_batch.py``)."""
    return format_table(
        ["design", "kernel", "B", "backend/style", "scalar lc/s", "batch lc/s", "speedup"],
        [
            [
                row.design,
                row.kernel,
                row.lanes,
                f"{row.backend}/{row.style}",
                row.scalar_lane_cps,
                row.batch_lane_cps,
                f"{row.speedup:.2f}x",
            ]
            for row in rows
        ],
        title=title,
    )


def render_batch_throughput(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    kernels: Sequence[str] = DEFAULT_KERNELS,
    lanes_list: Sequence[int] = DEFAULT_LANES,
    cycles: int = DEFAULT_CYCLES,
) -> str:
    return render_rows(
        throughput_rows(designs, kernels, lanes_list, cycles),
        title=f"Batched throughput (measured, {cycles} cycles/lane): one "
        "B-lane pass vs B sequential scalar sweeps",
    )
