"""Sections 7.3-7.4: scalability and compiler-effect studies.

* Figure 17: kernel simulation time for 1-24-core RocketChips (Xeon).
* Table 7: compile time/memory for Verilator, ESSENT, PSU at r1-r24.
* Figure 18: simulation time of the three simulators, clang -O3.
* Figure 19: the same with clang -O0 (ESSENT collapses).
"""

from __future__ import annotations

from typing import Dict, List

from .common import KERNEL_NAMES, compile_cost_for, format_table, perf_for

SCALING_DESIGNS = (
    "rocket-1", "rocket-4", "rocket-8", "rocket-12",
    "rocket-16", "rocket-20", "rocket-24",
)


def fig17_kernel_scaling(designs=SCALING_DESIGNS, machine="intel-xeon") -> List[Dict]:
    """Figure 17: per-kernel simulation time across design sizes."""
    rows = []
    for design in designs:
        for kernel in KERNEL_NAMES:
            result = perf_for(design, kernel, machine)
            rows.append({
                "design": design,
                "kernel": kernel,
                "sim_time_s": result.sim_time_s,
                "frontend_pct": 100 * result.topdown["frontend"],
            })
    return rows


def render_fig17(designs=SCALING_DESIGNS) -> str:
    rows = fig17_kernel_scaling(designs)
    by_design: Dict[str, Dict[str, float]] = {}
    for row in rows:
        by_design.setdefault(row["design"], {})[row["kernel"]] = row["sim_time_s"]
    return format_table(
        ["design"] + list(KERNEL_NAMES),
        [
            tuple([design] + [by_design[design][k] for k in KERNEL_NAMES])
            for design in designs
        ],
        title="Figure 17: kernel simulation time, 1-24-core RocketChip (Xeon, s)",
    )


def table7_compile_scaling(designs=SCALING_DESIGNS) -> List[Dict]:
    """Table 7: compile time (s) and peak memory (GB) at r1-r24."""
    rows = []
    for design in designs:
        for engine in ("Verilator", "ESSENT", "PSU"):
            cost = compile_cost_for(design, engine, "intel-xeon")
            rows.append({
                "design": design,
                "engine": engine,
                "compile_time_s": cost.seconds,
                "peak_memory_gb": cost.peak_memory_gb,
            })
    return rows


def render_table7(designs=SCALING_DESIGNS) -> str:
    rows = table7_compile_scaling(designs)
    return format_table(
        ["design", "engine", "compile time (s)", "peak memory (GB)"],
        [(r["design"], r["engine"], r["compile_time_s"], r["peak_memory_gb"])
         for r in rows],
        title="Table 7: compilation scaling (Xeon, clang -O3)",
    )


def fig18_sim_o3(designs=SCALING_DESIGNS, machine="intel-xeon") -> List[Dict]:
    """Figure 18: Verilator vs PSU vs ESSENT simulation time, -O3."""
    rows = []
    for design in designs:
        for engine in ("Verilator", "PSU", "ESSENT"):
            result = perf_for(design, engine, machine, "O3")
            rows.append({
                "design": design,
                "engine": engine,
                "sim_time_s": result.sim_time_s,
            })
    return rows


def fig19_sim_o0(designs=SCALING_DESIGNS, machine="intel-xeon") -> List[Dict]:
    """Figure 19: the same comparison compiled with -O0."""
    rows = []
    for design in designs:
        for engine in ("Verilator", "PSU", "ESSENT"):
            result = perf_for(design, engine, machine, "O0")
            rows.append({
                "design": design,
                "engine": engine,
                "sim_time_s": result.sim_time_s,
            })
    return rows


def _render_sim(rows: List[Dict], title: str, designs) -> str:
    by_design: Dict[str, Dict[str, float]] = {}
    for row in rows:
        by_design.setdefault(row["design"], {})[row["engine"]] = row["sim_time_s"]
    engines = ("Verilator", "PSU", "ESSENT")
    return format_table(
        ["design"] + list(engines),
        [
            tuple([design] + [by_design[design][e] for e in engines])
            for design in designs
        ],
        title=title,
    )


def render_fig18(designs=SCALING_DESIGNS) -> str:
    return _render_sim(
        fig18_sim_o3(designs),
        "Figure 18: simulation time, clang -O3 (Xeon, s)",
        designs,
    )


def render_fig19(designs=SCALING_DESIGNS) -> str:
    return _render_sim(
        fig19_sim_o0(designs),
        "Figure 19: simulation time, clang -O0 (Xeon, s)",
        designs,
    )
