"""Activity-factor sweep: per-cycle cost vs input toggle activity.

The paper's full-cycle baseline is activity-oblivious (Section 2.1):
every cycle evaluates the whole OIM regardless of how much of the design
toggled.  The activity engines (``kernel="activity"``) make the toggled
set a first-class tensor dimension instead -- a compressed fiber drives
the walk, quiet lanes are compacted out of the value plane -- so their
per-cycle cost should *scale with activity* where the dense engines stay
flat.  This experiment measures exactly that curve.

For each (design, hold period) point the same held stimulus
(:func:`repro.workloads.sparsify` -- inputs change every ``period``
cycles, nominal input activity ``1/period``) runs through a dense
:class:`~repro.batch.BatchSimulator` and an activity one, recording
lane-cycles/sec of both, their ratio (``sparse_speedup``), and the
activity kernel's measured skip rates.  As with every measured (non-
modelled) number here, absolute rates are host-dependent; the recorded
results are the ratios.

CLI::

    PYTHONPATH=src python -m repro.experiments activity-sweep
    PYTHONPATH=src python -m repro.experiments activity-sweep \\
        --designs rocket-1 sha3 --periods 1 8 32 --lanes 8
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..designs.registry import compile_named_design
from ..workloads.stimulus import batched_workload_for, sparsify
from .common import format_table

DEFAULT_DESIGNS: Tuple[str, ...] = ("rocket-1", "sha3")
#: Hold periods swept: nominal input activity 1, 1/4, 1/16, 1/64.
DEFAULT_PERIODS: Tuple[int, ...] = (1, 4, 16, 64)
DEFAULT_LANES = 8
DEFAULT_CYCLES = 96


@dataclass
class ActivityRow:
    """One (design, period) point: dense vs activity engine, same stream."""

    design: str
    kernel: str
    lanes: int
    period: int
    cycles: int
    backend: str
    dense_lane_cps: float
    sparse_lane_cps: float
    op_skip_rate: float
    lane_skip_rate: float

    @property
    def activity_factor(self) -> float:
        """Nominal input activity: the fraction of cycles an input
        stream presents a fresh value."""
        return 1.0 / self.period

    @property
    def sparse_speedup(self) -> float:
        return self.sparse_lane_cps / max(self.dense_lane_cps, 1e-12)

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": "activity",
            "design": self.design,
            "kernel": self.kernel,
            "lanes": self.lanes,
            "period": self.period,
            "cycles": self.cycles,
            "backend": self.backend,
            "activity_factor": self.activity_factor,
            "dense_lane_cps": self.dense_lane_cps,
            "sparse_lane_cps": self.sparse_lane_cps,
            "sparse_speedup": self.sparse_speedup,
            "op_skip_rate": self.op_skip_rate,
            "lane_skip_rate": self.lane_skip_rate,
        }


def measure(
    design_name: str,
    period: int,
    kernel: str = "PSU",
    lanes: int = DEFAULT_LANES,
    cycles: int = DEFAULT_CYCLES,
    base_seed: int = 0xB47C4,
    backend: str = "auto",
) -> ActivityRow:
    """Measure one (design, period) point, both engines on one stream."""
    from ..batch import BatchSimulator

    bundle = compile_named_design(design_name)
    workload = sparsify(
        batched_workload_for(design_name, lanes, base_seed=base_seed), period
    )
    lane_cycles = lanes * cycles

    def run(sim) -> float:
        start = time.perf_counter()
        for cycle in range(cycles):
            workload.apply(sim, cycle)
            sim.step()
        return lane_cycles / max(time.perf_counter() - start, 1e-12)

    dense = BatchSimulator(bundle, lanes=lanes, kernel=kernel, backend=backend)
    dense_cps = run(dense)
    sparse = BatchSimulator(
        bundle, lanes=lanes, kernel=f"activity:{kernel}", backend=backend
    )
    sparse_cps = run(sparse)
    stats = sparse.activity_stats
    return ActivityRow(
        design=design_name,
        kernel=kernel,
        lanes=lanes,
        period=period,
        cycles=cycles,
        backend=sparse.backend,
        dense_lane_cps=dense_cps,
        sparse_lane_cps=sparse_cps,
        op_skip_rate=stats.op_skip_rate,
        lane_skip_rate=stats.lane_skip_rate,
    )


def sweep_rows(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    periods: Sequence[int] = DEFAULT_PERIODS,
    kernel: str = "PSU",
    lanes: int = DEFAULT_LANES,
    cycles: int = DEFAULT_CYCLES,
) -> List[ActivityRow]:
    """The full sweep, one row per (design, hold period)."""
    return [
        measure(design, period, kernel=kernel, lanes=lanes, cycles=cycles)
        for design in designs
        for period in periods
    ]


def render_rows(rows: Sequence[ActivityRow], title: str) -> str:
    """The sweep as a table (shared with ``benchmarks/bench_activity.py``)."""
    return format_table(
        ["design", "B", "period", "activity", "dense lc/s", "sparse lc/s",
         "speedup", "op skip", "lane skip"],
        [
            [
                row.design,
                row.lanes,
                row.period,
                f"{row.activity_factor:.3f}",
                row.dense_lane_cps,
                row.sparse_lane_cps,
                f"{row.sparse_speedup:.2f}x",
                f"{row.op_skip_rate:.2f}",
                f"{row.lane_skip_rate:.2f}",
            ]
            for row in rows
        ],
        title=title,
    )


def render_activity_sweep(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    periods: Sequence[int] = DEFAULT_PERIODS,
    lanes: int = DEFAULT_LANES,
    cycles: int = DEFAULT_CYCLES,
) -> str:
    return render_rows(
        sweep_rows(designs, periods, lanes=lanes, cycles=cycles),
        title=f"Activity sweep (measured, {cycles} cycles, B={lanes}): "
        "dense vs fiber-driven sparse engine on held stimulus",
    )


# ----------------------------------------------------------------------
# CLI: python -m repro.experiments activity-sweep [--designs ...]
# ----------------------------------------------------------------------
def cli(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments activity-sweep",
        description=(
            "Sweep the input activity factor (stimulus hold period) and "
            "measure dense vs activity-engine per-cycle cost."
        ),
    )
    parser.add_argument("--designs", nargs="+", default=list(DEFAULT_DESIGNS))
    parser.add_argument("--periods", nargs="+", type=int,
                        default=list(DEFAULT_PERIODS))
    parser.add_argument("--kernel", default="PSU")
    parser.add_argument("--lanes", type=int, default=DEFAULT_LANES)
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES)
    args = parser.parse_args(argv)
    print(render_rows(
        sweep_rows(args.designs, args.periods, kernel=args.kernel,
                   lanes=args.lanes, cycles=args.cycles),
        title=f"Activity sweep (measured, {args.cycles} cycles, "
        f"B={args.lanes}): dense vs fiber-driven sparse engine",
    ))
    return 0
