"""Shared experiment infrastructure: engines, scaling, table formatting.

The design generators build ~1/18-scale designs (DESIGN.md "Scaling
knobs"); :data:`EXTRAPOLATION` scales profiles back up to paper-size
footprints so the modelled numbers are directly comparable to the paper's
tables, and the estimator is driven with the paper's full Table 3 cycle
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines.essent import EssentBackend, essent_cpp, essent_profile
from ..baselines.verilator import VerilatorBackend, verilator_cpp, verilator_profile
from ..designs.registry import compile_named_design
from ..kernels.codegen_cpp import CppSource, generate_cpp
from ..kernels.config import ALL_KERNELS
from ..kernels.profile import KernelProfile, kernel_profile
from ..perf.compile_model import CompileCost, source_compile_cost
from ..perf.estimator import PerfResult, estimate
from ..perf.machines import ALL_MACHINES, MachineSpec, get_machine
from ..workloads.stimulus import PAPER_SIM_CYCLES_K

#: Fallback design-size extrapolation to paper scale (measured: paper
#: rocket-1 has ~60K effectual ops, our generator ~3.3K).
EXTRAPOLATION = 18.0

#: Paper effectual-op counts (Table 1) fit to power laws in core count:
#: rocket-8 is only 2.3x rocket-1 (shared uncore and clang-level sharing),
#: so a per-design factor is needed for paper-comparable footprints.
import math


def paper_ops(design_name: str) -> Optional[float]:
    family, _, suffix = design_name.partition("-")
    if family in ("rocket", "r"):
        n = int(suffix or 1)
        return 60_000.0 * n ** 0.404
    if family in ("small", "s"):
        n = int(suffix or 1)
        return 94_000.0 * n ** 0.527
    if family == "sha3":
        # "SHA3 is a relatively small design" (Section 7.5): a full
        # Keccak-f[1600] round datapath is ~6x our default lane model.
        return None if suffix else None
    return None


#: SHA3 is the paper's small design; its extrapolation is fixed rather
#: than op-derived (Section 7.5 relies on it being cache-resident).
SHA3_EXTRAPOLATION = 15.0


@lru_cache(maxsize=256)
def linear_extrapolation_for(design_name: str) -> float:
    """Per-instance (linear-in-cores) scale factor.

    Generated *source* of the baselines grows with every instance --
    Verilator and ESSENT do not deduplicate across cores -- which is what
    Table 7's ESSENT memory blow-up (234 GB at r24) reflects.  RTeAAL's
    OIM tracks the deduplicated effectual ops instead.
    """
    family, _, suffix = design_name.partition("-")
    base = paper_ops(f"{family}-1")
    if base is None:
        return extrapolation_for(design_name)
    n = int(suffix or 1)
    bundle = compile_named_design(design_name)
    return base * n / max(bundle.num_ops, 1)


@lru_cache(maxsize=256)
def extrapolation_for(design_name: str) -> float:
    """Scale factor from our generated design to the paper's op counts."""
    if design_name.split("-")[0] == "sha3":
        return SHA3_EXTRAPOLATION
    target = paper_ops(design_name)
    if target is None:
        return EXTRAPOLATION
    bundle = compile_named_design(design_name)
    return target / max(bundle.num_ops, 1)

KERNEL_NAMES: Tuple[str, ...] = tuple(k.name for k in ALL_KERNELS)
ENGINE_NAMES: Tuple[str, ...] = KERNEL_NAMES + ("Verilator", "ESSENT")


def paper_cycles(design_name: str) -> int:
    """Paper Table 3 simulated cycle counts (full scale)."""
    family = design_name.split("-")[0]
    for key in (design_name, family):
        if key in PAPER_SIM_CYCLES_K:
            return PAPER_SIM_CYCLES_K[key] * 1000
    return PAPER_SIM_CYCLES_K["rocket"] * 1000


@lru_cache(maxsize=512)
def profile_for(
    design_name: str, engine: str, opt_level: str = "O3"
) -> KernelProfile:
    """Cached per-cycle profile of an engine on a named design."""
    bundle = compile_named_design(design_name)
    factor = extrapolation_for(design_name)
    if engine == "Verilator":
        return verilator_profile(bundle, opt_level, factor)
    if engine == "ESSENT":
        return essent_profile(bundle, opt_level, factor)
    profile = kernel_profile(bundle, engine, factor)
    if opt_level == "O0":
        # -O0 multiplies the dynamic instruction count (Section 7.4: 3.8x
        # for PSU); unoptimised code is also dependence-heavy (spills), so
        # sustainable ILP halves; footprints roughly double.
        profile.dyn_instr *= 3.8
        profile.loads *= 3.8
        profile.code_bytes *= 2.2
        profile.hot_code_bytes *= 2.2
        profile.ilp *= 0.5
    return profile


@lru_cache(maxsize=512)
def cpp_source_for(design_name: str, engine: str) -> CppSource:
    """Cached generated C++ for an engine on a named design."""
    bundle = compile_named_design(design_name)
    if engine == "Verilator":
        return verilator_cpp(bundle)
    if engine == "ESSENT":
        return essent_cpp(bundle)
    return generate_cpp(bundle, engine)


def perf_for(
    design_name: str,
    engine: str,
    machine: MachineSpec | str = "intel-xeon",
    opt_level: str = "O3",
    cycles: Optional[int] = None,
) -> PerfResult:
    """Modelled performance of one engine/design/machine combination."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    profile = profile_for(design_name, engine, opt_level)
    return estimate(profile, machine, cycles or paper_cycles(design_name))


def compile_cost_for(
    design_name: str,
    engine: str,
    machine: MachineSpec | str = "intel-xeon",
    opt_level: str = "O3",
) -> CompileCost:
    """Modelled compile cost of one engine on a design."""
    if isinstance(machine, str):
        machine = get_machine(machine)
    source = cpp_source_for(design_name, engine)
    if engine in ("Verilator", "ESSENT"):
        # Baseline source grows with every instance (no dedup): Table 7.
        factor = linear_extrapolation_for(design_name)
    elif engine in ("IU", "SU", "TI"):
        # Unrolled kernels embed the (deduplicated) OIM in code.
        factor = extrapolation_for(design_name)
    else:
        # Rolled kernels: design-independent interpreter source.
        factor = 1.0
    return source_compile_cost(
        source, opt_level=opt_level, machine=machine, extrapolation=factor,
    )


def best_kernel(
    design_name: str,
    machine: MachineSpec | str = "intel-xeon",
    opt_level: str = "O3",
) -> Tuple[str, PerfResult]:
    """The fastest RTeAAL kernel for a design on a machine (Section 7.5)."""
    results = {
        name: perf_for(design_name, name, machine, opt_level)
        for name in KERNEL_NAMES
    }
    winner = min(results, key=lambda name: results[name].sim_time_s)
    return winner, results[winner]


# ----------------------------------------------------------------------
# Plain-text table rendering (the benches print paper-style rows)
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def human_bytes(value: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024:
            return f"{value:.2f} {unit}"
        value /= 1024
    return f"{value:.2f} PB"
