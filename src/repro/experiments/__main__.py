"""CLI entry point: regenerate any (or all) of the paper's tables/figures.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments fig20      # one experiment
    rteaal table5 fig16                    # via the console script

The verification verbs take their own arguments::

    python -m repro.experiments differential --design rocket-1 --seed 7
    python -m repro.experiments differential --all-designs --seeds 5
    python -m repro.experiments replay --artifact tests/corpus/seed.json
    python -m repro.experiments fuzz --design rocket-1 --runs 64
    python -m repro.experiments claims --all --budget tiny
    python -m repro.experiments activity-sweep --periods 1 8 32
    python -m repro.experiments shard-worker --port 9555
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

from . import (
    ablations,
    batch_throughput,
    kernel_study,
    main_eval,
    motivation,
    scalability,
    shard_throughput,
)

RENDERERS: Dict[str, Callable[[], str]] = {
    "fig7": motivation.render_fig07,
    "fig8": motivation.render_fig08,
    "table1": motivation.render_table1,
    "table4": kernel_study.render_table4,
    "table5": kernel_study.render_table5,
    "table6": kernel_study.render_table6,
    "fig15": kernel_study.render_fig15,
    "fig16": kernel_study.render_fig16,
    "fig17": scalability.render_fig17,
    "table7": scalability.render_table7,
    "fig18": scalability.render_fig18,
    "fig19": scalability.render_fig19,
    "fig20": main_eval.render_fig20,
    "fig21": main_eval.render_fig21,
    "ablation-formats": ablations.render_oim_formats,
    "ablation-identity": ablations.render_identity_elision,
    "ablation-fusion": ablations.render_mux_fusion,
    "ablation-repcut": ablations.render_repcut,
    "batch-throughput": batch_throughput.render_batch_throughput,
    "shard-throughput": shard_throughput.render_shard_throughput,
}


def _normalise(name: str) -> str:
    return name.strip().lower().replace("figure", "fig").replace("_", "-")


def _verb_cli(name: str):
    """The sub-CLI for an argument-taking verb, imported lazily."""
    if name == "differential":
        from ..verify.differential import cli
    elif name == "activity-sweep":
        from .activity_sweep import cli
    elif name == "replay":
        from ..verify.replay import cli
    elif name == "fuzz":
        from ..verify.fuzz import cli
    elif name == "claims":
        from ..verify.claims import cli
    elif name == "serve":
        from ..serve.cli import cli
    elif name == "shard-worker":
        from ..shard.remote import worker_cli as cli
    else:
        return None
    return cli


#: Verbs that consume the rest of the argument vector.
VERBS = ("activity-sweep", "claims", "differential", "fuzz", "replay",
         "serve", "shard-worker")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv in (["-h"], ["--help"]):
        print(__doc__)
        print("available:",
              ", ".join(sorted([*RENDERERS, *VERBS])))
        return 0
    if argv and _normalise(argv[0]) in VERBS:
        return _verb_cli(_normalise(argv[0]))(argv[1:])
    stray = [a for a in argv if _normalise(a) in VERBS]
    if stray:
        # Verbs consume the rest of the argument vector, so they cannot
        # be combined with renderer targets.
        verb = _normalise(stray[0])
        print(f"{verb} must be the first argument; run:")
        print(f"  python -m repro.experiments {verb} --help")
        return 1
    targets = [_normalise(a) for a in argv] or sorted(RENDERERS)
    unknown = [t for t in targets if t not in RENDERERS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print("available:",
              ", ".join(sorted([*RENDERERS, *VERBS])))
        return 1
    for target in targets:
        print(RENDERERS[target]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
