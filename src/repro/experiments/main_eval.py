"""Section 7.5 main evaluation: Figures 20 and 21.

* Figure 20: best-RTeAAL-kernel and ESSENT speedup over Verilator for all
  designs on all four machines.
* Figure 21: the small-8 LLC-capacity sweep (Intel CAT: 10.5/7/3.5 MB).
"""

from __future__ import annotations

from typing import Dict, List

from ..perf.estimator import estimate
from ..perf.machines import ALL_MACHINES, get_machine, with_llc_capacity
from .common import best_kernel, format_table, paper_cycles, perf_for, profile_for

MAIN_DESIGNS = (
    "rocket-1", "rocket-4", "rocket-8",
    "small-1", "small-4", "small-8",
    "gemmini-8", "gemmini-16", "gemmini-32",
    "sha3",
)


def fig20_speedup(designs=MAIN_DESIGNS) -> List[Dict]:
    """Figure 20: speedup over Verilator for RTeAAL (best kernel) + ESSENT."""
    rows = []
    for machine in ALL_MACHINES:
        for design in designs:
            verilator = perf_for(design, "Verilator", machine)
            kernel_name, kernel_result = best_kernel(design, machine)
            essent = perf_for(design, "ESSENT", machine)
            rows.append({
                "machine": machine.name,
                "design": design,
                "best_kernel": kernel_name,
                "rteaal_speedup": verilator.sim_time_s / kernel_result.sim_time_s,
                "essent_speedup": verilator.sim_time_s / essent.sim_time_s,
                "verilator_time_s": verilator.sim_time_s,
            })
    return rows


def render_fig20(designs=MAIN_DESIGNS) -> str:
    rows = fig20_speedup(designs)
    return format_table(
        ["machine", "design", "best kernel", "RTeAAL speedup", "ESSENT speedup"],
        [
            (r["machine"], r["design"], r["best_kernel"],
             r["rteaal_speedup"], r["essent_speedup"])
            for r in rows
        ],
        title="Figure 20: simulation speedup relative to Verilator",
    )


LLC_POINTS_MB = (10.5, 7.0, 3.5)


def fig21_llc(design: str = "small-8", points_mb=LLC_POINTS_MB) -> List[Dict]:
    """Figure 21: speedup over Verilator as the Xeon LLC shrinks."""
    xeon = get_machine("intel-xeon")
    cycles = paper_cycles(design)
    rows = []
    for mb in points_mb:
        machine = with_llc_capacity(xeon, int(mb * 1024 * 1024))
        verilator = estimate(profile_for(design, "Verilator"), machine, cycles)
        psu = estimate(profile_for(design, "PSU"), machine, cycles)
        essent = estimate(profile_for(design, "ESSENT"), machine, cycles)
        rows.append({
            "llc_mb": mb,
            "rteaal_speedup": verilator.sim_time_s / psu.sim_time_s,
            "essent_speedup": verilator.sim_time_s / essent.sim_time_s,
            "psu_time_s": psu.sim_time_s,
            "essent_time_s": essent.sim_time_s,
            "verilator_time_s": verilator.sim_time_s,
        })
    return rows


def render_fig21(design: str = "small-8") -> str:
    rows = fig21_llc(design)
    return format_table(
        ["LLC (MB)", "RTeAAL speedup", "ESSENT speedup", "PSU (s)",
         "ESSENT (s)", "Verilator (s)"],
        [
            (r["llc_mb"], r["rteaal_speedup"], r["essent_speedup"],
             r["psu_time_s"], r["essent_time_s"], r["verilator_time_s"])
            for r in rows
        ],
        title=f"Figure 21: LLC capacity sweep ({design}, Intel Xeon + CAT)",
    )
