"""Sharded-batched throughput: lane-cycles/sec over a B × P grid.

Measures the ROADMAP's sharding direction on *this* reproduction: how
fast does a :class:`repro.shard.ShardedBatchSimulator` (B lanes × P
RepCut partitions) advance, per executor and per partitioning strategy?
As with :mod:`~repro.experiments.batch_throughput`, these are measured
wall-clock numbers of the executable Python kernels -- absolute rates
are host-dependent.

Each row also records the measured *critical path* rate: lane-cycles/sec
against the sum over cycles of the slowest partition's kernel time.
That is the per-cycle cost a host with >= P free cores pays; on a
single-CPU host the wall-clock ``process``/``thread`` rates degenerate
to time-slicing (no parallel win is physically possible there), while
the critical path stays an honest measurement of the exposed
parallelism.

The ``strategy`` axis is the greedy-vs-refined partitioner comparison:
``greedy`` rows carry the balanced cone assignment's replication
overhead (~97% of rocket-1 at P=2), ``refined`` rows the
replication-capped KL/FM cut (:mod:`repro.repcut.refine`).  Replication
overhead is recorded per row and gated deterministically by
``benchmarks/perf_gate.py``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..designs.registry import compiled_graph
from ..workloads.stimulus import batched_workload_for
from .common import format_table

DEFAULT_DESIGNS: Tuple[str, ...] = ("rocket-1", "gemmini-8")
DEFAULT_LANES: Tuple[int, ...] = (8, 32)
DEFAULT_PARTITIONS: Tuple[int, ...] = (1, 2, 4)
DEFAULT_EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")
DEFAULT_STRATEGIES: Tuple[str, ...] = ("greedy", "refined")
DEFAULT_CYCLES = 12


@dataclass
class ShardRow:
    """One (design, B, P, executor, strategy, transport) measurement."""

    design: str
    kernel: str
    lanes: int
    partitions: int
    executor: str
    strategy: str
    cycles: int
    lane_cps: float
    critical_path_lane_cps: float
    replication_overhead: float
    effective_partitions: int
    styles: str
    #: How lane rows crossed during the exchange: ``local`` (serial/
    #: thread), ``pipe``/``shm`` (process), or ``socket``.
    transport: str = "local"
    #: shm rows only: lane_cps relative to the matching pipe row of the
    #: same grid point (attached by :func:`attach_shm_speedup`).
    shm_speedup: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "design": self.design,
            "kernel": self.kernel,
            "lanes": self.lanes,
            "partitions": self.partitions,
            "executor": self.executor,
            "strategy": self.strategy,
            "cycles": self.cycles,
            "lane_cps": self.lane_cps,
            "critical_path_lane_cps": self.critical_path_lane_cps,
            "replication_overhead": self.replication_overhead,
            "effective_partitions": self.effective_partitions,
            "styles": self.styles,
            "transport": self.transport,
        }
        if self.shm_speedup is not None:
            row["shm_speedup"] = self.shm_speedup
        return row


def measure(
    design_name: str,
    kernel: str = "PSU",
    lanes: int = 8,
    partitions: int = 2,
    executor: str = "serial",
    cycles: int = DEFAULT_CYCLES,
    base_seed: int = 0xB47C4,
    strategy: str = "greedy",
    max_replication: Optional[float] = None,
    shm_planes: Optional[bool] = None,
    repeats: int = 1,
) -> ShardRow:
    """Measure one grid point (one warm-up cycle, then ``cycles`` timed).

    ``repeats`` re-runs the timed loop on the same simulator and keeps
    the fastest repetition (min-of-N): worker spawn cost stays outside
    the timing either way, and scheduler noise on shared hosts mostly
    shows up as one slow repetition, not a fast one.
    """
    from ..shard import ShardedBatchSimulator

    graph = compiled_graph(design_name)
    workload = batched_workload_for(design_name, lanes, base_seed=base_seed)
    with ShardedBatchSimulator(
        graph,
        lanes=lanes,
        num_partitions=partitions,
        kernel=kernel,
        executor=executor,
        partitioner=strategy,
        max_replication=max_replication,
        shm_planes=shm_planes if executor == "process" else None,
    ) as sim:
        workload.apply(sim, 0)
        sim.step()  # warm-up: first settle builds nothing, but be uniform
        elapsed = critical = None
        cycle = 0
        for _ in range(max(1, repeats)):
            mark_max = sim.step_max_seconds
            start = time.perf_counter()
            for _ in range(cycles):
                cycle += 1
                workload.apply(sim, cycle)
                sim.step()
            rep_elapsed = time.perf_counter() - start
            if elapsed is None or rep_elapsed < elapsed:
                elapsed = rep_elapsed
                critical = sim.step_max_seconds - mark_max
        styles = ",".join(sorted(set(sim.describe_partitions())))
        overhead = sim.replication_overhead
        effective = sim.num_partitions
        transport = sim.transport

    lane_cycles = lanes * cycles
    return ShardRow(
        design=design_name,
        kernel=kernel,
        lanes=lanes,
        partitions=partitions,
        executor=executor,
        strategy=strategy,
        cycles=cycles,
        lane_cps=lane_cycles / max(elapsed, 1e-12),
        critical_path_lane_cps=lane_cycles / max(critical, 1e-12),
        replication_overhead=overhead,
        effective_partitions=effective,
        styles=styles,
        transport=transport,
    )


def attach_shm_speedup(rows: Sequence[ShardRow]) -> None:
    """Fill in ``shm_speedup`` on shm rows that have a matching pipe row.

    Both arms of a pair ran on the same host in the same sweep, so the
    ratio is host-independent in a way raw lane-cps is not -- it is the
    absolute floor ``benchmarks/perf_gate.py`` holds at >= 1x for P >= 2
    (zero-copy index writes may never lose to pickled pipe rows).
    """
    pipe = {
        (row.design, row.kernel, row.lanes, row.partitions, row.strategy):
            row.lane_cps
        for row in rows
        if row.transport == "pipe"
    }
    for row in rows:
        if row.transport != "shm":
            continue
        reference = pipe.get(
            (row.design, row.kernel, row.lanes, row.partitions, row.strategy)
        )
        if reference:
            row.shm_speedup = row.lane_cps / reference


def throughput_rows(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    lanes_list: Sequence[int] = DEFAULT_LANES,
    partitions_list: Sequence[int] = DEFAULT_PARTITIONS,
    executors: Sequence[str] = DEFAULT_EXECUTORS,
    kernel: str = "PSU",
    cycles: int = DEFAULT_CYCLES,
    strategies: Sequence[str] = ("greedy",),
) -> List[ShardRow]:
    """The full B × P × executor × strategy grid, one row per point.

    ``process`` points that resolve onto the shared-memory transport are
    measured twice -- shm and pipe -- so the zero-copy exchange has an
    in-sweep reference, recorded as ``shm_speedup`` on the shm row.
    """
    rows: List[ShardRow] = []
    for design in designs:
        for lanes in lanes_list:
            for partitions in partitions_list:
                for strategy in strategies:
                    for executor in executors:
                        # Process points feed the absolute shm-vs-pipe
                        # floor, so they get a min-of-2 measurement.
                        repeats = 2 if executor == "process" else 1
                        row = measure(design, kernel, lanes, partitions,
                                      executor, cycles, strategy=strategy,
                                      repeats=repeats)
                        rows.append(row)
                        if row.transport == "shm":
                            rows.append(
                                measure(design, kernel, lanes, partitions,
                                        executor, cycles, strategy=strategy,
                                        shm_planes=False, repeats=repeats)
                            )
    attach_shm_speedup(rows)
    return rows


def _serial_reference(
    rows: Sequence[ShardRow],
) -> Dict[Tuple[str, str, int, int, str], float]:
    return {
        (row.design, row.kernel, row.lanes, row.partitions, row.strategy):
            row.lane_cps
        for row in rows
        if row.executor == "serial"
    }


def render_rows(rows: Sequence[ShardRow], title: str) -> str:
    """The grid as a table, with each row's speedup over the matching
    serial-executor point (shared with ``benchmarks/bench_shard.py``)."""
    serial = _serial_reference(rows)
    body = []
    for row in rows:
        reference = serial.get(
            (row.design, row.kernel, row.lanes, row.partitions, row.strategy)
        )
        ratio = f"{row.lane_cps / reference:.2f}x" if reference else "-"
        body.append([
            row.design,
            row.kernel,
            row.lanes,
            row.partitions,
            row.executor,
            row.transport,
            row.strategy,
            f"{row.replication_overhead:.1%}",
            row.styles,
            row.lane_cps,
            row.critical_path_lane_cps,
            ratio,
        ])
    return format_table(
        ["design", "kernel", "B", "P", "executor", "transport", "strategy",
         "repl", "backend/style", "lane c/s", "crit-path lane c/s",
         "vs serial"],
        body,
        title=title,
    )


def render_shard_throughput(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    lanes_list: Sequence[int] = DEFAULT_LANES,
    partitions_list: Sequence[int] = DEFAULT_PARTITIONS,
    executors: Sequence[str] = DEFAULT_EXECUTORS,
    kernel: str = "PSU",
    cycles: int = DEFAULT_CYCLES,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
) -> str:
    text = render_rows(
        throughput_rows(designs, lanes_list, partitions_list, executors,
                        kernel, cycles, strategies),
        title=f"Sharded batched throughput (measured, {cycles} cycles/lane): "
        "B lanes x P partitions per executor and partitioner",
    )
    cpus = os.cpu_count() or 1
    if cpus < 2:
        text += (
            f"\n(host has {cpus} CPU: thread/process wall-clock rates are "
            "time-sliced; the crit-path column is the >=P-core rate)"
        )
    return text
