"""Sharded-batched throughput: lane-cycles/sec over a B × P grid.

Measures the ROADMAP's sharding direction on *this* reproduction: how
fast does a :class:`repro.shard.ShardedBatchSimulator` (B lanes × P
RepCut partitions) advance, per executor?  As with
:mod:`~repro.experiments.batch_throughput`, these are measured
wall-clock numbers of the executable Python kernels -- absolute rates
are host-dependent.

Each row also records the measured *critical path* rate: lane-cycles/sec
against the sum over cycles of the slowest partition's kernel time.
That is the per-cycle cost a host with >= P free cores pays; on a
single-CPU host the wall-clock ``process``/``thread`` rates degenerate
to time-slicing (no parallel win is physically possible there), while
the critical path stays an honest measurement of the exposed
parallelism.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..designs.registry import compiled_graph
from ..workloads.stimulus import batched_workload_for
from .common import format_table

DEFAULT_DESIGNS: Tuple[str, ...] = ("rocket-1", "gemmini-8")
DEFAULT_LANES: Tuple[int, ...] = (8, 32)
DEFAULT_PARTITIONS: Tuple[int, ...] = (1, 2, 4)
DEFAULT_EXECUTORS: Tuple[str, ...] = ("serial", "thread", "process")
DEFAULT_CYCLES = 12


@dataclass
class ShardRow:
    """One (design, B, P, executor) measurement."""

    design: str
    kernel: str
    lanes: int
    partitions: int
    executor: str
    cycles: int
    lane_cps: float
    critical_path_lane_cps: float
    replication_overhead: float
    styles: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "kernel": self.kernel,
            "lanes": self.lanes,
            "partitions": self.partitions,
            "executor": self.executor,
            "cycles": self.cycles,
            "lane_cps": self.lane_cps,
            "critical_path_lane_cps": self.critical_path_lane_cps,
            "replication_overhead": self.replication_overhead,
            "styles": self.styles,
        }


def measure(
    design_name: str,
    kernel: str = "PSU",
    lanes: int = 8,
    partitions: int = 2,
    executor: str = "serial",
    cycles: int = DEFAULT_CYCLES,
    base_seed: int = 0xB47C4,
) -> ShardRow:
    """Measure one grid point (one warm-up cycle, then ``cycles`` timed)."""
    from ..shard import ShardedBatchSimulator

    graph = compiled_graph(design_name)
    workload = batched_workload_for(design_name, lanes, base_seed=base_seed)
    with ShardedBatchSimulator(
        graph,
        lanes=lanes,
        num_partitions=partitions,
        kernel=kernel,
        executor=executor,
    ) as sim:
        workload.apply(sim, 0)
        sim.step()  # warm-up: first settle builds nothing, but be uniform
        mark_max = sim.step_max_seconds
        start = time.perf_counter()
        for cycle in range(1, cycles + 1):
            workload.apply(sim, cycle)
            sim.step()
        elapsed = time.perf_counter() - start
        critical = sim.step_max_seconds - mark_max
        styles = ",".join(sorted(set(sim.describe_partitions())))
        overhead = sim.replication_overhead

    lane_cycles = lanes * cycles
    return ShardRow(
        design=design_name,
        kernel=kernel,
        lanes=lanes,
        partitions=partitions,
        executor=executor,
        cycles=cycles,
        lane_cps=lane_cycles / max(elapsed, 1e-12),
        critical_path_lane_cps=lane_cycles / max(critical, 1e-12),
        replication_overhead=overhead,
        styles=styles,
    )


def throughput_rows(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    lanes_list: Sequence[int] = DEFAULT_LANES,
    partitions_list: Sequence[int] = DEFAULT_PARTITIONS,
    executors: Sequence[str] = DEFAULT_EXECUTORS,
    kernel: str = "PSU",
    cycles: int = DEFAULT_CYCLES,
) -> List[ShardRow]:
    """The full B × P × executor grid, one row per point."""
    rows: List[ShardRow] = []
    for design in designs:
        for lanes in lanes_list:
            for partitions in partitions_list:
                for executor in executors:
                    rows.append(
                        measure(design, kernel, lanes, partitions, executor,
                                cycles)
                    )
    return rows


def _serial_reference(
    rows: Sequence[ShardRow],
) -> Dict[Tuple[str, str, int, int], float]:
    return {
        (row.design, row.kernel, row.lanes, row.partitions): row.lane_cps
        for row in rows
        if row.executor == "serial"
    }


def render_rows(rows: Sequence[ShardRow], title: str) -> str:
    """The grid as a table, with each row's speedup over the matching
    serial-executor point (shared with ``benchmarks/bench_shard.py``)."""
    serial = _serial_reference(rows)
    body = []
    for row in rows:
        reference = serial.get((row.design, row.kernel, row.lanes, row.partitions))
        ratio = f"{row.lane_cps / reference:.2f}x" if reference else "-"
        body.append([
            row.design,
            row.kernel,
            row.lanes,
            row.partitions,
            row.executor,
            row.styles,
            row.lane_cps,
            row.critical_path_lane_cps,
            ratio,
        ])
    return format_table(
        ["design", "kernel", "B", "P", "executor", "backend/style",
         "lane c/s", "crit-path lane c/s", "vs serial"],
        body,
        title=title,
    )


def render_shard_throughput(
    designs: Sequence[str] = DEFAULT_DESIGNS,
    lanes_list: Sequence[int] = DEFAULT_LANES,
    partitions_list: Sequence[int] = DEFAULT_PARTITIONS,
    executors: Sequence[str] = DEFAULT_EXECUTORS,
    kernel: str = "PSU",
    cycles: int = DEFAULT_CYCLES,
) -> str:
    text = render_rows(
        throughput_rows(designs, lanes_list, partitions_list, executors,
                        kernel, cycles),
        title=f"Sharded batched throughput (measured, {cycles} cycles/lane): "
        "B lanes x P partitions per executor",
    )
    cpus = os.cpu_count() or 1
    if cpus < 2:
        text += (
            f"\n(host has {cpus} CPU: thread/process wall-clock rates are "
            "time-sliced; the crit-path column is the >=P-core rate)"
        )
    return text
