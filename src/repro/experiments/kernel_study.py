"""Section 7.2 ablation: kernel configurations (Tables 4-6, Figures 15-16).

All experiments run 8-core RocketChip under dhrystone, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List

from ..perf.machines import ALL_MACHINES
from .common import (
    KERNEL_NAMES,
    compile_cost_for,
    cpp_source_for,
    extrapolation_for,
    format_table,
    perf_for,
    profile_for,
)

STUDY_DESIGN = "rocket-8"


def table4_binary_size(design=STUDY_DESIGN) -> List[Dict]:
    """Table 4: binary size of each kernel (Intel Xeon)."""
    factor = extrapolation_for(design)
    rows = []
    for kernel in KERNEL_NAMES:
        source = cpp_source_for(design, kernel)
        rows.append({
            "kernel": kernel,
            "binary_mb": source.binary_code_bytes(factor) / 1e6,
        })
    return rows


def render_table4(design=STUDY_DESIGN) -> str:
    rows = table4_binary_size(design)
    return format_table(
        ["kernel", "binary size (MB)"],
        [(r["kernel"], r["binary_mb"]) for r in rows],
        title=f"Table 4: kernel binary sizes ({design})",
    )


def table5_dyninst_ipc(design=STUDY_DESIGN, machine="intel-xeon") -> List[Dict]:
    """Table 5: dynamic instructions (T) and IPC per kernel."""
    rows = []
    for kernel in KERNEL_NAMES:
        result = perf_for(design, kernel, machine)
        rows.append({
            "kernel": kernel,
            "dyn_instr_t": result.dyn_instr / 1e12,
            "ipc": result.ipc,
        })
    return rows


def render_table5(design=STUDY_DESIGN) -> str:
    rows = table5_dyninst_ipc(design)
    return format_table(
        ["kernel", "dyn. inst (T)", "IPC"],
        [(r["kernel"], r["dyn_instr_t"], r["ipc"]) for r in rows],
        title=f"Table 5: dynamic instructions and IPC ({design}, Intel Xeon)",
    )


def table6_cache(design=STUDY_DESIGN, machine="intel-xeon") -> List[Dict]:
    """Table 6: L1I misses, L1D loads, L1D misses (billions) per kernel."""
    rows = []
    for kernel in KERNEL_NAMES:
        result = perf_for(design, kernel, machine)
        rows.append({
            "kernel": kernel,
            "l1i_miss_b": result.l1i_misses / 1e9,
            "l1d_load_b": result.l1d_loads / 1e9,
            "l1d_miss_b": result.l1d_misses / 1e9,
        })
    return rows


def render_table6(design=STUDY_DESIGN) -> str:
    rows = table6_cache(design)
    return format_table(
        ["kernel", "L1I miss (B)", "L1D load (B)", "L1D miss (B)"],
        [(r["kernel"], r["l1i_miss_b"], r["l1d_load_b"], r["l1d_miss_b"])
         for r in rows],
        title=f"Table 6: cache profile ({design}, Intel Xeon)",
    )


def fig15_kernel_compile(design=STUDY_DESIGN) -> List[Dict]:
    """Figure 15: compile time and peak memory per kernel, four machines."""
    rows = []
    for kernel in KERNEL_NAMES:
        for machine in ALL_MACHINES:
            cost = compile_cost_for(design, kernel, machine)
            rows.append({
                "kernel": kernel,
                "machine": machine.name,
                "compile_time_s": cost.seconds,
                "peak_memory_mb": cost.peak_memory_mb,
            })
    return rows


def render_fig15(design=STUDY_DESIGN) -> str:
    rows = fig15_kernel_compile(design)
    return format_table(
        ["kernel", "machine", "compile time (s)", "peak memory (MB)"],
        [(r["kernel"], r["machine"], r["compile_time_s"], r["peak_memory_mb"])
         for r in rows],
        title=f"Figure 15: kernel compilation costs ({design})",
    )


def fig16_kernel_sim(design=STUDY_DESIGN) -> List[Dict]:
    """Figure 16: simulation time per kernel on four machines."""
    rows = []
    for machine in ALL_MACHINES:
        times = {
            kernel: perf_for(design, kernel, machine).sim_time_s
            for kernel in KERNEL_NAMES
        }
        best = min(times, key=lambda name: times[name])
        for kernel in KERNEL_NAMES:
            rows.append({
                "machine": machine.name,
                "kernel": kernel,
                "sim_time_s": times[kernel],
                "best": kernel == best,
            })
    return rows


def render_fig16(design=STUDY_DESIGN) -> str:
    rows = fig16_kernel_sim(design)
    return format_table(
        ["machine", "kernel", "sim time (s)", "best?"],
        [
            (r["machine"], r["kernel"], r["sim_time_s"],
             "*" if r["best"] else "")
            for r in rows
        ],
        title=f"Figure 16: kernel simulation time ({design})",
    )
