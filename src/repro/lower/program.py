"""The lowered OIM program IR shared by every kernel.

:class:`OimProgram` is the single product of the lowering pipeline: the
dependence-levelled operation schedule in a flat, typed, picklable form,
plus every table an executor needs (slot widths, constant preloads,
input/output slots, register commits, leaf slots, the slot-to-consumer
transpose) and a canonical SHA-256 fingerprint that keys derived
artifacts (SU codegen statements, compiled shared objects).

The row shape is the batch walk's historical ``WalkRow`` tuple --
``(n, s, operands, widths, out_width)`` with ``n`` the opcode index --
so every existing executor consumes it without adaptation, and the rows
stay picklable for the :mod:`repro.serve` artifact cache.  Traversal
order is the paper's RU order: rank I outermost, rank S concordant
within each layer, operands in O order; this is exactly the order of
:class:`~repro.oim.builder.OimBundle.layers`, which is what
:func:`lower_program` flattens.

The concrete paper formats of Figure 12 remain in
:mod:`repro.oim.formats`; :meth:`OimProgram.flat_ranks` and
:meth:`OimProgram.swizzled_ranks` reproduce their rank arrays so the
format-walking scalar kernels (RU/OU/NU/PSU) are executors over the same
program rather than private re-lowerings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..oim.builder import OimBundle

#: One program row: ``(n, s, operands, widths, out_width)`` with ``n``
#: the opcode index (rebound to live op-table entries by executors).
ProgramRow = Tuple[int, int, Tuple[int, ...], Tuple[int, ...], int]


@dataclass(frozen=True)
class FlatRanks:
    """The optimized-format rank arrays (Figure 12b), program-derived."""

    i_payloads: Tuple[int, ...]
    s_coords: Tuple[int, ...]
    n_coords: Tuple[int, ...]
    r_coords: Tuple[int, ...]


@dataclass(frozen=True)
class SwizzledRanks:
    """The swizzled-format rank arrays (Figure 12c), program-derived."""

    n_payloads: Tuple[int, ...]
    s_coords: Tuple[int, ...]
    r_coords: Tuple[int, ...]


@dataclass
class OimProgram:
    """One design's lowered OIM schedule plus executor metadata."""

    design_name: str
    #: Opcode vocabulary: ``op_names[n]`` / ``op_arities[n]`` describe
    #: opcode ``n`` without needing a live :class:`OpTable` (semantics
    #: are still resolved through the bundle's table at executor build).
    op_names: Tuple[str, ...]
    op_arities: Tuple[int, ...]
    #: Dependence-levelled rows, sorted by ``s`` within each layer.
    layers: List[List[ProgramRow]]
    num_slots: int
    slot_width: Tuple[int, ...]
    const_slots: Tuple[Tuple[int, int], ...]
    input_slots: Dict[str, int]
    output_slots: Dict[str, int]
    register_commits: Tuple[Tuple[int, int], ...]
    #: The walk's sources (input + register state slots, sorted): the
    #: only slots whose values change *between* combinational passes.
    leaf_slots: Tuple[int, ...]
    #: ``consumers[slot]`` -> ``(layer, record_index)`` pairs reading it
    #: (the transpose of the R rank; drives the activity cascade).
    consumers: Tuple[Tuple[Tuple[int, int], ...], ...]
    max_arity: int
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def num_records(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def num_opcodes(self) -> int:
        return len(self.op_names)

    def records(self) -> Iterator[ProgramRow]:
        """Every row in execution order (layers flattened)."""
        for layer in self.layers:
            yield from layer

    def const_values(self) -> Dict[int, int]:
        return dict(self.const_slots)

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Canonical SHA-256 over everything that shapes execution.

        Stable across processes and hosts (plain ints/strings/tuples
        only); keys every artifact derived from the program -- codegen
        statement lists, compiled shared objects -- so "same fingerprint"
        means "same generated code".
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            for tag, part in (
                (b"\x00", self.design_name),
                (b"\x01", self.op_names),
                (b"\x02", self.op_arities),
                (b"\x03", self.layers),
                (b"\x04", self.slot_width),
                (b"\x05", self.const_slots),
                (b"\x06", tuple(sorted(self.input_slots.items()))),
                (b"\x07", tuple(sorted(self.output_slots.items()))),
                (b"\x08", self.register_commits),
                (b"\x09", (self.num_slots, self.max_arity)),
            ):
                hasher.update(tag)
                hasher.update(repr(part).encode())
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Derived paper-format views (Figure 12), so the format-walking
    # kernels source their arrays from the program too.
    # ------------------------------------------------------------------
    def flat_ranks(self) -> FlatRanks:
        """Rank arrays in the optimized ``[I,S,N,O,R]`` order: identical
        to ``lower_oim_fast(bundle, "optimized")``'s coords/payloads."""
        i_payloads: List[int] = []
        s_coords: List[int] = []
        n_coords: List[int] = []
        r_coords: List[int] = []
        for layer in self.layers:
            i_payloads.append(len(layer))
            for n, s, operands, _widths, _ow in layer:
                s_coords.append(s)
                n_coords.append(n)
                r_coords.extend(operands)
        return FlatRanks(
            tuple(i_payloads), tuple(s_coords), tuple(n_coords), tuple(r_coords)
        )

    def swizzled_ranks(self) -> SwizzledRanks:
        """Rank arrays in the swizzled ``[I,N,S,O,R]`` order: identical
        to ``lower_oim_fast(bundle, "swizzled")``'s coords/payloads (per
        layer, per opcode ``0..num_opcodes-1``, records in layer order).
        """
        n_payloads: List[int] = []
        s_coords: List[int] = []
        r_coords: List[int] = []
        num_codes = self.num_opcodes
        for layer in self.layers:
            by_code: Dict[int, List[ProgramRow]] = {}
            for row in layer:
                by_code.setdefault(row[0], []).append(row)
            for code in range(num_codes):
                rows = by_code.get(code, ())
                n_payloads.append(len(rows))
                for _n, s, operands, _widths, _ow in rows:
                    s_coords.append(s)
                    r_coords.extend(operands)
        return SwizzledRanks(
            tuple(n_payloads), tuple(s_coords), tuple(r_coords)
        )


# ----------------------------------------------------------------------
def lower_program(bundle: OimBundle) -> OimProgram:
    """Lower ``bundle`` into the shared :class:`OimProgram`.

    One sweep over ``bundle.layers`` builds the rows (already in RU
    order: layers are sorted by ``s``, operands are in O order) and the
    consumer transpose; everything else is copied into picklable tuples.
    """
    width = list(bundle.slot_width)
    layers: List[List[ProgramRow]] = []
    for layer in bundle.layers:
        rows: List[ProgramRow] = []
        for record in layer:
            operands = tuple(record.operands)
            rows.append((
                record.n,
                record.s,
                operands,
                tuple(width[r] for r in operands),
                width[record.s],
            ))
        layers.append(rows)

    consumer_map: List[List[Tuple[int, int]]] = [
        [] for _ in range(bundle.num_slots)
    ]
    for layer_index, layer in enumerate(layers):
        for record_index, (_n, _s, operands, _w, _ow) in enumerate(layer):
            for r in set(operands):
                consumer_map[r].append((layer_index, record_index))

    leaves = set(bundle.input_slots.values())
    leaves.update(state for state, _next in bundle.register_commits)

    return OimProgram(
        design_name=bundle.design_name,
        op_names=tuple(entry.name for entry in bundle.op_table),
        op_arities=tuple(entry.arity for entry in bundle.op_table),
        layers=layers,
        num_slots=bundle.num_slots,
        slot_width=tuple(width),
        const_slots=tuple((slot, value) for slot, value in bundle.const_slots),
        input_slots=dict(bundle.input_slots),
        output_slots=dict(bundle.output_slots),
        register_commits=tuple(
            (state, nxt) for state, nxt in bundle.register_commits
        ),
        leaf_slots=tuple(sorted(leaves)),
        consumers=tuple(tuple(pairs) for pairs in consumer_map),
        max_arity=bundle.max_arity,
    )


def cached_program(bundle: OimBundle) -> OimProgram:
    """:func:`lower_program` through the :mod:`repro.serve` artifact
    cache (kind ``program``), keyed by the bundle fingerprint.

    The program is additionally memoised on the bundle instance: every
    kernel family lowers through here, so one design's construction asks
    for the same program several times per process (walk + activity +
    codegen + compiled), and bundles are immutable once built.
    """
    program = getattr(bundle, "_repro_program", None)
    if program is not None:
        return program
    from ..serve import artifacts

    if artifacts.get_cache() is None:
        program = lower_program(bundle)
    else:
        digest = artifacts.bundle_fingerprint(bundle, stage="program")
        program = artifacts.cache_through(
            "program", digest, lambda: lower_program(bundle)
        )
    try:
        bundle._repro_program = program
    except AttributeError:  # slotted/frozen bundles: recompute per call
        pass
    return program
