"""The compiled C batch backend: one translation unit per program.

:func:`emit_c` lowers an :class:`~repro.lower.program.OimProgram` into a
single batched C translation unit -- the whole OIM schedule as
straight-line statements over ``uint64_t`` locals (the compiler's
register allocator fuses chains of statements and eliminates common
subexpression rows), wrapped in a loop over the B lanes with the NumPy
``(num_slots, B)`` value plane passed in as a raw pointer.  The emitted
expressions mirror :func:`repro.kernels.expr.numpy_expr` *exactly* --
the same zero-divisor guards, shift clipping, zero-width idioms, and
output masks -- so the compiled kernel is bit-identical to the NumPy
codegen kernel by construction (and the differential matrix enforces
it).  Only u64-eligible designs (every slot width <= 64) compile; wider
designs keep the split-limb NumPy path.

:func:`compiled_comb` is the entry point: program -> cached shared
object.  The compiled artifact is stored in the :mod:`repro.serve`
artifact cache under kind ``cbin``, keyed by the program fingerprint
plus the host triple and compile flags, so warm starts (and fleet
members sharing a cache directory) load the ``.so`` bytes without
invoking a compiler at all.  When no C toolchain is present,
:class:`ToolchainUnavailable` is raised and callers fall back to the
NumPy kernels -- the backend degrades, it never breaks.

This module imports no NumPy: toolchain probing and source emission must
work (and report cleanly) in the no-NumPy environment too.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional, Sequence

from ..kernels.expr import needs_mask
from .program import OimProgram

#: Rows per generated chunk function (mirrors the Python codegen chunking;
#: keeps single-function size sane for the C compiler on huge designs).
C_CHUNK = 4000

#: Optimisation level by program size.  ``-O1`` deliberately, not
#: ``-O2``: measured on rocket-1 it is both the fastest to run (the
#: straight-line code only needs register fusion and local CSE) and 5x
#: quicker to compile.  Above ``BIG_PROGRAM_ROWS`` rows even -O1 costs
#: the better part of a minute, so huge designs drop to ``-O0`` (within
#: ~20% of -O1 at runtime, compiles in seconds).
BIG_PROGRAM_ROWS = 20_000
BASE_CFLAGS = ("-shared", "-fPIC")


def _cflags(num_records: int):
    level = "-O0" if num_records > BIG_PROGRAM_ROWS else "-O1"
    return (level, *BASE_CFLAGS)

#: Bump when the emitted source or ABI changes shape: it enters the
#: ``cbin`` cache key, so stale shared objects never load.
SOURCE_SCHEMA = 1


class CBackendUnavailable(RuntimeError):
    """The compiled backend cannot run here; use the NumPy fallback."""


class ToolchainUnavailable(CBackendUnavailable):
    """No C compiler on PATH (and no cached shared object to load)."""


def find_compiler() -> Optional[str]:
    """The C compiler to use, or None.

    ``REPRO_CC`` overrides probing (set it empty to force the backend
    off, e.g. to exercise fallbacks in tests); otherwise the first of
    ``cc``/``gcc``/``clang`` on PATH wins.
    """
    override = os.environ.get("REPRO_CC")
    if override is not None:
        override = override.strip()
        return override or None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def has_toolchain() -> bool:
    return find_compiler() is not None


# ----------------------------------------------------------------------
# Source emission
# ----------------------------------------------------------------------
_PRELUDE = """\
#include <stdint.h>

static inline uint64_t r_div(uint64_t a, uint64_t b) {
    return b ? a / b : 0;
}
static inline uint64_t r_rem(uint64_t a, uint64_t b) {
    return b ? a % b : 0;
}
static inline uint64_t r_dshl(uint64_t a, uint64_t s, int64_t ow) {
    if (ow <= 0) return 0;
    return s < (uint64_t)ow ? a << s : 0;
}
static inline uint64_t r_dshr(uint64_t a, uint64_t s, int64_t iw) {
    if (iw <= 0) return 0;
    return s < (uint64_t)iw ? a >> s : 0;
}
static inline uint64_t r_head(uint64_t a, uint64_t nbits, int64_t iw) {
    uint64_t w, shift;
    if (iw <= 0) return 0;
    w = (uint64_t)iw;
    shift = w - (nbits < w ? nbits : w);
    if (shift >= w) return 0;
    return shift ? a >> shift : a;
}
static inline uint64_t r_pop(uint64_t x) {
    x ^= x >> 32; x ^= x >> 16; x ^= x >> 8;
    x ^= x >> 4;  x ^= x >> 2;  x ^= x >> 1;
    return x & 1u;
}
"""

_CMP = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=", "eq": "==", "neq": "!="}
_BIN = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|", "xor": "^"}


def _c_core(
    op: str,
    a: Sequence[str],
    raw: Sequence[Optional[int]],
    widths: Sequence[int],
    out_width: int,
) -> str:
    """One op as a C expression -- :func:`.expr._numpy_core` template for
    template, with constant shift amounts folded via ``raw`` (the inlined
    integer values; ``None`` for live operands)."""
    if op in _BIN:
        return f"{a[0]} {_BIN[op]} {a[1]}"
    if op == "div":
        return f"r_div({a[0]}, {a[1]})"
    if op == "rem":
        return f"r_rem({a[0]}, {a[1]})"
    if op in _CMP:
        return f"(uint64_t)({a[0]} {_CMP[op]} {a[1]})"
    if op == "cat":
        if widths[1] >= 64:
            return a[1]  # a 64-bit shift only arises with a zero-width lhs
        return f"({a[0]} << {widths[1]}) | {a[1]}"
    if op in ("dshl", "shl"):
        shift = raw[1]
        if shift is None:
            return f"r_dshl({a[0]}, {a[1]}, {out_width})"
        if shift >= out_width or shift >= 64:
            return "0"
        return f"{a[0]} << {shift}"
    if op in ("dshr", "shr"):
        shift = raw[1]
        if shift is None:
            return f"r_dshr({a[0]}, {a[1]}, {widths[0]})"
        if shift >= widths[0] or shift >= 64:
            return "0"
        return f"{a[0]} >> {shift}"
    if op in ("pad", "tail", "cvt", "asUInt", "asSInt", "ident"):
        return a[0]
    if op == "head":
        head = raw[1]
        if head is None:
            return f"r_head({a[0]}, {a[1]}, {widths[0]})"
        shift = max(widths[0] - head, 0)
        if (shift >= widths[0] and widths[0] > 0) or shift >= 64:
            return "0"
        return f"{a[0]} >> {shift}" if shift else a[0]
    if op == "not":
        return f"~{a[0]}"
    if op == "neg":
        return f"(0 - {a[0]})"
    if op == "andr":
        full = (1 << widths[0]) - 1
        return f"(uint64_t)({a[0]} == {hex(full)}ULL)"
    if op == "orr":
        return f"(uint64_t)({a[0]} != 0)"
    if op == "xorr":
        return f"r_pop({a[0]})"
    if op == "mux":
        return f"({a[0]} ? {a[1]} : {a[2]})"
    if op == "bits":
        # a = [value, hi, lo]; hi/lo reach codegen as inline constants.
        shift = raw[2]
        if shift is None:
            return f"r_dshr({a[0]}, {a[2]}, {widths[0]})"
        if (shift >= widths[0] and widths[0] > 0) or shift >= 64:
            return "0"
        return f"({a[0]} >> {shift})"

    base = op.rstrip("0123456789")
    if base == "muxchain":
        # a = [s1, v1, s2, v2, ..., default]; build from the innermost out.
        expression = a[-1]
        for position in range(len(a) - 3, -1, -2):
            expression = f"({a[position]} ? {a[position + 1]} : {expression})"
        return expression
    if base in ("orchain", "andchain", "xorchain"):
        symbol = {"orchain": "|", "andchain": "&", "xorchain": "^"}[base]
        return f" {symbol} ".join(a)
    raise KeyError(f"no C expression template for op {op!r}")


def _c_expr(
    op: str,
    a: Sequence[str],
    raw: Sequence[Optional[int]],
    widths: Sequence[int],
    out_width: int,
) -> str:
    expr = _c_core(op, a, raw, widths, out_width)
    if needs_mask(op):
        if out_width <= 0:
            return "0"
        if out_width < 64:
            return f"({expr}) & {hex((1 << out_width) - 1)}ULL"
    return expr


def emit_c(program: OimProgram) -> str:
    """The whole program as one batched C translation unit.

    Layout: the prelude's guarded helpers; one ``static void chunk_k``
    per ``C_CHUNK`` rows evaluating its slice of the straight-line
    schedule for a single lane (slots live in ``uint64_t`` locals within
    a chunk -- loaded from the plane on first use, stored back on
    every assignment so peeks of arbitrary slots stay valid); and the
    exported driver ``repro_eval_comb(uint64_t *V, int64_t lanes)``
    looping lanes over the chunks.  ``V`` is the C-contiguous
    ``(num_slots, lanes)`` uint64 plane, so slot ``s`` of lane ``b``
    is ``V[s*lanes + b]``.
    """
    const_values = program.const_values()
    rows = list(program.records())
    chunks: List[str] = []
    for start in range(0, max(len(rows), 1), C_CHUNK):
        slice_rows = rows[start:start + C_CHUNK]
        defined: set = set()
        loads: List[int] = []
        body: List[str] = []
        for n, s, operands, widths, out_width in slice_rows:
            args: List[str] = []
            raws: List[Optional[int]] = []
            for r in operands:
                if r in const_values:
                    value = const_values[r]
                    args.append(f"{value}ULL")
                    raws.append(value)
                else:
                    if r not in defined and r not in loads:
                        loads.append(r)
                    args.append(f"v{r}")
                    raws.append(None)
            expression = _c_expr(
                program.op_names[n], args, raws, widths, out_width
            )
            body.append(f"    uint64_t v{s} = {expression};")
            body.append(f"    V[(int64_t){s} * n + b] = v{s};")
            defined.add(s)
        header = [
            f"    uint64_t v{r} = V[(int64_t){r} * n + b];" for r in loads
        ]
        index = start // C_CHUNK
        lines = header + body if (header or body) else ["    (void)V; (void)n; (void)b;"]
        chunks.append(
            f"static void chunk_{index}(uint64_t *V, int64_t n, int64_t b) {{\n"
            + "\n".join(lines)
            + "\n}\n"
        )
    calls = "\n".join(
        f"        chunk_{index}(V, n, b);" for index in range(len(chunks))
    )
    driver = (
        "void repro_eval_comb(uint64_t *V, int64_t n) {\n"
        "    int64_t b;\n"
        "    for (b = 0; b < n; ++b) {\n"
        f"{calls}\n"
        "    }\n"
        "}\n"
    )
    return _PRELUDE + "\n" + "\n".join(chunks) + "\n" + driver


# ----------------------------------------------------------------------
# Compilation and loading
# ----------------------------------------------------------------------
def compile_shared_object(source: str, cc: str, flags=None) -> bytes:
    """Compile ``source`` with ``cc`` and return the shared-object bytes."""
    if flags is None:
        flags = ("-O1", *BASE_CFLAGS)
    with tempfile.TemporaryDirectory(prefix="repro-cc-") as workdir:
        src = os.path.join(workdir, "comb.c")
        out = os.path.join(workdir, "comb.so")
        with open(src, "w") as handle:
            handle.write(source)
        result = subprocess.run(
            [cc, *flags, "-o", out, src],
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            detail = (result.stderr or result.stdout or "").strip()
            raise CBackendUnavailable(
                f"{cc} failed (rc={result.returncode}): {detail[:2000]}"
            )
        with open(out, "rb") as handle:
            return handle.read()


class CompiledComb:
    """A loaded compiled combinational pass: ``comb(plane)`` evaluates
    every lane of a C-contiguous ``(num_slots, B)`` uint64 plane in
    place.  Owns a private temp directory holding the ``.so`` for the
    process lifetime (removed at exit; the mapping survives the
    unlink)."""

    def __init__(self, so_bytes: bytes, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self._dir = tempfile.mkdtemp(prefix="repro-cbin-")
        atexit.register(shutil.rmtree, self._dir, ignore_errors=True)
        path = os.path.join(self._dir, "comb.so")
        with open(path, "wb") as handle:
            handle.write(so_bytes)
        try:
            library = ctypes.CDLL(path)
        except OSError as error:  # e.g. noexec tmp mount
            raise CBackendUnavailable(
                f"cannot load compiled kernel: {error}"
            ) from error
        self._fn = library.repro_eval_comb
        self._fn.argtypes = [ctypes.POINTER(ctypes.c_uint64), ctypes.c_int64]
        self._fn.restype = None
        self._library = library

    def __call__(self, plane) -> None:
        if not plane.flags["C_CONTIGUOUS"]:
            raise ValueError("compiled kernel needs a C-contiguous plane")
        pointer = plane.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64))
        self._fn(pointer, plane.shape[1])


def _cbin_digest(program: OimProgram) -> str:
    """The ``cbin`` cache key: same program + same host shape + same
    flags -> same shared object.  The compiler *name* stays out so a
    cc/gcc alias switch doesn't force a recompile; SOURCE_SCHEMA bumps
    do."""
    hasher = hashlib.sha256()
    for part in (
        program.fingerprint,
        platform.machine(),
        sys.platform,
        _cflags(program.num_records),
        SOURCE_SCHEMA,
    ):
        hasher.update(repr(part).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


#: Loaded kernels by cbin digest: every kernel instance for a design in
#: one process shares one mapped shared object.
_MEMO: Dict[str, CompiledComb] = {}


def compiled_comb(bundle) -> CompiledComb:
    """The compiled combinational pass for ``bundle``'s program.

    Resolution order: in-process memo, then the artifact cache's
    ``cbin`` entry (a warm start needs no toolchain at all), then a
    fresh emit+compile (cached for the next process).  Raises
    :class:`ToolchainUnavailable` / :class:`CBackendUnavailable` when
    neither a cached object nor a compiler is available.
    """
    from ..serve import artifacts
    from .program import cached_program

    program = cached_program(bundle)
    digest = _cbin_digest(program)
    memoised = _MEMO.get(digest)
    if memoised is not None:
        return memoised

    cache = artifacts.get_cache()
    so_bytes: Optional[bytes] = None
    if cache is not None:
        envelope = cache.get("cbin", digest)
        if isinstance(envelope, dict):
            cached = envelope.get("so")
            if isinstance(cached, bytes):
                so_bytes = cached
    if so_bytes is None:
        cc = find_compiler()
        if cc is None:
            raise ToolchainUnavailable(
                "no C compiler found (cc/gcc/clang; set REPRO_CC to "
                "override) and no cached compiled kernel for this design"
            )
        so_bytes = compile_shared_object(
            emit_c(program), cc, _cflags(program.num_records)
        )
        if cache is not None:
            cache.put("cbin", digest, {"so": so_bytes, "cc": os.path.basename(cc)})
    comb = CompiledComb(so_bytes, program.fingerprint)
    _MEMO[digest] = comb
    return comb
