"""Width classification and the blocked same-op limb plan.

One program, one classification: :func:`is_narrow` and :func:`blockable`
decide which rows fit the single-``uint64``-row evaluators and which of
those can join a layer-blocked same-op group, and :func:`limb_plan`
folds both into the declarative ``u64xN`` schedule.  The batched walk,
the activity kernel, the SU codegen, and the C backend all consult these
same predicates, so the narrow/wide split cannot drift between
executors.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..kernels.expr import LIMB_OP_BASES
from .program import OimProgram, ProgramRow

#: Widths at or below this fit one uint64 plane row.
U64_MAX_WIDTH = 64

#: Narrow base ops with a blocked builder in the batched walk -- the
#: same vocabulary as the split-limb evaluators (one canonical set, so
#: the layers cannot drift apart).
BLOCKABLE_BASES = LIMB_OP_BASES


def is_narrow(widths, out_width) -> bool:
    """True when an op never sees a >64-bit operand or result."""
    return out_width <= U64_MAX_WIDTH and all(w <= U64_MAX_WIDTH for w in widths)


def blockable(name: str, widths, out_width) -> bool:
    """True when a narrow record can join a layer-blocked group.

    The blocked builders replace the per-record Python-level width
    branches with broadcast ``(k, 1)`` width columns, so records that
    would take those branches (zero-width shift sources, a zero-width
    ``cat`` lhs) stay on the per-record path.
    """
    base = name.rstrip("0123456789")
    if base not in BLOCKABLE_BASES:
        return False
    if base == "cat" and widths[1] >= U64_MAX_WIDTH:
        return False  # zero-width lhs idiom: per-record table passes rhs through
    if base in ("bits", "dshr", "shr", "head") and widths[0] <= 0:
        return False
    if base in ("dshl", "shl") and out_width <= 0:
        return False
    return True


PlanStep = Tuple[str, object, List[ProgramRow]]


def limb_plan(program: OimProgram) -> List[PlanStep]:
    """The ``u64xN`` schedule in declarative, picklable form.

    Per layer, in execution order: ``("block", op_name, rows)`` for each
    layer-blocked narrow group, then ``("narrow", None, [row])`` /
    ``("wide", None, [row])`` per remaining record.  Closures are
    rebuilt from this plan at kernel construction (closures themselves
    do not pickle), so the grouping/classification sweep is what the
    artifact cache saves -- as part of the cached program's derived
    state.
    """
    op_names = program.op_names
    plan: List[PlanStep] = []
    for layer in program.layers:
        groups: Dict[str, List[ProgramRow]] = {}
        leftovers: List[ProgramRow] = []
        for row in layer:
            n, _s, _operands, widths, out_width = row
            name = op_names[n]
            if is_narrow(widths, out_width) and blockable(
                name, widths, out_width
            ):
                groups.setdefault(name, []).append(row)
            else:
                leftovers.append(row)
        for name, group in groups.items():
            if len(group) == 1:
                leftovers.extend(group)
            else:
                plan.append(("block", name, group))
        for row in leftovers:
            _n, _s, _operands, widths, out_width = row
            kind = "narrow" if is_narrow(widths, out_width) else "wide"
            plan.append((kind, None, [row]))
    return plan
