"""The shared lowering pipeline: one OIM program, many executors.

Every kernel family used to re-derive its own ad-hoc lowering of the OIM
schedule (walk rows, fiber consumers, limb plans, codegen statements).
This package lowers a design **once** into an :class:`OimProgram` --
dependence-levelled layers of typed ops with slot/width/operand
metadata, leaf and commit tables, and a canonical fingerprint -- and
every executor (the scalar walk kernels, the batched walk/codegen
kernels, the activity cascade, the split-limb plan, and the compiled C
backend) consumes that one program.

Modules:

* :mod:`repro.lower.program`  -- the IR, :func:`lower_program`, and the
  cache-backed :func:`cached_program`;
* :mod:`repro.lower.plan`     -- width classification and the blocked
  same-op limb plan derived from a program;
* :mod:`repro.lower.cbackend` -- the compiled C batch backend: one
  batched translation unit per program, compiled at design-load time and
  cached as a ``cbin`` artifact keyed by the program fingerprint.
"""

from .program import OimProgram, ProgramRow, cached_program, lower_program
from .plan import blockable, is_narrow, limb_plan
from .cbackend import (
    CBackendUnavailable,
    CompiledComb,
    compiled_comb,
    find_compiler,
    has_toolchain,
)

__all__ = [
    "OimProgram",
    "ProgramRow",
    "lower_program",
    "cached_program",
    "is_narrow",
    "blockable",
    "limb_plan",
    "CBackendUnavailable",
    "CompiledComb",
    "compiled_comb",
    "find_compiler",
    "has_toolchain",
]
