"""Compute and coordinate operators for extended Einsums (Section 2.4).

EDGE pairs every action (map, reduce, populate) with a *compute operator*,
which combines data values, and a *coordinate operator*, which selects the
region of the iteration space where the computation is evaluated.  This
module defines the common operators used in the paper:

* compute: ``×``, ``+``, pass-through (``1``), take-left (``<-``),
  take-right (``->``), and user-defined custom operators such as the
  paper's ``op_r[n]`` / ``op_u[n]`` / ``op_s[n]``;
* coordinate: intersection (``∩``), union (``∪``), take-left, take-right,
  and pass-through.

Operators are small named wrappers around callables so that Einsums can be
pretty-printed in something close to the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class ComputeOp:
    """A compute operator: combines data values.

    ``fn`` receives the operand values.  For map actions it is called with
    one value per input tensor; for reduce actions it is called as
    ``fn(current_reduce_temporary, new_map_temporary)`` -- the paper's
    convention that "the left operator is the current reduce temporary and
    the right operator is the new map temporary".
    """

    name: str
    symbol: str
    fn: Callable[..., Any]
    #: Contextual operators receive the coordinate bindings as their first
    #: argument -- this is how the paper's ``op_r[n]`` family reads the ``n``
    #: coordinate to select the operation to perform (Algorithm 2).
    contextual: bool = False

    def __call__(self, *args: Any) -> Any:
        return self.fn(*args)

    def __repr__(self) -> str:
        return f"ComputeOp({self.symbol})"


@dataclass(frozen=True)
class CoordOp:
    """A coordinate operator: selects points of the iteration space.

    ``mode`` is interpreted by the Einsum interpreter:

    * ``"intersect"``: evaluate where *all* inputs are non-empty;
    * ``"union"``: evaluate where *any* input is non-empty;
    * ``"left"`` / ``"right"``: evaluate where that input is non-empty;
    * ``"all"``: evaluate at every point of the (shaped) iteration space.
    """

    name: str
    symbol: str
    mode: str

    def __repr__(self) -> str:
        return f"CoordOp({self.symbol})"


# ----------------------------------------------------------------------
# Standard compute operators
# ----------------------------------------------------------------------
def _take_left(*args: Any) -> Any:
    return args[0]


def _take_right(*args: Any) -> Any:
    return args[-1]


def _pass_through(*args: Any) -> Any:
    if len(args) != 1:
        raise ValueError(
            "pass-through compute operator expects exactly one operand; "
            "use an explicit operator to combine multiple inputs"
        )
    return args[0]


ADD = ComputeOp("add", "+", lambda a, b: a + b)
SUB = ComputeOp("sub", "-", lambda a, b: a - b)
MUL = ComputeOp("mul", "x", lambda a, b: a * b)
MAX = ComputeOp("max", "max", lambda a, b: a if a >= b else b)
MIN = ComputeOp("min", "min", lambda a, b: a if a <= b else b)
ANY = ComputeOp("any", "ANY", lambda a, b: a if a is not None else b)
TAKE_LEFT = ComputeOp("take_left", "<-", _take_left)
TAKE_RIGHT = ComputeOp("take_right", "->", _take_right)
PASS_THROUGH = ComputeOp("pass_through", "1", _pass_through)

# ----------------------------------------------------------------------
# Standard coordinate operators
# ----------------------------------------------------------------------
INTERSECT = CoordOp("intersect", "^", "intersect")
UNION = CoordOp("union", "v", "union")
COORD_LEFT = CoordOp("take_left", "<-", "left")
COORD_RIGHT = CoordOp("take_right", "->", "right")
COORD_ALL = CoordOp("pass_through", "1", "all")


def custom_compute(name: str, fn: Callable[..., Any], symbol: Optional[str] = None) -> ComputeOp:
    """Define a user-defined compute operator (e.g. ``op_r[n]``)."""
    return ComputeOp(name, symbol or name, fn)


def contextual_compute(
    name: str, fn: Callable[..., Any], symbol: Optional[str] = None
) -> ComputeOp:
    """Define a compute operator that also reads the coordinate bindings.

    ``fn(bindings, *values)`` is called with the index-name -> coordinate
    dict, enabling operators like ``op_r[n]`` whose behaviour depends on the
    ``n`` coordinate (Algorithm 2 in the paper).
    """
    return ComputeOp(name, symbol or name, fn, contextual=True)


@dataclass(frozen=True)
class PopulateOp:
    """A populate *coordinate* operator acting on an entire output fiber.

    Unlike point-wise operators, the populate coordinate operator receives
    the whole fiber of reduce temporaries along the starred rank (Appendix A)
    and returns the fiber to write into the output.  ``fn`` takes a list of
    ``(coordinate, value)`` pairs and returns a list of the same form.
    """

    name: str
    fn: Callable[[list[tuple[int, Any]]], list[tuple[int, Any]]]
    #: Contextual populate operators receive the group's coordinate bindings
    #: as their first argument (needed by ``op_s[n]``, which must read ``n``).
    contextual: bool = False

    def __call__(self, pairs: list[tuple[int, Any]]) -> list[tuple[int, Any]]:
        return self.fn(pairs)

    def __repr__(self) -> str:
        return f"PopulateOp({self.name})"


def max_n_populate(n: int) -> PopulateOp:
    """Appendix A's ``max2``-style operator: keep the ``n`` largest values."""

    def keep(pairs: list[tuple[int, Any]]) -> list[tuple[int, Any]]:
        ranked = sorted(pairs, key=lambda cv: cv[1], reverse=True)[:n]
        return sorted(ranked)

    return PopulateOp(f"max{n}", keep)


POPULATE_ALL = PopulateOp("1", lambda pairs: pairs)
