"""Extended-Einsum intermediate representation (Sections 2.3, 2.4, 4).

An :class:`Einsum` names an output tensor, input tensors, and the three EDGE
actions (map, reduce, populate), each with its compute and coordinate
operator.  A :class:`Cascade` is an ordered sequence of dependent Einsums,
optionally with an iterative rank for loop-carried dependencies (e.g. the
layer rank ``I`` in the paper's Cascade 1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from .operators import (
    COORD_LEFT,
    COORD_RIGHT,
    ComputeOp,
    CoordOp,
    PASS_THROUGH,
    PopulateOp,
)

_INDEX_RE = re.compile(r"^([a-z][a-z0-9_]*)(\+1|\*)?$")


@dataclass(frozen=True)
class Index:
    """A rank variable expression in a tensor subscript.

    ``name`` is the lowercase index letter.  ``offset`` is 1 for iterative
    outputs written at ``i+1`` (Einsum 5 / Cascade 1), and ``starred`` marks
    fiber-level populate ranks like the ``o*`` in :math:`LO\\_sel` (Einsum 13
    and Appendix A).
    """

    name: str
    offset: int = 0
    starred: bool = False

    @classmethod
    def parse(cls, text: str) -> "Index":
        match = _INDEX_RE.match(text.strip())
        if not match:
            raise ValueError(f"bad index expression: {text!r}")
        name, suffix = match.groups()
        return cls(name, offset=1 if suffix == "+1" else 0, starred=suffix == "*")

    def __str__(self) -> str:
        if self.offset:
            return f"{self.name}+{self.offset}"
        if self.starred:
            return f"{self.name}*"
        return self.name


@dataclass(frozen=True)
class TensorRef:
    """A tensor name with its subscript, e.g. ``OIM[i, n, o, r, s]``."""

    name: str
    indices: Tuple[Index, ...]

    @classmethod
    def parse(cls, text: str) -> "TensorRef":
        text = text.strip()
        if "[" not in text:
            # A scalar output such as the dot product's Z.
            return cls(text, ())
        name, _, rest = text.partition("[")
        if not rest.endswith("]"):
            raise ValueError(f"bad tensor reference: {text!r}")
        inner = rest[:-1].strip()
        indices = tuple(Index.parse(part) for part in inner.split(",") if part.strip())
        return cls(name.strip(), indices)

    def index_names(self) -> Tuple[str, ...]:
        return tuple(index.name for index in self.indices)

    def __str__(self) -> str:
        if not self.indices:
            return self.name
        return f"{self.name}[{', '.join(str(i) for i in self.indices)}]"


@dataclass
class MapSpec:
    """The map action: compute + coordinate operator."""

    compute: ComputeOp = PASS_THROUGH
    coordinate: CoordOp = COORD_LEFT

    def describe(self) -> str:
        return f"map {self.compute.symbol}({self.coordinate.symbol})"


@dataclass
class ReduceSpec:
    """The reduce action; ``None`` compute means "no reduction"."""

    compute: Optional[ComputeOp] = None
    coordinate: CoordOp = COORD_RIGHT

    def describe(self) -> str:
        if self.compute is None:
            return ""
        return f"reduce {self.compute.symbol}({self.coordinate.symbol})"


@dataclass
class PopulateSpec:
    """The populate action; ``None`` operator means pass-through.

    ``carried`` names output indices that ride along with each element of
    the starred fiber rather than keying the groups handed to the populate
    coordinate operator.  In Einsum 13, ``r`` is carried: each ``o`` entry
    of a select operation names a different input operand ``r``.
    """

    compute: ComputeOp = PASS_THROUGH
    coordinate: Optional[PopulateOp] = None
    carried: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.coordinate is None:
            return ""
        return f"populate {self.compute.symbol}({self.coordinate.name})"


@dataclass
class Einsum:
    """One extended Einsum: ``output = f(inputs) :: actions [, condition]``.

    ``condition`` optionally restricts the Einsum to a region of the
    iteration space, like Cascade 1's ``n ∉ n_sel`` guards.  It is a
    predicate over the coordinate bindings (a dict index-name -> coord).
    """

    output: TensorRef
    inputs: Tuple[TensorRef, ...]
    map_spec: MapSpec = field(default_factory=MapSpec)
    reduce_spec: ReduceSpec = field(default_factory=ReduceSpec)
    populate_spec: PopulateSpec = field(default_factory=PopulateSpec)
    condition: Optional[Callable[[Dict[str, int]], bool]] = None
    condition_text: str = ""

    def __post_init__(self) -> None:
        self.inputs = tuple(self.inputs)
        if len(self.inputs) not in (1, 2):
            raise ValueError("Einsums with one or two input tensors are supported")

    # ------------------------------------------------------------------
    # Derived index sets
    # ------------------------------------------------------------------
    def input_index_names(self) -> Tuple[str, ...]:
        seen: list[str] = []
        for ref in self.inputs:
            for name in ref.index_names():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def output_index_names(self) -> Tuple[str, ...]:
        return self.output.index_names()

    def reduced_index_names(self) -> Tuple[str, ...]:
        """Indices contracted away by the reduce action."""
        kept = set(self.output_index_names())
        return tuple(n for n in self.input_index_names() if n not in kept)

    def starred_index(self) -> Optional[str]:
        for index in self.output.indices:
            if index.starred:
                return index.name
        return None

    def describe(self) -> str:
        rhs = " . ".join(str(ref) for ref in self.inputs)
        actions = " ".join(
            part
            for part in (
                self.map_spec.describe(),
                self.reduce_spec.describe(),
                self.populate_spec.describe(),
            )
            if part
        )
        text = f"{self.output} = {rhs} :: {actions}"
        if self.condition_text:
            text += f", {self.condition_text}"
        return text

    def __repr__(self) -> str:
        return f"Einsum({self.describe()})"


@dataclass
class Cascade:
    """A sequence of dependent Einsums, optionally with an iterative rank.

    ``iterative_rank`` names the rank looped over with loop-carried
    dependencies (Cascade 1's ``⋄ : i ≡ I``).  Einsums that write
    ``X[i+1, ...]`` feed the next iteration's reads of ``X[i, ...]``.
    """

    einsums: Sequence[Einsum]
    iterative_rank: Optional[str] = None

    def describe(self) -> str:
        lines = [einsum.describe() for einsum in self.einsums]
        if self.iterative_rank:
            lines.append(f"<> : {self.iterative_rank} iterative")
        return "\n".join(lines)

    def tensor_names(self) -> set[str]:
        names: set[str] = set()
        for einsum in self.einsums:
            names.add(einsum.output.name)
            names.update(ref.name for ref in einsum.inputs)
        return names

    def __iter__(self):
        return iter(self.einsums)

    def __len__(self) -> int:
        return len(self.einsums)
