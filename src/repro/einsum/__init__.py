"""Extended General Einsums (EDGE) for RTL simulation (Sections 2.3-2.4, 4).

Public API::

    from repro.einsum import Einsum, Cascade, TensorRef, Index
    from repro.einsum import evaluate, run_cascade
    from repro.einsum import operators
"""

from . import operators
from .einsum import (
    Cascade,
    Einsum,
    Index,
    MapSpec,
    PopulateSpec,
    ReduceSpec,
    TensorRef,
)
from .interpreter import EinsumError, evaluate, run_cascade
from .notation import NotationError, parse_einsum

__all__ = [
    "Cascade",
    "Einsum",
    "EinsumError",
    "Index",
    "MapSpec",
    "PopulateSpec",
    "ReduceSpec",
    "TensorRef",
    "NotationError",
    "evaluate",
    "operators",
    "parse_einsum",
    "run_cascade",
]
