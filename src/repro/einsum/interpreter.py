"""A reference interpreter for extended Einsums.

This module executes :class:`~repro.einsum.einsum.Einsum` objects over
:class:`~repro.tensor.tensor.Tensor` fibertrees.  It is the *golden model*
used to validate the paper's RTL cascade (Cascade 1) against direct dataflow
graph evaluation on small circuits; performance is irrelevant here, fidelity
to the EDGE semantics of Section 2.4 is the point.

Supported semantics:

* one- and two-input map actions with intersection, union, take-left and
  take-right coordinate operators;
* reduce actions folding map temporaries in ascending coordinate order of the
  contracted ranks (the paper's ordering constraint on the ``O`` rank);
* point-wise populate, and fiber-level populate coordinate operators with a
  starred output rank (Appendix A);
* iterative ranks with loop-carried ``i -> i+1`` dependencies (Cascade 1);
* per-Einsum conditions such as ``n ∈ n_sel``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..tensor.tensor import Tensor
from .einsum import Cascade, Einsum, Index, TensorRef
from .operators import ComputeOp, TAKE_LEFT, TAKE_RIGHT


class EinsumError(ValueError):
    """Raised when an Einsum cannot be evaluated by this interpreter."""


def _apply_compute(op: ComputeOp, bindings: Dict[str, int], *values: Any) -> Any:
    if getattr(op, "contextual", False):
        return op.fn(bindings, *values)
    return op(*values)


def _project(ref: TensorRef, bindings: Dict[str, int]) -> Tuple[int, ...]:
    """Coordinates of ``ref`` under the given index bindings.

    A subscript-free reference addresses the single point of a scalar
    tensor, which is stored at coordinate ``(0,)``.
    """
    if not ref.indices:
        return (0,)
    coords = []
    for index in ref.indices:
        coord = bindings[index.name] + index.offset
        coords.append(coord)
    return tuple(coords)


def _iterate_candidates(
    einsum: Einsum, tensors: Dict[str, Tensor]
) -> List[Tuple[Dict[str, int], Tuple[Any, ...]]]:
    """Enumerate map-action points as ``(bindings, operand values)``.

    The input whose subscript covers the union of all input indices drives
    the iteration; the other input is probed at the shared coordinates.  The
    map coordinate operator decides which points survive.
    """
    mode = einsum.map_spec.coordinate.mode
    refs = einsum.inputs
    all_names = einsum.input_index_names()

    # Pick the driving input: its indices must cover every input index.
    driver_pos = None
    for pos, ref in enumerate(refs):
        if set(ref.index_names()) == set(all_names):
            driver_pos = pos
            break
    if driver_pos is None:
        raise EinsumError(
            f"no input of {einsum.describe()!r} covers the full index set "
            f"{all_names}; this interpreter requires one superset input"
        )

    driver = refs[driver_pos]
    driver_tensor = tensors[driver.name]
    candidates: List[Tuple[Dict[str, int], Tuple[Any, ...]]] = []

    for coords, value in driver_tensor.points():
        bindings = dict(zip(driver.index_names(), coords))
        values: List[Any] = [None] * len(refs)
        values[driver_pos] = value
        present = [False] * len(refs)
        present[driver_pos] = True
        for pos, ref in enumerate(refs):
            if pos == driver_pos:
                continue
            probe = tensors[ref.name].get(_project(ref, bindings))
            values[pos] = probe
            present[pos] = probe is not None
        if _point_selected(mode, present, driver_pos, len(refs)):
            candidates.append((bindings, tuple(values)))
    return candidates


def _point_selected(mode: str, present: List[bool], driver_pos: int, n_inputs: int) -> bool:
    if mode == "intersect":
        return all(present)
    if mode == "union":
        return any(present)
    if mode == "left":
        return present[0]
    if mode == "right":
        return present[-1]
    if mode == "all":
        # Dense iteration over the full iteration space is only reachable via
        # the driving tensor here, so "all" degrades to the driver's points.
        return True
    raise EinsumError(f"unknown coordinate operator mode {mode!r}")


def _map_value(einsum: Einsum, bindings: Dict[str, int], values: Tuple[Any, ...]) -> Any:
    op = einsum.map_spec.compute
    # Take-left / take-right compute with a missing side yields no value.
    if op is TAKE_LEFT and values[0] is None:
        return None
    if op is TAKE_RIGHT and values[-1] is None:
        return None
    if op.name == "pass_through":
        live = [v for v in values if v is not None]
        if len(live) != 1:
            raise EinsumError(
                "pass-through map compute needs exactly one live operand; "
                f"got {values} in {einsum.describe()!r}"
            )
        return live[0]
    return _apply_compute(op, bindings, *values)


def evaluate(
    einsum: Einsum,
    tensors: Dict[str, Tensor],
    shapes: Optional[Dict[str, Optional[int]]] = None,
    into: Optional[Tensor] = None,
) -> Tensor:
    """Evaluate one Einsum, returning (or merging into) the output tensor."""
    shapes = shapes or {}
    candidates = _iterate_candidates(einsum, tensors)

    # --- map action -----------------------------------------------------
    map_temporaries: List[Tuple[Dict[str, int], Any]] = []
    for bindings, values in candidates:
        if einsum.condition is not None and not einsum.condition(bindings):
            continue
        result = _map_value(einsum, bindings, values)
        if result is None:
            continue
        map_temporaries.append((bindings, result))

    # --- reduce action ---------------------------------------------------
    out_names = [i.name for i in einsum.output.indices]
    reduced = einsum.reduced_index_names()
    star = einsum.starred_index()
    carried = tuple(einsum.populate_spec.carried or ())

    # Group map temporaries by the output indices (excluding star/carried for
    # fiber-level populate, which groups one level higher).
    group_names = [n for n in out_names if n not in reduced]
    if star is not None:
        group_names = [n for n in group_names if n != star and n not in carried]

    groups: Dict[Tuple[int, ...], List[Tuple[Dict[str, int], Any]]] = {}
    order: List[Tuple[int, ...]] = []
    for bindings, value in map_temporaries:
        key = tuple(bindings[n] for n in group_names)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((bindings, value))

    # Sort members of each group by the contracted coordinates, in subscript
    # appearance order -- this realises the paper's ascending-O ordering
    # constraint for non-commutative reduce operators.
    sort_names = [n for n in einsum.input_index_names() if n in reduced]
    if star is not None:
        sort_names = [star] + [n for n in sort_names if n != star]

    def member_sort_key(member: Tuple[Dict[str, int], Any]) -> Tuple[int, ...]:
        bindings, _ = member
        return tuple(bindings.get(n, 0) for n in sort_names)

    # --- build output ----------------------------------------------------
    if into is not None:
        output = into
    else:
        out_shape = [
            _infer_shape(einsum, tensors, shapes, index) for index in einsum.output.indices
        ]
        output = Tensor(
            [i.name for i in einsum.output.indices] or ("scalar",),
            out_shape or [1],
        )

    for key in order:
        members = sorted(groups[key], key=member_sort_key)
        if star is None:
            value = _reduce_members(einsum, members)
            bindings = members[0][0]
            final = _apply_populate_compute(einsum, bindings, value)
            _write_point(einsum, output, bindings, final)
        else:
            _populate_fiber(einsum, output, members, star)
    return output


def _infer_shape(
    einsum: Einsum,
    tensors: Dict[str, Tensor],
    shapes: Dict[str, Optional[int]],
    index: Index,
) -> Optional[int]:
    """Shape for an output rank: explicit, else inherited from an input."""
    explicit = shapes.get(index.name)
    if explicit is not None:
        return explicit
    for ref in einsum.inputs:
        for pos, ref_index in enumerate(ref.indices):
            if ref_index.name == index.name:
                shape = tensors[ref.name].shape[pos]
                if shape is not None:
                    return shape + index.offset
    return None


def _reduce_members(
    einsum: Einsum, members: List[Tuple[Dict[str, int], Any]]
) -> Any:
    op = einsum.reduce_spec.compute
    if op is None:
        if len(members) != 1:
            raise EinsumError(
                f"{einsum.describe()!r} has no reduce operator but "
                f"{len(members)} map temporaries share an output point"
            )
        return members[0][1]
    # Copy-first semantics: "If no current reduce temporary exists, the map
    # temporary is copied into the reduce temporary" (Section 2.4).
    bindings0, accumulator = members[0]
    for bindings, value in members[1:]:
        accumulator = _apply_compute(op, bindings, accumulator, value)
    return accumulator


def _apply_populate_compute(einsum: Einsum, bindings: Dict[str, int], value: Any) -> Any:
    op = einsum.populate_spec.compute
    if op.name == "pass_through":
        return value
    return _apply_compute(op, bindings, value)


def _write_point(
    einsum: Einsum, output: Tensor, bindings: Dict[str, int], value: Any
) -> None:
    if not einsum.output.indices:
        output.set((0,), value)
        return
    output.set(_project(einsum.output, bindings), value)


def _populate_fiber(
    einsum: Einsum,
    output: Tensor,
    members: List[Tuple[Dict[str, int], Any]],
    star: str,
) -> None:
    """Fiber-level populate: hand the whole starred fiber to the operator."""
    populate_op = einsum.populate_spec.coordinate
    if populate_op is None:
        raise EinsumError(
            f"starred rank {star!r} requires a populate coordinate operator"
        )
    pairs = [(bindings[star], value) for bindings, value in members]
    bindings_by_star: Dict[int, Dict[str, int]] = {
        bindings[star]: bindings for bindings, _ in members
    }
    group_bindings = members[0][0]
    if getattr(populate_op, "contextual", False):
        kept = populate_op.fn(group_bindings, pairs)
    else:
        kept = populate_op(pairs)
    for star_coord, value in kept:
        bindings = bindings_by_star.get(star_coord)
        if bindings is None:
            # The operator synthesised a new coordinate; bind only the star.
            bindings = dict(group_bindings)
            bindings[star] = star_coord
        final = _apply_populate_compute(einsum, bindings, value)
        _write_point(einsum, output, bindings, final)


# ----------------------------------------------------------------------
# Cascade execution
# ----------------------------------------------------------------------
def _slice_rank(tensor: Tensor, rank: str, coord: int) -> Tensor:
    """Drop ``rank`` from ``tensor`` by fixing it at ``coord``."""
    pos = tensor.rank_index(rank)
    remaining = [n for i, n in enumerate(tensor.rank_names) if i != pos]
    shape = [s for i, s in enumerate(tensor.shape) if i != pos]
    result = Tensor(remaining or ("scalar",), shape or [1])
    for coords, value in tensor.points():
        if coords[pos] != coord:
            continue
        rest = tuple(c for i, c in enumerate(coords) if i != pos)
        result.set(rest or (0,), value)
    return result


def _merge_slice(target: Tensor, rank: str, coord: int, piece: Tensor) -> None:
    """Insert ``piece`` into ``target`` at ``rank = coord``."""
    pos = target.rank_index(rank)
    scalar_piece = piece.rank_names == ("scalar",)
    for coords, value in piece.points():
        full = [] if scalar_piece else list(coords)
        full.insert(pos, coord)
        target.set(tuple(full), value)


def run_cascade(
    cascade: Cascade,
    tensors: Dict[str, Tensor],
    shapes: Optional[Dict[str, Optional[int]]] = None,
    iterations: Optional[int] = None,
) -> Dict[str, Tensor]:
    """Execute a cascade, returning the final tensor environment.

    For an iterative cascade, ``iterations`` (or the shape of the iterative
    rank) bounds the loop; tensors carrying the iterative rank are sliced at
    the current iteration for reads and written back at ``i`` or ``i+1``.
    """
    shapes = dict(shapes or {})
    env = dict(tensors)

    if cascade.iterative_rank is None:
        for einsum in cascade:
            into = env.get(einsum.output.name)
            env[einsum.output.name] = evaluate(einsum, env, shapes, into=into)
        return env

    rank = cascade.iterative_rank
    index_name = rank.lower()
    if iterations is None:
        iterations = shapes.get(index_name)
    if iterations is None:
        raise EinsumError(
            f"iterative cascade needs an iteration count for rank {rank!r}"
        )

    for i in range(iterations):
        step_env: Dict[str, Tensor] = {}
        for einsum in cascade:
            inner_inputs = []
            for ref in einsum.inputs:
                if index_name in ref.index_names():
                    sliced_ref = TensorRef(
                        ref.name,
                        tuple(ix for ix in ref.indices if ix.name != index_name),
                    )
                    source = step_env.get(ref.name)
                    if source is None:
                        source = _slice_rank(env[ref.name], index_name, i)
                        step_env[ref.name] = source
                    inner_inputs.append(sliced_ref)
                else:
                    step_env.setdefault(ref.name, env[ref.name])
                    inner_inputs.append(ref)

            out_ref = einsum.output
            out_offset = 0
            if index_name in out_ref.index_names():
                out_offset = next(
                    ix.offset for ix in out_ref.indices if ix.name == index_name
                )
                out_ref = TensorRef(
                    out_ref.name,
                    tuple(ix for ix in out_ref.indices if ix.name != index_name),
                )

            inner = Einsum(
                output=out_ref,
                inputs=tuple(inner_inputs),
                map_spec=einsum.map_spec,
                reduce_spec=einsum.reduce_spec,
                populate_spec=einsum.populate_spec,
                condition=einsum.condition,
                condition_text=einsum.condition_text,
            )
            name = einsum.output.name
            if index_name in einsum.output.index_names():
                # Evaluate the slice, then merge into the full tensor.
                piece = evaluate(inner, step_env, shapes)
                if name not in env:
                    full_ranks = [ix.name for ix in einsum.output.indices]
                    env[name] = Tensor(
                        full_ranks, [shapes.get(r) for r in full_ranks]
                    )
                _merge_slice(env[name], index_name, i + out_offset, piece)
                # Refresh any same-iteration view of this tensor.
                if out_offset == 0:
                    step_env[name] = _slice_rank(env[name], index_name, i)
            else:
                into = step_env.get(name, env.get(name))
                result = evaluate(inner, step_env, shapes, into=into)
                step_env[name] = result
                env[name] = result
    return env
