"""A small parser for extended-Einsum notation strings.

Lets Einsums be written the way the paper writes them (ASCII-fied)::

    parse_einsum("Z[m] = A[k, m] . B[k] :: map *(^) reduce +(v)")
    parse_einsum("OI[i,n,o,r,s] = LI[i,r] . OIM[i,n,o,r,s] :: map <-(->)")
    parse_einsum("S[i+1] = S[i] . A[i] :: map +(v)")

Operator spellings:

========  =====================  =========================
spelling  meaning                paper notation
========  =====================  =========================
``*``     multiply               ×
``+``     add                    \\+
``-``     subtract               −
``<-``    take-left              ←
``->``    take-right             →
``1``     pass-through           1
``^``     intersection           ∩
``v``     union                  ∪
``ANY``   any (first non-empty)  ANY
========  =====================  =========================
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from .einsum import Einsum, MapSpec, ReduceSpec, TensorRef
from .operators import (
    ADD,
    ANY,
    COORD_ALL,
    COORD_LEFT,
    COORD_RIGHT,
    ComputeOp,
    CoordOp,
    INTERSECT,
    MAX,
    MIN,
    MUL,
    PASS_THROUGH,
    SUB,
    TAKE_LEFT,
    TAKE_RIGHT,
    UNION,
)

_COMPUTE_OPS: Dict[str, ComputeOp] = {
    "*": MUL,
    "x": MUL,
    "+": ADD,
    "-": SUB,
    "max": MAX,
    "min": MIN,
    "<-": TAKE_LEFT,
    "->": TAKE_RIGHT,
    "1": PASS_THROUGH,
    "ANY": ANY,
}

_COORD_OPS: Dict[str, CoordOp] = {
    "^": INTERSECT,
    "v": UNION,
    "<-": COORD_LEFT,
    "->": COORD_RIGHT,
    "1": COORD_ALL,
}

_ACTION_RE = re.compile(
    r"(map|reduce)\s+(?P<compute>[^\s(]+)\s*\(\s*(?P<coord>[^\s)]+)\s*\)"
)


class NotationError(ValueError):
    """Raised for unparseable Einsum notation."""


def _lookup(table: Dict, spelling: str, kind: str):
    try:
        return table[spelling]
    except KeyError:
        raise NotationError(
            f"unknown {kind} operator {spelling!r}; "
            f"choose from {sorted(table)}"
        ) from None


def parse_einsum(text: str) -> Einsum:
    """Parse one extended Einsum from its notation string."""
    if "::" in text:
        equation, _, actions_text = text.partition("::")
    else:
        equation, actions_text = text, ""
    if "=" not in equation:
        raise NotationError(f"missing '=' in {text!r}")
    lhs, _, rhs = equation.partition("=")
    output = TensorRef.parse(lhs)
    input_refs = tuple(
        TensorRef.parse(part) for part in rhs.split(".") if part.strip()
    )
    if not input_refs:
        raise NotationError(f"no input tensors in {text!r}")

    map_spec: Optional[MapSpec] = None
    reduce_spec = ReduceSpec()
    for match in _ACTION_RE.finditer(actions_text):
        action = match.group(1)
        compute = _lookup(_COMPUTE_OPS, match.group("compute"), "compute")
        coordinate = _lookup(_COORD_OPS, match.group("coord"), "coordinate")
        if action == "map":
            map_spec = MapSpec(compute, coordinate)
        else:
            reduce_spec = ReduceSpec(compute, coordinate)

    if map_spec is None:
        # Sensible defaults mirroring traditional Einsums: two inputs
        # intersect-multiply; one input take-left pass-through.
        if len(input_refs) == 2:
            map_spec = MapSpec(MUL, INTERSECT)
        else:
            map_spec = MapSpec(PASS_THROUGH, COORD_LEFT)

    # Traditional-Einsum convenience: if indices are contracted but no
    # reduce action was written, reduce with addition.
    einsum = Einsum(output, input_refs, map_spec, reduce_spec)
    if einsum.reduced_index_names() and reduce_spec.compute is None:
        einsum = Einsum(output, input_refs, map_spec, ReduceSpec(ADD))
    return einsum
