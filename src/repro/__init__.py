"""RTeAAL Sim reproduction: RTL simulation as sparse tensor algebra.

This package reproduces "RTeAAL Sim: Using Tensor Algebra to Represent and
Accelerate RTL Simulation" (ASPLOS 2026).  The quickest entry points::

    from repro import Simulator            # full-cycle RTL simulator
    from repro.designs import get_design   # paper's evaluation designs
    from repro.experiments import main_eval  # regenerate paper figures

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .batch import BatchSimulator
from .shard import ShardedBatchSimulator
from .sim.simulator import Simulator, compile_design

__version__ = "0.1.0"

__all__ = [
    "BatchSimulator",
    "ShardedBatchSimulator",
    "Simulator",
    "compile_design",
    "__version__",
]
