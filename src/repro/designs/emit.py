"""A small builder for emitting FIRRTL source text.

The design generators in this package produce *real FIRRTL* that round-trips
through the frontend (parser -> elaboration -> DFG), exercising the same
path a Chisel-generated design would.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class ModuleBuilder:
    """Accumulates the statements of one FIRRTL module."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._ports: List[str] = []
        self._body: List[str] = []
        self._temp_index = 0

    # ------------------------------------------------------------------
    def input(self, name: str, width: int) -> str:
        self._ports.append(f"    input {name} : UInt<{width}>")
        return name

    def clock(self, name: str = "clock") -> str:
        self._ports.append(f"    input {name} : Clock")
        return name

    def output(self, name: str, width: int) -> str:
        self._ports.append(f"    output {name} : UInt<{width}>")
        return name

    def wire(self, name: str, width: int) -> str:
        self._body.append(f"    wire {name} : UInt<{width}>")
        return name

    def reg(self, name: str, width: int, clock: str = "clock") -> str:
        self._body.append(f"    reg {name} : UInt<{width}>, {clock}")
        return name

    def regreset(
        self, name: str, width: int, reset: str = "reset",
        init: int = 0, clock: str = "clock",
    ) -> str:
        self._body.append(
            f"    regreset {name} : UInt<{width}>, {clock}, {reset}, "
            f"UInt<{width}>({init})"
        )
        return name

    def node(self, expr: str, name: Optional[str] = None) -> str:
        if name is None:
            name = f"_t{self._temp_index}"
            self._temp_index += 1
        self._body.append(f"    node {name} = {expr}")
        return name

    def connect(self, target: str, expr: str) -> None:
        self._body.append(f"    {target} <= {expr}")

    def instance(self, name: str, module: str) -> str:
        self._body.append(f"    inst {name} of {module}")
        return name

    def comment(self, text: str) -> None:
        self._body.append(f"    ; {text}")

    # ------------------------------------------------------------------
    # Expression helpers (pure string combinators)
    # ------------------------------------------------------------------
    @staticmethod
    def lit(value: int, width: int) -> str:
        return f"UInt<{width}>({value})"

    @staticmethod
    def mux(sel: str, high: str, low: str) -> str:
        return f"mux({sel}, {high}, {low})"

    def mux_tree(self, selector: str, values: Sequence[str], sel_width: int) -> str:
        """Select ``values[selector]`` via a chain of eq + mux nodes."""
        expression = values[0]
        for index in range(len(values) - 1, 0, -1):
            condition = self.node(f"eq({selector}, {self.lit(index, sel_width)})")
            expression = self.node(self.mux(condition, values[index], expression))
        return expression

    def render(self) -> str:
        lines = [f"  module {self.name} :"]
        lines.extend(self._ports)
        lines.extend(self._body)
        return "\n".join(lines)


class CircuitBuilder:
    """Accumulates modules into a circuit; the top module shares its name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.modules: List[ModuleBuilder] = []

    def module(self, name: str) -> ModuleBuilder:
        builder = ModuleBuilder(name)
        self.modules.append(builder)
        return builder

    def top(self) -> ModuleBuilder:
        return self.module(self.name)

    def render(self) -> str:
        parts = [f"circuit {self.name} :"]
        parts.extend(module.render() for module in self.modules)
        return "\n".join(parts) + "\n"
