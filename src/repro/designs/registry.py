"""Design registry: the paper's evaluation designs by name.

Names follow the paper's figures: ``rocket-N`` / ``r-N`` (RocketChip-like),
``small-N`` / ``s-N`` (SmallBOOM-like), ``gemmini-8/16/32`` / ``g-D``, and
``sha3``.  :func:`get_design` returns FIRRTL source;
:func:`compile_named_design` returns a cached, fully compiled
:class:`~repro.oim.builder.OimBundle`.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Dict, List, Tuple

from ..firrtl.elaborate import elaborate
from ..firrtl.parser import parse
from ..graph.build import build_dfg
from ..graph.dfg import DataflowGraph
from ..graph.optimize import optimize
from ..oim.builder import OimBundle, build_oim
from .cores import rocket_soc, smallboom_soc
from .gemmini import gemmini_soc
from .sha3 import sha3_soc

_NAME_RE = re.compile(r"^(rocket|r|small|s|gemmini|g|sha3)(?:-(\d+))?$")


def parse_design_name(name: str) -> Tuple[str, int]:
    """Normalise a design name to ``(family, parameter)``."""
    match = _NAME_RE.match(name.strip().lower())
    if not match:
        raise KeyError(
            f"unknown design {name!r}; expected rocket-N, small-N, "
            "gemmini-8/16/32, or sha3"
        )
    family, parameter = match.groups()
    family = {"r": "rocket", "s": "small", "g": "gemmini"}.get(family, family)
    if family == "sha3":
        return "sha3", int(parameter) if parameter else 64
    if parameter is None:
        raise KeyError(f"design {name!r} needs a size suffix (e.g. {name}-1)")
    return family, int(parameter)


def get_design(name: str, scale: float = 1.0) -> str:
    """FIRRTL source for a named design."""
    family, parameter = parse_design_name(name)
    if family == "rocket":
        return rocket_soc(parameter, scale)
    if family == "small":
        return smallboom_soc(parameter, scale)
    if family == "gemmini":
        return gemmini_soc(parameter)
    return sha3_soc(parameter)


@lru_cache(maxsize=128)
def compile_named_design(name: str, scale: float = 1.0) -> OimBundle:
    """Parse, elaborate, build, optimise and OIM-compile a named design."""
    graph = compiled_graph(name, scale)
    return build_oim(graph)


@lru_cache(maxsize=128)
def compiled_graph(name: str, scale: float = 1.0) -> DataflowGraph:
    """The optimised dataflow graph of a named design (cached)."""
    source = get_design(name, scale)
    graph = build_dfg(elaborate(parse(source)))
    optimized, _ = optimize(graph)
    return optimized


def standard_designs() -> List[str]:
    """The design set of the paper's main evaluation (Figure 20)."""
    return [
        "rocket-1", "rocket-4", "rocket-8",
        "small-1", "small-4", "small-8",
        "gemmini-8", "gemmini-16", "gemmini-32",
        "sha3",
    ]
