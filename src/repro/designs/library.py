"""Small library circuits: counters, ALUs, LFSRs, FIFOs, GCD.

These are the unit-test and example workhorses: small enough to simulate
against the reference interpreter for thousands of cycles, varied enough to
exercise every primitive-op class and the optimiser.
"""

from __future__ import annotations

from .emit import CircuitBuilder


def counter(width: int = 8) -> str:
    """A free-running counter with enable and synchronous reset."""
    circuit = CircuitBuilder("Counter")
    m = circuit.top()
    m.clock()
    m.input("reset", 1)
    m.input("enable", 1)
    m.output("count", width)
    m.regreset("value", width, "reset", 0)
    incremented = m.node(f"tail(add(value, UInt<{width}>(1)), 1)")
    m.connect("value", m.mux("enable", incremented, "value"))
    m.connect("count", "value")
    return circuit.render()


def accumulator(width: int = 16) -> str:
    """Accumulates an input each cycle, saturating at the maximum value."""
    circuit = CircuitBuilder("Accumulator")
    m = circuit.top()
    m.clock()
    m.input("reset", 1)
    m.input("in", width)
    m.output("total", width)
    m.output("saturated", 1)
    m.regreset("acc", width, "reset", 0)
    wide_sum = m.node("add(acc, in)", "wide_sum")
    overflow = m.node(f"bits(wide_sum, {width}, {width})", "overflow")
    max_value = m.lit((1 << width) - 1, width)
    narrow = m.node("tail(wide_sum, 1)", "narrow")
    m.connect("acc", m.mux("overflow", max_value, "narrow"))
    m.connect("total", "acc")
    m.connect("saturated", "overflow")
    return circuit.render()


def lfsr(width: int = 16, taps: tuple = (0, 2, 3, 5)) -> str:
    """A Fibonacci LFSR; taps index bits XORed into the new MSB."""
    circuit = CircuitBuilder("Lfsr")
    m = circuit.top()
    m.clock()
    m.input("reset", 1)
    m.output("value", width)
    m.regreset("state", width, "reset", 1)
    feedback = m.node(f"bits(state, {taps[0]}, {taps[0]})")
    for tap in taps[1:]:
        bit = m.node(f"bits(state, {tap}, {tap})")
        feedback = m.node(f"xor({feedback}, {bit})")
    shifted = m.node(f"bits(state, {width - 1}, 1)", "shifted")
    m.connect("state", f"cat({feedback}, shifted)")
    m.connect("value", "state")
    return circuit.render()


#: ALU operation selector values.
ALU_OPS = ("add", "sub", "and", "or", "xor", "lt", "shl_1", "shr_1")


def alu(width: int = 16) -> str:
    """A combinational ALU with 8 operations and a registered output."""
    circuit = CircuitBuilder("Alu")
    m = circuit.top()
    m.clock()
    m.input("reset", 1)
    m.input("a", width)
    m.input("b", width)
    m.input("op", 3)
    m.output("result", width)
    m.output("zero", 1)

    results = [
        m.node(f"tail(add(a, b), 1)", "r_add"),
        m.node(f"tail(sub(a, b), 1)", "r_sub"),
        m.node("and(a, b)", "r_and"),
        m.node("or(a, b)", "r_or"),
        m.node("xor(a, b)", "r_xor"),
        m.node(f"pad(lt(a, b), {width})", "r_lt"),
        m.node("tail(shl(a, 1), 1)", "r_shl"),
        m.node("shr(a, 1)", "r_shr_raw"),
    ]
    # shr narrows; pad back to the ALU width.
    results[7] = m.node(f"pad(r_shr_raw, {width})", "r_shr")
    selected = m.mux_tree("op", results, 3)
    m.regreset("out_reg", width, "reset", 0)
    m.connect("out_reg", selected)
    m.connect("result", "out_reg")
    m.connect("zero", "eq(out_reg, " + m.lit(0, width) + ")")
    return circuit.render()


def shift_fifo(width: int = 8, depth: int = 4) -> str:
    """A shift-register FIFO with valid tracking (no bypass)."""
    circuit = CircuitBuilder("ShiftFifo")
    m = circuit.top()
    m.clock()
    m.input("reset", 1)
    m.input("push", 1)
    m.input("data_in", width)
    m.output("data_out", width)
    m.output("valid_out", 1)
    for stage in range(depth):
        m.regreset(f"data{stage}", width, "reset", 0)
        m.regreset(f"valid{stage}", 1, "reset", 0)
    for stage in range(depth - 1, 0, -1):
        previous = stage - 1
        m.connect(
            f"data{stage}",
            m.mux("push", f"data{previous}", f"data{stage}"),
        )
        m.connect(
            f"valid{stage}",
            m.mux("push", f"valid{previous}", f"valid{stage}"),
        )
    m.connect("data0", m.mux("push", "data_in", "data0"))
    m.connect("valid0", m.mux("push", m.lit(1, 1), "valid0"))
    m.connect("data_out", f"data{depth - 1}")
    m.connect("valid_out", f"valid{depth - 1}")
    return circuit.render()


def gcd(width: int = 16) -> str:
    """The classic load/iterate GCD circuit (Chisel's hello-world)."""
    circuit = CircuitBuilder("Gcd")
    m = circuit.top()
    m.clock()
    m.input("reset", 1)
    m.input("load", 1)
    m.input("a", width)
    m.input("b", width)
    m.output("result", width)
    m.output("done", 1)
    m.regreset("x", width, "reset", 0)
    m.regreset("y", width, "reset", 0)
    x_bigger = m.node("gt(x, y)", "x_bigger")
    x_minus_y = m.node("tail(sub(x, y), 1)", "x_minus_y")
    y_minus_x = m.node("tail(sub(y, x), 1)", "y_minus_x")
    m.connect("x", m.mux("load", "a", m.mux("x_bigger", "x_minus_y", "x")))
    m.connect("y", m.mux("load", "b", m.mux("x_bigger", "y", "y_minus_x")))
    m.connect("result", "x")
    m.connect("done", "eq(y, " + m.lit(0, width) + ")")
    return circuit.render()
