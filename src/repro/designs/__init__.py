"""RTL design generators: cores, Gemmini-like array, SHA3, small library.

Public API::

    from repro.designs import get_design, compile_named_design
    from repro.designs import library
"""

from . import library
from .cores import CoreParams, ROCKET, SMALLBOOM, rocket_soc, smallboom_soc
from .emit import CircuitBuilder, ModuleBuilder
from .gemmini import gemmini_soc
from .registry import (
    compile_named_design,
    compiled_graph,
    get_design,
    parse_design_name,
    standard_designs,
)
from .sha3 import keccak_f_reference, sha3_soc

__all__ = [
    "CircuitBuilder",
    "CoreParams",
    "ModuleBuilder",
    "ROCKET",
    "SMALLBOOM",
    "compile_named_design",
    "compiled_graph",
    "get_design",
    "gemmini_soc",
    "keccak_f_reference",
    "library",
    "parse_design_name",
    "rocket_soc",
    "sha3_soc",
    "smallboom_soc",
    "standard_designs",
]
