"""A real SHA3 (Keccak-f) accelerator datapath (paper's SHA3 design).

The core applies ``rounds_per_cycle`` unrolled Keccak-f rounds to the 5x5
lane state each clock (a classic throughput-oriented accelerator layout,
matching the paper's SHA3 RoCC design).  The iota round constants stream in
from a host-side schedule ROM (``rc0..rc{R-1}`` inputs, driven by the
``sha3-rocc`` workload) -- the datapath itself is almost pure XOR/AND/NOT
logic, which is why the paper's SHA3 favours straight-line simulators
(Section 7.5: Verilator beats the TI kernel on this design).

The design is *functionally real*: the test suite checks full 24-round
permutations against :func:`keccak_f_reference`, a direct software
implementation.

``lane_width`` defaults to 64 (Keccak-f[1600]); smaller widths (e.g. 16)
give a proportionally smaller design -- the standard Keccak-f[25w] family.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from .emit import CircuitBuilder, ModuleBuilder

#: Keccak rho rotation offsets, indexed [x][y].
RHO = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
]

#: Keccak iota round constants (64-bit; truncated for narrower lanes).
ROUND_CONSTANTS = [
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
]

NUM_ROUNDS = 24
DEFAULT_ROUNDS_PER_CYCLE = 4


def _rotl(m: ModuleBuilder, name: str, signal: str, amount: int, width: int) -> str:
    """Emit a left rotation by a constant ``amount`` of a ``width`` lane."""
    amount %= width
    if amount == 0:
        return signal
    low = m.node(f"bits({signal}, {width - amount - 1}, 0)", f"{name}_lo")
    high = m.node(f"bits({signal}, {width - 1}, {width - amount})", f"{name}_hi")
    return m.node(f"cat({low}, {high})", f"{name}_rot")


def _round_logic(
    m: ModuleBuilder, lanes: List[List[str]], rc_signal: str, tag: str, w: int
) -> List[List[str]]:
    """Emit one combinational Keccak-f round; returns the new lane signals."""
    # theta
    parity: List[str] = []
    for x in range(5):
        column = lanes[x][0]
        for y in range(1, 5):
            column = m.node(f"xor({column}, {lanes[x][y]})", f"{tag}c{x}_{y}")
        parity.append(column)
    theta_d: List[str] = []
    for x in range(5):
        rotated = _rotl(m, f"{tag}d{x}", parity[(x + 1) % 5], 1, w)
        theta_d.append(
            m.node(f"xor({parity[(x - 1) % 5]}, {rotated})", f"{tag}d{x}")
        )
    after_theta = [
        [m.node(f"xor({lanes[x][y]}, {theta_d[x]})", f"{tag}t_{x}_{y}")
         for y in range(5)]
        for x in range(5)
    ]
    # rho + pi
    after_pi: List[List[str]] = [[""] * 5 for _ in range(5)]
    for x in range(5):
        for y in range(5):
            rotated = _rotl(m, f"{tag}r_{x}_{y}", after_theta[x][y], RHO[x][y], w)
            after_pi[y][(2 * x + 3 * y) % 5] = rotated
    # chi
    after_chi: List[List[str]] = [[""] * 5 for _ in range(5)]
    for x in range(5):
        for y in range(5):
            inverted = m.node(f"not({after_pi[(x + 1) % 5][y]})", f"{tag}n_{x}_{y}")
            masked = m.node(
                f"and({inverted}, {after_pi[(x + 2) % 5][y]})", f"{tag}m_{x}_{y}"
            )
            after_chi[x][y] = m.node(
                f"xor({after_pi[x][y]}, {masked})", f"{tag}x_{x}_{y}"
            )
    # iota (round constant streamed from the host schedule ROM)
    after_chi[0][0] = m.node(
        f"xor({after_chi[0][0]}, {rc_signal})", f"{tag}iota"
    )
    return after_chi


@lru_cache(maxsize=8)
def sha3_soc(
    lane_width: int = 64, rounds_per_cycle: int = DEFAULT_ROUNDS_PER_CYCLE
) -> str:
    """FIRRTL for a Keccak-f core applying ``rounds_per_cycle`` per clock."""
    if NUM_ROUNDS % rounds_per_cycle != 0:
        raise ValueError(
            f"rounds_per_cycle must divide {NUM_ROUNDS}: {rounds_per_cycle}"
        )
    w = lane_width
    circuit = CircuitBuilder("Sha3Soc")
    m = circuit.top()
    m.clock()
    m.input("reset", 1)
    m.input("start", 1)
    m.input("absorb_lane", w)
    m.input("absorb_idx", 5)
    m.input("absorb_valid", 1)
    for r in range(rounds_per_cycle):
        m.input(f"rc{r}", w)
    m.output("digest", w)
    m.output("done", 1)
    m.output("round_out", 5)

    lanes = [
        [m.regreset(f"s_{x}_{y}", w, "reset", 0) for y in range(5)]
        for x in range(5)
    ]
    m.regreset("round", 5, "reset", 0)
    m.regreset("running", 1, "reset", 0)

    # Unrolled rounds (pure logic; constants come from the rc inputs).
    current = [[lanes[x][y] for y in range(5)] for x in range(5)]
    for r in range(rounds_per_cycle):
        current = _round_logic(m, current, f"rc{r}", f"u{r}_", w)

    # Control: the round counter advances by rounds_per_cycle.
    steps = NUM_ROUNDS // rounds_per_cycle
    m.node("running", "advancing")
    m.node(f"eq(round, UInt<5>({steps - 1}))", "last_step")
    m.node("tail(add(round, UInt<5>(1)), 1)", "next_round")
    m.connect(
        "round",
        m.mux(
            "start",
            m.lit(0, 5),
            m.mux(
                "advancing",
                m.mux("last_step", m.lit(0, 5), "next_round"),
                "round",
            ),
        ),
    )
    m.connect(
        "running",
        m.mux(
            "start",
            m.lit(1, 1),
            m.mux("and(advancing, last_step)", m.lit(0, 1), "running"),
        ),
    )

    for x in range(5):
        for y in range(5):
            # Lane index follows the Keccak convention: idx = x + 5*y.
            # Absorption is mux-free: the lane XORs in absorb_lane gated by
            # a 0/1 multiply (RTL designers' classic mask idiom), keeping
            # the datapath branch-free for downstream compilers.
            m.node(
                f"and(absorb_valid, eq(absorb_idx, UInt<5>({x + 5 * y})))",
                f"ab_{x}_{y}",
            )
            m.node(
                f"tail(mul(absorb_lane, ab_{x}_{y}), 1)", f"abterm_{x}_{y}"
            )
            # Hold-or-advance without a mux, using the same gated-XOR
            # idiom: s' = s ^ (advancing ? (new ^ s) : 0).
            delta = m.node(
                f"xor({current[x][y]}, s_{x}_{y})", f"delta_{x}_{y}"
            )
            gated = m.node(
                f"tail(mul({delta}, advancing), 1)", f"gated_{x}_{y}"
            )
            held = m.node(f"xor(s_{x}_{y}, {gated})", f"hold_{x}_{y}")
            m.connect(f"s_{x}_{y}", f"xor({held}, abterm_{x}_{y})")

    m.connect("digest", "s_0_0")
    m.connect("done", "eq(running, UInt<1>(0))")
    m.connect("round_out", "round")
    return circuit.render()


def round_constants_for_step(
    step: int,
    lane_width: int = 64,
    rounds_per_cycle: int = DEFAULT_ROUNDS_PER_CYCLE,
) -> List[int]:
    """The host-side rc schedule for one advancing cycle (``step`` >= 0)."""
    mask = (1 << lane_width) - 1
    base = (step % (NUM_ROUNDS // rounds_per_cycle)) * rounds_per_cycle
    return [ROUND_CONSTANTS[base + r] & mask for r in range(rounds_per_cycle)]


def keccak_f_reference(state: List[int], lane_width: int = 64) -> List[int]:
    """Software Keccak-f over a 25-lane state (index ``x + 5*y``).

    Used as the golden model for :func:`sha3_soc` in the tests.
    """
    w = lane_width
    mask = (1 << w) - 1
    lanes = [[state[x + 5 * y] for y in range(5)] for x in range(5)]

    def rotl(value: int, amount: int) -> int:
        amount %= w
        if amount == 0:
            return value
        return ((value << amount) | (value >> (w - amount))) & mask

    for round_index in range(NUM_ROUNDS):
        c = [lanes[x][0] ^ lanes[x][1] ^ lanes[x][2] ^ lanes[x][3] ^ lanes[x][4]
             for x in range(5)]
        d = [c[(x - 1) % 5] ^ rotl(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                lanes[x][y] ^= d[x]
        b = [[0] * 5 for _ in range(5)]
        for x in range(5):
            for y in range(5):
                b[y][(2 * x + 3 * y) % 5] = rotl(lanes[x][y], RHO[x][y])
        for x in range(5):
            for y in range(5):
                lanes[x][y] = b[x][y] ^ ((~b[(x + 1) % 5][y] & mask) & b[(x + 2) % 5][y])
        lanes[0][0] ^= ROUND_CONSTANTS[round_index] & mask

    return [lanes[x][y] for y in range(5) for x in range(5)]
