"""Synthetic RISC-V-style core generators: Rocket-like and SmallBOOM-like.

The paper evaluates multi-core RocketChip and SonicBOOM SoCs from Chipyard.
Those designs are not available offline, so these generators emit multi-core
SoCs with the same *structural character*:

* a fetch stage (PC register, increment, branch redirect);
* a decoder slicing instruction fields with ``bits``;
* a register file read through deep mux trees (the paper's mux-chain
  fusion target) and written through per-register enable muxes;
* one or more ALU "ways" (SmallBOOM is wider and deeper than Rocket);
* datapath filler blocks whose long def-use distances generate the
  identity-operation pressure of Table 1;
* a shared uncore with a DMI attachment point (Section 6.2).

Sizes are controlled by :class:`CoreParams`; the defaults target roughly
1/32 of the paper's per-core effectual-op counts so experiments run in
seconds (see DESIGN.md, "Scaling knobs").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from .emit import CircuitBuilder, ModuleBuilder

XLEN = 32


@dataclass(frozen=True)
class CoreParams:
    """Structural parameters of one synthetic core."""

    name: str
    regfile_size: int = 16
    ways: int = 2
    filler_ops: int = 400
    #: Depth multiplier of the filler blocks (BOOM-like cores are deeper).
    filler_depth: int = 4
    #: Early filler values consumed again near the end of the cycle, per
    #: chain.  This is the knob for the identity-op ratio of Table 1: each
    #: tap costs ~(design depth) identity operations.
    late_taps_per_chain: int = 2

    def scaled(self, factor: float) -> "CoreParams":
        """Scale op-count-bearing parameters by ``factor`` (>= 1/64)."""
        return replace(
            self,
            regfile_size=max(4, int(self.regfile_size * factor)),
            filler_ops=max(16, int(self.filler_ops * factor)),
        )


#: Rocket-like in-order core (paper's rocket-N designs, scaled ~1/32).
ROCKET = CoreParams(name="RocketCore", regfile_size=32, ways=2, filler_ops=1000,
                    filler_depth=4, late_taps_per_chain=3)
#: SmallBOOM-like out-of-order core: wider, deeper, bigger regfile.
SMALLBOOM = CoreParams(name="SmallBoomCore", regfile_size=48, ways=4,
                       filler_ops=1600, filler_depth=7, late_taps_per_chain=6)


def _sel_width(count: int) -> int:
    return max(1, (count - 1).bit_length())


def _build_core(circuit: CircuitBuilder, params: CoreParams) -> None:
    m = circuit.module(params.name)
    m.clock()
    m.input("reset", 1)
    m.input("instr", XLEN)
    m.input("dmem_rdata", XLEN)
    m.output("dmem_addr", XLEN)
    m.output("dmem_wdata", XLEN)
    m.output("debug_out", XLEN)

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------
    m.regreset("pc", XLEN, "reset", 0)
    m.node(f"tail(add(pc, UInt<{XLEN}>(4)), 1)", "pc_inc")

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    r = params.regfile_size
    sw = _sel_width(r)
    m.node("bits(instr, 6, 0)", "opcode")
    m.node(f"bits(instr, {7 + sw - 1}, 7)", "rd_idx")
    m.node(f"bits(instr, {15 + sw - 1}, 15)", "rs1_idx")
    m.node(f"bits(instr, {20 + sw - 1}, 20)", "rs2_idx")
    m.node("bits(instr, 31, 20)", "imm12")
    m.node(f"pad(imm12, {XLEN})", "imm")

    # ------------------------------------------------------------------
    # Register file: r registers, two mux-tree read ports, decoded writes
    # ------------------------------------------------------------------
    regs = [m.regreset(f"rf{i}", XLEN, "reset", 0) for i in range(r)]
    m.node(m.mux_tree("rs1_idx", regs, sw), "rs1_val")
    m.node(m.mux_tree("rs2_idx", regs, sw), "rs2_val")

    # ------------------------------------------------------------------
    # Execute: `ways` parallel ALUs with different operand mixes
    # ------------------------------------------------------------------
    way_results = []
    for w in range(params.ways):
        a = "rs1_val" if w % 2 == 0 else "rs2_val"
        b = "imm" if w % 2 == 0 else "rs1_val"
        prefix = f"way{w}"
        adds = m.node(f"tail(add({a}, {b}), 1)", f"{prefix}_add")
        subs = m.node(f"tail(sub({a}, {b}), 1)", f"{prefix}_sub")
        ands = m.node(f"and({a}, {b})", f"{prefix}_and")
        ors = m.node(f"or({a}, {b})", f"{prefix}_or")
        xors = m.node(f"xor({a}, {b})", f"{prefix}_xor")
        slt = m.node(f"pad(lt({a}, {b}), {XLEN})", f"{prefix}_slt")
        fn = m.node(f"bits(instr, {14 + 3}, 12)", f"{prefix}_fn")
        result = m.mux_tree(f"{prefix}_fn", [adds, subs, ands, ors, xors, slt], 3)
        way_results.append(m.node(f"or({result}, UInt<1>(0))", f"{prefix}_res"))

    wb = way_results[0]
    for w, other in enumerate(way_results[1:], start=1):
        wb = m.node(f"xor({wb}, {other})", f"wb{w}")
    m.node(f"or({wb}, UInt<1>(0))", "wb_val")

    # ------------------------------------------------------------------
    # Datapath filler: layered arithmetic with long def-use distances,
    # which is what generates the paper's identity-op pressure (Table 1).
    # ------------------------------------------------------------------
    depth = params.filler_depth
    bases = ["pc", "rs1_val", "rs2_val", "wb_val", "imm"]
    chains = max(1, params.filler_ops // (depth * 3))
    chain_outputs = []
    early_taps = []
    for chain in range(chains):
        # Independent chains of bounded depth: early (layer-0) values are
        # consumed at every chain layer, which is what generates identity
        # pressure without making the whole design serially deep.
        salt = (chain * 2654435761 + 0x9E3779B9) % (1 << XLEN)
        value = m.node(
            f"xor({bases[chain % len(bases)]}, {m.lit(salt, XLEN)})",
            f"f{chain}_seed",
        )
        early = bases[(chain + 1) % len(bases)]
        rotate = chain % 8 + 1
        for d in range(depth):
            mixed = m.node(
                f"tail(add({value}, {early}), 1)", f"f{chain}_{d}_a"
            )
            rotated = m.node(
                f"cat(bits({mixed}, {rotate - 1}, 0), bits({mixed}, {XLEN - 1}, {rotate}))",
                f"f{chain}_{d}_r",
            )
            sel = m.node(f"bits({mixed}, {d % XLEN}, {d % XLEN})", f"f{chain}_{d}_s")
            blended = m.node(
                m.mux(sel, f"xor({rotated}, {early})", mixed), f"f{chain}_{d}_m"
            )
            value = m.node(
                m.mux(f"bits({rotated}, 0, 0)", blended, rotated), f"f{chain}_{d}_x"
            )
            if d < params.late_taps_per_chain:
                early_taps.append(mixed)
                early_taps.append(rotated)
        chain_outputs.append(value)

    def xor_tree(values):
        while len(values) > 1:
            next_level = []
            for index in range(0, len(values) - 1, 2):
                next_level.append(
                    m.node(f"xor({values[index]}, {values[index + 1]})")
                )
            if len(values) % 2:
                next_level.append(values[-1])
            values = next_level
        return values[0]

    combined = m.node(f"or({xor_tree(chain_outputs)}, UInt<1>(0))", "filler_mix")

    # Late-consumption sweep: revisit early intermediate values after the
    # deep combine, in several sequential waves so each wave's taps are
    # consumed ever later in the cycle (long def-use distances -> identity
    # pressure, Table 1).
    mix = combined
    waves = 4
    if early_taps:
        per_wave = max(1, (len(early_taps) + waves - 1) // waves)
        for wave_start in range(0, len(early_taps), per_wave):
            wave = early_taps[wave_start:wave_start + per_wave]
            late = [m.node(f"xor({mix}, {tap})") for tap in wave]
            mix = xor_tree(late)
    m.node(f"or({mix}, UInt<1>(0))", "filler_val")

    # ------------------------------------------------------------------
    # Writeback: decoded register-file write
    # ------------------------------------------------------------------
    wen = m.node("neq(opcode, UInt<7>(0))", "wen")
    wdata = m.node("xor(wb_val, filler_val)", "wdata")
    for i in range(r):
        hit = m.node(f"and(wen, eq(rd_idx, {m.lit(i, sw)}))", f"whit{i}")
        m.connect(f"rf{i}", m.mux(f"whit{i}", "wdata", f"rf{i}"))

    # ------------------------------------------------------------------
    # Memory + branch + debug
    # ------------------------------------------------------------------
    m.node("tail(add(rs1_val, imm), 1)", "mem_addr")
    m.regreset("load_buf", XLEN, "reset", 0)
    m.connect("load_buf", "dmem_rdata")
    taken = m.node("eq(bits(instr, 6, 0), UInt<7>(99))", "taken")
    target = m.node("tail(add(pc, imm), 1)", "target")
    m.connect("pc", m.mux("taken", "target", "pc_inc"))
    m.connect("dmem_addr", "mem_addr")
    m.connect("dmem_wdata", "rs2_val")
    m.connect("debug_out", "xor(xor(pc, wdata), load_buf)")


def _build_dmi_block(m: ModuleBuilder) -> str:
    """A small DTM: 4 data registers addressed over the DMI (Section 6.2)."""
    m.input("dmi_req_valid", 1)
    m.input("dmi_req_write", 1)
    m.input("dmi_req_addr", 8)
    m.input("dmi_req_data", XLEN)
    m.output("dmi_resp_valid", 1)
    m.output("dmi_resp_data", XLEN)

    for i in range(4):
        m.regreset(f"dtm{i}", XLEN, "reset", 0)
    m.node("bits(dmi_req_addr, 1, 0)", "dtm_sel")
    for i in range(4):
        hit = m.node(
            f"and(and(dmi_req_valid, dmi_req_write), eq(dtm_sel, {m.lit(i, 2)}))",
            f"dtm_hit{i}",
        )
        m.connect(f"dtm{i}", m.mux(f"dtm_hit{i}", "dmi_req_data", f"dtm{i}"))
    read_value = m.mux_tree("dtm_sel", [f"dtm{i}" for i in range(4)], 2)
    m.regreset("dmi_resp_valid_r", 1, "reset", 0)
    m.regreset("dmi_resp_data_r", XLEN, "reset", 0)
    m.connect("dmi_resp_valid_r", "dmi_req_valid")
    m.connect("dmi_resp_data_r", read_value)
    m.connect("dmi_resp_valid", "dmi_resp_valid_r")
    m.connect("dmi_resp_data", "dmi_resp_data_r")
    return "dtm0"


def _build_soc(kind_name: str, params: CoreParams, cores: int) -> str:
    circuit = CircuitBuilder(kind_name)
    _build_core(circuit, params)

    top = circuit.top()
    top.clock()
    top.input("reset", 1)
    top.input("instr", XLEN)
    top.input("mem_rdata", XLEN)
    top.output("out", XLEN)
    dtm0 = _build_dmi_block(top)

    debug_signals = []
    for c in range(cores):
        top.instance(f"core{c}", params.name)
        top.connect(f"core{c}.clock", "clock")
        top.connect(f"core{c}.reset", "reset")
        # Per-core distinct instruction/data streams (also defeats
        # cross-instance CSE, as distinct cores would in a real SoC).
        salt = top.node(f"xor(instr, {top.lit(c * 2654435761 % (1 << XLEN), XLEN)})")
        top.connect(f"core{c}.instr", f"xor({salt}, {dtm0})")
        top.connect(f"core{c}.dmem_rdata", f"xor(mem_rdata, {top.lit(c + 1, XLEN)})")
        debug_signals.append(f"core{c}.debug_out")

    combined = debug_signals[0]
    for signal in debug_signals[1:]:
        combined = top.node(f"xor({combined}, {signal})")
    top.connect("out", f"or({combined}, UInt<1>(0))")
    return circuit.render()


@lru_cache(maxsize=64)
def rocket_soc(cores: int = 1, scale: float = 1.0) -> str:
    """FIRRTL for a Rocket-like multi-core SoC (paper's rocket-N)."""
    return _build_soc("RocketSoc", ROCKET.scaled(scale), cores)


@lru_cache(maxsize=64)
def smallboom_soc(cores: int = 1, scale: float = 1.0) -> str:
    """FIRRTL for a SmallBOOM-like multi-core SoC (paper's small-N)."""
    return _build_soc("SmallBoomSoc", SMALLBOOM.scaled(scale), cores)
