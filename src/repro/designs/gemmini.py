"""A Gemmini-like systolic array generator (paper's gemmini-8/16/32).

An N x N weight-stationary systolic array: activations flow east, partial
sums flow south, weights are preloaded.  A ``mode`` input switches the PEs
between multiply-accumulate and element-wise add (the paper's
``matrix_add-baremetal`` workload exercises the latter).
"""

from __future__ import annotations

from functools import lru_cache

from .emit import CircuitBuilder

DATA_W = 8
ACC_W = 32


def _build_pe(circuit: CircuitBuilder) -> None:
    m = circuit.module("Pe")
    m.clock()
    m.input("reset", 1)
    m.input("a_in", DATA_W)
    m.input("b_in", ACC_W)
    m.input("w_in", DATA_W)
    m.input("load_w", 1)
    m.input("mode_add", 1)
    m.output("a_out", DATA_W)
    m.output("b_out", ACC_W)

    m.regreset("weight", DATA_W, "reset", 0)
    m.regreset("a_reg", DATA_W, "reset", 0)
    m.regreset("b_reg", ACC_W, "reset", 0)

    m.connect("weight", m.mux("load_w", "w_in", "weight"))
    m.connect("a_reg", "a_in")

    product = m.node("mul(a_in, weight)", "product")
    mac = m.node(f"tail(add(b_in, pad(product, {ACC_W})), 1)", "mac")
    added = m.node(f"tail(add(b_in, pad(a_in, {ACC_W})), 1)", "added")
    m.connect("b_reg", m.mux("mode_add", "added", "mac"))
    m.connect("a_out", "a_reg")
    m.connect("b_out", "b_reg")


@lru_cache(maxsize=16)
def gemmini_soc(dim: int = 8) -> str:
    """FIRRTL for a ``dim`` x ``dim`` systolic array with edge injectors."""
    circuit = CircuitBuilder("GemminiSoc")
    _build_pe(circuit)

    top = circuit.top()
    top.clock()
    top.input("reset", 1)
    top.input("act_in", DATA_W)
    top.input("weight_in", DATA_W)
    top.input("load_w", 1)
    top.input("mode_add", 1)
    top.output("result", ACC_W)

    for row in range(dim):
        for col in range(dim):
            top.instance(f"pe_{row}_{col}", "Pe")
            top.connect(f"pe_{row}_{col}.clock", "clock")
            top.connect(f"pe_{row}_{col}.reset", "reset")
            top.connect(f"pe_{row}_{col}.load_w", "load_w")
            top.connect(f"pe_{row}_{col}.mode_add", "mode_add")
            # Distinct weight per PE position (salted) so columns differ.
            salt = (row * dim + col) * 37 % (1 << DATA_W)
            top.connect(
                f"pe_{row}_{col}.w_in",
                f"xor(weight_in, {top.lit(salt, DATA_W)})",
            )

    # Activation injection on the west edge, with a per-row rotation.
    for row in range(dim):
        salt = (row * 73 + 11) % (1 << DATA_W)
        top.connect(
            f"pe_{row}_0.a_in", f"xor(act_in, {top.lit(salt, DATA_W)})"
        )
        top.connect(f"pe_0_{row}.b_in", top.lit(0, ACC_W))

    # Systolic wiring: activations east, partial sums south.
    for row in range(dim):
        for col in range(1, dim):
            top.connect(f"pe_{row}_{col}.a_in", f"pe_{row}_{col - 1}.a_out")
    for row in range(1, dim):
        for col in range(dim):
            top.connect(f"pe_{row}_{col}.b_in", f"pe_{row - 1}_{col}.b_out")

    # Fold the south-edge outputs into one result.
    combined = f"pe_{dim - 1}_0.b_out"
    for col in range(1, dim):
        combined = top.node(f"xor({combined}, pe_{dim - 1}_{col}.b_out)")
    top.connect("result", combined)
    return circuit.render()
