"""One-command pass/fail checks for the reproduction's headline claims.

Each claim is a self-contained function returning a :class:`ClaimVerdict`
with the measured numbers, the threshold applied, and a pass/fail bit --
the machine-checkable statement of what this repo reproduces:

1. **Batch speedup** -- lane-batched simulation at B=64 beats B
   independent scalar runs by a wide margin (the paper's core claim);
2. **Replication overhead** -- replication-capped KL/FM partition
   refinement keeps op replication under 1% (what makes P>1 a net win,
   PR 4);
3. **Warm-start** -- a second process building from a warm artifact
   cache starts decisively faster than a cold elaborate+partition+lower
   pipeline (PR 6);
4. **Differential matrix** -- every registry design agrees bit-exactly
   across the full engine matrix (PR 5).

Budgets: ``tiny`` keeps every claim CI-cheap (seconds each, run on every
push by the ``claims`` job); ``full`` widens cycle counts, seeds and
thresholds for a serious local run.  Thresholds under ``tiny`` are
deliberately conservative -- shared CI runners are noisy, and a flaky
gate is worse than a loose one.

CLI (also exposed as ``claims/claim<N>/run.sh``)::

    PYTHONPATH=src python -m repro.experiments claims --all --budget tiny
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

#: Registry designs cheap enough for the full engine matrix; the rest
#: run the trimmed one (matches tests/test_differential.py).
SMALL_DESIGNS = ("rocket-1", "small-1", "gemmini-8", "sha3")
TRIMMED_MATRIX = ("scalar", "batch-auto", "shard-serial-greedy")


@dataclass
class ClaimVerdict:
    """The machine-readable outcome of one claim check."""

    claim: int
    name: str
    passed: bool
    budget: str
    seconds: float
    #: Measured values and the thresholds they were held against.
    details: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "claim": self.claim,
            "name": self.name,
            "passed": self.passed,
            "budget": self.budget,
            "seconds": round(self.seconds, 3),
            "details": self.details,
        }

    def summary(self) -> str:
        state = "PASS" if self.passed else "FAIL"
        parts = ", ".join(
            f"{key}={value}" for key, value in self.details.items()
        )
        return (
            f"claim {self.claim} [{state}] {self.name} "
            f"({self.budget}, {self.seconds:.1f}s): {parts}"
        )


def _verdict(
    claim: int, name: str, budget: str, started: float,
    passed: bool, **details,
) -> ClaimVerdict:
    return ClaimVerdict(
        claim=claim, name=name, passed=passed, budget=budget,
        seconds=time.perf_counter() - started, details=details,
    )


# ----------------------------------------------------------------------
# Claim 1: batched simulation beats independent scalar runs at B=64
# ----------------------------------------------------------------------
def claim_batch_speedup(budget: str = "tiny") -> ClaimVerdict:
    from ..experiments.batch_throughput import measure

    started = time.perf_counter()
    cycles = 12 if budget == "tiny" else 48
    threshold = 4.0 if budget == "tiny" else 6.0
    row = measure("rocket-1", kernel="PSU", lanes=64, cycles=cycles)
    return _verdict(
        1, "batch-speedup", budget, started,
        passed=row.speedup >= threshold,
        design="rocket-1", lanes=64, cycles=cycles,
        speedup=round(row.speedup, 2), threshold=threshold,
        backend=row.backend,
    )


# ----------------------------------------------------------------------
# Claim 2: refined partitioning replicates < 1% of ops
# ----------------------------------------------------------------------
def claim_replication(budget: str = "tiny") -> ClaimVerdict:
    from ..designs.registry import compiled_graph
    from ..repcut.partition import partition_graph

    started = time.perf_counter()
    cases = [("rocket-1", 2)]
    if budget != "tiny":
        cases += [("rocket-1", 4), ("small-1", 2)]
    threshold = 0.01
    overheads = {}
    worst = 0.0
    for design, partitions in cases:
        result = partition_graph(compiled_graph(design), partitions, "refined")
        overhead = result.replication_overhead
        overheads[f"{design}/P{partitions}"] = round(overhead, 5)
        worst = max(worst, overhead)
    return _verdict(
        2, "refined-replication", budget, started,
        passed=worst < threshold,
        threshold=threshold, worst=round(worst, 5), overheads=overheads,
    )


# ----------------------------------------------------------------------
# Claim 3: warm artifact-cache startup beats cold construction
# ----------------------------------------------------------------------
_BUILD_SCRIPT = """\
import json, sys, time
design, partitions, lanes = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
from repro.designs.registry import get_design
from repro.shard import ShardedBatchSimulator
import repro.serve.artifacts  # noqa: F401  (lazy import kept off the clock)
source = get_design(design)
start = time.perf_counter()
sim = ShardedBatchSimulator(
    source, lanes=lanes, num_partitions=partitions, partitioner="refined",
)
seconds = time.perf_counter() - start
sim.step(1)  # prove the cached build actually simulates
print(json.dumps({"seconds": seconds}))
sim.close()
"""


def _spawn_build(design: str, partitions: int, lanes: int,
                 cache_dir: str) -> float:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [src, env.get("PYTHONPATH", "")] if p
    )
    env["REPRO_CACHE_DIR"] = cache_dir
    out = subprocess.run(
        [sys.executable, "-c", _BUILD_SCRIPT, design, str(partitions),
         str(lanes)],
        capture_output=True, text=True, env=env, check=True,
    )
    return float(json.loads(out.stdout.strip().splitlines()[-1])["seconds"])


def claim_warm_start(budget: str = "tiny") -> ClaimVerdict:
    started = time.perf_counter()
    design = "rocket-1"
    partitions = 2 if budget == "tiny" else 4
    threshold = 1.5 if budget == "tiny" else 2.0
    with tempfile.TemporaryDirectory(prefix="repro-claim3-cache-") as cache:
        cold = _spawn_build(design, partitions, 8, cache)
        warm = _spawn_build(design, partitions, 8, cache)
    speedup = cold / warm if warm > 0 else float("inf")
    return _verdict(
        3, "warm-start", budget, started,
        passed=speedup >= threshold,
        design=design, partitions=partitions,
        cold_seconds=round(cold, 3), warm_seconds=round(warm, 3),
        speedup=round(speedup, 2), threshold=threshold,
    )


# ----------------------------------------------------------------------
# Claim 4: the whole registry agrees across the engine matrix
# ----------------------------------------------------------------------
def claim_differential(budget: str = "tiny") -> ClaimVerdict:
    from ..designs.registry import standard_designs
    from .differential import run_differential_suite, spec_from_name

    started = time.perf_counter()
    cycles = 8 if budget == "tiny" else 16
    seeds = [0] if budget == "tiny" else [0, 1]
    trimmed = [spec_from_name(name) for name in TRIMMED_MATRIX]
    checked = 0
    failures: List[str] = []
    for design in standard_designs():
        engines = None if design in SMALL_DESIGNS else trimmed
        for result in run_differential_suite(
            design, seeds, lanes=2, cycles=cycles, engines=engines
        ):
            checked += 1
            if not result.ok:
                failures.append(result.summary())
    return _verdict(
        4, "differential-matrix", budget, started,
        passed=not failures,
        designs=len(standard_designs()), runs=checked, cycles=cycles,
        failures=failures,
    )


CLAIMS: Dict[int, Callable[[str], ClaimVerdict]] = {
    1: claim_batch_speedup,
    2: claim_replication,
    3: claim_warm_start,
    4: claim_differential,
}


def run_claims(
    numbers: Sequence[int], budget: str = "tiny"
) -> List[ClaimVerdict]:
    verdicts = []
    for number in numbers:
        if number not in CLAIMS:
            raise KeyError(
                f"no claim {number}; available: {sorted(CLAIMS)}"
            )
        verdicts.append(CLAIMS[number](budget))
    return verdicts


# ----------------------------------------------------------------------
# CLI: python -m repro.experiments claims --all --budget tiny
# ----------------------------------------------------------------------
def cli(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments claims",
        description=(
            "One-command pass/fail checks for the reproduction's headline "
            "claims (batch speedup, replication overhead, warm start, "
            "differential matrix)."
        ),
    )
    parser.add_argument("--claim", type=int, default=0,
                        help="run one claim (1..4)")
    parser.add_argument("--all", action="store_true",
                        help="run every claim")
    parser.add_argument("--budget", choices=("tiny", "full"),
                        default=os.environ.get("CLAIM_BUDGET", "tiny"))
    parser.add_argument("--json", default="",
                        help="write the verdict list as JSON to this path")
    args = parser.parse_args(argv)

    if args.all:
        numbers = sorted(CLAIMS)
    elif args.claim:
        numbers = [args.claim]
    else:
        parser.error("pass --claim N or --all")

    verdicts = run_claims(numbers, args.budget)
    for verdict in verdicts:
        print(verdict.summary())
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps([v.as_dict() for v in verdicts], indent=1)
        )
        print(f"verdicts written to {path}")
    failed = [v.claim for v in verdicts if not v.passed]
    if failed:
        print(f"FAILED claims: {failed}")
        return 1
    return 0
