"""Replayable stimulus artifacts: record once, replay on any engine.

A :class:`ReplayArtifact` is a versioned JSON file holding a *dense*
per-lane per-cycle input matrix for one registry design, plus a design
fingerprint (hash of the generated FIRRTL source) and the observable
output signatures of a reference run.  Artifacts are the repo's common
currency for stimulus:

* seeded workloads (:func:`record_seeded`) and hand-driven
  :class:`~repro.sim.Testbench` stimulus (:func:`record_stimulus`)
  flatten to the same dense form;
* :func:`replay` re-runs an artifact on any engine matrix
  (:mod:`repro.verify.differential` names) and diffs the traces, so a
  failure found anywhere reproduces everywhere with one CLI line;
* the coverage-guided fuzzer (:mod:`repro.verify.fuzz`) mutates the
  dense matrix directly and minimises failures back into artifacts;
* ``tests/corpus/`` ships a starter corpus, and the nightly CI fuzz
  grows its own across runs.

The design fingerprint makes staleness loud: replaying an artifact
recorded against a different generator version fails with a clear
message instead of silently diffing unrelated designs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..designs.registry import compile_named_design, get_design
from ..firrtl.primops import mask
from ..sim import FleetDiff, first_divergence, run_lockstep
from ..workloads.stimulus import BatchWorkload, Workload
from .differential import (
    EngineSpec,
    build_engine,
    observable_outputs,
    spec_from_name,
)

REPLAY_VERSION = 1


def design_fingerprint(design: str) -> str:
    """A short stable hash of the design's generated FIRRTL source."""
    source = get_design(design)
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def _trace_digest(rows: Sequence[Sequence[int]]) -> str:
    """Digest of one signal's lane-major value matrix."""
    canonical = json.dumps([list(map(int, lane)) for lane in rows])
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def default_engines() -> List[str]:
    """The cheap replay matrix: the scalar reference plus one batched
    arm (NumPy when present, the pure-Python fallback otherwise)."""
    from ..batch import HAS_NUMPY

    return ["scalar", "batch-auto" if HAS_NUMPY else "batch-python"]


@dataclass
class ReplayArtifact:
    """A recorded workload: dense inputs + fingerprint + signatures."""

    design: str
    fingerprint: str
    lanes: int
    cycles: int
    #: ``{input: [[per-cycle values] per lane]}`` -- every input poked
    #: every cycle, so replay is order-independent and mutation-friendly.
    inputs: Dict[str, List[List[int]]]
    #: ``{output signal: digest of its lane-major reference trace}``.
    signature: Dict[str, str] = field(default_factory=dict)
    seed: Optional[int] = None
    origin: str = "recorded"
    #: Free-form provenance: engine list, injected-bug spec, notes --
    #: everything :func:`replay` needs to reproduce a failure verbatim.
    meta: Dict[str, object] = field(default_factory=dict)
    version: int = REPLAY_VERSION

    # ------------------------------------------------------------------
    # Stimulus adaptation
    # ------------------------------------------------------------------
    def stimulus(self) -> BatchWorkload:
        """The artifact as a :class:`~repro.workloads.BatchWorkload`.

        Dense values drive each lane; cycles past the recorded horizon
        hold the final value (replay never runs past ``self.cycles``,
        but trailing reads must stay defined).
        """
        def driver(values: List[int]):
            return lambda cycle: values[cycle] if cycle < len(values) else values[-1]

        lanes = []
        for lane in range(self.lanes):
            drivers = {
                name: driver(rows[lane]) for name, rows in self.inputs.items()
            }
            lanes.append(Workload(f"{self.origin}[{lane}]", drivers))
        return BatchWorkload(f"{self.design}-replay", lanes)

    def subset(self, lanes: Sequence[int]) -> "ReplayArtifact":
        """A new artifact of only the selected lanes (same order)."""
        picked = list(lanes)
        if not picked:
            raise ValueError("subset() selected no lanes")
        return ReplayArtifact(
            design=self.design,
            fingerprint=self.fingerprint,
            lanes=len(picked),
            cycles=self.cycles,
            inputs={
                name: [list(rows[lane]) for lane in picked]
                for name, rows in self.inputs.items()
            },
            seed=self.seed,
            origin=f"{self.origin}+lanes{picked}",
            meta=dict(self.meta),
        )

    def truncated(self, cycles: int) -> "ReplayArtifact":
        """A new artifact cut to the first ``cycles`` cycles."""
        if not 0 < cycles <= self.cycles:
            raise ValueError(
                f"cycles must be in 1..{self.cycles}, got {cycles}"
            )
        return ReplayArtifact(
            design=self.design,
            fingerprint=self.fingerprint,
            lanes=self.lanes,
            cycles=cycles,
            inputs={
                name: [list(lane[:cycles]) for lane in rows]
                for name, rows in self.inputs.items()
            },
            seed=self.seed,
            origin=f"{self.origin}+cut{cycles}",
            meta=dict(self.meta),
        )

    def digest(self) -> str:
        """Content digest of the stimulus (corpus file naming/dedup)."""
        canonical = json.dumps(
            {
                "design": self.design,
                "fingerprint": self.fingerprint,
                "inputs": self.inputs,
            },
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "version": self.version,
            "design": self.design,
            "fingerprint": self.fingerprint,
            "lanes": self.lanes,
            "cycles": self.cycles,
            "seed": self.seed,
            "origin": self.origin,
            "inputs": self.inputs,
            "signature": self.signature,
            "meta": self.meta,
        }
        return json.dumps(payload, indent=1, sort_keys=True)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_json(cls, text: str) -> "ReplayArtifact":
        payload = json.loads(text)
        version = payload.get("version")
        if version != REPLAY_VERSION:
            raise ValueError(
                f"replay artifact version {version!r} is not supported "
                f"(this build reads version {REPLAY_VERSION})"
            )
        required = ("design", "fingerprint", "lanes", "cycles", "inputs")
        missing = [key for key in required if key not in payload]
        if missing:
            raise ValueError(f"replay artifact missing keys: {missing}")
        artifact = cls(
            design=payload["design"],
            fingerprint=payload["fingerprint"],
            lanes=int(payload["lanes"]),
            cycles=int(payload["cycles"]),
            inputs={
                name: [[int(v) for v in lane] for lane in rows]
                for name, rows in payload["inputs"].items()
            },
            signature=dict(payload.get("signature", {})),
            seed=payload.get("seed"),
            origin=payload.get("origin", "recorded"),
            meta=dict(payload.get("meta", {})),
        )
        for name, rows in artifact.inputs.items():
            if len(rows) != artifact.lanes:
                raise ValueError(
                    f"input {name!r} has {len(rows)} lanes, artifact "
                    f"declares {artifact.lanes}"
                )
            for lane in rows:
                if len(lane) != artifact.cycles:
                    raise ValueError(
                        f"input {name!r} has a {len(lane)}-cycle lane, "
                        f"artifact declares {artifact.cycles}"
                    )
        return artifact

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ReplayArtifact":
        return cls.from_json(Path(path).read_text())

    def check_fingerprint(self) -> None:
        current = design_fingerprint(self.design)
        if current != self.fingerprint:
            raise ValueError(
                f"artifact was recorded against {self.design!r} fingerprint "
                f"{self.fingerprint}, but the current generator produces "
                f"{current}; re-record the artifact (the design changed)"
            )


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def _input_widths(design: str) -> Dict[str, int]:
    bundle = compile_named_design(design)
    return {
        name: bundle.slot_width[slot]
        for name, slot in bundle.input_slots.items()
    }


def record_seeded(
    design: str,
    lanes: int = 2,
    cycles: int = 16,
    seed: int = 0,
    sign: bool = True,
) -> ReplayArtifact:
    """Record the design's Table-3 workload as a dense artifact.

    Evaluates :func:`repro.workloads.batched_workload_for` drivers
    cycle by cycle -- no simulation needed for the inputs -- then (with
    ``sign=True``) runs the scalar reference once for the observable
    output signatures.
    """
    from ..workloads.stimulus import batched_workload_for

    workload = batched_workload_for(design, lanes, base_seed=seed)
    widths = _input_widths(design)
    inputs: Dict[str, List[List[int]]] = {}
    for name in workload.lanes[0].drivers:
        if name not in widths:
            continue
        inputs[name] = [
            [
                mask(int(workload.lanes[lane].drivers[name](cycle)), widths[name])
                for cycle in range(cycles)
            ]
            for lane in range(lanes)
        ]
    artifact = ReplayArtifact(
        design=design,
        fingerprint=design_fingerprint(design),
        lanes=lanes,
        cycles=cycles,
        inputs=inputs,
        seed=seed,
        origin="seeded",
    )
    if sign:
        sign_artifact(artifact)
    return artifact


def record_stimulus(
    design: str,
    stimulus: Dict[str, object],
    cycles: int,
    lanes: int = 1,
    origin: str = "testbench",
    sign: bool = True,
) -> ReplayArtifact:
    """Flatten hand-written :class:`~repro.sim.Testbench`-style stimulus
    (``{input: [values] | callable(cycle)}``) into a dense artifact.

    Per-cycle values may be ints (broadcast across lanes) or lane
    vectors; cycles past a list's end hold its last value (matching
    :meth:`ReplayArtifact.stimulus` replay semantics).  Inputs the
    stimulus does not drive are recorded as constant 0, which is what
    the engines default them to -- replay is exact, not approximate.
    """
    widths = _input_widths(design)
    inputs: Dict[str, List[List[int]]] = {}

    def value_at(spec, cycle: int):
        if callable(spec):
            return spec(cycle)
        if isinstance(spec, int):
            return spec
        if not len(spec):
            return 0
        return spec[cycle] if cycle < len(spec) else spec[-1]

    for name, width in widths.items():
        spec = stimulus.get(name)
        rows: List[List[int]] = [[] for _ in range(lanes)]
        for cycle in range(cycles):
            raw = 0 if spec is None else value_at(spec, cycle)
            if isinstance(raw, (list, tuple)):
                if len(raw) != lanes:
                    raise ValueError(
                        f"stimulus {name!r} cycle {cycle}: lane vector of "
                        f"{len(raw)} values for {lanes} lanes"
                    )
                lane_values = [mask(int(v), width) for v in raw]
            else:
                lane_values = [mask(int(raw), width)] * lanes
            for lane in range(lanes):
                rows[lane].append(lane_values[lane])
        inputs[name] = rows
    artifact = ReplayArtifact(
        design=design,
        fingerprint=design_fingerprint(design),
        lanes=lanes,
        cycles=cycles,
        inputs=inputs,
        origin=origin,
    )
    if sign:
        sign_artifact(artifact)
    return artifact


def sign_artifact(artifact: ReplayArtifact) -> ReplayArtifact:
    """(Re)compute observable output signatures on the scalar reference."""
    from .differential import ScalarFleet

    fleet = ScalarFleet(compile_named_design(artifact.design), artifact.lanes)
    watch = observable_outputs(artifact.design)
    traces = run_lockstep(
        {"scalar": fleet}, artifact.stimulus(), watch, artifact.cycles
    )
    artifact.signature = {
        name: _trace_digest(rows) for name, rows in traces["scalar"].items()
    }
    return artifact


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class ReplayResult:
    """Outcome of replaying one artifact on an engine matrix."""

    artifact: ReplayArtifact
    engines: List[str]
    divergence: Optional[FleetDiff] = None
    #: Signals whose reference trace digest no longer matches the
    #: recorded signature (empty when signatures were not checked).
    signature_mismatches: List[str] = field(default_factory=list)
    traces: Optional[Dict[str, Dict[str, list]]] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.signature_mismatches

    def summary(self) -> str:
        matrix = ", ".join(self.engines)
        where = (
            f"{self.artifact.design} origin={self.artifact.origin} "
            f"lanes={self.artifact.lanes} cycles={self.artifact.cycles}"
        )
        if self.ok:
            return f"replay OK: {where} [{matrix}]"
        parts = [f"replay FAIL: {where}"]
        if self.divergence is not None:
            parts.append(f"  divergence: {self.divergence}")
        if self.signature_mismatches:
            parts.append(
                "  signature drift on: "
                + ", ".join(self.signature_mismatches)
            )
        return "\n".join(parts)


def _resolve_engines(
    artifact: ReplayArtifact,
    engines: Optional[Sequence[str]],
) -> List[str]:
    if engines:
        return list(engines)
    recorded = artifact.meta.get("engines")
    if isinstance(recorded, list) and recorded:
        return [str(name) for name in recorded]
    return default_engines()


def build_replay_fleet(
    artifact: ReplayArtifact,
    engines: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Engines for an artifact: named matrix arms, plus the artifact's
    recorded injected-bug arm (``meta.inject_bug``) when present."""
    names = _resolve_engines(artifact, engines)
    fleet: Dict[str, object] = {}
    for name in names:
        if name.startswith("buggy"):
            continue  # reconstructed from meta below
        spec: EngineSpec = spec_from_name(name)
        fleet[name] = build_engine(spec, artifact.design, artifact.lanes)
    inject = artifact.meta.get("inject_bug")
    if inject is not None:
        from .fuzz import build_buggy_engine

        name, engine = build_buggy_engine(
            artifact.design, artifact.lanes, int(inject)
        )
        fleet[name] = engine
    return fleet


def replay(
    artifact: ReplayArtifact,
    engines: Optional[Sequence[str]] = None,
    check_fingerprint: bool = True,
    check_signature: bool = True,
    keep_traces: bool = False,
) -> ReplayResult:
    """Re-run an artifact on an engine matrix and diff the traces.

    The reference is ``scalar`` when present (else the first engine);
    with ``check_signature=True`` the reference trace is also diffed
    against the recorded signatures, catching *semantic* drift of the
    simulator itself (all engines agreeing on a new wrong answer).
    """
    if check_fingerprint:
        artifact.check_fingerprint()
    fleet = build_replay_fleet(artifact, engines)
    names = list(fleet)
    reference = "scalar" if "scalar" in fleet else names[0]
    watch = observable_outputs(artifact.design)
    try:
        traces = run_lockstep(
            fleet, artifact.stimulus(), watch, artifact.cycles
        )
    finally:
        for engine in fleet.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    mismatches: List[str] = []
    if check_signature and artifact.signature:
        for name, digest in artifact.signature.items():
            rows = traces[reference].get(name)
            if rows is None:
                continue
            if _trace_digest(rows) != digest:
                mismatches.append(name)
    return ReplayResult(
        artifact=artifact,
        engines=names,
        divergence=first_divergence(traces, reference=reference),
        signature_mismatches=sorted(mismatches),
        traces=traces if keep_traces else None,
    )


def repro_command(path: Union[str, Path]) -> str:
    """The one-line CLI reproducing a saved artifact's replay."""
    return (
        "PYTHONPATH=src python -m repro.experiments replay "
        f"--artifact {path}"
    )


# ----------------------------------------------------------------------
# CLI: python -m repro.experiments replay --artifact path.json
# ----------------------------------------------------------------------
def cli(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments replay",
        description=(
            "Record seeded workloads as replayable stimulus artifacts, "
            "and replay artifacts on any engine matrix."
        ),
    )
    parser.add_argument("--artifact", default="",
                        help="replay this artifact JSON file")
    parser.add_argument("--engines", default="",
                        help="comma-separated engine names (default: the "
                             "artifact's recorded matrix, else "
                             "scalar+batch)")
    parser.add_argument("--no-signature", action="store_true",
                        help="skip the recorded-signature check")
    parser.add_argument("--record", action="store_true",
                        help="record a seeded workload instead of replaying")
    parser.add_argument("--design", default="rocket-1")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--lanes", type=int, default=2)
    parser.add_argument("--cycles", type=int, default=16)
    parser.add_argument("--out", default="",
                        help="output path for --record (default: "
                             "<design>-seeded-<digest>.json)")
    args = parser.parse_args(argv)

    if args.record:
        artifact = record_seeded(
            args.design, lanes=args.lanes, cycles=args.cycles, seed=args.seed
        )
        out = args.out or f"{args.design}-seeded-{artifact.digest()}.json"
        path = artifact.save(out)
        print(f"recorded {path} ({artifact.lanes} lanes x "
              f"{artifact.cycles} cycles, fingerprint {artifact.fingerprint})")
        print(f"  replay: {repro_command(path)}")
        return 0

    if not args.artifact:
        parser.error("--artifact is required (or use --record)")
    artifact = ReplayArtifact.load(args.artifact)
    engines = [name for name in args.engines.split(",") if name] or None
    result = replay(
        artifact, engines=engines, check_signature=not args.no_signature
    )
    print(result.summary())
    if not result.ok:
        print(f"  repro: {repro_command(args.artifact)}")
    return 0 if result.ok else 1
