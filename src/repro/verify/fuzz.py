"""Coverage-guided differential fuzzing over the replay corpus.

AFL's loop, specialised to RTL differential testing: mutate recorded
stimulus artifacts (:mod:`repro.verify.replay`), run each candidate
through an engine fleet in lockstep, keep candidates that light up *new
coverage*, and minimise any trace divergence down to a small replay
artifact plus a one-line repro command.

Coverage is deliberately cheap -- it falls out of the state the OIM walk
already computes, no instrumentation pass needed:

* **register toggles**: per state slot, how many clock edges changed its
  committed value, bucketed by ``log2`` (a counter that toggled 100
  times is the same feature as one that toggled 70, but different from
  one that toggled twice);
* **cone activation**: the set of named signal slots whose settled value
  changed at least once -- a proxy for which combinational cones the
  stimulus actually exercised.

The oracle is the PR-5 differential harness: the scalar reference fleet
against one batched arm (plus, for self-tests and CI canaries, an
engine with a deliberately *injected* bug -- :func:`inject_mask_bug`
narrows one register's primop result mask by a bit, the classic
mis-masked-update silicon bug).

Failures minimise greedily (truncate cycles, drop to the failing lane,
zero stimulus values that don't matter) and persist as replay artifacts
whose ``meta`` records the exact engine matrix and injected bug, so::

    PYTHONPATH=src python -m repro.experiments replay --artifact fail.json

reproduces the divergence bit-for-bit anywhere.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..designs.registry import compile_named_design
from ..oim.builder import OimBundle
from ..sim import FleetDiff, first_divergence, run_lockstep
from .differential import ScalarFleet, build_engine, observable_outputs, spec_from_name
from .replay import (
    ReplayArtifact,
    default_engines,
    design_fingerprint,
    repro_command,
    sign_artifact,
)

#: One coverage feature: ("reg", state_slot, log2 toggle bucket) or
#: ("sig", signal_slot).
Feature = Tuple


# ----------------------------------------------------------------------
# Injected bugs (fuzzer self-test / CI canary)
# ----------------------------------------------------------------------
def _produced_slots(bundle: OimBundle) -> Set[int]:
    return {record.s for layer in bundle.layers for record in layer}


def pick_buggy_commit(
    bundle: OimBundle,
    design: Optional[str] = None,
    probe_cycles: int = 32,
    probe_seeds: Sequence[Optional[int]] = (None, 0, 0xB47C4),
) -> int:
    """The default injection site, chosen so the bug can actually fire.

    A narrowed mask only diverges when the register's MSB would have
    been set, and a corrupted register only *matters* when it reaches an
    observable output -- a static "widest register" pick routinely lands
    on a counter whose top bit never moves, making the canary unfindable
    by construction.  So probe: run the design's workload under a few
    seeds, pre-filter to commits whose register MSB actually toggles
    under every seed, then test-inject candidates (widest first) and
    keep the first whose corruption shows at an observable output for
    *all* probe seeds (falling back to any-seed, then to the widest
    pre-filtered site).  Deterministic -- same bundle, same pick.

    ``design`` is the *registry* name used to look up the probe workload
    (``bundle.design_name`` is the module name, which the workload table
    does not know).
    """
    produced = _produced_slots(bundle)
    candidates = [
        index
        for index, (_state, next_slot) in enumerate(bundle.register_commits)
        if next_slot in produced and bundle.slot_width[next_slot] > 1
    ]
    if not candidates:
        raise ValueError(
            f"design {bundle.design_name!r} has no multi-bit register fed "
            "by a primop; nowhere to inject a mask bug"
        )

    def width_of(index: int) -> int:
        return bundle.slot_width[bundle.register_commits[index][1]]

    candidates.sort(key=lambda index: (-width_of(index), index))
    try:
        from ..sim import Simulator
        from ..workloads.stimulus import workload_for

        workloads = [
            workload_for(design or bundle.design_name, seed=seed)
            for seed in probe_seeds
        ]
    except KeyError:
        # No registered workload for this design name: static fallback.
        return candidates[0]

    outputs = sorted(set(bundle.output_slots) & set(bundle.signal_slots))

    def output_trace(probe_bundle: OimBundle, workload) -> List[List[int]]:
        simulator = Simulator(probe_bundle)
        trace = []
        for cycle in range(probe_cycles):
            workload.apply(simulator, cycle)
            trace.append([simulator.peek(name) for name in outputs])
            simulator.step()
        return trace

    # Pass 1 (cheap): one clean run per seed records the reference output
    # trace and which candidate registers ever set their MSB.
    references = []
    msb_under_all = set(candidates)
    for workload in workloads:
        simulator = Simulator(bundle)
        trace = []
        reached: Set[int] = set()
        for cycle in range(probe_cycles):
            workload.apply(simulator, cycle)
            trace.append([simulator.peek(name) for name in outputs])
            simulator.step()
            values = simulator.values
            for index in candidates:
                state, next_slot = bundle.register_commits[index]
                if values[state] >> (bundle.slot_width[next_slot] - 1):
                    reached.add(index)
        references.append(trace)
        msb_under_all &= reached
    ordered = (
        sorted(msb_under_all, key=lambda index: (-width_of(index), index))
        or candidates
    )

    # Pass 2: test-inject the survivors and check output observability.
    fallback: Optional[int] = None
    for index in ordered[:16]:
        buggy, _ = inject_mask_bug(bundle, index)
        hits = sum(
            output_trace(buggy, workload) != reference
            for workload, reference in zip(workloads, references)
        )
        if hits == len(workloads):
            return index
        if hits and fallback is None:
            fallback = index
    return fallback if fallback is not None else ordered[0]


def inject_mask_bug(
    bundle: OimBundle, index: Optional[int] = None
) -> Tuple[OimBundle, int]:
    """A copy of ``bundle`` with one register's update mask one bit
    narrow -- the op feeding commit ``index`` truncates its result to
    ``width - 1`` bits, silently dropping the MSB.

    Kernels mask every op result by the destination slot's declared
    width, so narrowing ``slot_width[next_slot]`` in the copy is exactly
    a flipped primop mask; the original bundle (and anything sharing its
    layer/commit lists) is untouched.
    """
    if index is None or index < 0:
        index = pick_buggy_commit(bundle)
    if not 0 <= index < len(bundle.register_commits):
        raise IndexError(
            f"commit index {index} out of range for "
            f"{len(bundle.register_commits)} register commits"
        )
    _state, next_slot = bundle.register_commits[index]
    if bundle.slot_width[next_slot] <= 1:
        raise ValueError(
            f"commit {index} updates a 1-bit register; a narrowed mask "
            "would pin it to 0 constantly (pick a multi-bit register)"
        )
    widths = list(bundle.slot_width)
    widths[next_slot] -= 1
    return dataclasses.replace(bundle, slot_width=widths), index


def build_buggy_engine(design: str, lanes: int, index: int = -1):
    """``(name, engine)`` for the injected-bug arm of a fuzz fleet."""
    bundle = compile_named_design(design)
    picked = pick_buggy_commit(bundle, design) if index < 0 else index
    buggy, picked = inject_mask_bug(bundle, picked)
    return f"buggy-mask{picked}", ScalarFleet(buggy, lanes)


# ----------------------------------------------------------------------
# Coverage
# ----------------------------------------------------------------------
class CoverageFleet(ScalarFleet):
    """The scalar reference fleet, instrumented for coverage.

    Substitutes for ``scalar`` in a lockstep fleet: ``step`` additionally
    diffs each lane's register state and settled signal slots against
    the previous cycle, accumulating toggle counts.  Cost is one linear
    pass over (registers + signals) per lane per cycle -- no change to
    simulation semantics, no extra kernel work.
    """

    def __init__(self, design, lanes: int, kernel="PSU") -> None:
        super().__init__(design, lanes, kernel=kernel)
        bundle = self.sims[0].bundle
        self._reg_slots = [state for state, _next in bundle.register_commits]
        self._sig_slots = sorted(set(bundle.signal_slots.values()))
        self.begin_run()

    def begin_run(self) -> None:
        """Zero the per-run counters and re-prime the previous-value
        snapshots from current state (call after ``reset``)."""
        self._reg_toggles: Dict[int, int] = {}
        self._sig_toggled: Set[int] = set()
        self._prev_reg = [
            [sim.values[slot] for slot in self._reg_slots] for sim in self.sims
        ]
        self._prev_sig = [
            [None] * len(self._sig_slots) for _ in self.sims
        ]

    def reset(self) -> None:
        super().reset()
        self.begin_run()

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            for lane, sim in enumerate(self.sims):
                sim._settle()
                values = sim.values
                previous = self._prev_sig[lane]
                for position, slot in enumerate(self._sig_slots):
                    value = values[slot]
                    if previous[position] is None:
                        previous[position] = value
                    elif previous[position] != value:
                        previous[position] = value
                        self._sig_toggled.add(slot)
            super().step(1)
            for lane, sim in enumerate(self.sims):
                values = sim.values
                previous = self._prev_reg[lane]
                for position, slot in enumerate(self._reg_slots):
                    value = values[slot]
                    if previous[position] != value:
                        previous[position] = value
                        self._reg_toggles[slot] = (
                            self._reg_toggles.get(slot, 0) + 1
                        )

    def features(self) -> FrozenSet[Feature]:
        """This run's coverage feature set (bucketed toggles + cones)."""
        features: Set[Feature] = {("sig", slot) for slot in self._sig_toggled}
        for slot, count in self._reg_toggles.items():
            features.add(("reg", slot, count.bit_length()))
        return frozenset(features)


# ----------------------------------------------------------------------
# Mutators
# ----------------------------------------------------------------------
def _clone(artifact: ReplayArtifact) -> ReplayArtifact:
    return ReplayArtifact(
        design=artifact.design,
        fingerprint=artifact.fingerprint,
        lanes=artifact.lanes,
        cycles=artifact.cycles,
        inputs={
            name: [list(lane) for lane in rows]
            for name, rows in artifact.inputs.items()
        },
        seed=artifact.seed,
        origin="fuzz",
        meta=dict(artifact.meta),
    )


def mutate_bitflip(
    artifact: ReplayArtifact, rng: random.Random, widths: Dict[str, int]
) -> None:
    """Flip 1..4 random bits across the input matrix (width-masked)."""
    names = sorted(artifact.inputs)
    for _ in range(rng.randint(1, 4)):
        name = rng.choice(names)
        width = max(1, widths.get(name, 1))
        lane = rng.randrange(artifact.lanes)
        cycle = rng.randrange(artifact.cycles)
        artifact.inputs[name][lane][cycle] ^= 1 << rng.randrange(width)


def mutate_splice(artifact: ReplayArtifact, rng: random.Random) -> None:
    """Copy a cycle window of one lane's whole stimulus onto another lane
    (or, single-lane, onto another time offset) -- AFL's splice, lane-wise."""
    start = rng.randrange(artifact.cycles)
    length = rng.randint(1, max(1, artifact.cycles - start))
    if artifact.lanes > 1:
        source, target = rng.sample(range(artifact.lanes), 2)
        for rows in artifact.inputs.values():
            rows[target][start:start + length] = rows[source][start:start + length]
    else:
        target_start = rng.randrange(artifact.cycles)
        for rows in artifact.inputs.values():
            window = rows[0][start:start + length]
            rows[0][target_start:target_start + len(window)] = window
            del rows[0][artifact.cycles:]


def mutate_jitter(artifact: ReplayArtifact, rng: random.Random) -> None:
    """Shift one lane's whole stimulus by +-1 cycle (edges hold), jittering
    event timing relative to the design's internal state machines."""
    lane = rng.randrange(artifact.lanes)
    if rng.random() < 0.5:
        for rows in artifact.inputs.values():
            row = rows[lane]
            rows[lane] = [row[0]] + row[:-1]
    else:
        for rows in artifact.inputs.values():
            row = rows[lane]
            rows[lane] = row[1:] + [row[-1]]


def mutate(
    artifact: ReplayArtifact, rng: random.Random, widths: Dict[str, int]
) -> ReplayArtifact:
    """One mutated child (bit flips weighted over splice/jitter)."""
    child = _clone(artifact)
    choice = rng.random()
    if choice < 0.6:
        mutate_bitflip(child, rng, widths)
    elif choice < 0.8:
        mutate_splice(child, rng)
    else:
        mutate_jitter(child, rng)
    return child


# ----------------------------------------------------------------------
# Minimisation
# ----------------------------------------------------------------------
def minimise(
    artifact: ReplayArtifact,
    check: Callable[[ReplayArtifact], Optional[FleetDiff]],
    budget: int = 400,
) -> Tuple[ReplayArtifact, FleetDiff]:
    """Shrink a failing artifact while ``check`` still reports a diff.

    Greedy three-phase delta debugging: truncate to just past the
    divergence cycle, drop to the diverging lane alone, then zero every
    stimulus value that isn't needed to keep the failure alive.
    ``budget`` caps the number of ``check`` invocations.
    """
    divergence = check(artifact)
    if divergence is None:
        raise ValueError("minimise() needs a failing artifact")
    checks = 1

    cut = divergence.diff.cycle + 1
    if cut < artifact.cycles and checks < budget:
        candidate = artifact.truncated(cut)
        candidate.origin = artifact.origin
        result = check(candidate)
        checks += 1
        if result is not None:
            artifact, divergence = candidate, result

    lane = divergence.diff.lane
    if lane is not None and artifact.lanes > 1 and checks < budget:
        candidate = artifact.subset([lane])
        candidate.origin = artifact.origin
        result = check(candidate)
        checks += 1
        if result is not None:
            artifact, divergence = candidate, result

    for name in sorted(artifact.inputs):
        for lane_index in range(artifact.lanes):
            row = artifact.inputs[name][lane_index]
            for cycle in range(artifact.cycles):
                if row[cycle] == 0:
                    continue
                if checks >= budget:
                    return artifact, divergence
                saved = row[cycle]
                row[cycle] = 0
                result = check(artifact)
                checks += 1
                if result is None:
                    row[cycle] = saved
                else:
                    divergence = result
    return artifact, divergence


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
@dataclass
class FuzzFailure:
    """A minimised divergence, persisted and reproducible."""

    artifact: ReplayArtifact
    divergence: FleetDiff
    path: Optional[Path] = None

    @property
    def repro(self) -> str:
        if self.path is None:
            return "(artifact not saved; pass out_dir= to persist)"
        return repro_command(self.path)


@dataclass
class FuzzResult:
    """Outcome of one fuzz campaign."""

    design: str
    runs: int = 0
    corpus_size: int = 0
    new_coverage_runs: int = 0
    coverage: int = 0
    failure: Optional[FuzzFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def summary(self) -> str:
        head = (
            f"fuzz {self.design}: {self.runs} runs, corpus {self.corpus_size} "
            f"(+{self.new_coverage_runs} new-coverage), "
            f"{self.coverage} coverage features"
        )
        if self.failure is None:
            return f"{head} -- no divergence"
        diff = self.failure.divergence
        return (
            f"{head}\n"
            f"  FAIL: {diff.simulator!r} diverges from {diff.reference!r} on "
            f"{diff.diff.signal!r} at cycle {diff.diff.cycle}, lane "
            f"{diff.diff.lane}: expected {diff.diff.expected}, got "
            f"{diff.diff.actual}\n"
            f"  minimised to {self.failure.artifact.lanes} lane(s) x "
            f"{self.failure.artifact.cycles} cycle(s)\n"
            f"  repro: {self.failure.repro}"
        )


def load_corpus(
    corpus_dir: Union[str, Path], design: str
) -> List[ReplayArtifact]:
    """Every artifact in ``corpus_dir`` recorded for ``design`` against
    the *current* design fingerprint (stale entries are skipped, not
    fatal: the corpus survives design evolution)."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return []
    fingerprint = design_fingerprint(design)
    corpus = []
    for path in sorted(directory.glob("*.json")):
        try:
            artifact = ReplayArtifact.load(path)
        except (ValueError, KeyError):
            continue
        if artifact.design == design and artifact.fingerprint == fingerprint:
            corpus.append(artifact)
    return corpus


class _FleetCache:
    """Lockstep fleets keyed by lane count, reset between runs."""

    def __init__(
        self,
        design: str,
        engines: Sequence[str],
        inject_bug: Optional[int],
    ) -> None:
        self.design = design
        self.engines = list(engines)
        self.inject_bug = inject_bug
        self._fleets: Dict[int, Dict[str, object]] = {}

    def fleet(self, lanes: int) -> Dict[str, object]:
        cached = self._fleets.get(lanes)
        if cached is not None:
            for engine in cached.values():
                engine.reset()
            cached["scalar"].begin_run()
            return cached
        fleet: Dict[str, object] = {
            "scalar": CoverageFleet(compile_named_design(self.design), lanes)
        }
        for name in self.engines:
            if name == "scalar":
                continue
            fleet[name] = build_engine(spec_from_name(name), self.design, lanes)
        if self.inject_bug is not None:
            name, engine = build_buggy_engine(
                self.design, lanes, self.inject_bug
            )
            fleet[name] = engine
        self._fleets[lanes] = fleet
        return fleet

    def close(self) -> None:
        for fleet in self._fleets.values():
            for engine in fleet.values():
                close = getattr(engine, "close", None)
                if close is not None:
                    close()
        self._fleets.clear()


def fuzz(
    design: str,
    runs: int = 64,
    seed: int = 0,
    lanes: int = 2,
    cycles: int = 16,
    corpus_dir: Optional[Union[str, Path]] = None,
    out_dir: Optional[Union[str, Path]] = None,
    engines: Optional[Sequence[str]] = None,
    inject_bug: Optional[int] = None,
    save_corpus: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzResult:
    """Run one coverage-guided fuzz campaign.

    Seeds from ``corpus_dir`` (recording a fresh seeded workload when the
    corpus is empty or stale), then mutates for ``runs`` iterations:
    every candidate runs the engine fleet in lockstep; candidates adding
    coverage join the corpus (persisted back to ``corpus_dir`` when
    ``save_corpus``); the first divergence is minimised and saved under
    ``out_dir`` with a replay repro command.  ``inject_bug`` adds the
    :func:`inject_mask_bug` canary arm (``-1`` picks the default site).
    """
    rng = random.Random(seed)
    widths = {
        name: compile_named_design(design).slot_width[slot]
        for name, slot in compile_named_design(design).input_slots.items()
    }
    engine_names = list(engines) if engines else default_engines()
    cache = _FleetCache(design, engine_names, inject_bug)
    watch = observable_outputs(design)
    result = FuzzResult(design=design)
    say = log if log is not None else (lambda _msg: None)

    def run_one(artifact: ReplayArtifact):
        fleet = cache.fleet(artifact.lanes)
        traces = run_lockstep(
            fleet, artifact.stimulus(), watch, artifact.cycles
        )
        divergence = first_divergence(traces, reference="scalar")
        return divergence, fleet["scalar"].features()

    def fail(artifact: ReplayArtifact) -> FuzzResult:
        minimised, divergence = minimise(
            artifact, lambda candidate: run_one(candidate)[0]
        )
        minimised.meta["engines"] = list(cache.fleet(minimised.lanes))
        if inject_bug is not None:
            picked = inject_bug
            if picked < 0:
                picked = pick_buggy_commit(compile_named_design(design), design)
            minimised.meta["inject_bug"] = picked
        minimised.meta["divergence"] = (
            f"{divergence.simulator} vs {divergence.reference}: "
            f"{divergence.diff.signal} cycle {divergence.diff.cycle} "
            f"lane {divergence.diff.lane}"
        )
        sign_artifact(minimised)
        result.coverage = len(coverage)
        result.corpus_size = len(corpus)
        path = None
        if out_dir is not None:
            directory = Path(out_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = minimised.save(
                directory / f"fail-{design}-{minimised.digest()}.json"
            )
        result.failure = FuzzFailure(minimised, divergence, path)
        say(result.summary())
        return result

    try:
        corpus = load_corpus(corpus_dir, design) if corpus_dir else []
        if not corpus:
            from .replay import record_seeded

            corpus = [
                record_seeded(design, lanes=lanes, cycles=cycles, seed=seed,
                              sign=False)
            ]
            if corpus_dir is not None and save_corpus:
                directory = Path(corpus_dir)
                directory.mkdir(parents=True, exist_ok=True)
                corpus[0].save(
                    directory / f"seed-{design}-{corpus[0].digest()}.json"
                )
        say(f"fuzz {design}: corpus of {len(corpus)}, {runs} runs")

        coverage: Set[Feature] = set()
        for artifact in corpus:
            divergence, features = run_one(artifact)
            result.runs += 1
            coverage |= features
            if divergence is not None:
                return fail(artifact)

        mutation_runs = 0
        while mutation_runs < runs:
            mutation_runs += 1
            parent = rng.choice(corpus)
            candidate = mutate(parent, rng, widths)
            divergence, features = run_one(candidate)
            result.runs += 1
            if divergence is not None:
                return fail(candidate)
            fresh = features - coverage
            if fresh:
                coverage |= features
                corpus.append(candidate)
                result.new_coverage_runs += 1
                if corpus_dir is not None and save_corpus:
                    directory = Path(corpus_dir)
                    directory.mkdir(parents=True, exist_ok=True)
                    candidate.save(
                        directory / f"fuzz-{design}-{candidate.digest()}.json"
                    )
                say(
                    f"  run {result.runs}: +{len(fresh)} features "
                    f"(corpus {len(corpus)})"
                )
        result.coverage = len(coverage)
        result.corpus_size = len(corpus)
        say(result.summary())
        return result
    finally:
        result.corpus_size = max(result.corpus_size, 0)
        cache.close()


# ----------------------------------------------------------------------
# CLI: python -m repro.experiments fuzz --design rocket-1 --runs 64
# ----------------------------------------------------------------------
def cli(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import os

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fuzz",
        description=(
            "Coverage-guided differential fuzzing: mutate the replay "
            "corpus, run the engine fleet in lockstep, minimise any "
            "divergence to a replayable artifact."
        ),
    )
    parser.add_argument("--design", default="rocket-1")
    parser.add_argument("--all-designs", action="store_true",
                        help="fuzz every standard registry design")
    parser.add_argument("--runs", type=int,
                        default=int(os.environ.get("REPRO_FUZZ_RUNS", "64")))
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("REPRO_FUZZ_BASE_SEED", "0")))
    parser.add_argument("--lanes", type=int, default=2)
    parser.add_argument("--cycles", type=int,
                        default=int(os.environ.get("REPRO_FUZZ_CYCLES", "16")))
    parser.add_argument("--corpus", default="",
                        help="corpus directory (loaded and grown)")
    parser.add_argument("--out", default="fuzz-failures",
                        help="directory for minimised failure artifacts")
    parser.add_argument("--engines", default="",
                        help="comma-separated engine names (default "
                             "scalar + one batched arm)")
    parser.add_argument("--inject-bug", type=int, nargs="?", const=-1,
                        default=None, metavar="COMMIT",
                        help="add the injected mask-bug canary arm "
                             "(optional register-commit index; default "
                             "picks the widest register)")
    args = parser.parse_args(argv)

    if args.all_designs:
        from ..designs.registry import standard_designs

        designs = standard_designs()
    else:
        designs = [args.design]
    engines = [name for name in args.engines.split(",") if name] or None
    failures = 0
    for design in designs:
        result = fuzz(
            design,
            runs=args.runs,
            seed=args.seed,
            lanes=args.lanes,
            cycles=args.cycles,
            corpus_dir=args.corpus or None,
            out_dir=args.out,
            engines=engines,
            inject_bug=args.inject_bug,
            log=print,
        )
        if not result.ok:
            failures += 1
    return 1 if failures else 0
