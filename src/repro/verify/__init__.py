"""Verification: the scenario factory.

Differential engine cross-checking, VCD readback, replayable stimulus
artifacts, coverage-guided fuzzing, and the headline-claim checks.

Public API::

    from repro.verify import run_differential, run_differential_suite
    from repro.verify import engine_matrix, ScalarFleet
    from repro.verify import parse_vcd, read_vcd_trace
    from repro.verify import ReplayArtifact, record_seeded, replay
    from repro.verify import fuzz, inject_mask_bug
    from repro.verify import run_claims
"""

from .claims import ClaimVerdict, run_claims
from .differential import (
    DifferentialResult,
    EngineSpec,
    ScalarFleet,
    build_engine,
    cli,
    engine_matrix,
    run_differential,
    run_differential_suite,
    spec_from_name,
)
from .fuzz import (
    CoverageFleet,
    FuzzResult,
    build_buggy_engine,
    fuzz,
    inject_mask_bug,
    minimise,
    pick_buggy_commit,
)
from .replay import (
    ReplayArtifact,
    ReplayResult,
    design_fingerprint,
    record_seeded,
    record_stimulus,
    replay,
)
from .vcd_read import VcdDocument, VcdVar, parse_vcd, read_vcd_trace

__all__ = [
    "ClaimVerdict",
    "CoverageFleet",
    "DifferentialResult",
    "EngineSpec",
    "FuzzResult",
    "ReplayArtifact",
    "ReplayResult",
    "ScalarFleet",
    "VcdDocument",
    "VcdVar",
    "build_buggy_engine",
    "build_engine",
    "cli",
    "design_fingerprint",
    "engine_matrix",
    "fuzz",
    "inject_mask_bug",
    "minimise",
    "parse_vcd",
    "pick_buggy_commit",
    "read_vcd_trace",
    "record_seeded",
    "record_stimulus",
    "replay",
    "run_claims",
    "run_differential",
    "run_differential_suite",
    "spec_from_name",
]
