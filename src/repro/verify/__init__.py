"""Differential verification: cross-check every simulation engine.

Public API::

    from repro.verify import run_differential, run_differential_suite
    from repro.verify import engine_matrix, ScalarFleet
"""

from .differential import (
    DifferentialResult,
    EngineSpec,
    ScalarFleet,
    build_engine,
    cli,
    engine_matrix,
    run_differential,
    run_differential_suite,
    spec_from_name,
)

__all__ = [
    "DifferentialResult",
    "EngineSpec",
    "ScalarFleet",
    "build_engine",
    "cli",
    "engine_matrix",
    "run_differential",
    "run_differential_suite",
    "spec_from_name",
]
