"""Differential verification harness: the full simulator matrix, one seed.

GSIM and Manticore validate aggressive parallel schedules by trace-level
differential checking against a reference simulator; this module is that
idea for the reproduction's three kernel families.  For a registry
design and a stimulus seed it builds the whole engine matrix --

* ``scalar`` -- B independent scalar :class:`~repro.sim.Simulator` runs
  behind the batched surface (:class:`ScalarFleet`), the reference;
* ``batch-*`` -- :class:`~repro.batch.BatchSimulator` on every value-
  plane backend valid for the design (``u64``, ``u64xN``, ``object``,
  or the pure-Python fallback), plus an SU-codegen arm and -- when the
  design fits u64 planes and a C toolchain is present -- the compiled
  C batch backend (``batch-compiled``/``shard-compiled``);
* ``shard-*`` -- :class:`~repro.shard.ShardedBatchSimulator` across
  executors (serial, optionally process) and partitioner strategies
  (greedy, refined);
* ``batch-activity`` / ``shard-activity`` -- the sparse engines: the
  fiber-driven activity walk with lane compaction, and its sharded
  settle-skipping counterpart, cross-checked on dense stimulus

-- runs them in lockstep on per-lane seeded stimulus
(:func:`repro.workloads.batched_workload_for`), and asserts bit-exact
observed traces via :func:`repro.sim.first_divergence`.  Every result
carries a copy-paste repro command, so a failing fuzz seed reproduces
with one CLI line::

    PYTHONPATH=src python -m repro.experiments differential \\
        --design rocket-1 --seed 7
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..batch import BatchSimulator, HAS_NUMPY
from ..batch.backend import supports_u64
from ..designs.registry import compile_named_design, compiled_graph
from ..lower.cbackend import has_toolchain
from ..shard import ShardedBatchSimulator
from ..sim import FleetDiff, Simulator, first_divergence, run_lockstep
from ..workloads.stimulus import batched_workload_for

DEFAULT_LANES = 2
DEFAULT_CYCLES = 16


class ScalarFleet:
    """B independent scalar simulators behind the batched surface.

    The differential harness's reference engine: ``poke`` scatters a lane
    vector across B :class:`~repro.sim.Simulator` instances, ``peek``
    gathers their values, so lockstep runs and trace comparison treat the
    scalar reference exactly like any rank-1 engine -- and every lane of
    every batched engine is checked against a genuinely independent
    scalar simulation of the same seed.
    """

    def __init__(self, design, lanes: int, kernel="PSU") -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = lanes
        self.sims = [Simulator(design, kernel=kernel) for _ in range(lanes)]

    @property
    def cycle(self) -> int:
        return self.sims[0].cycle

    def poke(self, name: str, value) -> None:
        if isinstance(value, int):
            for sim in self.sims:
                sim.poke(name, value)
            return
        values = list(value)
        if len(values) != self.lanes:
            raise ValueError(
                f"poke({name!r}) got {len(values)} values for "
                f"{self.lanes} lanes"
            )
        for sim, lane_value in zip(self.sims, values):
            sim.poke(name, lane_value)

    def _lane(self, lane: int):
        # Match the batched engines: negative or over-range lanes raise
        # instead of wrapping, so the reference never accepts input the
        # engines under test reject.
        if not 0 <= lane < self.lanes:
            raise IndexError(
                f"lane {lane} out of range for {self.lanes} lanes"
            )
        return self.sims[lane]

    def poke_lane(self, name: str, lane: int, value: int) -> None:
        self._lane(lane).poke(name, value)

    def peek(self, name: str) -> List[int]:
        return [sim.peek(name) for sim in self.sims]

    def peek_lane(self, name: str, lane: int) -> int:
        return self._lane(lane).peek(name)

    def step(self, cycles: int = 1) -> None:
        for sim in self.sims:
            sim.step(cycles)

    def step_domain(self, clock: str) -> None:
        for sim in self.sims:
            sim.step_domain(clock)

    def reset(self) -> None:
        for sim in self.sims:
            sim.reset()

    def run(self, cycles: int) -> None:
        self.step(cycles)

    @property
    def signals(self) -> List[str]:
        return self.sims[0].signals

    @property
    def signal_widths(self) -> Dict[str, int]:
        return self.sims[0].signal_widths

    @property
    def unpoked_inputs(self):
        # Unpoked iff no lane drove it, matching the batched engines'
        # any-poke-defines-the-input convention.
        return set.intersection(*(sim.unpoked_inputs for sim in self.sims))

    def __repr__(self) -> str:
        return f"ScalarFleet(lanes={self.lanes})"


@dataclass(frozen=True)
class EngineSpec:
    """One engine of the differential matrix, constructible on demand."""

    name: str
    kind: str  # "scalar" | "batch" | "shard"
    options: tuple = ()  # sorted (key, value) pairs, hashable

    def option_dict(self) -> Dict[str, object]:
        return dict(self.options)


def _spec(name: str, kind: str, **options) -> EngineSpec:
    return EngineSpec(name, kind, tuple(sorted(options.items())))


def engine_matrix(
    design: str,
    include_process: bool = False,
    full: bool = False,
    kernel: str = "PSU",
) -> List[EngineSpec]:
    """The engine matrix valid for ``design`` on this host.

    Always includes the scalar reference, every available batch backend,
    and the serial sharded engine under both partitioner strategies.
    ``include_process`` adds the process-executor arm (one OS process
    per partition -- real isolation, slower to spawn); ``full`` widens
    the process arm to both partitioner strategies.
    """
    specs = [_spec("scalar", "scalar", kernel=kernel)]
    if HAS_NUMPY:
        design_is_u64 = supports_u64(compile_named_design(design))
        if design_is_u64:
            specs.append(_spec("batch-u64", "batch", backend="u64", kernel=kernel))
        specs.append(_spec("batch-u64xN", "batch", backend="u64xN", kernel=kernel))
        specs.append(_spec("batch-object", "batch", backend="object", kernel=kernel))
        specs.append(_spec("batch-su", "batch", backend="auto", kernel="SU"))
        # The compiled C batch backend rides the matrix wherever it can
        # actually compile: u64-plane designs on hosts with a toolchain.
        # (Elsewhere `kernel="compiled"` falls back to the NumPy walk,
        # which batch-su already covers.)
        if design_is_u64 and has_toolchain():
            specs.append(
                _spec("batch-compiled", "batch", backend="u64",
                      kernel="compiled")
            )
            specs.append(
                _spec("shard-compiled", "shard", executor="serial",
                      partitioner="greedy", kernel="compiled")
            )
    else:
        specs.append(_spec("batch-python", "batch", backend="python", kernel=kernel))
    # Sparse engines: the fiber-driven activity walk must stay bit-exact
    # with the dense engines on *arbitrary* stimulus, not just the
    # low-activity streams it is built for -- so it rides in the default
    # matrix and every fuzz seed cross-checks its skip logic.
    specs.append(
        _spec("batch-activity", "batch", backend="auto",
              kernel=f"activity:{kernel}")
    )
    specs.append(
        _spec("shard-activity", "shard", executor="serial",
              partitioner="greedy", kernel=f"activity:{kernel}")
    )
    specs.append(
        _spec("shard-serial-greedy", "shard", executor="serial",
              partitioner="greedy", kernel=kernel)
    )
    specs.append(
        _spec("shard-serial-refined", "shard", executor="serial",
              partitioner="refined", kernel=kernel)
    )
    if include_process:
        specs.append(
            _spec("shard-process-refined", "shard", executor="process",
                  partitioner="refined", kernel=kernel)
        )
        # Loopback socket workers: the distributed transport must stay
        # bit-exact with the in-process engines; same spawn cost class
        # as the process arm, so it rides behind the same flag.
        specs.append(
            _spec("shard-socket", "shard", executor="socket",
                  partitioner="greedy", kernel=kernel)
        )
        if HAS_NUMPY and supports_u64(compile_named_design(design)):
            # Shared-memory lane planes, explicitly required (auto would
            # silently fall back to pipes and test nothing new here).
            specs.append(
                _spec("shard-shm", "shard", executor="process",
                      partitioner="greedy", shm_planes=True, kernel=kernel)
            )
        if full:
            specs.append(
                _spec("shard-process-greedy", "shard", executor="process",
                      partitioner="greedy", kernel=kernel)
            )
    return specs


def spec_from_name(name: str, kernel: str = "PSU") -> EngineSpec:
    """Rebuild an :class:`EngineSpec` from its systematic name.

    The inverse of the naming used by :func:`engine_matrix` (``scalar``,
    ``batch-<backend>``, ``batch-su``, ``shard-<executor>-<partitioner>``)
    -- what lets a repro command round-trip a custom engine list.
    """
    if name == "scalar":
        return _spec("scalar", "scalar", kernel=kernel)
    if name == "batch-su":
        return _spec("batch-su", "batch", backend="auto", kernel="SU")
    if name == "batch-activity":
        return _spec("batch-activity", "batch", backend="auto",
                     kernel=f"activity:{kernel}")
    if name == "shard-activity":
        return _spec("shard-activity", "shard", executor="serial",
                     partitioner="greedy", kernel=f"activity:{kernel}")
    if name == "batch-compiled":
        return _spec("batch-compiled", "batch", backend="u64",
                     kernel="compiled")
    if name == "shard-compiled":
        return _spec("shard-compiled", "shard", executor="serial",
                     partitioner="greedy", kernel="compiled")
    if name == "shard-socket":
        return _spec("shard-socket", "shard", executor="socket",
                     partitioner="greedy", kernel=kernel)
    if name == "shard-shm":
        return _spec("shard-shm", "shard", executor="process",
                     partitioner="greedy", shm_planes=True, kernel=kernel)
    if name.startswith("batch-"):
        return _spec(name, "batch", backend=name[len("batch-"):], kernel=kernel)
    if name.startswith("shard-"):
        parts = name.split("-")
        if len(parts) == 3:
            _, executor, partitioner = parts
            return _spec(name, "shard", executor=executor,
                         partitioner=partitioner, kernel=kernel)
    raise KeyError(
        f"unknown engine name {name!r}; expected scalar, batch-<backend>, "
        "batch-su, batch-activity, batch-compiled, shard-activity, "
        "shard-compiled, shard-socket, shard-shm, or "
        "shard-<executor>-<partitioner>"
    )


def build_engine(spec: EngineSpec, design: str, lanes: int):
    """Construct one engine of the matrix for a registry design."""
    options = spec.option_dict()
    if spec.kind == "scalar":
        return ScalarFleet(
            compile_named_design(design), lanes, kernel=options.get("kernel", "PSU")
        )
    if spec.kind == "batch":
        return BatchSimulator(compile_named_design(design), lanes=lanes, **options)
    if spec.kind == "shard":
        return ShardedBatchSimulator(
            compiled_graph(design), lanes=lanes, num_partitions=2, **options
        )
    raise ValueError(f"unknown engine kind {spec.kind!r}")


def observable_outputs(design: str) -> List[str]:
    """The design's output signals every engine can peek."""
    bundle = compile_named_design(design)
    outputs = sorted(set(bundle.output_slots) & set(bundle.signal_slots))
    if not outputs:
        raise ValueError(f"design {design!r} has no observable outputs")
    return outputs


@dataclass
class DifferentialResult:
    """Outcome of one (design, seed) pass over the engine matrix."""

    design: str
    seed: int
    lanes: int
    cycles: int
    engines: List[str]
    watch: List[str]
    divergence: Optional[FleetDiff] = None
    include_process: bool = False
    full_matrix: bool = False
    kernel: str = "PSU"
    #: Set for runs over a custom engines= list: the exact matrix, as a
    #: comma-separated ``--engines`` value.
    custom_engines: str = ""

    @property
    def ok(self) -> bool:
        return self.divergence is None

    @property
    def repro_command(self) -> str:
        """A copy-paste CLI line reproducing exactly this run's matrix."""
        command = (
            "PYTHONPATH=src python -m repro.experiments differential "
            f"--design {self.design} --seed {self.seed} "
            f"--lanes {self.lanes} --cycles {self.cycles}"
        )
        if self.kernel != "PSU":
            command += f" --kernel {self.kernel}"
        if self.custom_engines:
            return command + f" --engines {self.custom_engines}"
        if self.include_process:
            command += " --process"
        if self.full_matrix:
            command += " --full"
        return command

    def summary(self) -> str:
        matrix = ", ".join(self.engines)
        if self.ok:
            return (
                f"differential OK: {self.design} seed={self.seed} "
                f"lanes={self.lanes} cycles={self.cycles} [{matrix}]"
            )
        diff = self.divergence
        return (
            f"differential FAIL: {self.design} seed={self.seed}: "
            f"engine {diff.simulator!r} diverges from {diff.reference!r} on "
            f"signal {diff.diff.signal!r} at cycle {diff.diff.cycle}, lane "
            f"{diff.diff.lane}: expected {diff.diff.expected}, got "
            f"{diff.diff.actual}\n  repro: {self.repro_command}"
        )


def run_differential(
    design: str,
    seed: int,
    lanes: int = DEFAULT_LANES,
    cycles: int = DEFAULT_CYCLES,
    engines: Optional[Sequence[EngineSpec]] = None,
    include_process: bool = False,
    full: bool = False,
    kernel: str = "PSU",
) -> DifferentialResult:
    """Build the engine matrix, run one seeded stimulus, diff the traces."""
    results = run_differential_suite(
        design, [seed], lanes=lanes, cycles=cycles, engines=engines,
        include_process=include_process, full=full, kernel=kernel,
    )
    return results[0]


def run_differential_suite(
    design: str,
    seeds: Sequence[int],
    lanes: int = DEFAULT_LANES,
    cycles: int = DEFAULT_CYCLES,
    engines: Optional[Sequence[EngineSpec]] = None,
    include_process: bool = False,
    full: bool = False,
    kernel: str = "PSU",
) -> List[DifferentialResult]:
    """Run several seeds through one engine matrix.

    The matrix is built once and ``reset()`` between seeds (partitioning
    and worker spawn-up are paid once), which is what makes per-design
    multi-seed fuzzing cheap enough for tier-1.
    """
    specs = list(
        engines
        if engines is not None
        else engine_matrix(
            design, include_process=include_process, full=full, kernel=kernel
        )
    )
    if not specs:
        raise ValueError("engines= selected no engines")
    # The scalar fleet is the reference when present; a custom engines=
    # list without one diffs against its first member instead.
    names = [spec.name for spec in specs]
    reference = "scalar" if "scalar" in names else names[0]
    watch = observable_outputs(design)
    # A hand-built engines= list is recorded verbatim (as --engines) so
    # the repro command rebuilds exactly this matrix, not the default.
    custom_engines = ",".join(names) if engines is not None else ""
    process_used = include_process or any("process" in name for name in names)
    full_used = full or "shard-process-greedy" in names
    results: List[DifferentialResult] = []
    # Engines spawn workers, so construction happens inside the
    # try/finally: a later spec's constructor failure still closes the
    # engines already built.
    fleet = {}
    try:
        for spec in specs:
            fleet[spec.name] = build_engine(spec, design, lanes)
        for index, seed in enumerate(seeds):
            if index:
                for engine in fleet.values():
                    engine.reset()
            workload = batched_workload_for(design, lanes, base_seed=seed)
            traces = run_lockstep(fleet, workload, watch, cycles)
            results.append(
                DifferentialResult(
                    design=design,
                    seed=seed,
                    lanes=lanes,
                    cycles=cycles,
                    engines=[spec.name for spec in specs],
                    watch=watch,
                    divergence=first_divergence(traces, reference=reference),
                    include_process=process_used,
                    full_matrix=full_used,
                    kernel=kernel,
                    custom_engines=custom_engines,
                )
            )
    finally:
        for engine in fleet.values():
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    return results


# ----------------------------------------------------------------------
# CLI: python -m repro.experiments differential --design rocket-1 --seed 7
# ----------------------------------------------------------------------
def cli(argv: Optional[Sequence[str]] = None) -> int:
    from ..designs.registry import standard_designs

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments differential",
        description=(
            "Cross-check every simulation engine (scalar, batch backends, "
            "sharded executors/partitioners) on seeded stimulus and report "
            "the first trace divergence."
        ),
    )
    parser.add_argument("--design", default="rocket-1",
                        help="registry design name (default rocket-1)")
    parser.add_argument("--all-designs", action="store_true",
                        help="run every standard registry design")
    parser.add_argument("--seed", type=int, default=0,
                        help="base stimulus seed (default 0)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="number of consecutive seeds (default 1)")
    parser.add_argument("--lanes", type=int, default=DEFAULT_LANES)
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES)
    parser.add_argument("--kernel", default="PSU")
    parser.add_argument("--process", action="store_true",
                        help="include the process-executor sharded arm")
    parser.add_argument("--full", action="store_true",
                        help="widen the process arm to both partitioner "
                             "strategies (implies --process)")
    parser.add_argument("--engines", default="",
                        help="comma-separated engine names (e.g. "
                             "scalar,batch-auto,shard-serial-greedy) "
                             "instead of the default matrix")
    args = parser.parse_args(argv)

    engines = (
        [spec_from_name(name, args.kernel)
         for name in args.engines.split(",") if name]
        if args.engines
        else None
    )
    designs = standard_designs() if args.all_designs else [args.design]
    seeds = list(range(args.seed, args.seed + args.seeds))
    failures = 0
    for design in designs:
        for result in run_differential_suite(
            design, seeds, lanes=args.lanes, cycles=args.cycles,
            engines=engines,
            include_process=args.process or args.full, full=args.full,
            kernel=args.kernel,
        ):
            print(result.summary())
            failures += 0 if result.ok else 1
    if failures:
        print(f"{failures} differential run(s) FAILED")
    return 1 if failures else 0
