"""VCD readback: parse any VCD dump into a ``compare_traces`` trace dict.

The differential harness (PR 5) cross-checks our own engines against
each other; this module is what lets *external* waves join the matrix as
oracles.  :func:`parse_vcd` understands the VCD subset every simulator
emits -- nested ``$scope`` hierarchies, ``$var`` declarations (including
aliased identifier codes), scalar and binary-vector value changes, and
``x``/``z`` unknowns -- and :func:`read_vcd_trace` resamples the change
events into the lane-major ``{signal: [[values] per lane]}`` (or flat
rank-0 ``{signal: [values]}``) dicts :func:`repro.sim.compare_traces`
consumes.

Three dialects are handled:

* our own :class:`~repro.sim.VcdWriter` output -- one timestamp per
  cycle, per-lane ``lane<i>`` scopes in merged documents.  The
  round-trip ``VcdWriter -> parse_vcd -> trace`` is value-identical,
  including the ``x`` dumped for never-poked inputs before the first
  edge (mapped to :data:`repro.sim.UNKNOWN`);
* external simulator dumps (Verilator, ESSENT, commercial tools) --
  real timescales where a *clock signal* toggles inside the dump;
  ``clock=`` samples at that signal's rising edges so wall-clock
  timestamps collapse to cycle indices;
* hand-written fixture dumps in tests.

Unknown (``x``) and high-impedance (``z``) digits anywhere in a value
map the whole sample to :data:`repro.sim.UNKNOWN`, which
:func:`~repro.sim.compare_traces` documents as a non-diff -- external
pre-reset ``x`` never false-positives against our defined 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..sim.testbench import UNKNOWN

#: One value change: the value is an int, a float (``r`` real changes),
#: or the UNKNOWN sentinel.
_Change = Tuple[int, object]


@dataclass(frozen=True)
class VcdVar:
    """One ``$var`` declaration: hierarchical path, width, identifier."""

    name: str
    width: int
    ident: str
    scope: Tuple[str, ...] = ()

    @property
    def path(self) -> str:
        return ".".join((*self.scope, self.name))


@dataclass
class VcdDocument:
    """A parsed VCD: declarations plus per-identifier change streams."""

    timescale: str = "1ns"
    vars: List[VcdVar] = field(default_factory=list)
    #: Ascending (time, value) changes per identifier code.  Aliased
    #: ``$var`` declarations (several names, one code) share a stream.
    changes: Dict[str, List[_Change]] = field(default_factory=dict)
    #: Every distinct timestamp seen, ascending.
    times: List[int] = field(default_factory=list)

    @property
    def end_time(self) -> int:
        return self.times[-1] if self.times else 0

    def var_named(self, name: str) -> VcdVar:
        """Look up a declaration by full path, then by bare name."""
        for var in self.vars:
            if var.path == name:
                return var
        matches = [var for var in self.vars if var.name == name]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(
                f"no signal {name!r} in VCD; signals: "
                f"{sorted(v.path for v in self.vars)[:20]}"
            )
        raise KeyError(
            f"signal name {name!r} is ambiguous; use a full path from "
            f"{sorted(v.path for v in matches)}"
        )

    def values_at(self, ident: str, sample_times: Sequence[int]) -> List[object]:
        """The identifier's value at each sample time (change-hold
        semantics); :data:`UNKNOWN` before its first change."""
        stream = self.changes.get(ident, [])
        values: List[object] = []
        position = 0
        current: object = UNKNOWN
        for time in sample_times:
            while position < len(stream) and stream[position][0] <= time:
                current = stream[position][1]
                position += 1
            values.append(current)
        return values

    def rising_edges(self, clock: str) -> List[int]:
        """Timestamps where ``clock`` changes to 1."""
        ident = self.var_named(clock).ident
        edges: List[int] = []
        previous: object = UNKNOWN
        for time, value in self.changes.get(ident, []):
            if value == 1 and previous != 1:
                edges.append(time)
            previous = value
        return edges


def _parse_value(token: str) -> object:
    """A binary-vector body (after ``b``) to int, or UNKNOWN on x/z."""
    lowered = token.lower()
    if "x" in lowered or "z" in lowered:
        return UNKNOWN
    return int(token, 2)


def parse_vcd(source: Union[str, Path]) -> VcdDocument:
    """Parse VCD text (or a file path) into a :class:`VcdDocument`.

    Supports the common subset: ``$timescale``/``$scope``/``$var``
    declarations, ``$dumpvars``/``$dumpall``/``$dumpon``/``$dumpoff``
    blocks (contents processed as ordinary changes), ``#`` timestamps,
    scalar changes (``0!``, ``1!``, ``x!``, ``z!``), binary vectors
    (``b1010 !``, ``bxxxx !``), and real changes (``r3.14 !``).
    ``$comment`` sections are skipped.
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif "\n" not in source and source.endswith(".vcd") and Path(source).exists():
        text = Path(source).read_text()
    else:
        text = source

    document = VcdDocument()
    scope: List[str] = []
    time = 0
    seen_times = set()
    tokens = text.split()
    index = 0
    in_definitions = True

    def skip_to_end(start: int) -> int:
        while start < len(tokens) and tokens[start] != "$end":
            start += 1
        return start + 1

    while index < len(tokens):
        token = tokens[index]
        if token == "$timescale":
            end = skip_to_end(index + 1)
            document.timescale = " ".join(tokens[index + 1:end - 1])
            index = end
        elif token == "$scope":
            # "$scope module name $end"
            if index + 2 < len(tokens):
                scope.append(tokens[index + 2])
            index = skip_to_end(index + 1)
        elif token == "$upscope":
            if scope:
                scope.pop()
            index = skip_to_end(index + 1)
        elif token == "$var":
            # "$var wire 8 ! name [7:0] $end" -- the optional bit range
            # rides between name and $end.
            end = skip_to_end(index + 1)
            body = tokens[index + 1:end - 1]
            if len(body) < 4:
                raise ValueError(f"malformed $var: {' '.join(body)!r}")
            _, width, ident, name = body[0], body[1], body[2], body[3]
            document.vars.append(
                VcdVar(name, int(width), ident, tuple(scope))
            )
            document.changes.setdefault(ident, [])
            index = end
        elif token in ("$comment", "$date", "$version"):
            index = skip_to_end(index + 1)
        elif token == "$enddefinitions":
            in_definitions = False
            index = skip_to_end(index + 1)
        elif token in ("$dumpvars", "$dumpall", "$dumpon", "$dumpoff", "$end"):
            index += 1
        elif token.startswith("#"):
            time = int(token[1:])
            if time not in seen_times:
                seen_times.add(time)
                document.times.append(time)
            index += 1
        elif token.startswith("b") or token.startswith("B"):
            value = _parse_value(token[1:])
            ident = tokens[index + 1]
            document.changes.setdefault(ident, []).append((time, value))
            index += 2
        elif token.startswith("r") or token.startswith("R"):
            ident = tokens[index + 1]
            document.changes.setdefault(ident, []).append(
                (time, float(token[1:]))
            )
            index += 2
        elif token[0] in "01xXzZ" and len(token) > 1 and not in_definitions:
            digit = token[0].lower()
            value: object = UNKNOWN if digit in "xz" else int(digit)
            document.changes.setdefault(token[1:], []).append((time, value))
            index += 1
        else:
            # Unknown directive or stray token: skip it rather than
            # refusing the whole dump (real tools emit extensions).
            index += 1

    document.times.sort()
    return document


def _lane_of(var: VcdVar) -> Optional[int]:
    """The lane index of a ``lane<i>`` scope component, if any."""
    for component in var.scope:
        if component.startswith("lane") and component[4:].isdigit():
            return int(component[4:])
    return None


def read_vcd_trace(
    source: Union[str, Path, VcdDocument],
    signals: Optional[Sequence[str]] = None,
    clock: Optional[str] = None,
    sample_times: Optional[Sequence[int]] = None,
    cycles: Optional[int] = None,
) -> Dict[str, list]:
    """Resample a VCD into a ``compare_traces``-ready trace dict.

    Parameters
    ----------
    source:
        VCD text, a ``.vcd`` path, or an already-parsed
        :class:`VcdDocument`.
    signals:
        Signal names to extract (bare names or full dotted paths).
        Defaults to every declared signal (minus ``clock``).
    clock:
        For external dumps with real timescales: sample the other
        signals at this signal's *rising edges* instead of at every
        timestamp, collapsing wall-clock time to cycle indices.
    sample_times:
        Explicit sample timestamps (overrides both defaults).
    cycles:
        Pad/truncate to exactly this many samples -- our writer skips
        trailing quiet cycles, so a caller comparing against a C-cycle
        testbench trace passes ``cycles=C`` (pad holds the last value).

    Returns a flat ``{signal: [values]}`` dict, or the lane-major
    ``{signal: [[values] per lane]}`` form when the document declares
    ``lane<i>`` scopes (a merged :class:`~repro.sim.VcdWriter` dump).
    Samples before a signal's first change are :data:`repro.sim.UNKNOWN`.
    """
    document = source if isinstance(source, VcdDocument) else parse_vcd(source)

    if sample_times is None:
        if clock is not None:
            sample_times = document.rising_edges(clock)
        else:
            # One sample per timestamp: our writer's time axis is the
            # cycle index, but quiet cycles are elided -- fill the gaps
            # so sample i is cycle i.
            sample_times = list(range(document.end_time + 1))
    sample_times = list(sample_times)
    if cycles is not None:
        if len(sample_times) >= cycles:
            sample_times = sample_times[:cycles]
        else:
            tail = sample_times[-1] if sample_times else 0
            sample_times = sample_times + [
                tail for _ in range(cycles - len(sample_times))
            ]

    lanes = sorted(
        {_lane_of(var) for var in document.vars} - {None}  # type: ignore[arg-type]
    )
    selected = list(signals) if signals is not None else None

    if not lanes:
        # Keys are bare names where unique (what testbench traces use);
        # duplicated bare names fall back to the full dotted path.
        bare_counts: Dict[str, int] = {}
        for var in document.vars:
            bare_counts[var.name] = bare_counts.get(var.name, 0) + 1
        trace: Dict[str, list] = {}
        for var in document.vars:
            name = var.name if bare_counts[var.name] == 1 else var.path
            if selected is not None:
                if var.path in selected:
                    name = var.path
                elif name not in selected:
                    continue
            if clock is not None and name == clock:
                continue
            trace[name] = document.values_at(var.ident, sample_times)
        if selected is not None:
            missing = set(selected) - set(trace)
            if missing:
                raise KeyError(
                    f"signals not in VCD: {sorted(missing)}; available: "
                    f"{sorted(v.path for v in document.vars)[:20]}"
                )
        return trace

    # Lane-scoped merged document: reconstruct the lane-major dict.
    lane_index = {lane: position for position, lane in enumerate(lanes)}
    lane_trace: Dict[str, List[list]] = {}
    for var in document.vars:
        lane = _lane_of(var)
        if lane is None:
            continue
        if selected is not None and var.name not in selected:
            continue
        rows = lane_trace.setdefault(
            var.name, [[] for _ in lanes]
        )
        rows[lane_index[lane]] = document.values_at(var.ident, sample_times)
    if selected is not None:
        missing = set(selected) - set(lane_trace)
        if missing:
            raise KeyError(f"signals not in VCD lanes: {sorted(missing)}")
    return lane_trace
