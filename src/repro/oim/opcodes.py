"""Operation-type coordinates: the ``N`` rank of the OIM.

Every operation name used by a design gets an integer *opcode* -- its
coordinate along the OIM's ``N`` rank.  Codes are assigned in sorted-name
order so they are deterministic for a given design.  The table records each
op's arity (the occupancy of its ``O`` fiber, derivable from ``n`` alone --
the invariant behind the optimised format of Figure 12b) and its class,
which determines which cascade Einsum evaluates it (Section 4.1):
``unary`` -> ``op_u[n]``, ``reduce`` -> ``op_r[n]``, ``select`` ->
``op_s[n]`` (the ``n_sel`` set of Cascade 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..graph.dfg import DataflowGraph
from ..graph.opsem import OpSemantics, SELECT, get_semantics


@dataclass(frozen=True)
class OpEntry:
    code: int
    name: str
    arity: int
    klass: str
    semantics: OpSemantics


class OpTable:
    """Bidirectional opcode table for one design."""

    def __init__(self, op_names: Iterable[str]) -> None:
        names = sorted(set(op_names))
        self._by_code: List[OpEntry] = []
        self._by_name: Dict[str, OpEntry] = {}
        for code, name in enumerate(names):
            semantics = get_semantics(name)
            entry = OpEntry(code, name, semantics.arity, semantics.klass, semantics)
            self._by_code.append(entry)
            self._by_name[name] = entry

    @classmethod
    def from_graph(cls, graph: DataflowGraph, extra: Sequence[str] = ()) -> "OpTable":
        names = {node.op for node in graph.op_nodes()}
        names.update(extra)
        return cls(names)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_code)

    def __iter__(self):
        return iter(self._by_code)

    def code_of(self, name: str) -> int:
        try:
            return self._by_name[name].code
        except KeyError:
            raise KeyError(f"op {name!r} is not in this design's op table") from None

    def entry(self, code: int) -> OpEntry:
        return self._by_code[code]

    def name_of(self, code: int) -> str:
        return self._by_code[code].name

    def arity_of(self, code: int) -> int:
        return self._by_code[code].arity

    def klass_of(self, code: int) -> str:
        return self._by_code[code].klass

    def select_codes(self) -> frozenset:
        """The ``n_sel`` set of Cascade 1."""
        return frozenset(e.code for e in self._by_code if e.klass == SELECT)

    def names(self) -> Tuple[str, ...]:
        return tuple(e.name for e in self._by_code)

    def to_document(self) -> dict:
        return {"ops": [e.name for e in self._by_code]}

    @classmethod
    def from_document(cls, document: dict) -> "OpTable":
        return cls(document["ops"])

    def __reduce__(self):
        # Entries hold OpSemantics whose evaluator closures cannot be
        # pickled; the table is fully determined by its op-name set, so
        # pickling ships the names and rebuilds the semantics on load.
        # This is what makes OimBundle (and so the artifact cache's
        # "bundle" kind and process-executor payloads) picklable.
        return (OpTable, (self.names(),))
