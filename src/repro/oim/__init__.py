"""OIM construction: opcodes, coordinate assignment, formats, Cascade 1.

Public API::

    from repro.oim import build_oim, OimBundle, lower_oim, oim_format
"""

from .builder import OimBundle, OpRecord, build_oim
from .cascade import build_cascade, cascade_tensors, run_cascade_cycle
from .formats import (
    VARIANTS,
    lower_oim,
    lower_oim_fast,
    occupancy_rules,
    oim_format,
    oim_storage_bytes,
)
from .opcodes import OpEntry, OpTable

__all__ = [
    "OimBundle",
    "OpEntry",
    "OpRecord",
    "OpTable",
    "VARIANTS",
    "build_cascade",
    "build_oim",
    "cascade_tensors",
    "lower_oim",
    "lower_oim_fast",
    "occupancy_rules",
    "oim_format",
    "oim_storage_bytes",
    "run_cascade_cycle",
]
