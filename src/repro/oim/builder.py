"""OIM generation: coordinate assignment and tensor construction (Fig. 14).

The builder turns an (optimised) dataflow graph into an :class:`OimBundle`:

* every value-carrying node -- input, constant, register, operation output
  -- is assigned a persistent *slot*, which serves as both its ``R``
  coordinate (when read) and its ``S`` coordinate (when written).  This is
  exactly the coordinate assignment that makes every identity operation
  have matching source and destination coordinates, allowing them all to be
  elided (Section 4.3);
* the ``OIM`` fibertree over ranks ``[I, S, N, O, R]`` records, per layer
  ``i``, each operation ``s`` with type ``n`` and ordered operands
  ``(o, r)`` (Figure 13a);
* runtime metadata is collected: slot widths, constant initial values,
  input/output slot maps, and the register commit list (the cascade's
  ``i ≡ I`` wrap-around).

``include_identities=True`` materialises the conceptual identity operations
instead (Section 4.2), which the tests use to validate Cascade 1 against the
elided kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.dfg import DataflowGraph
from ..graph.levelize import Levelization, levelize
from ..tensor.tensor import Tensor
from .opcodes import OpTable


@dataclass(frozen=True)
class OpRecord:
    """One operation instance: output slot, opcode, ordered operand slots."""

    s: int
    n: int
    operands: Tuple[int, ...]


@dataclass
class OimBundle:
    """Everything a kernel needs to simulate one design."""

    design_name: str
    op_table: OpTable
    #: Per-layer operation records, ordered by ``s`` within each layer.
    layers: List[List[OpRecord]]
    num_slots: int
    slot_width: List[int]
    #: Slots holding constants, preloaded once: ``(slot, value)``.
    const_slots: List[Tuple[int, int]]
    input_slots: Dict[str, int]
    output_slots: Dict[str, int]
    #: Register commits applied at end of cycle: ``(state_slot, next_slot)``.
    register_commits: List[Tuple[int, int]]
    #: Register initial values: ``(state_slot, init_value)``.
    register_inits: List[Tuple[int, int]]
    #: Named signals observable by waveforms / peek.
    signal_slots: Dict[str, int]
    levelization: Levelization
    #: Maximum operand count across ops (shape of the O rank).
    max_arity: int = 0
    #: Clock-domain name of each commit, parallel to ``register_commits``.
    register_clocks: List[str] = field(default_factory=list)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def num_ops(self) -> int:
        return sum(len(layer) for layer in self.layers)

    def shape(self) -> Dict[str, int]:
        """Rank shapes of the OIM tensor."""
        return {
            "I": self.num_layers,
            "S": self.num_slots,
            "N": len(self.op_table),
            "O": self.max_arity,
            "R": self.num_slots,
        }

    # ------------------------------------------------------------------
    def to_tensor(self, rank_order: Sequence[str] = ("I", "S", "N", "O", "R")) -> Tensor:
        """Materialise the OIM fibertree (Figure 13a).

        The ``O`` rank's shape is left unset: its fibers are dense but
        variable-length (the operation's arity), so a global shape would
        pad them with phantom entries during dense lowering.
        """
        shape_map = self.shape()
        shape_map["O"] = None
        base = Tensor(
            ("I", "S", "N", "O", "R"),
            [shape_map[r] for r in ("I", "S", "N", "O", "R")],
        )
        for i, layer in enumerate(self.layers):
            for record in layer:
                for o, r in enumerate(record.operands):
                    base.set((i, record.s, record.n, o, r), 1)
        if tuple(rank_order) != ("I", "S", "N", "O", "R"):
            return base.swizzle(rank_order)
        return base

    def initial_values(self) -> List[int]:
        """The LI value array at time zero (constants + register inits)."""
        values = [0] * self.num_slots
        for slot, value in self.const_slots:
            values[slot] = value
        for slot, value in self.register_inits:
            values[slot] = value
        return values


def build_oim(
    graph: DataflowGraph,
    include_identities: bool = False,
) -> OimBundle:
    """Assign coordinates and build the OIM for ``graph``."""
    lv = levelize(graph)
    extra_ops = ("ident",) if include_identities else ()
    op_table = OpTable.from_graph(graph, extra=extra_ops)

    # ------------------------------------------------------------------
    # Slot assignment: leaves first (they live in LI from cycle start),
    # then ops in (layer, node-id) order so traversal is concordant.
    # ------------------------------------------------------------------
    slot_of: Dict[int, int] = {}
    slot_width: List[int] = []

    def assign(nid: int, width: int) -> int:
        slot = len(slot_width)
        slot_of[nid] = slot
        slot_width.append(width)
        return slot

    const_slots: List[Tuple[int, int]] = []
    input_slots: Dict[str, int] = {}
    register_inits: List[Tuple[int, int]] = []

    for node in graph.nodes:
        if node.op == "input":
            input_slots[node.name] = assign(node.nid, node.width)
        elif node.op == "const":
            const_slots.append((assign(node.nid, node.width), node.value))
        elif node.op == "reg":
            assign(node.nid, node.width)

    for reg in graph.registers.values():
        register_inits.append((slot_of[reg.state_nid], reg.init_value))

    layers: List[List[OpRecord]] = [[] for _ in range(lv.num_layers)]
    for layer_index, layer_nodes in enumerate(lv.layers):
        for nid in layer_nodes:
            assign(nid, graph.node(nid).width)

    ident_code = op_table.code_of("ident") if include_identities else -1

    # With identities, a value produced in layer p must be copied through
    # layers p+1 .. c-1 to reach its farthest consumer in layer c.  The
    # copies reuse the value's own slot (same source and destination
    # coordinate), which is what makes them elidable.
    if include_identities:
        farthest: Dict[int, int] = {}
        for layer_index, layer_nodes in enumerate(lv.layers):
            for nid in layer_nodes:
                for operand in graph.node(nid).operands:
                    if layer_index > farthest.get(operand, -1):
                        farthest[operand] = layer_index
        # Externally visible values (outputs and register next states) must
        # survive to the end of the cycle, i.e. be present in LI_I.
        for nid in graph.roots():
            farthest[nid] = max(farthest.get(nid, -1), lv.num_layers)

    for layer_index, layer_nodes in enumerate(lv.layers):
        for nid in layer_nodes:
            node = graph.node(nid)
            operands = tuple(slot_of[o] for o in node.operands)
            layers[layer_index].append(
                OpRecord(slot_of[nid], op_table.code_of(node.op), operands)
            )
        layers[layer_index].sort(key=lambda record: record.s)

    identity_records = 0
    if include_identities:
        for nid, consumer_layer in farthest.items():
            produced = lv.layer_of.get(nid, -1)
            slot = slot_of[nid]
            for layer_index in range(produced + 1, consumer_layer):
                layers[layer_index].append(OpRecord(slot, ident_code, (slot,)))
                identity_records += 1
        for layer in layers:
            layer.sort(key=lambda record: record.s)

    output_slots = {name: slot_of[nid] for name, nid in graph.outputs.items()}
    register_commits = [
        (slot_of[reg.state_nid], slot_of[reg.next_nid])
        for reg in graph.registers.values()
    ]
    register_clocks = [reg.clock for reg in graph.registers.values()]
    signal_slots = {
        name: slot_of[nid]
        for name, nid in graph.signal_map.items()
        if nid in slot_of
    }
    max_arity = max(
        (len(record.operands) for layer in layers for record in layer),
        default=0,
    )

    return OimBundle(
        design_name=graph.name,
        op_table=op_table,
        layers=layers,
        num_slots=len(slot_width),
        slot_width=slot_width,
        const_slots=const_slots,
        input_slots=input_slots,
        output_slots=output_slots,
        register_commits=register_commits,
        register_inits=register_inits,
        signal_slots=signal_slots,
        levelization=lv,
        max_arity=max_arity,
        register_clocks=register_clocks,
    )
