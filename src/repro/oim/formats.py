"""The three concrete OIM formats of Figure 12.

* ``unoptimized`` -- rank order ``[I,S,N,O,R]`` with every coordinate and
  payload array materialised (Figure 12a);
* ``optimized``   -- same rank order, but all derivable payloads elided:
  one-hot ranks (``N``, ``R``) make the payloads of ``S`` and ``O``
  redundant, the operation type determines the ``O`` occupancy, and the
  mask semantics make leaf payloads implicit (Figure 12b);
* ``swizzled``    -- rank order ``[I,N,S,O,R]`` for the NU kernel and
  beyond: ``N`` becomes uncompressed (payload = ops per type), which in
  turn makes the ``I`` payloads redundant (Figure 12c).

Both a *generic* path (materialise the fibertree, then
:func:`repro.tensor.lowering.lower`) and a *fast* path
(:func:`lower_oim_fast`, straight from the :class:`OimBundle`) are provided;
the test suite checks they agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..tensor.format import AUTO, RankFormat, TensorFormat, bits_for_value
from ..tensor.lowering import LoweredRank, LoweredTensor, lower
from .builder import OimBundle

VARIANTS = ("unoptimized", "optimized", "swizzled")

_UNOPTIMIZED_ORDER = ("I", "S", "N", "O", "R")
_SWIZZLED_ORDER = ("I", "N", "S", "O", "R")


def oim_format(variant: str) -> TensorFormat:
    """The :class:`TensorFormat` for one of the Figure 12 variants."""
    if variant == "unoptimized":
        return TensorFormat(
            rank_order=_UNOPTIMIZED_ORDER,
            rank_formats={
                "I": RankFormat(compressed=False, cbits=0, pbits=AUTO),
                "S": RankFormat(compressed=True, cbits=AUTO, pbits=AUTO),
                "N": RankFormat(compressed=True, cbits=AUTO, pbits=AUTO),
                "O": RankFormat(compressed=False, cbits=0, pbits=AUTO),
                "R": RankFormat(compressed=True, cbits=AUTO, pbits=AUTO),
            },
        )
    if variant == "optimized":
        return TensorFormat(
            rank_order=_UNOPTIMIZED_ORDER,
            rank_formats={
                "I": RankFormat(compressed=False, cbits=0, pbits=AUTO),
                "S": RankFormat(compressed=True, cbits=AUTO, pbits=0),
                "N": RankFormat(compressed=True, cbits=AUTO, pbits=0),
                "O": RankFormat(compressed=False, cbits=0, pbits=0),
                "R": RankFormat(compressed=True, cbits=AUTO, pbits=0),
            },
        )
    if variant == "swizzled":
        return TensorFormat(
            rank_order=_SWIZZLED_ORDER,
            rank_formats={
                "I": RankFormat(compressed=False, cbits=0, pbits=0),
                "N": RankFormat(compressed=False, cbits=0, pbits=AUTO),
                "S": RankFormat(compressed=True, cbits=AUTO, pbits=0),
                "O": RankFormat(compressed=False, cbits=0, pbits=0),
                "R": RankFormat(compressed=True, cbits=AUTO, pbits=0),
            },
        )
    raise ValueError(f"unknown OIM format variant {variant!r}; use one of {VARIANTS}")


def occupancy_rules(bundle: OimBundle, variant: str) -> Dict[str, Callable]:
    """Reconstruction rules for the payloads each variant elides."""
    op_table = bundle.op_table
    if variant == "unoptimized":
        return {}
    if variant == "optimized":
        return {
            "S": lambda context: 1,  # N fibers are one-hot
            "N": lambda context: op_table.arity_of(context["N"]),
            "O": lambda context: 1,  # R fibers are one-hot
        }
    if variant == "swizzled":
        return {
            "I": lambda context: len(op_table),  # N rank is dense
            "S": lambda context: op_table.arity_of(context["N"]),
            "O": lambda context: 1,
        }
    raise ValueError(f"unknown OIM format variant {variant!r}")


def lower_oim(bundle: OimBundle, variant: str = "optimized") -> LoweredTensor:
    """Generic path: materialise the fibertree, then lower it."""
    fmt = oim_format(variant)
    tensor = bundle.to_tensor(fmt.rank_order)
    return lower(tensor, fmt)


# ----------------------------------------------------------------------
# Fast path: build the arrays straight from the bundle
# ----------------------------------------------------------------------
def _rank(
    name: str,
    fmt: RankFormat,
    coords: Optional[List[int]],
    payloads: Optional[List[int]],
    num_entries: int,
) -> LoweredRank:
    cbits = bits_for_value(max(coords)) if coords else 0
    pbits = bits_for_value(max(payloads)) if payloads else 0
    return LoweredRank(
        name=name,
        fmt=fmt,
        coords=coords if fmt.stores_coords else None,
        payloads=payloads if fmt.stores_payloads else None,
        num_entries=num_entries,
        cbits=cbits if fmt.stores_coords else 0,
        pbits=pbits if fmt.stores_payloads else 0,
    )


def lower_oim_fast(bundle: OimBundle, variant: str = "optimized") -> LoweredTensor:
    """Build the lowered arrays directly from the bundle (no fibertree).

    Produces output identical to :func:`lower_oim`; used for large designs
    where materialising the fibertree is wasteful.
    """
    fmt = oim_format(variant)
    num_opcodes = len(bundle.op_table)

    if variant in ("unoptimized", "optimized"):
        i_payloads: List[int] = []
        s_coords: List[int] = []
        s_payloads: List[int] = []
        n_coords: List[int] = []
        n_payloads: List[int] = []
        o_payloads: List[int] = []
        r_coords: List[int] = []
        r_payloads: List[int] = []
        for layer in bundle.layers:
            i_payloads.append(len(layer))
            for record in layer:
                s_coords.append(record.s)
                s_payloads.append(1)
                n_coords.append(record.n)
                n_payloads.append(len(record.operands))
                for r in record.operands:
                    o_payloads.append(1)
                    r_coords.append(r)
                    r_payloads.append(1)
        ranks = {
            "I": _rank("I", fmt.fmt("I"), None, i_payloads, len(bundle.layers)),
            "S": _rank("S", fmt.fmt("S"), s_coords, s_payloads, len(s_coords)),
            "N": _rank("N", fmt.fmt("N"), n_coords, n_payloads, len(n_coords)),
            "O": _rank("O", fmt.fmt("O"), None, o_payloads, len(o_payloads)),
            "R": _rank("R", fmt.fmt("R"), r_coords, r_payloads, len(r_coords)),
        }
        order = _UNOPTIMIZED_ORDER
    else:  # swizzled
        n_payloads = []
        s_coords = []
        r_coords = []
        total_operands = 0
        for layer in bundle.layers:
            by_code: Dict[int, List] = {}
            for record in layer:
                by_code.setdefault(record.n, []).append(record)
            for code in range(num_opcodes):
                records = by_code.get(code, [])
                n_payloads.append(len(records))
                for record in records:
                    s_coords.append(record.s)
                    for r in record.operands:
                        r_coords.append(r)
                        total_operands += 1
        ranks = {
            "I": _rank("I", fmt.fmt("I"), None, None, len(bundle.layers)),
            "N": _rank("N", fmt.fmt("N"), None, n_payloads, len(n_payloads)),
            "S": _rank("S", fmt.fmt("S"), s_coords, None, len(s_coords)),
            "O": _rank("O", fmt.fmt("O"), None, None, total_operands),
            "R": _rank("R", fmt.fmt("R"), r_coords, None, len(r_coords)),
        }
        order = _SWIZZLED_ORDER

    shape_map = bundle.shape()
    shape: Dict[str, Optional[int]] = {name: shape_map.get(name) for name in order}
    shape["O"] = None  # O fibers are dense but variable-length (arity)
    return LoweredTensor(order, ranks, root_count=len(bundle.layers), shape=shape)


def oim_storage_bytes(bundle: OimBundle, variant: str = "optimized") -> int:
    """Total bytes of the lowered OIM arrays for a variant."""
    return lower_oim_fast(bundle, variant).storage_bytes()
