"""Cascade 1: the paper's Einsum formulation of RTL simulation (Section 4).

Builds the four-Einsum cascade

.. code-block:: text

    OI[i,n,o,r,s]     = LI[i,r] . OIM[i,n,o,r,s]   :: map <-(->)
    LO[i,n,s]         = OI[i,n,o,r,s]              :: map op_u[n](<-) reduce op_r[n](->)
    LO_sel[i,n,o*,r,s] = OI[i,n,o,r,s]             :: map 1(<-) populate 1(op_s[n])
    LI[i+1,s]         = LO[i,n,s]                  :: map 1(<-) reduce ANY(->), n not in n_sel
    LI[i+1,s]         = LO_sel[i,n,o,r,s]          :: map 1(<-) reduce ANY(->), n in n_sel
    <> : i = I (iterative)

over an :class:`~repro.oim.builder.OimBundle` and executes it with the EDGE
interpreter.  It is the *formal golden model*: the test suite checks that a
cycle of this cascade (with identity operations materialised) produces the
same values as the elided array kernels.

Intermediate temporaries carry ``(value, width)`` pairs so the bit-accurate
custom operators ``op_u[n]`` / ``op_r[n]`` / ``op_s[n]`` (Algorithm 2) can
mask correctly; the final populate into ``LI`` unwraps back to plain ints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..einsum.einsum import Cascade, Einsum, MapSpec, PopulateSpec, ReduceSpec, TensorRef
from ..einsum.interpreter import run_cascade
from ..einsum.operators import (
    ANY,
    COORD_LEFT,
    COORD_RIGHT,
    PASS_THROUGH,
    PopulateOp,
    contextual_compute,
    custom_compute,
)
from ..graph.opsem import REDUCE, SELECT, UNARY
from ..tensor.tensor import Tensor
from .builder import OimBundle


def build_cascade(bundle: OimBundle) -> Cascade:
    """Construct Cascade 1 for ``bundle``."""
    op_table = bundle.op_table
    slot_width = bundle.slot_width
    n_sel = op_table.select_codes()

    def op_u(bindings: Dict[str, int], value) -> Tuple[int, int]:
        """Map compute operator: apply unary ops, wrap others (Einsum 12)."""
        code = bindings["n"]
        entry = op_table.entry(code)
        v, w = value
        if entry.klass == UNARY:
            out_width = slot_width[bindings["s"]]
            return entry.semantics([v], [w], out_width), out_width
        return value

    def op_r(bindings: Dict[str, int], prev, new) -> Tuple[int, int]:
        """Reduce compute operator (Algorithm 2).

        For non-reducible operation types the map temporary is copied
        through (its value is superseded by ``LO_sel`` for select ops).
        """
        code = bindings["n"]
        entry = op_table.entry(code)
        if entry.klass != REDUCE:
            return new
        (pv, pw), (nv, nw) = prev, new
        out_width = slot_width[bindings["s"]]
        return entry.semantics([pv, nv], [pw, nw], out_width), out_width

    def op_s(bindings: Dict[str, int], pairs: List[Tuple[int, Tuple[int, int]]]):
        """Populate coordinate operator for select operations (Einsum 13).

        Receives the whole O-fiber; returns the surviving ``(o, value)``
        pairs.  For ``mux``/``muxchain`` the chosen input's coordinate is
        preserved, matching Figure 23.
        """
        code = bindings["n"]
        entry = op_table.entry(code)
        if entry.klass != SELECT:
            return pairs
        out_width = slot_width[bindings["s"]]
        values = [vw[0] for _, vw in pairs]
        widths = [vw[1] for _, vw in pairs]
        result = entry.semantics(values, widths, out_width)
        chosen_o = _chosen_coordinate(entry.name, values, pairs)
        return [(chosen_o, (result, out_width))]

    wrap = contextual_compute(
        "wrap",
        lambda bindings, li_value, oim_value: (li_value, slot_width[bindings["r"]]),
        symbol="<-",
    )
    unwrap = custom_compute("unwrap", lambda vw: vw[0], symbol="1")

    einsum_oi = Einsum(
        output=TensorRef.parse("OI[i, n, o, r, s]"),
        inputs=(TensorRef.parse("LI[i, r]"), TensorRef.parse("OIM[i, n, o, r, s]")),
        map_spec=MapSpec(compute=wrap, coordinate=COORD_RIGHT),
    )
    einsum_lo = Einsum(
        output=TensorRef.parse("LO[i, n, s]"),
        inputs=(TensorRef.parse("OI[i, n, o, r, s]"),),
        map_spec=MapSpec(
            compute=contextual_compute("op_u[n]", op_u), coordinate=COORD_LEFT
        ),
        reduce_spec=ReduceSpec(
            compute=contextual_compute("op_r[n]", op_r), coordinate=COORD_RIGHT
        ),
    )
    einsum_lo_sel = Einsum(
        output=TensorRef.parse("LO_sel[i, n, o*, r, s]"),
        inputs=(TensorRef.parse("OI[i, n, o, r, s]"),),
        map_spec=MapSpec(compute=PASS_THROUGH, coordinate=COORD_LEFT),
        populate_spec=PopulateSpec(
            coordinate=PopulateOp("op_s[n]", op_s, contextual=True),
            carried=("r",),
        ),
    )
    einsum_li = Einsum(
        output=TensorRef.parse("LI[i+1, s]"),
        inputs=(TensorRef.parse("LO[i, n, s]"),),
        map_spec=MapSpec(compute=PASS_THROUGH, coordinate=COORD_LEFT),
        reduce_spec=ReduceSpec(compute=ANY, coordinate=COORD_RIGHT),
        populate_spec=PopulateSpec(compute=unwrap),
        condition=lambda bindings: bindings["n"] not in n_sel,
        condition_text="n not in n_sel",
    )
    einsum_li_sel = Einsum(
        output=TensorRef.parse("LI[i+1, s]"),
        inputs=(TensorRef.parse("LO_sel[i, n, o, r, s]"),),
        map_spec=MapSpec(compute=PASS_THROUGH, coordinate=COORD_LEFT),
        reduce_spec=ReduceSpec(compute=ANY, coordinate=COORD_RIGHT),
        populate_spec=PopulateSpec(compute=unwrap),
        condition=lambda bindings: bindings["n"] in n_sel,
        condition_text="n in n_sel",
    )
    return Cascade(
        [einsum_oi, einsum_lo, einsum_lo_sel, einsum_li, einsum_li_sel],
        iterative_rank="I",
    )


def _chosen_coordinate(name: str, values: Sequence[int], pairs) -> int:
    """The ``o`` coordinate preserved in ``LO_sel`` (Appendix A)."""
    if name == "mux":
        return pairs[1][0] if values[0] else pairs[2][0]
    if name.startswith("muxchain"):
        for position in range(0, len(values) - 1, 2):
            if values[position]:
                return pairs[position + 1][0]
        return pairs[-1][0]
    return pairs[0][0]


def cascade_tensors(bundle: OimBundle, initial_values: Sequence[int]) -> Dict[str, Tensor]:
    """Tensors for one cycle of cascade execution.

    ``LI[0, r]`` is seeded with every slot's value (explicitly including
    zeros -- the tensor is semantically dense along ``R`` at layer 0).
    """
    shape = bundle.shape()
    oim = Tensor(
        ("i", "n", "o", "r", "s"),
        [shape["I"], shape["N"], None, shape["R"], shape["S"]],
    )
    for i, layer in enumerate(bundle.layers):
        for record in layer:
            for o, r in enumerate(record.operands):
                oim.set((i, record.n, o, r, record.s), 1)
    li = Tensor(("i", "s"), [shape["I"] + 1, shape["S"]])
    for slot, value in enumerate(initial_values):
        li.set((0, slot), value)
    return {"OIM": oim, "LI": li}


def run_cascade_cycle(
    bundle: OimBundle, initial_values: Sequence[int]
) -> List[Optional[int]]:
    """Run one full cycle of Cascade 1; return the final-layer LI values.

    Entry ``s`` is ``None`` when no value reached the final layer for that
    slot (i.e. the value was dead by then).
    """
    cascade = build_cascade(bundle)
    tensors = cascade_tensors(bundle, initial_values)
    shape = bundle.shape()
    env = run_cascade(
        cascade,
        tensors,
        shapes={"i": shape["I"] + 1, "s": shape["S"], "r": shape["R"], "n": shape["N"]},
        iterations=bundle.num_layers,
    )
    li = env["LI"]
    final = [None] * bundle.num_slots
    for (i, s), value in li.points():
        if i == bundle.num_layers:
            final[s] = value
    return final
