"""The batched full-cycle simulator: B independent lanes, one OIM pass.

:class:`BatchSimulator` keeps the scalar :class:`repro.sim.Simulator`
surface -- ``poke`` / ``peek`` / ``step`` / ``reset`` / ``step_domain`` /
``snapshot`` -- but every slot holds a vector of B lanes.  Lanes are
fully independent simulations (distinct stimulus, shared design), which
is the tensor-algebra view of multi-seed regression and design-space
sweeps: the lane rank rides along every Einsum for free.

Register commit reuses the scalar simulator's per-clock-domain grouping
(Section 6.2), staged two-phase so register-to-register moves stay
hardware-accurate in every lane.

Storage is backend-native (:mod:`repro.batch.backend`): one plane row
per slot on ``u64``/``object``/``python``, and ``ceil(width/64)`` limb
rows per slot on the split-limb ``u64xN`` fast path -- the host surface
(ints in, ints out) is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ..firrtl.primops import mask
from ..kernels.config import KernelConfig
from ..sim.simulator import DesignLike, compile_design, group_commits_by_clock
from .backend import (
    alloc_values,
    copy_values,
    limb_layout,
    pick_backend,
    plane_rows,
    read_slot,
    write_slot,
)
from .kernels import BatchKernel, make_batch_kernel

LaneValues = Union[int, Sequence[int]]


@dataclass
class BatchSnapshot:
    """A cheap checkpoint of the batched value plane (see ``snapshot``).

    Backend-native (a NumPy plane or list-of-lists): restorable only onto
    a simulator with the same backend and plane shape.  Use
    ``export_state`` for a portable checkpoint.
    """

    values: object
    cycle: int
    backend: str = ""


class BatchSimulator:
    """Full-cycle RTL simulation of B lanes through one batched kernel.

    Parameters
    ----------
    design:
        Anything :func:`repro.sim.simulator.compile_design` accepts.
    lanes:
        Number of independent stimulus lanes (B).
    kernel:
        Scalar kernel configuration name or :class:`KernelConfig`;
        RU...IU map onto the vectorised walk kernel, SU/TI onto the
        straight-line NumPy codegen kernel.  ``"activity"`` (or
        ``"activity:PSU"`` etc.) selects the batched activity cascade:
        a fiber-driven walk with per-lane activity masks and lane
        compaction, valid at any B and on every backend -- without
        NumPy it rides the pure-Python lane fallback rather than
        failing (skip rates observable via :attr:`activity_stats`).
    backend:
        ``"auto"`` (default), ``"u64"``, ``"u64xN"``, ``"object"`` or
        ``"python"``; see :mod:`repro.batch.backend`.
    """

    def __init__(
        self,
        design: DesignLike,
        lanes: int = 8,
        kernel: Union[str, KernelConfig] = "PSU",
        backend: str = "auto",
        optimize_graph: bool = True,
        preserve_signals: bool = False,
    ) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.bundle = compile_design(design, optimize_graph, preserve_signals)
        self.lanes = lanes
        self.backend = pick_backend(self.bundle, backend)
        self.layout = limb_layout(self.bundle) if self.backend == "u64xN" else None
        self.kernel: BatchKernel = make_batch_kernel(
            self.bundle, kernel, lanes, self.backend
        )
        self.values = alloc_values(self.bundle, lanes, self.backend, self.layout)
        self.cycle = 0
        self._dirty = True
        self._commits_by_clock = group_commits_by_clock(self.bundle)
        self._poked: set = set()

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------
    def poke(self, name: str, value: LaneValues) -> None:
        """Drive an input: a scalar broadcasts, a sequence is per-lane."""
        slot = self.bundle.input_slots.get(name)
        if slot is None:
            raise KeyError(f"{name!r} is not an input of {self.bundle.design_name}")
        width = self.bundle.slot_width[slot]
        if isinstance(value, int):
            lane_values = [mask(value, width)] * self.lanes
        else:
            lane_values = [mask(int(v), width) for v in value]
            if len(lane_values) != self.lanes:
                raise ValueError(
                    f"poke({name!r}) got {len(lane_values)} values for "
                    f"{self.lanes} lanes"
                )
        write_slot(self.values, slot, lane_values, self.backend, self.layout)
        self._poked.add(name)
        self._dirty = True

    def poke_lane(self, name: str, lane: int, value: int) -> None:
        """Drive an input in a single lane; the other lanes keep their
        current values (the lane-targeted testbench stimulus path)."""
        slot = self.bundle.input_slots.get(name)
        if slot is None:
            raise KeyError(f"{name!r} is not an input of {self.bundle.design_name}")
        if not 0 <= lane < self.lanes:
            raise IndexError(
                f"poke_lane({name!r}): lane {lane} out of range for "
                f"{self.lanes} lanes"
            )
        lane_values = read_slot(self.values, slot, self.backend, self.layout)
        lane_values[lane] = mask(int(value), self.bundle.slot_width[slot])
        write_slot(self.values, slot, lane_values, self.backend, self.layout)
        self._poked.add(name)
        self._dirty = True

    def peek(self, name: str) -> List[int]:
        """All B lanes of a signal, as plain Python ints."""
        slot = self.bundle.signal_slots.get(name)
        if slot is None:
            raise KeyError(
                f"unknown signal {name!r}; it may have been optimised away "
                "(construct the BatchSimulator with preserve_signals=True)"
            )
        self._settle()
        return read_slot(self.values, slot, self.backend, self.layout)

    def peek_lane(self, name: str, lane: int) -> int:
        """One lane of a signal."""
        return self.peek(name)[lane]

    def peek_slot(self, slot: int) -> List[int]:
        self._settle()
        return read_slot(self.values, slot, self.backend, self.layout)

    # ------------------------------------------------------------------
    # Raw lane-row access (the sharded RUM exchange path)
    # ------------------------------------------------------------------
    def peek_row(self, name: str, settle: bool = True) -> List[int]:
        """One signal's lane vector, optionally without settling.

        ``settle=False`` is only valid for slots whose value does not
        depend on the pending combinational pass -- register state and
        input slots.  The sharded simulator reads owned registers right
        after the commit with it, which keeps the per-cycle exchange from
        paying a second full ``eval_comb``.
        """
        slot = self.bundle.signal_slots.get(name)
        if slot is None:
            raise KeyError(
                f"unknown signal {name!r} on {self.bundle.design_name}"
            )
        if settle:
            self._settle()
        return read_slot(self.values, slot, self.backend, self.layout)

    def poke_row(self, name: str, lane_values: Sequence[int]) -> None:
        """Refresh an input slot with an already-masked lane vector.

        The replica-refresh half of the RUM exchange: a replica input
        mirrors a register of identical width in another partition, so
        per-lane *masking* is skipped -- but the vector is still
        validated, because an over-width or negative value would silently
        corrupt a fixed-width plane (uint64 rows wrap; limb rows drop the
        overflow) in ways ``poke`` would have masked away.
        """
        slot = self.bundle.input_slots.get(name)
        if slot is None:
            raise KeyError(f"{name!r} is not an input of {self.bundle.design_name}")
        if len(lane_values) != self.lanes:
            raise ValueError(
                f"poke_row({name!r}) got {len(lane_values)} values for "
                f"{self.lanes} lanes"
            )
        width = self.bundle.slot_width[slot]
        for lane, value in enumerate(lane_values):
            if value < 0 or (value >> width):
                raise ValueError(
                    f"poke_row({name!r}) lane {lane} value {value} does not "
                    f"fit the slot's {width} bits; use poke() for unmasked "
                    "values"
                )
        write_slot(self.values, slot, lane_values, self.backend, self.layout)
        self._poked.add(name)
        self._dirty = True

    def adopt_row(self, name: str, lane_values) -> None:
        """Refresh an input slot from an already-valid lane row, without
        the per-lane width validation of :meth:`poke_row`.

        The zero-copy half of the shared-memory RUM exchange: the row
        comes straight out of another partition's value plane, where it
        was already width-correct by construction, and re-validating
        element-wise would force a NumPy row back through Python ints.
        Only use with rows read from a plane of the same width.
        """
        slot = self.bundle.input_slots.get(name)
        if slot is None:
            raise KeyError(f"{name!r} is not an input of {self.bundle.design_name}")
        write_slot(self.values, slot, lane_values, self.backend, self.layout)
        self._poked.add(name)
        self._dirty = True

    def reset(self) -> None:
        """Restore registers and constants to their initial values in every
        lane; poked input values are preserved per lane (scalar parity)."""
        inputs = {
            name: read_slot(self.values, slot, self.backend, self.layout)
            for name, slot in self.bundle.input_slots.items()
        }
        self.values = alloc_values(self.bundle, self.lanes, self.backend, self.layout)
        for name, lane_values in inputs.items():
            write_slot(
                self.values, self.bundle.input_slots[name], lane_values,
                self.backend, self.layout,
            )
        self.cycle = 0
        self._dirty = True
        # Fresh plane, unsettled intermediates: an activity kernel must
        # not diff leaves against the pre-reset world.
        self.kernel.invalidate()

    def step(self, cycles: int = 1) -> None:
        """Advance all clock domains of all lanes by ``cycles`` edges."""
        for _ in range(cycles):
            self._settle()
            self._commit(self.bundle.register_commits)
            self.cycle += 1
            self._dirty = True

    def step_domain(self, clock: str) -> None:
        """Advance a single clock domain by one edge (Section 6.2)."""
        commits = self._commits_by_clock.get(clock)
        if commits is None:
            raise KeyError(
                f"unknown clock domain {clock!r}; domains: "
                f"{sorted(self._commits_by_clock)}"
            )
        self._settle()
        self._commit(commits)
        self.cycle += 1
        self._dirty = True

    def run(self, cycles: int) -> None:
        """Alias for :meth:`step`, for testbench readability."""
        self.step(cycles)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> BatchSnapshot:
        """Checkpoint the value plane + cycle (copy; O(rows * lanes))."""
        self._settle()
        return BatchSnapshot(
            copy_values(self.values, self.backend), self.cycle, self.backend
        )

    def restore(self, snapshot: BatchSnapshot) -> None:
        """Return to a :meth:`snapshot` checkpoint (same backend/shape)."""
        if snapshot.backend and snapshot.backend != self.backend:
            raise ValueError(
                f"snapshot uses the {snapshot.backend!r} backend, this "
                f"simulator uses {self.backend!r}"
            )
        values = snapshot.values
        expected = plane_rows(self.bundle, self.backend, self.layout)
        if len(values) != expected:
            raise ValueError(
                f"snapshot has {len(values)} plane rows, design "
                f"{self.bundle.design_name!r} needs {expected}"
            )
        if len(values) and len(values[0]) != self.lanes:
            raise ValueError(
                f"snapshot has {len(values[0])} lanes, simulator has "
                f"{self.lanes}"
            )
        self.values = copy_values(values, self.backend)
        self.cycle = snapshot.cycle
        self._dirty = True
        self.kernel.invalidate()

    def export_state(self) -> Tuple[List[List[int]], int]:
        """The value plane as per-slot lane vectors of Python ints, plus
        the cycle count.

        Unlike :class:`BatchSnapshot` (backend-native, cheap, same
        process), the exported form is portable: plain lists pickle across
        process boundaries -- and slot-indexed ints are backend-agnostic,
        so a ``u64xN`` worker can hand its state to an ``object`` peer --
        which is how the sharded process executor checkpoints workers.
        """
        self._settle()
        return [
            read_slot(self.values, slot, self.backend, self.layout)
            for slot in range(self.bundle.num_slots)
        ], self.cycle

    def import_state(self, rows: List[List[int]], cycle: int) -> None:
        """Load a plane previously produced by :meth:`export_state`."""
        if len(rows) != self.bundle.num_slots:
            raise ValueError(
                f"state has {len(rows)} slots, design has "
                f"{self.bundle.num_slots}"
            )
        for slot, row in enumerate(rows):
            write_slot(self.values, slot, row, self.backend, self.layout)
        self.cycle = cycle
        self._dirty = True
        self.kernel.invalidate()

    # ------------------------------------------------------------------
    # Per-lane state transfer (the repro.serve session checkout path)
    # ------------------------------------------------------------------
    def export_lane(self, lane: int) -> List[int]:
        """One lane's column of the value plane, as per-slot Python ints.

        Portable like :meth:`export_state` (plain ints, backend-
        agnostic), but a single lane: the unit of session preemption and
        migration in :mod:`repro.serve` -- a checked-out lane's state
        moves to any simulator of the same design, regardless of which
        lane (or backend) it lands on there.
        """
        self._check_lane(lane)
        self._settle()
        return [
            read_slot(self.values, slot, self.backend, self.layout)[lane]
            for slot in range(self.bundle.num_slots)
        ]

    def import_lane(self, lane: int, values: Sequence[int]) -> None:
        """Load one lane from :meth:`export_lane` output; the other lanes
        are untouched.  Values must already fit their slots (they do, if
        they came from ``export_lane``)."""
        self._check_lane(lane)
        if len(values) != self.bundle.num_slots:
            raise ValueError(
                f"lane state has {len(values)} slots, design has "
                f"{self.bundle.num_slots}"
            )
        widths = self.bundle.slot_width
        for slot, value in enumerate(values):
            if value < 0 or (value >> widths[slot]):
                raise ValueError(
                    f"import_lane: slot {slot} value {value} does not fit "
                    f"{widths[slot]} bits"
                )
        for slot, value in enumerate(values):
            row = read_slot(self.values, slot, self.backend, self.layout)
            row[lane] = value
            write_slot(self.values, slot, row, self.backend, self.layout)
        self._dirty = True
        # The imported lane carries foreign intermediates; re-settle all.
        self.kernel.invalidate()

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.lanes:
            raise IndexError(
                f"lane {lane} out of range for {self.lanes} lanes"
            )

    # ------------------------------------------------------------------
    @property
    def activity_stats(self):
        """The kernel's :class:`~repro.kernels.activity.ActivityStats`
        (layer/op skip rates plus lane-compaction counters), or ``None``
        for a plain kernel -- the uniform stats surface shared with the
        scalar/shard/serve engines."""
        return getattr(self.kernel, "stats", None)

    @property
    def clock_domains(self) -> List[str]:
        return sorted(self._commits_by_clock)

    @property
    def signals(self) -> List[str]:
        return sorted(self.bundle.signal_slots)

    @property
    def signal_widths(self) -> Dict[str, int]:
        """``{signal: width}`` of every observable signal (waveforms)."""
        return {
            name: self.bundle.slot_width[slot]
            for name, slot in self.bundle.signal_slots.items()
        }

    @property
    def unpoked_inputs(self) -> set:
        """Inputs never driven (any lane) since construction; dumped as
        ``x`` by :class:`~repro.sim.VcdWriter` before the first edge."""
        return set(self.bundle.input_slots) - self._poked

    def _settle(self) -> None:
        if not self._dirty:
            return
        self.kernel.eval_comb(self.values)
        self._dirty = False

    def _commit(self, commits: Iterable) -> None:
        values = self.values
        if self.backend == "python":
            staged = [(state, list(values[next_slot])) for state, next_slot in commits]
            for state, lane_values in staged:
                values[state][:] = lane_values
        elif self.backend == "u64xN":
            slices = self.layout.slices
            staged = [
                (slices[state], values[slices[next_slot]].copy())
                for state, next_slot in commits
            ]
            for target, lane_rows in staged:
                values[target] = lane_rows
        else:
            staged = [(state, values[next_slot].copy()) for state, next_slot in commits]
            for state, lane_values in staged:
                values[state] = lane_values

    def __repr__(self) -> str:
        return (
            f"BatchSimulator({self.bundle.design_name!r}, lanes={self.lanes}, "
            f"kernel={self.kernel.name}, cycle={self.cycle})"
        )
