"""Storage backends for the batched value plane.

The batched simulator widens the paper's value tensor ``V`` (the
identity-elided ``LI``/``LO``: one persistent slot per value) by a lane
rank ``B``.  Four backends realise the plane:

* ``u64``    -- a ``(num_slots, B)`` NumPy ``uint64`` array; the fast
  path, valid whenever every slot width fits 64 bits (wrap-around modulo
  2**64 followed by the slot-width mask is bit-exact for add/sub/mul, and
  shifts are guarded);
* ``u64xN``  -- the split-limb fast path for wide designs: each slot
  stores ``ceil(width/64)`` little-endian uint64 *limb rows* in a flat
  ``(total_limb_rows, B)`` plane (see :class:`LimbLayout`).  Arithmetic
  carries propagate across limbs and shifts/cat/bits cross limb
  boundaries (:func:`repro.batch.vecsem.make_limb_table`), so a single
  65-bit slot no longer degrades the whole design to object rows;
* ``object`` -- a NumPy ``object`` array of Python ints; still vectorised
  at the ufunc level, bit-exact at any width but an order of magnitude
  slower than native-width storage;
* ``python`` -- plain list-of-lists, used when NumPy is absent so the
  subsystem never breaks in an offline environment.

NumPy is an *optional* dependency (the ``[batch]`` extra): everything in
``repro.batch`` imports cleanly without it and falls back to ``python``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..oim.builder import OimBundle

#: Widest slot the single-row uint64 backend can hold exactly; also the
#: limb granularity of the split-limb backend.
U64_MAX_WIDTH = 64
LIMB_BITS = 64
LIMB_MASK = (1 << LIMB_BITS) - 1

BACKENDS = ("u64", "u64xN", "object", "python")

_UNSET = object()


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when it is not installed."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via pick_backend(np_module=None)
        return None
    return numpy


_NUMPY = numpy_or_none()

HAS_NUMPY = _NUMPY is not None


def supports_u64(bundle: OimBundle) -> bool:
    """True when every slot of ``bundle`` fits the uint64 fast path."""
    return max(bundle.slot_width, default=0) <= U64_MAX_WIDTH


def pick_backend(
    bundle: OimBundle, requested: str = "auto", np_module=_UNSET
) -> str:
    """Resolve a backend request against NumPy availability and slot widths.

    ``auto`` prefers ``u64``, takes the split-limb ``u64xN`` fast path for
    designs with >64-bit slots, and degrades to ``python`` when NumPy is
    missing.  ``object`` is never chosen automatically any more -- it
    remains available on request (arbitrary-width reference / benchmark
    comparison arm).  Explicitly requesting ``u64`` on a too-wide design
    or a NumPy backend without NumPy raises, so tests and benchmarks never
    silently measure the wrong engine.
    """
    np = _NUMPY if np_module is _UNSET else np_module
    if requested in ("auto", "numpy"):
        if np is None:
            return "python"
        return "u64" if supports_u64(bundle) else "u64xN"
    if requested not in BACKENDS:
        raise KeyError(
            f"unknown batch backend {requested!r}; choose from "
            f"{', '.join(BACKENDS)} or 'auto'"
        )
    if requested == "python":
        return "python"
    if np is None:
        raise RuntimeError(
            f"batch backend {requested!r} needs NumPy, which is not "
            "installed; use backend='auto' or the [batch] extra"
        )
    if requested == "u64" and not supports_u64(bundle):
        raise ValueError(
            f"design {bundle.design_name!r} has slots wider than "
            f"{U64_MAX_WIDTH} bits; use backend='u64xN' (or 'auto')"
        )
    return requested


# ----------------------------------------------------------------------
# Split-limb layout
# ----------------------------------------------------------------------
def limbs_for_width(width: int) -> int:
    """Limb rows a slot of ``width`` bits occupies (zero-width slots
    still get one row so every slot is addressable)."""
    return max(1, (width + LIMB_BITS - 1) // LIMB_BITS)


@dataclass
class LimbLayout:
    """Slot -> limb-row mapping of the ``u64xN`` plane.

    Slot ``s`` occupies rows ``offsets[s] .. offsets[s] + limbs[s]`` of
    the flat ``(total_rows, B)`` plane, little-endian (row ``offsets[s]``
    is the least-significant 64 bits).
    """

    limbs: List[int]
    offsets: List[int]
    slices: List[slice]
    total_rows: int

    def slot_slice(self, slot: int) -> slice:
        return self.slices[slot]


def limb_layout(bundle: OimBundle) -> LimbLayout:
    """Compute the split-limb row layout for a design."""
    limbs = [limbs_for_width(width) for width in bundle.slot_width]
    offsets: List[int] = []
    slices: List[slice] = []
    total = 0
    for count in limbs:
        offsets.append(total)
        slices.append(slice(total, total + count))
        total += count
    return LimbLayout(limbs=limbs, offsets=offsets, slices=slices, total_rows=total)


def split_limbs(value: int, count: int) -> List[int]:
    """A non-negative int as ``count`` little-endian 64-bit limbs."""
    return [(value >> (LIMB_BITS * i)) & LIMB_MASK for i in range(count)]


def combine_limbs(limbs: Sequence[int]) -> int:
    """Little-endian 64-bit limbs back to one Python int."""
    value = 0
    for i, limb in enumerate(limbs):
        value |= int(limb) << (LIMB_BITS * i)
    return value


# ----------------------------------------------------------------------
# Value-plane allocation / copy
# ----------------------------------------------------------------------
def alloc_values(
    bundle: OimBundle,
    lanes: int,
    backend: str,
    layout: Optional[LimbLayout] = None,
):
    """The batched value plane at time zero (constants + register inits),
    every lane identical."""
    initial = bundle.initial_values()
    if backend == "python":
        return [[value] * lanes for value in initial]
    np = _NUMPY
    if backend == "u64":
        plane = np.zeros((bundle.num_slots, lanes), dtype=np.uint64)
        for slot, value in enumerate(initial):
            if value:
                plane[slot] = value
        return plane
    if backend == "u64xN":
        layout = layout or limb_layout(bundle)
        plane = np.zeros((layout.total_rows, lanes), dtype=np.uint64)
        for slot, value in enumerate(initial):
            if value:
                offset = layout.offsets[slot]
                for i, limb in enumerate(split_limbs(value, layout.limbs[slot])):
                    plane[offset + i] = limb
        return plane
    plane = np.empty((bundle.num_slots, lanes), dtype=object)
    plane[...] = 0
    for slot, value in enumerate(initial):
        if value:
            plane[slot] = value
    return plane


def copy_values(values, backend: str):
    """A deep copy of the value plane (snapshots, staged commits)."""
    if backend == "python":
        return [list(row) for row in values]
    return values.copy()


def plane_rows(bundle: OimBundle, backend: str, layout: Optional[LimbLayout] = None) -> int:
    """Expected first-axis length of the value plane for ``backend``."""
    if backend == "u64xN":
        return (layout or limb_layout(bundle)).total_rows
    return bundle.num_slots


def row_to_ints(row) -> List[int]:
    """One plane row's lane vector as plain Python ints."""
    return [int(value) for value in row]


def read_slot(
    values, slot: int, backend: str, layout: Optional[LimbLayout] = None
) -> List[int]:
    """One slot's lane vector as plain Python ints (limb-combining)."""
    if backend != "u64xN":
        return [int(value) for value in values[slot]]
    rows = values[layout.slices[slot]]
    if len(rows) == 1:
        return [int(value) for value in rows[0]]
    lanes = rows.shape[1]
    return [combine_limbs(rows[:, lane]) for lane in range(lanes)]


def write_slot(
    values,
    slot: int,
    lane_values: Sequence[int],
    backend: str,
    layout: Optional[LimbLayout] = None,
) -> None:
    """Overwrite one slot's lane vector (limb-splitting on ``u64xN``)."""
    if backend == "python":
        values[slot][:] = lane_values
    elif backend == "u64xN":
        offset = layout.offsets[slot]
        count = layout.limbs[slot]
        if count == 1:
            values[offset] = lane_values
        else:
            per_lane = (split_limbs(value, count) for value in lane_values)
            for i, limb_row in enumerate(zip(*per_lane)):
                values[offset + i] = limb_row
    else:
        values[slot] = lane_values


# ----------------------------------------------------------------------
# Guarded vector helpers (shared by the walk and codegen kernels)
# ----------------------------------------------------------------------
def popcount_parity(np, object_mode: bool = False):
    """A bit-exact lane-wise popcount-parity function (``xorr``).

    On the native uint64 paths this prefers ``np.bitwise_count`` and
    otherwise XOR-folds the 64-bit word (shared by the ``u64`` and
    ``u64xN`` backends -- the old fallback went through a per-element
    Python ufunc that returned *object* rows mid-pipeline).  The object
    path keeps the unbounded-int ufunc, which is exact at any width.
    """
    if object_mode:
        return np.frompyfunc(lambda v: bin(int(v)).count("1") & 1, 1, 1)
    if hasattr(np, "bitwise_count"):
        def _pop(a):
            return np.bitwise_count(a).astype(np.uint64) & np.uint64(1)
        return _pop

    def _pop(a):
        v = a.astype(np.uint64, copy=True)
        for fold in (32, 16, 8, 4, 2, 1):
            v = v ^ (v >> np.uint64(fold))
        return v & np.uint64(1)

    return _pop


def make_helpers(np, object_mode: bool = False) -> Dict[str, object]:
    """Vector helpers injected into generated code / the walk semantics.

    All are valid for both the uint64 and object backends: shift amounts
    are clipped below the width guard before the hardware-UB region is
    reachable, and division sanitises the divisor before dividing.
    """

    def _div(a, b):
        nonzero = b != 0
        return np.where(nonzero, a // np.where(nonzero, b, 1), 0)

    def _rem(a, b):
        nonzero = b != 0
        return np.where(nonzero, a % np.where(nonzero, b, 1), 0)

    def _dshl(a, s, out_width):
        # mask(a << s, ow): any shift >= ow zeroes the masked result.
        if out_width <= 0:
            return a & 0
        clipped = np.minimum(s, out_width - 1)
        return np.where(s < out_width, a << clipped, 0)

    def _dshr(a, s, in_width):
        # a >> s with a < 2**in_width: any shift >= in_width yields zero.
        if in_width <= 0:
            return a & 0
        clipped = np.minimum(s, in_width - 1)
        return np.where(s < in_width, a >> clipped, 0)

    def _head(a, n, in_width):
        # mask(a >> max(in_width - n, 0), ow) with per-lane n.
        if in_width <= 0:
            return a & 0
        shift = in_width - np.minimum(n, in_width)
        clipped = np.minimum(shift, in_width - 1)
        return np.where(shift < in_width, a >> clipped, 0)

    return {
        "_np": np,
        "_where": np.where,
        "_div": _div,
        "_rem": _rem,
        "_dshl": _dshl,
        "_dshr": _dshr,
        "_head": _head,
        "_pop": popcount_parity(np, object_mode),
    }
