"""Storage backends for the batched value plane.

The batched simulator widens the paper's value tensor ``V`` (the
identity-elided ``LI``/``LO``: one persistent slot per value) by a lane
rank ``B``: storage becomes a ``(num_slots, B)`` plane whose rows are the
per-slot lane vectors.  Three backends realise the plane:

* ``u64``    -- a NumPy ``uint64`` array; the fast path, valid whenever
  every slot width fits 64 bits (wrap-around modulo 2**64 followed by the
  slot-width mask is bit-exact for add/sub/mul, and shifts are guarded);
* ``object`` -- a NumPy ``object`` array of Python ints; still vectorised
  at the ufunc level, bit-exact at any width;
* ``python`` -- plain list-of-lists, used when NumPy is absent so the
  subsystem never breaks in an offline environment.

NumPy is an *optional* dependency (the ``[batch]`` extra): everything in
``repro.batch`` imports cleanly without it and falls back to ``python``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..oim.builder import OimBundle

#: Widest slot the uint64 backend can hold exactly.
U64_MAX_WIDTH = 64

BACKENDS = ("u64", "object", "python")

_UNSET = object()


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when it is not installed."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via pick_backend(np_module=None)
        return None
    return numpy


_NUMPY = numpy_or_none()

HAS_NUMPY = _NUMPY is not None


def supports_u64(bundle: OimBundle) -> bool:
    """True when every slot of ``bundle`` fits the uint64 fast path."""
    return max(bundle.slot_width, default=0) <= U64_MAX_WIDTH


def pick_backend(
    bundle: OimBundle, requested: str = "auto", np_module=_UNSET
) -> str:
    """Resolve a backend request against NumPy availability and slot widths.

    ``auto`` prefers ``u64``, degrades to ``object`` for designs with
    >64-bit slots, and to ``python`` when NumPy is missing.  Explicitly
    requesting ``u64`` on a too-wide design or a NumPy backend without
    NumPy raises, so tests and benchmarks never silently measure the
    wrong engine.
    """
    np = _NUMPY if np_module is _UNSET else np_module
    if requested in ("auto", "numpy"):
        if np is None:
            return "python"
        return "u64" if supports_u64(bundle) else "object"
    if requested not in BACKENDS:
        raise KeyError(
            f"unknown batch backend {requested!r}; choose from "
            f"{', '.join(BACKENDS)} or 'auto'"
        )
    if requested == "python":
        return "python"
    if np is None:
        raise RuntimeError(
            f"batch backend {requested!r} needs NumPy, which is not "
            "installed; use backend='auto' or the [batch] extra"
        )
    if requested == "u64" and not supports_u64(bundle):
        raise ValueError(
            f"design {bundle.design_name!r} has slots wider than "
            f"{U64_MAX_WIDTH} bits; use backend='object' (or 'auto')"
        )
    return requested


# ----------------------------------------------------------------------
# Value-plane allocation / copy
# ----------------------------------------------------------------------
def alloc_values(bundle: OimBundle, lanes: int, backend: str):
    """The batched value plane at time zero (constants + register inits),
    every lane identical."""
    initial = bundle.initial_values()
    if backend == "python":
        return [[value] * lanes for value in initial]
    np = _NUMPY
    if backend == "u64":
        plane = np.zeros((bundle.num_slots, lanes), dtype=np.uint64)
    else:
        plane = np.empty((bundle.num_slots, lanes), dtype=object)
        plane[...] = 0
    for slot, value in enumerate(initial):
        if value:
            plane[slot] = value
    return plane


def copy_values(values, backend: str):
    """A deep copy of the value plane (snapshots, staged commits)."""
    if backend == "python":
        return [list(row) for row in values]
    return values.copy()


def row_to_ints(row) -> List[int]:
    """One slot's lane vector as plain Python ints."""
    return [int(value) for value in row]


def write_row(values, slot: int, lane_values: Sequence[int], backend: str) -> None:
    if backend == "python":
        values[slot][:] = lane_values
    else:
        values[slot] = lane_values


# ----------------------------------------------------------------------
# Guarded vector helpers (shared by the walk and codegen kernels)
# ----------------------------------------------------------------------
def make_helpers(np, object_mode: bool = False) -> Dict[str, object]:
    """Vector helpers injected into generated code / the walk semantics.

    All are valid for both the uint64 and object backends: shift amounts
    are clipped below the width guard before the hardware-UB region is
    reachable, and division sanitises the divisor before dividing.
    """

    def _div(a, b):
        nonzero = b != 0
        return np.where(nonzero, a // np.where(nonzero, b, 1), 0)

    def _rem(a, b):
        nonzero = b != 0
        return np.where(nonzero, a % np.where(nonzero, b, 1), 0)

    def _dshl(a, s, out_width):
        # mask(a << s, ow): any shift >= ow zeroes the masked result.
        if out_width <= 0:
            return a & 0
        clipped = np.minimum(s, out_width - 1)
        return np.where(s < out_width, a << clipped, 0)

    def _dshr(a, s, in_width):
        # a >> s with a < 2**in_width: any shift >= in_width yields zero.
        if in_width <= 0:
            return a & 0
        clipped = np.minimum(s, in_width - 1)
        return np.where(s < in_width, a >> clipped, 0)

    def _head(a, n, in_width):
        # mask(a >> max(in_width - n, 0), ow) with per-lane n.
        if in_width <= 0:
            return a & 0
        shift = in_width - np.minimum(n, in_width)
        clipped = np.minimum(shift, in_width - 1)
        return np.where(shift < in_width, a >> clipped, 0)

    if not object_mode and hasattr(np, "bitwise_count"):
        def _pop(a):
            return np.bitwise_count(a) & 1
    else:
        _pop = np.frompyfunc(lambda v: bin(int(v)).count("1") & 1, 1, 1)

    return {
        "_np": np,
        "_where": np.where,
        "_div": _div,
        "_rem": _rem,
        "_dshl": _dshl,
        "_dshr": _dshr,
        "_head": _head,
        "_pop": _pop,
    }
