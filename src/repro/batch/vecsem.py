"""Lane-vectorised operation semantics for the batched walk kernel.

This is :mod:`repro.graph.opsem` lifted over the lane rank: every
evaluator keeps the scalar signature ``fn(args, widths, out_width)`` but
consumes and produces lane *vectors* (NumPy arrays of B lanes) instead of
scalars.  The paper's map/reduce structure is preserved -- the map compute
operator now maps over lanes as well as coordinates, and the reduce
operator folds the ``O`` rank pairwise exactly as Algorithm 3 does --
which is what makes the lane rank free: it rides along every Einsum
without changing the traversal.

Two modes share the formulas:

* ``u64``    -- operands are uint64 lane vectors.  Wrap-around modulo
  2**64 followed by the output-width mask is exact for every arithmetic
  op once shifts are guarded (see :func:`repro.batch.backend.make_helpers`).
* ``object`` -- operands are object arrays of Python ints, bit-exact at
  any width.  Comparison results are normalised back to Python ints so
  fixed-width NumPy scalars can never leak into the unbounded arithmetic.

Bit-exactness against the scalar table is asserted op-by-op in the tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..graph.opsem import MAX_CHAIN
from .backend import make_helpers

#: Vector evaluator signature, mirroring :data:`repro.graph.opsem.Evaluator`.
VecEvaluator = Callable[[Sequence[object], Sequence[int], int], object]


def make_vec_table(np, mode: str = "u64") -> Dict[str, VecEvaluator]:
    """Build the ``op name -> lane-vector evaluator`` table for one mode."""
    object_mode = mode == "object"
    helpers = make_helpers(np, object_mode=object_mode)
    where = helpers["_where"]
    vdiv, vrem = helpers["_div"], helpers["_rem"]
    dshl, dshr, vhead, pop = (
        helpers["_dshl"], helpers["_dshr"], helpers["_head"], helpers["_pop"],
    )

    def m(x, width):
        """The slot-width mask, applied exactly where the scalar table does."""
        if width <= 0:
            return x & 0
        return x & ((1 << width) - 1)

    if object_mode:
        def ii(comparison):
            # bool ndarray -> object ndarray of Python ints (0/1), so that
            # downstream unbounded arithmetic never sees numpy scalars.
            return comparison.astype(object) * 1
    else:
        def ii(comparison):
            return comparison  # storage rows cast bool -> uint64

    table: Dict[str, VecEvaluator] = {}

    def define(name: str, fn: VecEvaluator) -> None:
        table[name] = fn

    # -- reduce-class (binary) ops, same shapes as graph/opsem ----------
    define("add", lambda a, w, ow: m(a[0] + a[1], ow))
    define("sub", lambda a, w, ow: m(a[0] - a[1], ow))
    define("mul", lambda a, w, ow: m(a[0] * a[1], ow))
    define("div", lambda a, w, ow: m(vdiv(a[0], a[1]), ow))
    define("rem", lambda a, w, ow: m(vrem(a[0], a[1]), ow))
    define("lt", lambda a, w, ow: ii(a[0] < a[1]))
    define("leq", lambda a, w, ow: ii(a[0] <= a[1]))
    define("gt", lambda a, w, ow: ii(a[0] > a[1]))
    define("geq", lambda a, w, ow: ii(a[0] >= a[1]))
    define("eq", lambda a, w, ow: ii(a[0] == a[1]))
    define("neq", lambda a, w, ow: ii(a[0] != a[1]))
    define("and", lambda a, w, ow: a[0] & a[1])
    define("or", lambda a, w, ow: a[0] | a[1])
    define("xor", lambda a, w, ow: a[0] ^ a[1])
    def cat(a, w, ow):
        # A 64-bit lhs shift (only possible with a zero-width lhs) would be
        # UB on uint64; the lhs is then constant zero, so pass rhs through.
        if object_mode or w[1] < 64:
            return m((a[0] << w[1]) | a[1], ow)
        return m(a[1], ow)

    define("cat", cat)
    define("dshl", lambda a, w, ow: m(dshl(a[0], a[1], ow), ow))
    define("shl", lambda a, w, ow: m(dshl(a[0], a[1], ow), ow))
    define("dshr", lambda a, w, ow: m(dshr(a[0], a[1], w[0]), ow))
    define("shr", lambda a, w, ow: m(dshr(a[0], a[1], w[0]), ow))
    define("pad", lambda a, w, ow: m(a[0], ow))
    define("head", lambda a, w, ow: m(vhead(a[0], a[1], w[0]), ow))
    define("tail", lambda a, w, ow: m(a[0], ow))

    # -- unary (map-class) ops ------------------------------------------
    define("not", lambda a, w, ow: m(~a[0], ow))
    define("neg", lambda a, w, ow: m(-a[0], ow))
    define("cvt", lambda a, w, ow: m(a[0], ow))
    define("andr", lambda a, w, ow: ii(a[0] == ((1 << w[0]) - 1)))
    define("orr", lambda a, w, ow: ii(a[0] != 0))
    define("xorr", lambda a, w, ow: pop(a[0]))
    define("asUInt", lambda a, w, ow: m(a[0], ow))
    define("asSInt", lambda a, w, ow: m(a[0], ow))
    define("ident", lambda a, w, ow: m(a[0], ow))

    # -- select (gather-all) ops ----------------------------------------
    define("mux", lambda a, w, ow: m(where(a[0], a[1], a[2]), ow))
    define("bits", lambda a, w, ow: m(dshr(a[0], a[2], w[0]), ow))

    def muxchain(a, w, ow):
        # [s1, v1, s2, v2, ..., default]: fold from the innermost out.
        result = a[-1]
        for position in range(len(a) - 3, -1, -2):
            result = where(a[position], a[position + 1], result)
        return m(result, ow)

    def logic_chain(op):
        def fn(a, w, ow):
            result = a[0]
            for value in a[1:]:
                result = op(result, value)
            return m(result, ow)

        return fn

    for k in range(2, MAX_CHAIN + 1):
        define(f"muxchain{k}", muxchain)
        define(f"orchain{k}", logic_chain(lambda x, y: x | y))
        define(f"andchain{k}", logic_chain(lambda x, y: x & y))
        define(f"xorchain{k}", logic_chain(lambda x, y: x ^ y))

    return table
