"""Lane-vectorised operation semantics for the batched walk kernel.

This is :mod:`repro.graph.opsem` lifted over the lane rank: every
evaluator keeps the scalar signature ``fn(args, widths, out_width)`` but
consumes and produces lane *vectors* (NumPy arrays of B lanes) instead of
scalars.  The paper's map/reduce structure is preserved -- the map compute
operator now maps over lanes as well as coordinates, and the reduce
operator folds the ``O`` rank pairwise exactly as Algorithm 3 does --
which is what makes the lane rank free: it rides along every Einsum
without changing the traversal.

Two single-row modes share the formulas (:func:`make_vec_table`):

* ``u64``    -- operands are uint64 lane vectors.  Wrap-around modulo
  2**64 followed by the output-width mask is exact for every arithmetic
  op once shifts are guarded (see :func:`repro.batch.backend.make_helpers`).
* ``object`` -- operands are object arrays of Python ints, bit-exact at
  any width.  Comparison results are normalised back to Python ints so
  fixed-width NumPy scalars can never leak into the unbounded arithmetic.

:func:`make_limb_table` is the split-limb ``u64xN`` variant: operands and
results are ``(limbs, B)`` uint64 matrices (little-endian limb rows of
the flat plane, :class:`repro.batch.backend.LimbLayout`).  Arithmetic
propagates carries/borrows limb by limb, multiplication runs schoolbook
over 32-bit halves, division runs vectorised restoring long division
(one compare/subtract vector step per dividend bit), comparisons fold
from the most-significant limb, and shifts/cat/bits move bits across
limb rows -- all still vectorised NumPy expressions over the lane rank,
so the lane rank stays free on >64-bit slots.

Bit-exactness against the scalar table is asserted op-by-op in the tests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..graph.opsem import MAX_CHAIN
from .backend import LIMB_BITS, limbs_for_width, make_helpers, popcount_parity, split_limbs

#: Vector evaluator signature, mirroring :data:`repro.graph.opsem.Evaluator`.
VecEvaluator = Callable[[Sequence[object], Sequence[int], int], object]


def make_vec_table(np, mode: str = "u64") -> Dict[str, VecEvaluator]:
    """Build the ``op name -> lane-vector evaluator`` table for one mode."""
    object_mode = mode == "object"
    helpers = make_helpers(np, object_mode=object_mode)
    where = helpers["_where"]
    vdiv, vrem = helpers["_div"], helpers["_rem"]
    dshl, dshr, vhead, pop = (
        helpers["_dshl"], helpers["_dshr"], helpers["_head"], helpers["_pop"],
    )

    def m(x, width):
        """The slot-width mask, applied exactly where the scalar table does."""
        if width <= 0:
            return x & 0
        return x & ((1 << width) - 1)

    if object_mode:
        def ii(comparison):
            # bool ndarray -> object ndarray of Python ints (0/1), so that
            # downstream unbounded arithmetic never sees numpy scalars.
            return comparison.astype(object) * 1
    else:
        def ii(comparison):
            return comparison  # storage rows cast bool -> uint64

    table: Dict[str, VecEvaluator] = {}

    def define(name: str, fn: VecEvaluator) -> None:
        table[name] = fn

    # -- reduce-class (binary) ops, same shapes as graph/opsem ----------
    define("add", lambda a, w, ow: m(a[0] + a[1], ow))
    define("sub", lambda a, w, ow: m(a[0] - a[1], ow))
    define("mul", lambda a, w, ow: m(a[0] * a[1], ow))
    define("div", lambda a, w, ow: m(vdiv(a[0], a[1]), ow))
    define("rem", lambda a, w, ow: m(vrem(a[0], a[1]), ow))
    define("lt", lambda a, w, ow: ii(a[0] < a[1]))
    define("leq", lambda a, w, ow: ii(a[0] <= a[1]))
    define("gt", lambda a, w, ow: ii(a[0] > a[1]))
    define("geq", lambda a, w, ow: ii(a[0] >= a[1]))
    define("eq", lambda a, w, ow: ii(a[0] == a[1]))
    define("neq", lambda a, w, ow: ii(a[0] != a[1]))
    define("and", lambda a, w, ow: a[0] & a[1])
    define("or", lambda a, w, ow: a[0] | a[1])
    define("xor", lambda a, w, ow: a[0] ^ a[1])
    def cat(a, w, ow):
        # A 64-bit lhs shift (only possible with a zero-width lhs) would be
        # UB on uint64; the lhs is then constant zero, so pass rhs through.
        if object_mode or w[1] < 64:
            return m((a[0] << w[1]) | a[1], ow)
        return m(a[1], ow)

    define("cat", cat)
    define("dshl", lambda a, w, ow: m(dshl(a[0], a[1], ow), ow))
    define("shl", lambda a, w, ow: m(dshl(a[0], a[1], ow), ow))
    define("dshr", lambda a, w, ow: m(dshr(a[0], a[1], w[0]), ow))
    define("shr", lambda a, w, ow: m(dshr(a[0], a[1], w[0]), ow))
    define("pad", lambda a, w, ow: m(a[0], ow))
    define("head", lambda a, w, ow: m(vhead(a[0], a[1], w[0]), ow))
    define("tail", lambda a, w, ow: m(a[0], ow))

    # -- unary (map-class) ops ------------------------------------------
    define("not", lambda a, w, ow: m(~a[0], ow))
    define("neg", lambda a, w, ow: m(-a[0], ow))
    define("cvt", lambda a, w, ow: m(a[0], ow))
    define("andr", lambda a, w, ow: ii(a[0] == ((1 << w[0]) - 1)))
    define("orr", lambda a, w, ow: ii(a[0] != 0))
    define("xorr", lambda a, w, ow: pop(a[0]))
    define("asUInt", lambda a, w, ow: m(a[0], ow))
    define("asSInt", lambda a, w, ow: m(a[0], ow))
    define("ident", lambda a, w, ow: m(a[0], ow))

    # -- select (gather-all) ops ----------------------------------------
    define("mux", lambda a, w, ow: m(where(a[0], a[1], a[2]), ow))
    define("bits", lambda a, w, ow: m(dshr(a[0], a[2], w[0]), ow))

    def muxchain(a, w, ow):
        # [s1, v1, s2, v2, ..., default]: fold from the innermost out.
        result = a[-1]
        for position in range(len(a) - 3, -1, -2):
            result = where(a[position], a[position + 1], result)
        return m(result, ow)

    def logic_chain(op):
        def fn(a, w, ow):
            result = a[0]
            for value in a[1:]:
                result = op(result, value)
            return m(result, ow)

        return fn

    for k in range(2, MAX_CHAIN + 1):
        define(f"muxchain{k}", muxchain)
        define(f"orchain{k}", logic_chain(lambda x, y: x | y))
        define(f"andchain{k}", logic_chain(lambda x, y: x & y))
        define(f"xorchain{k}", logic_chain(lambda x, y: x ^ y))

    return table


# ----------------------------------------------------------------------
# Split-limb (u64xN) evaluators
# ----------------------------------------------------------------------
def make_limb_table(np) -> Dict[str, VecEvaluator]:
    """The ``op name -> limb-matrix evaluator`` table for the ``u64xN``
    backend.

    Every evaluator consumes ``(limbs, B)`` uint64 matrices (operand limb
    counts follow the operand widths) and returns a
    ``(limbs_for_width(out_width), B)`` matrix masked to ``out_width``.
    Only ops that actually see a >64-bit operand or result are routed
    here; single-limb ops stay on the plain ``u64`` table (see
    :func:`repro.batch.kernels._walk_schedule`).
    """
    u64 = np.uint64
    ZERO, ONE = u64(0), u64(1)
    M32 = u64(0xFFFFFFFF)
    HALF = u64(32)
    pop = popcount_parity(np)

    def nl(width: int) -> int:
        return limbs_for_width(width)

    def ext(x, count: int):
        """Zero-extend (or truncate) a limb matrix to ``count`` rows.

        Truncation is only reached when the result is re-masked by the
        caller, so dropping already-masked high limbs is exact.
        """
        rows = x.shape[0]
        if rows == count:
            return x
        if rows > count:
            return x[:count]
        out = np.zeros((count, x.shape[1]), dtype=np.uint64)
        out[:rows] = x
        return out

    _mask_vectors: Dict[int, object] = {}

    def mask_vector(width: int, count: int):
        key = (width, count)
        cached = _mask_vectors.get(key)
        if cached is None:
            cached = np.array(
                [split_limbs((1 << max(width, 0)) - 1, count)], dtype=np.uint64
            ).reshape(count, 1)
            _mask_vectors[key] = cached
        return cached

    def m(x, width: int):
        """The slot-width mask over ``limbs_for_width(width)`` rows."""
        count = nl(width)
        x = ext(x, count)
        if width == count * LIMB_BITS:
            return x  # every representable bit is in-width: mask is a no-op
        return x & mask_vector(width, count)

    def bit(condition):
        """A (B,) bool vector as a 1-limb 0/1 matrix."""
        return condition[None, :].astype(np.uint64)

    def nonzero(x):
        """Per-lane truthiness of a limb matrix, as a (B,) bool vector."""
        flag = x[0] != ZERO
        for row in range(1, x.shape[0]):
            flag = flag | (x[row] != ZERO)
        return flag

    # -- carry / borrow arithmetic --------------------------------------
    def ladd(a, b, ow):
        count = nl(ow)
        a, b = ext(a, count), ext(b, count)
        out = np.empty_like(a)
        carry = np.zeros(a.shape[1], dtype=np.uint64)
        for i in range(count):
            partial = a[i] + b[i]
            overflow = partial < a[i]
            total = partial + carry
            out[i] = total
            carry = (overflow | (total < partial)).astype(np.uint64)
        return m(out, ow)

    def lsub(a, b, ow):
        count = nl(ow)
        a, b = ext(a, count), ext(b, count)
        out = np.empty_like(a)
        borrow = np.zeros(a.shape[1], dtype=np.uint64)
        for i in range(count):
            partial = a[i] - b[i]
            underflow = a[i] < b[i]
            total = partial - borrow
            out[i] = total
            borrow = (underflow | (partial < borrow)).astype(np.uint64)
        return m(out, ow)

    def lmul(a, b, wa: int, wb: int, ow):
        # Width-aware schoolbook over 32-bit halves: partial products are
        # only formed for half-words the operand widths can populate (the
        # common RTL mask idiom ``mul(wide, onebit)`` costs one select,
        # not a full multi-limb multiply), and every column accumulator
        # stays below 2**64, so uint64 wrap-around is never hit before
        # the explicit carry extraction.
        count = nl(ow)
        if wa == 1 or wb == 1:
            gate, value = (a, b) if wa == 1 else (b, a)
            return m(
                np.where(gate[0][None, :].astype(bool), ext(value, count), ZERO),
                ow,
            )
        a, b = ext(a, count), ext(b, count)
        halves = 2 * count
        halves_a = min(halves, max(1, (wa + 31) // 32))
        halves_b = min(halves, max(1, (wb + 31) // 32))
        a_half: List[object] = []
        b_half: List[object] = []
        for i in range(count):
            a_half.extend((a[i] & M32, a[i] >> HALF))
            b_half.extend((b[i] & M32, b[i] >> HALF))
        out_halves: List[object] = []
        carry = np.zeros(a.shape[1], dtype=np.uint64)
        for k in range(halves):
            low = carry & M32
            high = carry >> HALF
            for i in range(max(0, k - halves_b + 1), min(k + 1, halves_a)):
                product = a_half[i] * b_half[k - i]
                low = low + (product & M32)
                high = high + (product >> HALF)
            out_halves.append(low & M32)
            carry = high + (low >> HALF)
        out = np.empty_like(a)
        for i in range(count):
            out[i] = out_halves[2 * i] | (out_halves[2 * i + 1] << HALF)
        return m(out, ow)

    # -- >64-bit div/rem: vectorised restoring division -----------------
    def ldivmod(a, b, wa: int, wb: int):
        """Per-lane ``(quotient, remainder)`` of two limb matrices.

        Classic restoring long division, one compare/subtract step per
        dividend bit; every step is a handful of ``(B,)``-vector NumPy
        ops, so the lane rank stays free (the pre-refactor version
        round-tripped through per-lane Python ints).  Zero-divisor lanes
        yield ``(0, 0)``, the repo's FIRRTL x/0 convention.
        """
        lanes = a.shape[1]
        count_q = a.shape[0]
        # Room for ``(rem << 1) | bit`` before the restoring subtract.
        count_r = nl(wb + 1)
        b_wide = ext(b, count_r)
        quotient = np.zeros((count_q, lanes), dtype=np.uint64)
        remainder = np.zeros((count_r, lanes), dtype=np.uint64)
        zero_divisor = ~nonzero(b)
        full = count_r * LIMB_BITS  # lsub mask width; a no-op mask
        for i in range(min(wa, count_q * LIMB_BITS) - 1, -1, -1):
            word, offset = divmod(i, LIMB_BITS)
            bit_i = (a[word] >> u64(offset)) & ONE
            for j in range(count_r - 1, 0, -1):
                remainder[j] = (remainder[j] << ONE) | (
                    remainder[j - 1] >> u64(LIMB_BITS - 1)
                )
            remainder[0] = (remainder[0] << ONE) | bit_i
            less, _equal = compare(remainder, b_wide)
            fits = ~less  # remainder >= divisor: subtract and set the bit
            remainder = np.where(
                fits[None, :], lsub(remainder, b_wide, full), remainder
            )
            quotient[word] = quotient[word] | (
                fits.astype(np.uint64) << u64(offset)
            )
        zero = zero_divisor[None, :]
        return (
            np.where(zero, ZERO, quotient),
            np.where(zero, ZERO, remainder),
        )

    def ldiv(a, b, wa, wb, ow):
        return m(ldivmod(a, b, wa, wb)[0], ow)

    def lrem(a, b, wa, wb, ow):
        return m(ldivmod(a, b, wa, wb)[1], ow)

    # -- comparisons: fold from the most-significant limb ---------------
    def compare(a, b):
        count = max(a.shape[0], b.shape[0])
        a, b = ext(a, count), ext(b, count)
        less = a[count - 1] < b[count - 1]
        equal = a[count - 1] == b[count - 1]
        for i in range(count - 2, -1, -1):
            less = less | (equal & (a[i] < b[i]))
            equal = equal & (a[i] == b[i])
        return less, equal

    # -- cross-limb shifts ----------------------------------------------
    def shift_left_const(a, amount: int, ow):
        count = nl(ow)
        a = ext(a, count)
        word, bits = divmod(amount, LIMB_BITS)
        out = np.zeros_like(a)
        for i in range(count):
            j = i - word
            if j < 0:
                continue
            row = a[j] << u64(bits) if bits else a[j]
            if bits and j >= 1:
                row = row | (a[j - 1] >> u64(LIMB_BITS - bits))
            out[i] = row
        return out

    def shift_amounts(s, limit: int):
        """Per-lane (word, bit, too_big) split of a shift-amount matrix.

        ``too_big`` marks lanes whose shift reaches ``limit`` (the width
        guard): any set bit would leave the masked result, so those lanes
        are zeroed exactly as the scalar ``_dshl``/``_dshr`` helpers do.
        """
        s0 = s[0]
        too_big = s0 >= u64(max(limit, 1))
        for row in range(1, s.shape[0]):
            too_big = too_big | (s[row] != ZERO)
        word = s0 >> u64(6)
        bits = s0 & u64(63)
        return word, bits, too_big

    def ldshl(a, s, ow):
        count = nl(ow)
        a = ext(a, count)
        word, bits, too_big = shift_amounts(s, ow)
        spill = (u64(LIMB_BITS) - bits) & u64(63)
        has_bits = bits > ZERO
        out = np.zeros_like(a)
        for shift_words in range(count):
            selected = word == u64(shift_words)
            if not selected.any():
                continue
            for i in range(shift_words, count):
                j = i - shift_words
                row = a[j] << bits
                if j >= 1:
                    row = row | np.where(has_bits, a[j - 1] >> spill, ZERO)
                out[i] = np.where(selected, row, out[i])
        return m(np.where(too_big[None, :], ZERO, out), ow)

    def ldshr(a, s, in_width: int, ow):
        source = nl(in_width)
        count = nl(ow)
        a = ext(a, source)
        word, bits, too_big = shift_amounts(s, in_width)
        spill = (u64(LIMB_BITS) - bits) & u64(63)
        has_bits = bits > ZERO
        out = np.zeros((count, a.shape[1]), dtype=np.uint64)
        for shift_words in range(source):
            selected = word == u64(shift_words)
            if not selected.any():
                continue
            for i in range(count):
                j = i + shift_words
                if j >= source:
                    continue
                row = a[j] >> bits
                if j + 1 < source:
                    row = row | np.where(has_bits, a[j + 1] << spill, ZERO)
                out[i] = np.where(selected, row, out[i])
        return m(np.where(too_big[None, :], ZERO, out), ow)

    def lwhere(condition, then, other, ow):
        count = nl(ow)
        return m(
            np.where(condition[None, :], ext(then, count), ext(other, count)), ow
        )

    # -- the table -------------------------------------------------------
    table: Dict[str, VecEvaluator] = {}

    def define(name: str, fn: VecEvaluator) -> None:
        table[name] = fn

    def lless(a, w, ow):
        return bit(compare(a[0], a[1])[0])

    def lleq(a, w, ow):
        less, equal = compare(a[0], a[1])
        return bit(less | equal)

    def lgeq(a, w, ow):
        less, _ = compare(a[0], a[1])
        return bit(~less)

    define("add", lambda a, w, ow: ladd(a[0], a[1], ow))
    define("sub", lambda a, w, ow: lsub(a[0], a[1], ow))
    define("mul", lambda a, w, ow: lmul(a[0], a[1], w[0], w[1], ow))
    define("div", lambda a, w, ow: ldiv(a[0], a[1], w[0], w[1], ow))
    define("rem", lambda a, w, ow: lrem(a[0], a[1], w[0], w[1], ow))
    define("lt", lless)
    define("leq", lleq)
    define("gt", lambda a, w, ow: bit(compare(a[1], a[0])[0]))
    define("geq", lgeq)
    define("eq", lambda a, w, ow: bit(compare(a[0], a[1])[1]))
    define("neq", lambda a, w, ow: bit(~compare(a[0], a[1])[1]))
    define("and", lambda a, w, ow: m(ext(a[0], nl(ow)) & ext(a[1], nl(ow)), ow))
    define("or", lambda a, w, ow: m(ext(a[0], nl(ow)) | ext(a[1], nl(ow)), ow))
    define("xor", lambda a, w, ow: m(ext(a[0], nl(ow)) ^ ext(a[1], nl(ow)), ow))
    define(
        "cat",
        lambda a, w, ow: m(shift_left_const(a[0], w[1], ow) | ext(a[1], nl(ow)), ow),
    )
    define("dshl", lambda a, w, ow: ldshl(a[0], a[1], ow))
    define("shl", lambda a, w, ow: ldshl(a[0], a[1], ow))
    define("dshr", lambda a, w, ow: ldshr(a[0], a[1], w[0], ow))
    define("shr", lambda a, w, ow: ldshr(a[0], a[1], w[0], ow))
    define("pad", lambda a, w, ow: m(a[0], ow))
    define("tail", lambda a, w, ow: m(a[0], ow))

    def lhead(a, w, ow):
        # shift = in_width - min(n, in_width), per lane; n >= in_width
        # (including any high limbs) clamps to a zero shift.
        in_width = w[0]
        n0 = a[1][0]
        clamp = n0 >= u64(max(in_width, 1))
        for row in range(1, a[1].shape[0]):
            clamp = clamp | (a[1][row] != ZERO)
        clamped = np.where(clamp, u64(in_width), n0)
        shift = (u64(in_width) - clamped)[None, :]
        return ldshr(a[0], shift, in_width, ow)

    define("head", lhead)

    define("not", lambda a, w, ow: m(~ext(a[0], nl(ow)), ow))
    define("neg", lambda a, w, ow: lsub(np.zeros((1, a[0].shape[1]), dtype=np.uint64), a[0], ow))
    define("cvt", lambda a, w, ow: m(a[0], ow))

    def landr(a, w, ow):
        count = limbs_for_width(w[0])
        x = ext(a[0], count)
        full = mask_vector(w[0], count)
        flag = x[0] == full[0][0]
        for row in range(1, count):
            flag = flag & (x[row] == full[row][0])
        return bit(flag)

    define("andr", landr)
    define("orr", lambda a, w, ow: bit(nonzero(a[0])))

    def lxorr(a, w, ow):
        folded = a[0][0]
        for row in range(1, a[0].shape[0]):
            folded = folded ^ a[0][row]
        return pop(folded)[None, :]

    define("xorr", lxorr)
    define("asUInt", lambda a, w, ow: m(a[0], ow))
    define("asSInt", lambda a, w, ow: m(a[0], ow))
    define("ident", lambda a, w, ow: m(a[0], ow))

    define("mux", lambda a, w, ow: lwhere(nonzero(a[0]), a[1], a[2], ow))
    define("bits", lambda a, w, ow: ldshr(a[0], a[2], w[0], ow))

    def lmuxchain(a, w, ow):
        # [s1, v1, s2, v2, ..., default]: fold from the innermost out.
        count = nl(ow)
        result = ext(a[-1], count)
        for position in range(len(a) - 3, -1, -2):
            result = np.where(
                nonzero(a[position])[None, :], ext(a[position + 1], count), result
            )
        return m(result, ow)

    def limb_chain(op):
        def fn(a, w, ow):
            count = nl(ow)
            result = ext(a[0], count)
            for value in a[1:]:
                result = op(result, ext(value, count))
            return m(result, ow)

        return fn

    for k in range(2, MAX_CHAIN + 1):
        define(f"muxchain{k}", lmuxchain)
        define(f"orchain{k}", limb_chain(lambda x, y: x | y))
        define(f"andchain{k}", limb_chain(lambda x, y: x & y))
        define(f"xorchain{k}", limb_chain(lambda x, y: x ^ y))

    return table
