"""Executable batched kernels: one OIM pass evaluates B lanes.

Two kernels are lowered from the existing :class:`OimBundle`, mirroring
the scalar spectrum of Section 5.2 with the lane rank vectorised away:

* :class:`BatchWalkKernel` -- a vectorised RU/OU-style map/reduce walk.
  It traverses the *optimized*-format OIM arrays (Figure 12b) exactly as
  the scalar ``RUKernel`` does, but every operand fetch pulls a lane
  vector and every compute operator applies across all B lanes at once
  (:mod:`repro.batch.vecsem`).  Serves the uint64 fast path, the
  split-limb ``u64xN`` fast path, and the arbitrary-width object path.
  On ``u64xN`` the schedule is *mixed*: operations whose operand and
  result widths all fit 64 bits run the plain single-row evaluators over
  their (single) limb rows, and only genuinely wide operations take the
  carry-propagating limb evaluators -- so a design with a handful of
  65-bit slots pays limb arithmetic for exactly those slots.
* :class:`BatchCodegenKernel` -- a straight-line SU/TI-style variant:
  the OIM is fully embedded in generated Python whose expressions are
  NumPy lane-vector operations (:func:`repro.kernels.expr.numpy_expr`).
  On ``u64xN`` planes the generated statements are limb-aware: narrow
  operations address single limb rows, wide ones assign limb-row slices
  from :func:`repro.kernels.expr.numpy_limb_expr` calls.

:class:`BatchPyKernel` is the pure-Python list-of-lists fallback used
when NumPy is absent: the same schedule, evaluated lane by lane with the
scalar semantics, so the subsystem is always importable and bit-exact.

:class:`CompiledBatchKernel` (``kernel="compiled"``) swaps the NumPy
pass for the compiled C translation unit of
:mod:`repro.lower.cbackend`, built from the same shared
:class:`~repro.lower.program.OimProgram` as every kernel above --
falling back to the SU codegen kernel when no toolchain (or no native
uint64 plane) is available.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional

from ..kernels.config import KernelConfig, get_kernel_config
from ..kernels.expr import LIMB_OP_BASES, numpy_expr, numpy_limb_expr
from ..kernels.fiberwalk import (
    PendingLayers,
    cached_fiber_walk,
    cached_walk_layer_rows,
    walk_layer_rows,
)
from ..kernels.pykernels import CODEGEN_CHUNK
from ..lower.cbackend import CBackendUnavailable, compiled_comb
from ..lower.plan import blockable as _blockable
from ..lower.plan import is_narrow as _is_narrow
from ..lower.plan import limb_plan
from ..lower.program import cached_program, lower_program
from ..oim.builder import OimBundle
from .backend import (
    U64_MAX_WIDTH,
    limb_layout,
    make_helpers,
    numpy_or_none,
    pick_backend,
    popcount_parity,
)
from .vecsem import make_limb_table, make_vec_table

#: Kernel styles (how the OIM pass is executed), orthogonal to backends.
WALK, CODEGEN, PYTHON, ACTIVITY = "walk", "codegen", "python", "activity"
COMPILED = "compiled"


class BatchKernel:
    """Base class: evaluates one cycle of combinational logic over the
    batched value plane, for all lanes at once."""

    style: str = "abstract"

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        self.bundle = bundle
        self.config = config
        self.lanes = lanes
        self.backend = backend

    def eval_comb(self, values) -> None:
        raise NotImplementedError

    def invalidate(self) -> None:
        """Drop any cached view of the value plane (see
        :meth:`repro.kernels.pykernels.Kernel.invalidate`).  Stateless
        kernels ignore it; the activity kernel forgets its leaf snapshot
        so the next pass re-settles the whole plane."""

    @property
    def name(self) -> str:
        return f"{self.config.name}x{self.lanes}[{self.backend}]"


# The walk-row builders now live in :mod:`repro.kernels.fiberwalk`,
# shared with the scalar activity kernel; the old private names stay
# bound for callers and tests that reached in.
_walk_layer_rows = walk_layer_rows
_cached_walk_layer_rows = cached_walk_layer_rows


def _walk_layers(bundle: OimBundle):
    """The walk rows with opcode indices rebound to live op-table
    entries: per-layer ``(entry, s, rs, ws, ow)`` record lists."""
    entry_of = bundle.op_table.entry
    return [
        [(entry_of(n), s, operands, widths, out_width)
         for n, s, operands, widths, out_width in layer]
        for layer in cached_walk_layer_rows(bundle)
    ]


def _walk_records(bundle: OimBundle):
    """The flattened walk (see :func:`_walk_layers`)."""
    return [record for layer in _walk_layers(bundle) for record in layer]


def _walk_schedule(bundle: OimBundle, semantics_of: Callable):
    """The slot-indexed walk schedule (one plane row per slot)."""
    return [
        (semantics_of(entry), s, operands, widths, out_width)
        for entry, s, operands, widths, out_width in _walk_records(bundle)
    ]


# ----------------------------------------------------------------------
# Layer-blocked narrow groups (the u64xN walk)
# ----------------------------------------------------------------------
#: Narrow base ops with a blocked builder in :func:`_blocked_step` -- the
#: same vocabulary as the split-limb evaluators (one canonical set, so
#: the three layers cannot drift apart).  ``mul`` stays per-record only
#: when wide; ``div``/``rem`` block via the guarded helpers exactly like
#: the per-record table.  The classification predicates themselves
#: (``is_narrow``/``blockable``) live in :mod:`repro.lower.plan` now,
#: shared with every other executor; the old private names stay bound.
_BLOCKABLE_BASES = LIMB_OP_BASES


def _blocked_step(np, name: str, group: List, layout, pop) -> Callable:
    """One evaluator for ``k`` same-op narrow records of one layer.

    Layers are dependence levels (operands always live in earlier
    layers), so same-layer records are independent: gather their operand
    rows into ``(k, B)`` blocks, apply the op once with per-record widths
    broadcast as ``(k, 1)`` columns, and scatter to the output rows.
    This turns the walk's per-record NumPy dispatch into per-(layer, op)
    dispatch -- the S rank vectorised alongside the lane rank.
    """
    base = name.rstrip("0123456789")
    ZERO, ONE = np.uint64(0), np.uint64(1)
    out = np.array([layout.offsets[s] for _, s, *_ in group], dtype=np.intp)

    def rows(position: int):
        return np.array(
            [layout.offsets[operands[position]] for _, _, operands, _, _ in group],
            dtype=np.intp,
        )

    def col(values) -> object:
        return np.array(list(values), dtype=np.uint64).reshape(-1, 1)

    ow_col = col(ow for *_, ow in group)
    mask_col = col((1 << ow) - 1 for *_, ow in group)
    w0_col = col(widths[0] if widths else 0 for *_, widths, _ in group)

    s0 = rows(0)
    if base in ("and", "or", "xor"):
        s1 = rows(1)
        fn = {"and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor}[base]

        def step(V):
            V[out] = fn(V[s0], V[s1])
    elif base in ("add", "sub", "mul"):
        s1 = rows(1)
        fn = {"add": np.add, "sub": np.subtract, "mul": np.multiply}[base]

        def step(V):
            V[out] = fn(V[s0], V[s1]) & mask_col
    elif base in ("div", "rem"):
        s1 = rows(1)
        fn = np.floor_divide if base == "div" else np.remainder

        def step(V):
            b = V[s1]
            nonzero = b != ZERO
            V[out] = np.where(nonzero, fn(V[s0], np.where(nonzero, b, ONE)), ZERO) & mask_col
    elif base in ("lt", "leq", "gt", "geq", "eq", "neq"):
        s1 = rows(1)
        fn = {
            "lt": np.less, "leq": np.less_equal, "gt": np.greater,
            "geq": np.greater_equal, "eq": np.equal, "neq": np.not_equal,
        }[base]

        def step(V):
            V[out] = fn(V[s0], V[s1])
    elif base == "cat":
        s1 = rows(1)
        w1_col = col(widths[1] for *_, widths, _ in group)

        def step(V):
            V[out] = ((V[s0] << w1_col) | V[s1]) & mask_col
    elif base in ("dshl", "shl"):
        s1 = rows(1)

        def step(V):
            shift = V[s1]
            clipped = np.minimum(shift, ow_col - ONE)
            V[out] = np.where(shift < ow_col, V[s0] << clipped, ZERO) & mask_col
    elif base in ("dshr", "shr", "bits"):
        # bits(value, hi, lo) reads its shift from the lo operand (index 2).
        s1 = rows(2 if base == "bits" else 1)

        def step(V):
            shift = V[s1]
            clipped = np.minimum(shift, w0_col - ONE)
            V[out] = np.where(shift < w0_col, V[s0] >> clipped, ZERO) & mask_col
    elif base == "head":
        s1 = rows(1)

        def step(V):
            shift = w0_col - np.minimum(V[s1], w0_col)
            clipped = np.minimum(shift, w0_col - ONE)
            V[out] = np.where(shift < w0_col, V[s0] >> clipped, ZERO) & mask_col
    elif base in ("pad", "tail", "cvt", "asUInt", "asSInt", "ident"):
        def step(V):
            V[out] = V[s0] & mask_col
    elif base == "not":
        def step(V):
            V[out] = ~V[s0] & mask_col
    elif base == "neg":
        def step(V):
            V[out] = (ZERO - V[s0]) & mask_col
    elif base == "andr":
        full_col = col((1 << widths[0]) - 1 for *_, widths, _ in group)

        def step(V):
            V[out] = V[s0] == full_col
    elif base == "orr":
        def step(V):
            V[out] = V[s0] != ZERO
    elif base == "xorr":
        def step(V):
            V[out] = pop(V[s0])
    elif base == "mux":
        s1, s2 = rows(1), rows(2)

        def step(V):
            V[out] = np.where(V[s0] != ZERO, V[s1], V[s2])
    elif base == "muxchain":
        arity = len(group[0][2])
        selectors = [rows(p) for p in range(0, arity - 1, 2)]
        values = [rows(p) for p in range(1, arity - 1, 2)]
        default = rows(arity - 1)

        def step(V):
            result = V[default]
            for sel, val in zip(reversed(selectors), reversed(values)):
                result = np.where(V[sel] != ZERO, V[val], result)
            V[out] = result
    else:  # or/and/xorchain
        fn = {
            "orchain": np.bitwise_or,
            "andchain": np.bitwise_and,
            "xorchain": np.bitwise_xor,
        }[base]
        sources = [rows(p) for p in range(len(group[0][2]))]

        def step(V):
            result = V[sources[0]]
            for src in sources[1:]:
                result = fn(result, V[src])
            V[out] = result

    return step


def _record_step(fn: Callable, s, operands, widths, out_width) -> Callable:
    """One per-record evaluator (wide ops, non-blockable narrow ops)."""
    def step(V):
        V[s] = fn([V[r] for r in operands], widths, out_width)

    return step


def _limb_plan(bundle: OimBundle):
    """The ``u64xN`` schedule (:func:`repro.lower.plan.limb_plan`) for a
    bundle's program.  Lane count and the limb layout never enter the
    derivation: the plan addresses slots, and the layout is a pure
    function of the bundle."""
    return limb_plan(lower_program(bundle))


def _cached_limb_plan(bundle: OimBundle):
    """:func:`_limb_plan` over the cached shared program: the lowering
    sweep persists as the ``program`` artifact, and the (cheap) grouping
    sweep re-derives from it per process."""
    return limb_plan(cached_program(bundle))


class BatchWalkKernel(BatchKernel):
    """Vectorised RU-style map/reduce walk over the optimized OIM format."""

    style = WALK

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        super().__init__(bundle, config, lanes, backend)
        np = numpy_or_none()
        if backend == "u64xN":
            self._steps = self._limb_steps(bundle, np)
            self._schedule = None
        else:
            mode = "object" if backend == "object" else "u64"
            table = make_vec_table(np, mode)
            self._schedule = _walk_schedule(bundle, lambda entry: table[entry.name])
            self._steps = None

    @staticmethod
    def _limb_steps(bundle: OimBundle, np) -> List[Callable]:
        """The mixed split-limb schedule over the flat limb-row plane.

        Three record classes per layer, in execution order:

        * blockable narrow records group per (layer, op) into one gathered
          ``(k, B)`` evaluation (:func:`_blocked_step`);
        * remaining narrow records keep the single-row ``u64`` evaluators
          over integer row coordinates;
        * wide records take the carry-propagating limb evaluators over
          limb-row slices.

        Reordering within a layer is safe -- layers are dependence levels.
        The schedule is rebuilt from the cached declarative plan
        (:func:`_cached_limb_plan`); only the closures are per-process.
        """
        layout = limb_layout(bundle)
        narrow_table = make_vec_table(np, "u64")
        limb_table = make_limb_table(np)
        pop = popcount_parity(np)
        entry_of = bundle.op_table.entry
        steps: List[Callable] = []
        for kind, name, rows in _cached_limb_plan(bundle):
            if kind == "block":
                steps.append(_blocked_step(np, name, rows, layout, pop))
                continue
            n, s, operands, widths, out_width = rows[0]
            if kind == "narrow":
                steps.append(_record_step(
                    narrow_table[entry_of(n).name],
                    layout.offsets[s],
                    tuple(layout.offsets[r] for r in operands),
                    widths,
                    out_width,
                ))
            else:
                steps.append(_record_step(
                    limb_table[entry_of(n).name],
                    layout.slices[s],
                    tuple(layout.slices[r] for r in operands),
                    widths,
                    out_width,
                ))
        return steps

    def eval_comb(self, values) -> None:
        if self._steps is not None:
            for step in self._steps:
                step(values)
            return
        for fn, s, operands, widths, out_width in self._schedule:
            values[s] = fn([values[r] for r in operands], widths, out_width)


class BatchPyKernel(BatchKernel):
    """Pure-Python fallback: same walk, scalar semantics lane by lane."""

    style = PYTHON

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        super().__init__(bundle, config, lanes, backend)
        self._schedule = _walk_schedule(bundle, lambda entry: entry.semantics)

    def eval_comb(self, values) -> None:
        lanes = range(self.lanes)
        for fn, s, operands, widths, out_width in self._schedule:
            rows = [values[r] for r in operands]
            values[s] = [
                fn([row[lane] for row in rows], widths, out_width)
                for lane in lanes
            ]


class BatchActivityKernel(BatchKernel):
    """Box 1's activity cascade, batched: fiber-driven walk + lane
    compaction.

    Shares the scalar activity kernel's
    :class:`~repro.kernels.fiberwalk.FiberWalkSchedule`: the per-cycle
    leaf diff (inputs + register state, compared block-wise across all
    lanes) seeds a toggled-slot fiber, and only the records downstream of
    it re-evaluate.  On top of that, the *lane* rank is sparsified too:
    lanes whose leaves are all unchanged already hold their settled
    values, so the walk gathers the active lanes into a dense sub-plane
    of B' < B columns, runs at effective batch B', and scatters back --
    lifting the old "lanes diverge in activity" restriction at any B.

    Cold passes (construction, reset, restore, state import -- anything
    that calls :meth:`invalidate`) delegate to the plain walk kernel, so
    they keep its blocked/limb fast paths.  Works on every backend,
    including the pure-Python fallback (where compaction is an active-
    lane loop), so activity-aware batching needs no NumPy.
    """

    style = ACTIVITY

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        super().__init__(bundle, config, lanes, backend)
        from ..kernels.activity import ActivityStats

        self.stats = ActivityStats()
        self.schedule = cached_fiber_walk(bundle)
        inner_cls = BatchPyKernel if backend == "python" else BatchWalkKernel
        self._inner = inner_cls(bundle, config, lanes, backend)
        self._np = None if backend == "python" else numpy_or_none()
        self.layout = limb_layout(bundle) if backend == "u64xN" else None
        self._record_fns = self._build_record_fns(bundle)
        self._leaf_rows, self._leaf_row_slot = self._leaf_addressing()
        #: Leaf block from the last pass (None = cold: full walk next).
        self._last = None

    @property
    def name(self) -> str:
        return f"activity:{self.config.name}x{self.lanes}[{self.backend}]"

    def invalidate(self) -> None:
        self._last = None

    def reset_activity(self) -> None:
        """Forget the leaf snapshot *and* zero the counters."""
        from ..kernels.activity import ActivityStats

        self.invalidate()
        self.stats = ActivityStats()

    # ------------------------------------------------------------------
    def _build_record_fns(self, bundle: OimBundle):
        """Per-layer ``(fn, s_addr, operand_addrs, widths, ow, slot)``
        evaluators; addresses are plane rows (slots, limb offsets, or
        limb slices depending on backend), ``slot`` the schedule-space
        coordinate used for consumer marking."""
        entry_of = bundle.op_table.entry
        layers = self.schedule.layers
        if self.backend == "python":
            return [
                [(entry_of(n).semantics, s, operands, widths, ow, s)
                 for n, s, operands, widths, ow in layer]
                for layer in layers
            ]
        np = self._np
        if self.backend == "u64xN":
            narrow = make_vec_table(np, "u64")
            wide = make_limb_table(np)
            layout = self.layout
            built = []
            for layer in layers:
                rows = []
                for n, s, operands, widths, ow in layer:
                    name = entry_of(n).name
                    if _is_narrow(widths, ow):
                        rows.append((
                            narrow[name], layout.offsets[s],
                            tuple(layout.offsets[r] for r in operands),
                            widths, ow, s,
                        ))
                    else:
                        rows.append((
                            wide[name], layout.slices[s],
                            tuple(layout.slices[r] for r in operands),
                            widths, ow, s,
                        ))
                built.append(rows)
            return built
        table = make_vec_table(
            np, "object" if self.backend == "object" else "u64"
        )
        return [
            [(table[entry_of(n).name], s, operands, widths, ow, s)
             for n, s, operands, widths, ow in layer]
            for layer in layers
        ]

    def _leaf_addressing(self):
        """Plane rows holding the leaves, plus each row's source slot
        (on ``u64xN`` a wide leaf spans several limb rows)."""
        leaves = self.schedule.leaf_slots
        if self.backend == "u64xN":
            rows, slots = [], []
            for slot in leaves:
                offset = self.layout.offsets[slot]
                for row in range(offset, offset + self.layout.limbs[slot]):
                    rows.append(row)
                    slots.append(slot)
            return self._np.array(rows, dtype=self._np.intp), tuple(slots)
        if self.backend == "python":
            return list(leaves), tuple(leaves)
        return self._np.array(leaves, dtype=self._np.intp), tuple(leaves)

    def _leaf_block(self, values):
        if self.backend == "python":
            return [list(values[slot]) for slot in self._leaf_rows]
        return values[self._leaf_rows]  # fancy index: already a copy

    # ------------------------------------------------------------------
    def eval_comb(self, values) -> None:
        self.stats.cycles += 1
        if self._last is None:
            # Cold pass: unsettled intermediates, run the dense walk.
            self._inner.eval_comb(values)
            self.stats.layers_evaluated += self.schedule.num_layers
            self.stats.ops_evaluated += self.schedule.num_records
            self.stats.lanes_active += self.lanes
            self._last = self._leaf_block(values)
            return
        if self.backend == "python":
            self._eval_python(values)
        else:
            self._eval_numpy(values)

    def _eval_numpy(self, values) -> None:
        np = self._np
        schedule = self.schedule
        current = values[self._leaf_rows]
        diff = current != self._last
        lane_mask = diff.any(axis=0)
        active = np.flatnonzero(lane_mask)
        if active.size == 0:
            self.stats.layers_skipped += schedule.num_layers
            self.stats.ops_skipped += schedule.num_records
            self.stats.lanes_skipped += self.lanes
            return
        self.stats.lanes_active += int(active.size)
        self.stats.lanes_skipped += self.lanes - int(active.size)
        changed_slots = {
            self._leaf_row_slot[int(i)]
            for i in np.flatnonzero(diff.any(axis=1))
        }

        # Lane compaction: gather active columns into a dense B' plane.
        compact = int(active.size) < self.lanes
        plane = values[:, active] if compact else values

        pending = PendingLayers(schedule.num_layers, schedule.consumers)
        for slot in changed_slots:
            pending.mark(slot)
        for layer_index, layer in enumerate(self._record_fns):
            queued = pending.pending(layer_index)
            if not queued:
                self.stats.layers_skipped += 1
                self.stats.ops_skipped += len(layer)
                continue
            for record_index in queued:
                fn, s, operands, widths, ow, slot = layer[record_index]
                new = fn([plane[r] for r in operands], widths, ow)
                if (new != plane[s]).any():
                    plane[s] = new
                    pending.mark(slot)
            self.stats.layers_evaluated += 1
            self.stats.ops_evaluated += len(queued)
            self.stats.ops_skipped += len(layer) - len(queued)

        if compact:
            values[:, active] = plane
        self._last = self._leaf_block(values)

    def _eval_python(self, values) -> None:
        schedule = self.schedule
        last = self._last
        lanes = self.lanes
        changed_slots = set()
        lane_active = [False] * lanes
        for index, slot in enumerate(self._leaf_rows):
            row, prev = values[slot], last[index]
            if row == prev:
                continue
            changed_slots.add(slot)
            for lane in range(lanes):
                if row[lane] != prev[lane]:
                    lane_active[lane] = True
        if not changed_slots:
            self.stats.layers_skipped += schedule.num_layers
            self.stats.ops_skipped += schedule.num_records
            self.stats.lanes_skipped += lanes
            return
        # Compaction without NumPy: the walk loops over active lanes only.
        active = [lane for lane in range(lanes) if lane_active[lane]]
        self.stats.lanes_active += len(active)
        self.stats.lanes_skipped += lanes - len(active)

        pending = PendingLayers(schedule.num_layers, schedule.consumers)
        for slot in changed_slots:
            pending.mark(slot)
        for layer_index, layer in enumerate(self._record_fns):
            queued = pending.pending(layer_index)
            if not queued:
                self.stats.layers_skipped += 1
                self.stats.ops_skipped += len(layer)
                continue
            for record_index in queued:
                fn, s, operands, widths, ow, slot = layer[record_index]
                out_row = values[s]
                rows = [values[r] for r in operands]
                record_changed = False
                for lane in active:
                    new = fn([row[lane] for row in rows], widths, ow)
                    if new != out_row[lane]:
                        out_row[lane] = new
                        record_changed = True
                if record_changed:
                    pending.mark(slot)
            self.stats.layers_evaluated += 1
            self.stats.ops_evaluated += len(queued)
            self.stats.ops_skipped += len(layer) - len(queued)
        self._last = self._leaf_block(values)


class BatchCodegenKernel(BatchKernel):
    """Straight-line SU-style code over lane vectors (native-width planes).

    Every operation becomes one generated statement ``V[s] = <numpy
    expression>``; like the scalar SU kernel the OIM is fully embedded in
    the code, and like TI the guarded helpers keep the hot loop free of
    Python-level branching.  Bool comparison results are normalised by
    the uint64 row assignment itself.

    On a ``u64xN`` plane the generated code is limb-aware: narrow
    statements index single limb rows (``V[17] = ...``) with constants
    inlined exactly as on ``u64``, while wide statements assign limb-row
    slices from split-limb evaluator calls
    (``V[40:42] = _limb_mul((V[12:13], V[38:39]), (64, 1), 65)``); wide
    constant operands are read from their preloaded limb rows.
    """

    style = CODEGEN

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        if backend not in ("u64", "u64xN"):
            raise ValueError(
                "the batched codegen kernel needs a native uint64 plane "
                f"('u64' or 'u64xN'); got {backend!r}"
            )
        super().__init__(bundle, config, lanes, backend)
        layout = limb_layout(bundle) if backend == "u64xN" else None
        statements = _cached_codegen_statements(bundle, layout, backend)
        extra = None
        if layout is not None:
            np = numpy_or_none()
            extra = {
                f"_limb_{name}": fn
                for name, fn in make_limb_table(np).items()
            }
        self._functions = _compile_batch_chunks(statements, extra)

    def eval_comb(self, values) -> None:
        for function in self._functions:
            function(values)


def _codegen_statements(bundle: OimBundle, layout) -> List[str]:
    """The SU/TI statement list: one generated line per program row."""
    program = cached_program(bundle)
    const_values = program.const_values()
    op_names = program.op_names
    statements: List[str] = []
    for n, s, operands, widths, out_width in program.records():
        if layout is None or _is_narrow(widths, out_width):
            args = [
                str(const_values[r]) if r in const_values else
                f"V[{r if layout is None else layout.offsets[r]}]"
                for r in operands
            ]
            expression = numpy_expr(op_names[n], args, widths, out_width)
            target = s if layout is None else layout.offsets[s]
            statements.append(f"    V[{target}] = {expression}")
        else:
            args = [
                f"V[{layout.slices[r].start}:{layout.slices[r].stop}]"
                for r in operands
            ]
            expression = numpy_limb_expr(op_names[n], args, widths, out_width)
            target = layout.slices[s]
            statements.append(
                f"    V[{target.start}:{target.stop}] = {expression}"
            )
    return statements


def _cached_codegen_statements(
    bundle: OimBundle, layout, backend: str
) -> List[str]:
    """Statement generation through the :mod:`repro.serve` artifact
    cache (kind ``sucodegen``), keyed by the program fingerprint and the
    plane backend (the limb layout changes what the statements index).
    Lane count does not enter: statements address rows, not lanes.
    """
    from ..serve import artifacts

    if artifacts.get_cache() is None:
        return _codegen_statements(bundle, layout)
    program = cached_program(bundle)
    digest = hashlib.sha256(
        f"sucodegen:{program.fingerprint}:{backend}".encode()
    ).hexdigest()
    return artifacts.cache_through(
        "sucodegen", digest, lambda: _codegen_statements(bundle, layout)
    )


def _compile_batch_chunks(
    statements: List[str], extra_namespace: Optional[Dict[str, object]] = None
) -> List[Callable]:
    """Chunked compile (as the scalar SU kernel) with the vector helpers
    -- and, for limb-aware code, the split-limb evaluators -- available
    as globals of the generated functions."""
    np = numpy_or_none()
    helpers = make_helpers(np)
    if extra_namespace:
        helpers = {**helpers, **extra_namespace}
    functions: List[Callable] = []
    for start in range(0, max(len(statements), 1), CODEGEN_CHUNK):
        chunk = statements[start:start + CODEGEN_CHUNK]
        name = f"bsu_chunk_{start // CODEGEN_CHUNK}"
        body = "\n".join(chunk) if chunk else "    pass"
        namespace: Dict[str, object] = dict(helpers)
        code = compile(f"def {name}(V):\n{body}\n", f"<batch-kernel:{name}>", "exec")
        exec(code, namespace)
        functions.append(namespace[name])  # type: ignore[index]
    return functions


class CompiledBatchKernel(BatchKernel):
    """The compiled C pass (``kernel="compiled"``): one shared-object
    call evaluates the whole straight-line program for every lane.

    Emission, compilation, and the ``cbin`` artifact cache live in
    :mod:`repro.lower.cbackend`; this class only binds the loaded pass
    to the kernel interface.  Needs the native ``u64`` plane (slot rows
    are the C kernel's address space) -- the factory falls back to the
    NumPy codegen kernel on other backends or when no toolchain is
    available.
    """

    style = COMPILED

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        if backend != "u64":
            raise CBackendUnavailable(
                f"the compiled kernel needs the native 'u64' plane; got {backend!r}"
            )
        super().__init__(bundle, config, lanes, backend)
        self._comb = compiled_comb(bundle)

    @property
    def name(self) -> str:
        return f"compiledx{self.lanes}[{self.backend}]"

    def eval_comb(self, values) -> None:
        self._comb(values)


#: Scalar kernel configurations mapped onto batched execution styles.
#: Rolled-side configs keep the OIM in data (the walk); the fully
#: unrolled SU/TI configs embed it in generated code.
_STYLE_OF_CONFIG: Dict[str, str] = {
    "RU": WALK, "OU": WALK, "NU": WALK, "PSU": WALK, "IU": WALK,
    "SU": CODEGEN, "TI": CODEGEN,
}


def make_batch_kernel(
    bundle: OimBundle,
    config: KernelConfig | str,
    lanes: int,
    backend: str = "auto",
) -> BatchKernel:
    """Instantiate the batched kernel for a configuration and backend.

    ``backend`` is resolved via :func:`repro.batch.backend.pick_backend`;
    a codegen-style request transparently degrades to the walk kernel
    when no native uint64 plane is available (an explicit ``object``
    request or no NumPy is a property of the design/environment, not a
    user error).

    ``"activity"`` (or ``"activity:PSU"`` etc.) selects the batched
    activity cascade (:class:`BatchActivityKernel`) around the named
    base configuration -- on any backend, including the pure-Python
    fallback when NumPy is absent.

    ``"compiled"`` selects the compiled C pass
    (:class:`CompiledBatchKernel`).  When the design needs more than the
    native ``u64`` plane or no C toolchain (and no cached shared object)
    is available, the factory degrades to the SU codegen kernel and
    records why on the returned kernel's ``compiled_fallback``
    attribute -- like the codegen degrade above, a missing compiler is a
    property of the environment, not a user error.
    """
    activity = False
    compiled = False
    if isinstance(config, str):
        name = config.strip().lower()
        if name.startswith("activity"):
            _, _, base = name.partition(":")
            config = get_kernel_config(base or "PSU")
            activity = True
        elif name == "compiled":
            config = get_kernel_config("SU")
            compiled = True
        else:
            config = get_kernel_config(config)
    backend = pick_backend(bundle, backend)
    if compiled:
        try:
            return CompiledBatchKernel(bundle, config, lanes, backend)
        except CBackendUnavailable as reason:
            kernel = _dispatch_kernel(bundle, config, lanes, backend, activity)
            kernel.compiled_fallback = str(reason)
            return kernel
    return _dispatch_kernel(bundle, config, lanes, backend, activity)


def _dispatch_kernel(
    bundle: OimBundle,
    config: KernelConfig,
    lanes: int,
    backend: str,
    activity: bool,
) -> BatchKernel:
    if activity:
        return BatchActivityKernel(bundle, config, lanes, backend)
    if backend == "python":
        return BatchPyKernel(bundle, config, lanes, backend)
    style = _STYLE_OF_CONFIG.get(config.name, WALK)
    if style == CODEGEN and backend in ("u64", "u64xN"):
        return BatchCodegenKernel(bundle, config, lanes, backend)
    return BatchWalkKernel(bundle, config, lanes, backend)
