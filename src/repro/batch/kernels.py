"""Executable batched kernels: one OIM pass evaluates B lanes.

Two kernels are lowered from the existing :class:`OimBundle`, mirroring
the scalar spectrum of Section 5.2 with the lane rank vectorised away:

* :class:`BatchWalkKernel` -- a vectorised RU/OU-style map/reduce walk.
  It traverses the *optimized*-format OIM arrays (Figure 12b) exactly as
  the scalar ``RUKernel`` does, but every operand fetch pulls a lane
  vector and every compute operator applies across all B lanes at once
  (:mod:`repro.batch.vecsem`).  Serves both the uint64 fast path and the
  arbitrary-width object path.
* :class:`BatchCodegenKernel` -- a straight-line SU/TI-style variant:
  the OIM is fully embedded in generated Python whose expressions are
  NumPy lane-vector operations (:func:`repro.kernels.expr.numpy_expr`).
  uint64-only; the simulator transparently drops to the walk kernel for
  wider designs.

:class:`BatchPyKernel` is the pure-Python list-of-lists fallback used
when NumPy is absent: the same schedule, evaluated lane by lane with the
scalar semantics, so the subsystem is always importable and bit-exact.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..kernels.config import KernelConfig, get_kernel_config
from ..kernels.expr import numpy_expr
from ..kernels.pykernels import CODEGEN_CHUNK
from ..oim.builder import OimBundle
from ..oim.formats import lower_oim_fast
from .backend import make_helpers, numpy_or_none, pick_backend
from .vecsem import make_vec_table

#: Kernel styles (how the OIM pass is executed), orthogonal to backends.
WALK, CODEGEN, PYTHON = "walk", "codegen", "python"


class BatchKernel:
    """Base class: evaluates one cycle of combinational logic over the
    ``(num_slots, B)`` value plane, for all lanes at once."""

    style: str = "abstract"

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        self.bundle = bundle
        self.config = config
        self.lanes = lanes
        self.backend = backend

    def eval_comb(self, values) -> None:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return f"{self.config.name}x{self.lanes}[{self.backend}]"


def _walk_schedule(bundle: OimBundle, semantics_of: Callable[[int], Callable]):
    """Flatten the optimized-format OIM walk into ``(fn, s, rs, ws, ow)``.

    The traversal order is the RU kernel's: rank I outermost, rank S
    concordant within each layer, operands in O order.  Resolving it at
    build time keeps the per-cycle loop free of format bookkeeping -- the
    lane rank is where the parallelism now comes from.
    """
    lowered = lower_oim_fast(bundle, "optimized")
    i_payloads = lowered.ranks["I"].payloads
    s_coords = lowered.ranks["S"].coords
    n_coords = lowered.ranks["N"].coords
    r_coords = lowered.ranks["R"].coords
    width = bundle.slot_width

    schedule = []
    op_index = 0
    r_index = 0
    for layer_count in i_payloads:                    # Rank I
        for _ in range(layer_count):                  # Rank S
            s = s_coords[op_index]
            entry = bundle.op_table.entry(n_coords[op_index])
            op_index += 1
            operands = tuple(r_coords[r_index:r_index + entry.arity])
            r_index += entry.arity                    # Ranks O, R
            schedule.append((
                semantics_of(entry),
                s,
                operands,
                tuple(width[r] for r in operands),
                width[s],
            ))
    return schedule


class BatchWalkKernel(BatchKernel):
    """Vectorised RU-style map/reduce walk over the optimized OIM format."""

    style = WALK

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        super().__init__(bundle, config, lanes, backend)
        np = numpy_or_none()
        mode = "object" if backend == "object" else "u64"
        table = make_vec_table(np, mode)
        self._schedule = _walk_schedule(
            bundle, lambda entry: table[entry.name]
        )

    def eval_comb(self, values) -> None:
        for fn, s, operands, widths, out_width in self._schedule:
            values[s] = fn([values[r] for r in operands], widths, out_width)


class BatchPyKernel(BatchKernel):
    """Pure-Python fallback: same walk, scalar semantics lane by lane."""

    style = PYTHON

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        super().__init__(bundle, config, lanes, backend)
        self._schedule = _walk_schedule(bundle, lambda entry: entry.semantics)

    def eval_comb(self, values) -> None:
        lanes = range(self.lanes)
        for fn, s, operands, widths, out_width in self._schedule:
            rows = [values[r] for r in operands]
            values[s] = [
                fn([row[lane] for row in rows], widths, out_width)
                for lane in lanes
            ]


class BatchCodegenKernel(BatchKernel):
    """Straight-line SU-style code over lane vectors (uint64 only).

    Every operation becomes one generated statement ``V[s] = <numpy
    expression>``; like the scalar SU kernel the OIM is fully embedded in
    the code, and like TI the guarded helpers keep the hot loop free of
    Python-level branching.  Bool comparison results are normalised by
    the uint64 row assignment itself.
    """

    style = CODEGEN

    def __init__(
        self, bundle: OimBundle, config: KernelConfig, lanes: int, backend: str
    ) -> None:
        if backend != "u64":
            raise ValueError(
                "the batched codegen kernel needs the uint64 backend; "
                f"got {backend!r} (designs wider than 64 bits take the "
                "walk kernel)"
            )
        super().__init__(bundle, config, lanes, backend)
        const_values = dict(bundle.const_slots)
        statements: List[str] = []
        for layer in bundle.layers:
            for record in layer:
                entry = bundle.op_table.entry(record.n)
                args: List[str] = []
                widths: List[int] = []
                for r in record.operands:
                    args.append(
                        str(const_values[r]) if r in const_values else f"V[{r}]"
                    )
                    widths.append(bundle.slot_width[r])
                expression = numpy_expr(
                    entry.name, args, widths, bundle.slot_width[record.s]
                )
                statements.append(f"    V[{record.s}] = {expression}")
        self._functions = _compile_batch_chunks(statements)

    def eval_comb(self, values) -> None:
        for function in self._functions:
            function(values)


def _compile_batch_chunks(statements: List[str]) -> List[Callable]:
    """Chunked compile (as the scalar SU kernel) with the vector helpers
    available as globals of the generated functions."""
    np = numpy_or_none()
    helpers = make_helpers(np)
    functions: List[Callable] = []
    for start in range(0, max(len(statements), 1), CODEGEN_CHUNK):
        chunk = statements[start:start + CODEGEN_CHUNK]
        name = f"bsu_chunk_{start // CODEGEN_CHUNK}"
        body = "\n".join(chunk) if chunk else "    pass"
        namespace: Dict[str, object] = dict(helpers)
        code = compile(f"def {name}(V):\n{body}\n", f"<batch-kernel:{name}>", "exec")
        exec(code, namespace)
        functions.append(namespace[name])  # type: ignore[index]
    return functions


#: Scalar kernel configurations mapped onto batched execution styles.
#: Rolled-side configs keep the OIM in data (the walk); the fully
#: unrolled SU/TI configs embed it in generated code.
_STYLE_OF_CONFIG: Dict[str, str] = {
    "RU": WALK, "OU": WALK, "NU": WALK, "PSU": WALK, "IU": WALK,
    "SU": CODEGEN, "TI": CODEGEN,
}


def make_batch_kernel(
    bundle: OimBundle,
    config: KernelConfig | str,
    lanes: int,
    backend: str = "auto",
) -> BatchKernel:
    """Instantiate the batched kernel for a configuration and backend.

    ``backend`` is resolved via :func:`repro.batch.backend.pick_backend`;
    a codegen-style request transparently degrades to the walk kernel
    when the uint64 fast path is unavailable (wide slots or no NumPy is
    a property of the design/environment, not a user error).
    """
    if isinstance(config, str):
        config = get_kernel_config(config)
    backend = pick_backend(bundle, backend)
    if backend == "python":
        return BatchPyKernel(bundle, config, lanes, backend)
    style = _STYLE_OF_CONFIG.get(config.name, WALK)
    if style == CODEGEN and backend == "u64":
        return BatchCodegenKernel(bundle, config, lanes, backend)
    return BatchWalkKernel(bundle, config, lanes, backend)
