"""Batched tensor simulation: many stimulus lanes through one OIM pass.

Batched simulation
==================

Full-cycle RTL simulation in this reproduction evaluates the design's
OIM (operation-interconnection matrix) once per cycle over a value plane
``V``.  Tensor algebra gives that evaluation a *batch rank for free*:
widening every slot from a scalar to a vector of ``B`` independent lanes
turns the same compiled design into a throughput engine -- one OIM pass
advances B simulations at once, the way GSIM and Manticore exploit bulk
parallelism across independent evaluation units.  Lanes share the design
and the kernel but nothing else, which is exactly the shape of multi-seed
regression sweeps and design-space exploration.

:class:`BatchSimulator` keeps the scalar simulator's surface::

    from repro.batch import BatchSimulator
    from repro.workloads.stimulus import batched_workload_for

    sim = BatchSimulator("rocket-1 FIRRTL or bundle...", lanes=64, kernel="SU")
    workload = batched_workload_for("rocket-1", lanes=64)   # one seed per lane
    for cycle in range(1000):
        workload.apply(sim, cycle)          # pokes per-lane input vectors
        sim.step()
    print(sim.peek("out"))                  # -> list of 64 ints

Execution styles and backends
-----------------------------

Two batched kernels are lowered from the existing ``OimBundle``
(:mod:`repro.batch.kernels`): a vectorised RU-style map/reduce *walk*
over the optimized OIM format (kernel names ``RU``/``OU``/``NU``/
``PSU``/``IU``), and a straight-line SU/TI-style *codegen* variant whose
generated statements are NumPy lane-vector expressions (``SU``/``TI``).
A third style, ``activity`` (``kernel="activity"`` or
``"activity:PSU"``), drives the walk from the per-cycle toggled-value
fiber with per-lane activity masks and lane compaction
(:class:`repro.batch.kernels.BatchActivityKernel`): sparsely-active
batches gather their active lanes into a dense B' < B sub-plane, and
quiescent cycles skip the OIM pass entirely.
Storage (:mod:`repro.batch.backend`) is a batched value plane: ``u64``
NumPy ``(num_slots, B)`` arrays when every slot fits 64 bits, the
split-limb ``u64xN`` plane (``ceil(width/64)`` uint64 limb rows per
slot, carry-propagating limb kernels) for wider designs, ``object``
arrays of Python ints as the arbitrary-width reference, and a
pure-Python list-of-lists fallback when NumPy is absent -- NumPy is
strictly optional (the ``[batch]`` extra) and this package always
imports cleanly without it.  ``auto`` resolves to ``u64``/``u64xN``
with NumPy and ``python`` without; >64-bit designs such as sha3 stay on
the vectorised fast path instead of silently degrading to object rows.

All paths are bit-exact with B independent scalar ``Simulator`` runs,
including multi-clock ``step_domain``, ``reset`` and checkpointing;
``tests/test_batch.py`` asserts lane-wise lockstep equivalence across
designs, kernels, and backends.
"""

from .backend import BACKENDS, HAS_NUMPY, pick_backend
from .kernels import (
    BatchActivityKernel,
    BatchCodegenKernel,
    BatchKernel,
    BatchPyKernel,
    BatchWalkKernel,
    make_batch_kernel,
)
from .simulator import BatchSimulator, BatchSnapshot

__all__ = [
    "BACKENDS",
    "BatchActivityKernel",
    "BatchCodegenKernel",
    "BatchKernel",
    "BatchPyKernel",
    "BatchSimulator",
    "BatchSnapshot",
    "BatchWalkKernel",
    "HAS_NUMPY",
    "make_batch_kernel",
    "pick_backend",
]
