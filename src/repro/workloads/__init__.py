"""Workload stimulus generators (paper Table 3).

Public API::

    from repro.workloads import dhrystone_stimulus, workload_for, SIM_CYCLES
"""

from .stimulus import (
    SIM_CYCLES,
    BatchWorkload,
    Workload,
    batched_workload_for,
    dhrystone_stimulus,
    matrix_add_stimulus,
    sha3_rocc_stimulus,
    sim_cycles_for,
    sparse_batched_workload_for,
    sparsify,
    workload_for,
)

__all__ = [
    "SIM_CYCLES",
    "BatchWorkload",
    "Workload",
    "batched_workload_for",
    "dhrystone_stimulus",
    "matrix_add_stimulus",
    "sha3_rocc_stimulus",
    "sim_cycles_for",
    "sparse_batched_workload_for",
    "sparsify",
    "workload_for",
]
