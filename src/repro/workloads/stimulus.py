"""Deterministic stimulus generators for the paper's workloads (Table 3).

Full-cycle simulation is activity-oblivious (Section 2.1), so simulation
*cost* depends on the design and cycle count, not on which program runs.
The stimulus here is therefore a deterministic pseudo-program stream that
exercises the same DUT interfaces the paper's workloads exercise:

* ``dhrystone`` for the core designs -- an instruction-stream generator
  with dhrystone-like opcode mix (ALU-heavy, ~15% branches, ~25% mem);
* ``matrix_add`` for Gemmini -- element streams with the ``mode_add`` flag;
* ``sha3-rocc`` for SHA3 -- absorb-then-permute command sequences.

Table 3's simulation cycle counts are reproduced (scaled) in
:data:`SIM_CYCLES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Paper Table 3: simulated cycles per design (thousands), full scale.
PAPER_SIM_CYCLES_K: Dict[str, int] = {
    "rocket": 540,
    "small": 750,
    "gemmini-8": 160,
    "gemmini-16": 350,
    "gemmini-32": 1100,
    "sha3": 1200,
}

#: Default cycle-count scale for experiments (paired with the ~1/18 design
#: scale of the core generators; see DESIGN.md "Scaling knobs").
CYCLE_SCALE = 1.0 / 256.0

SIM_CYCLES: Dict[str, int] = {
    name: max(64, int(kilo * 1000 * CYCLE_SCALE))
    for name, kilo in PAPER_SIM_CYCLES_K.items()
}


def sim_cycles_for(design_name: str, scale: float = 1.0) -> int:
    """Simulated cycle count for a design (Table 3, scaled)."""
    family = design_name.split("-")[0]
    key = design_name if design_name in SIM_CYCLES else family
    for candidate in (design_name, family, "rocket"):
        if candidate in SIM_CYCLES:
            key = candidate
            break
    return max(16, int(SIM_CYCLES[key] * scale))


def _xorshift32(state: int) -> int:
    state ^= (state << 13) & 0xFFFFFFFF
    state ^= state >> 17
    state ^= (state << 5) & 0xFFFFFFFF
    return state & 0xFFFFFFFF


@dataclass
class Workload:
    """A named per-cycle stimulus: ``{input_name: fn(cycle) -> value}``."""

    name: str
    drivers: Dict[str, Callable[[int], int]] = field(default_factory=dict)

    @property
    def lane_count(self) -> int:
        return 1

    def lane(self, index: int) -> "Workload":
        """Uniform lane access: a scalar workload is its own lane 0, so
        mixed-rank fleets slice any workload without a rank check."""
        if index != 0:
            raise IndexError(
                f"scalar workload {self.name!r} has a single lane (0), "
                f"not {index}"
            )
        return self

    def apply(self, simulator, cycle: int) -> None:
        for name, driver in self.drivers.items():
            simulator.poke(name, driver(cycle))


#: RISC-V-ish opcodes with a dhrystone-like mix (ALU/branch/load/store).
_DHRYSTONE_OPCODES = (
    0x13, 0x13, 0x13, 0x33, 0x33, 0x33, 0x33, 0x03, 0x03, 0x23,
    0x63, 0x63, 0x13, 0x33, 0x03, 0x37,
)


def dhrystone_stimulus(seed: int = 0xD1135) -> Workload:
    """Instruction-stream stimulus with a dhrystone-like opcode mix."""

    def instr(cycle: int) -> int:
        state = seed + cycle * 0x9E3779B9
        state = _xorshift32(_xorshift32(state & 0xFFFFFFFF))
        opcode = _DHRYSTONE_OPCODES[state % len(_DHRYSTONE_OPCODES)]
        return (state & 0xFFFFFF80) | opcode

    def mem_rdata(cycle: int) -> int:
        return _xorshift32((seed ^ 0xABCD) + cycle * 2654435761 & 0xFFFFFFFF)

    def reset(cycle: int) -> int:
        return 1 if cycle < 2 else 0

    return Workload(
        "dhrystone",
        {"instr": instr, "mem_rdata": mem_rdata, "reset": reset,
         "dmi_req_valid": lambda c: 0, "dmi_req_write": lambda c: 0,
         "dmi_req_addr": lambda c: 0, "dmi_req_data": lambda c: 0},
    )


def matrix_add_stimulus(seed: int = 0x6E3) -> Workload:
    """Gemmini ``matrix_add``: stream elements with the add mode set."""

    def act(cycle: int) -> int:
        return _xorshift32(seed + cycle * 31) & 0xFF

    def weight(cycle: int) -> int:
        return _xorshift32(seed ^ (cycle * 17)) & 0xFF

    return Workload(
        "matrix_add",
        {
            "act_in": act,
            "weight_in": weight,
            "load_w": lambda c: 1 if c < 4 else 0,
            "mode_add": lambda c: 1,
            "reset": lambda c: 1 if c < 2 else 0,
        },
    )


def sha3_rocc_stimulus(
    lane_width: int = 64,
    rounds_per_cycle: int = 4,
    seed: int = 0x5A3,
) -> Workload:
    """SHA3 RoCC-style command stream: absorb 25 lanes, then permute.

    Also streams the iota round-constant schedule into the ``rc*`` inputs
    (the accelerator's host-fed constant ROM; see
    :mod:`repro.designs.sha3`).
    """
    from ..designs.sha3 import NUM_ROUNDS, ROUND_CONSTANTS

    mask = (1 << lane_width) - 1
    permute_start = 27
    steps = NUM_ROUNDS // rounds_per_cycle

    def absorb_valid(cycle: int) -> int:
        return 1 if 2 <= cycle < 27 else 0

    def absorb_idx(cycle: int) -> int:
        return (cycle - 2) % 25 if 2 <= cycle < 27 else 0

    def absorb_lane(cycle: int) -> int:
        state = _xorshift32(seed + cycle * 0x9E3779B9 & 0xFFFFFFFF)
        wide = (state << 32) | _xorshift32(state)
        return wide & mask

    def start(cycle: int) -> int:
        # Re-launch a permutation every 2*steps cycles after absorption.
        return 1 if cycle >= permute_start and (cycle - permute_start) % (2 * steps) == 0 else 0

    def rc_driver(position: int):
        def driver(cycle: int) -> int:
            if cycle <= permute_start:
                return ROUND_CONSTANTS[position] & mask
            step = ((cycle - permute_start - 1) % (2 * steps)) % steps
            return ROUND_CONSTANTS[step * rounds_per_cycle + position] & mask

        return driver

    drivers: Dict[str, Callable[[int], int]] = {
        "absorb_valid": absorb_valid,
        "absorb_idx": absorb_idx,
        "absorb_lane": absorb_lane,
        "start": start,
        "reset": lambda c: 1 if c < 2 else 0,
    }
    for position in range(rounds_per_cycle):
        drivers[f"rc{position}"] = rc_driver(position)
    return Workload("sha3-rocc", drivers)


def workload_for(design_name: str, seed: Optional[int] = None) -> Workload:
    """The paper's workload pairing: Table 3.

    ``seed`` reseeds the stimulus stream (used by batched stimulus to give
    every lane an independent stream); ``None`` keeps each family's
    historical default seed.
    """
    family = design_name.split("-")[0]
    kwargs = {} if seed is None else {"seed": seed}
    if family in ("rocket", "small", "r", "s"):
        return dhrystone_stimulus(**kwargs)
    if family in ("gemmini", "g"):
        return matrix_add_stimulus(**kwargs)
    if family == "sha3":
        return sha3_rocc_stimulus(**kwargs)
    raise KeyError(f"no workload mapping for design {design_name!r}")


# ----------------------------------------------------------------------
# Batched stimulus: one independent seed per lane
# ----------------------------------------------------------------------

#: Weyl-style lane seed spacing: adjacent lanes get well-separated streams.
LANE_SEED_STRIDE = 0x9E3779B9


@dataclass
class BatchWorkload:
    """Per-lane stimulus for a :class:`repro.batch.BatchSimulator`.

    Holds one scalar :class:`Workload` per lane (each with its own seed)
    and pokes per-lane input *vectors* in one call per input.  ``lane(i)``
    exposes the underlying scalar workload so lockstep tests can drive a
    scalar simulator with exactly lane ``i``'s stream.
    """

    name: str
    lanes: List[Workload]

    @property
    def lane_count(self) -> int:
        return len(self.lanes)

    def lane(self, index: int) -> Workload:
        return self.lanes[index]

    def subset(self, lanes) -> "BatchWorkload":
        """A new workload of only the selected lanes (same order), for
        driving a smaller simulator or pairing with a lane-filtered
        :class:`~repro.sim.VcdWriter`."""
        picked = [self.lanes[index] for index in lanes]
        if not picked:
            raise ValueError("subset() selected no lanes")
        return BatchWorkload(f"{picked[0].name}x{len(picked)}", picked)

    def apply(self, simulator, cycle: int) -> None:
        sim_lanes = getattr(simulator, "lanes", None)
        if isinstance(sim_lanes, int) and sim_lanes != self.lane_count:
            raise ValueError(
                f"workload {self.name!r} has {self.lane_count} lanes, "
                f"simulator has {sim_lanes}; use subset() or rebuild with "
                "batched_workload_for(design, lanes)"
            )
        for name in self.lanes[0].drivers:
            simulator.poke(
                name, [lane.drivers[name](cycle) for lane in self.lanes]
            )


# ----------------------------------------------------------------------
# Low-activity stimulus: hold each input for N cycles
# ----------------------------------------------------------------------

#: Drivers never held by :func:`sparsify`: control streams that must hit
#: the DUT on their exact cycle (reset pulses would otherwise stretch).
SPARSIFY_PASSTHROUGH = ("reset",)


def _held(driver: Callable[[int], int], period: int) -> Callable[[int], int]:
    # Stateless on purpose: value(c) is a pure function of the cycle, so
    # held stimulus survives reset()/restore() replays and lane slicing
    # without hidden generator state.
    def hold(cycle: int) -> int:
        return driver(cycle - cycle % period)

    return hold


def sparsify(workload, period: int, passthrough=SPARSIFY_PASSTHROUGH):
    """A low-activity variant of ``workload``: inputs change every
    ``period`` cycles instead of every cycle.

    Each driver's value for cycle ``c`` is its base value at the start
    of the current hold window (``c - c % period``) -- a pure function
    of the cycle, so the sparse stream is deterministic and replayable
    like every other stimulus here.  Drivers named in ``passthrough``
    (by default ``reset``) keep their exact per-cycle stream.  With
    ``period=1`` this is the identity.  Accepts a scalar
    :class:`Workload` or a :class:`BatchWorkload` (sparsified per lane),
    and is how the activity benchmarks sweep the input activity factor:
    a period of ``N`` drives roughly ``1/N`` input-toggle activity into
    the sparse engines.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if isinstance(workload, BatchWorkload):
        return BatchWorkload(
            f"{workload.name}~hold{period}",
            [sparsify(lane, period, passthrough) for lane in workload.lanes],
        )
    drivers = {
        name: driver if name in passthrough else _held(driver, period)
        for name, driver in workload.drivers.items()
    }
    return Workload(f"{workload.name}~hold{period}", drivers)


def sparse_batched_workload_for(
    design_name: str,
    lanes: int,
    period: int,
    base_seed: int = 0xB47C4,
) -> BatchWorkload:
    """Table 3's batched workload, held for ``period`` cycles per value --
    the low-activity counterpart of :func:`batched_workload_for`."""
    return sparsify(
        batched_workload_for(design_name, lanes, base_seed=base_seed), period
    )


def batched_workload_for(
    design_name: str, lanes: int, base_seed: int = 0xB47C4
) -> BatchWorkload:
    """Table 3's workload for ``design_name``, widened to ``lanes`` seeds.

    Lane ``i`` receives the scalar workload reseeded with
    ``base_seed + i * LANE_SEED_STRIDE`` (mod 2**32): the multi-seed
    regression sweep the batch engine is built for.
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    per_lane = [
        workload_for(
            design_name, seed=(base_seed + index * LANE_SEED_STRIDE) & 0xFFFFFFFF
        )
        for index in range(lanes)
    ]
    return BatchWorkload(f"{per_lane[0].name}x{lanes}", per_lane)
