"""Testbench utilities: stimulus application and trace capture.

A :class:`Testbench` drives any simulator exposing ``poke``/``peek``/
``step`` (the RTeAAL :class:`~repro.sim.simulator.Simulator`, the FIRRTL
reference interpreter, and both baseline backends), which is what lets the
test suite run the same stimulus against every engine and diff the traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

#: Per-input stimulus: a list of per-cycle values, or a callable of cycle.
Stimulus = Union[Sequence[int], Callable[[int], int]]


@dataclass
class TraceDiff:
    cycle: int
    signal: str
    expected: int
    actual: int


class Testbench:
    """Applies stimulus and records watched signals cycle by cycle."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        simulator,
        stimulus: Optional[Dict[str, Stimulus]] = None,
        watch: Optional[Iterable[str]] = None,
    ) -> None:
        self.simulator = simulator
        self.stimulus: Dict[str, Stimulus] = dict(stimulus or {})
        self.watch: List[str] = list(watch or [])
        self.trace: Dict[str, List[int]] = {name: [] for name in self.watch}

    def drive(self, name: str, values: Stimulus) -> None:
        self.stimulus[name] = values

    def observe(self, name: str) -> None:
        if name not in self.watch:
            self.watch.append(name)
            self.trace[name] = []

    def _value_at(self, stimulus: Stimulus, cycle: int) -> Optional[int]:
        if callable(stimulus):
            return stimulus(cycle)
        if cycle < len(stimulus):
            return stimulus[cycle]
        return None

    def run(self, cycles: int) -> Dict[str, List[int]]:
        """Run ``cycles`` cycles; returns the accumulated trace."""
        for _ in range(cycles):
            cycle = self.simulator.cycle
            for name, stimulus in self.stimulus.items():
                value = self._value_at(stimulus, cycle)
                if value is not None:
                    self.simulator.poke(name, value)
            for name in self.watch:
                self.trace[name].append(self.simulator.peek(name))
            self.simulator.step()
        return self.trace


def compare_traces(
    expected: Dict[str, List[int]], actual: Dict[str, List[int]]
) -> List[TraceDiff]:
    """Diff two traces; empty result means simulators agree."""
    diffs: List[TraceDiff] = []
    for signal in expected:
        if signal not in actual:
            continue
        for cycle, (e, a) in enumerate(zip(expected[signal], actual[signal])):
            if e != a:
                diffs.append(TraceDiff(cycle, signal, e, a))
    return diffs


def run_lockstep(
    simulators: Dict[str, object],
    stimulus: Dict[str, Stimulus],
    watch: Iterable[str],
    cycles: int,
) -> Dict[str, Dict[str, List[int]]]:
    """Run several simulators in lockstep on identical stimulus."""
    benches = {
        name: Testbench(sim, dict(stimulus), list(watch))
        for name, sim in simulators.items()
    }
    return {name: bench.run(cycles) for name, bench in benches.items()}
