"""Testbench utilities: stimulus application and trace capture.

A :class:`Testbench` drives any simulator exposing ``poke``/``peek``/
``step`` -- the scalar RTeAAL :class:`~repro.sim.simulator.Simulator`,
the FIRRTL reference interpreter, both baseline backends, *and* the
batched engines (:class:`~repro.batch.BatchSimulator`,
:class:`~repro.shard.ShardedBatchSimulator`).  The lane rank is
first-class: on a B-lane simulator the recorded trace is indexed
``trace[signal][lane][cycle]``, stimulus can target a single lane
(``drive(name, values, lane=3)``), and :func:`compare_traces` /
:func:`run_lockstep` diff mixed-rank fleets (a scalar trace broadcasts
against lane 0 of a batched one), which is what lets the test suite run
the same stimulus against every engine and diff the traces bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

#: Per-input stimulus: a list of per-cycle values, or a callable of cycle.
#: On a batched simulator each per-cycle value may itself be a lane
#: vector (``Sequence[int]``); plain ints broadcast across lanes.
Stimulus = Union[Sequence, Callable[[int], object]]


class _UnknownValue:
    """Singleton for an *undefined* sampled value (VCD ``x``/``z``).

    External simulator dumps mark undriven or pre-reset signals ``x``;
    :class:`~repro.sim.VcdWriter` does the same for never-poked inputs
    before the first clock edge.  The sentinel compares unequal to every
    integer, so defined values never silently match an unknown, while
    :func:`compare_traces` documents unknown-vs-anything as a non-diff
    (an ``x`` sample cannot witness a divergence).
    """

    __slots__ = ()
    _instance: Optional["_UnknownValue"] = None

    def __new__(cls) -> "_UnknownValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "x"

    def __reduce__(self):
        # Pickling (process executors, cached traces) preserves identity:
        # the sentinel round-trips to the module singleton.
        return (_UnknownValue, ())


#: The undefined-value sentinel (VCD ``x``/``z``); see :class:`_UnknownValue`.
UNKNOWN = _UnknownValue()


def lane_count(simulator) -> Optional[int]:
    """The simulator's lane rank: B for the batched engines (they expose
    a ``lanes`` attribute and ``peek`` returns lane vectors), ``None``
    for rank-0 scalar simulators."""
    lanes = getattr(simulator, "lanes", None)
    return int(lanes) if isinstance(lanes, int) else None


def trace_lanes(trace: Dict[str, list]) -> Optional[int]:
    """Rank of a recorded trace: lane count for ``[lane][cycle]`` traces,
    ``None`` for flat scalar ``[cycle]`` traces (or empty ones)."""
    for rows in trace.values():
        if rows and isinstance(rows[0], (list, tuple)):
            return len(rows)
        if rows:
            return None
    return None


@dataclass
class TraceDiff:
    cycle: int
    signal: str
    expected: int
    actual: int
    #: Lane the divergence occurred in; ``None`` for rank-0 comparisons.
    lane: Optional[int] = None

    def __str__(self) -> str:
        where = f"cycle {self.cycle}"
        if self.lane is not None:
            where += f", lane {self.lane}"
        return (
            f"{self.signal!r} diverges at {where}: expected "
            f"{self.expected}, got {self.actual}"
        )


@dataclass
class FleetDiff:
    """First divergence across a lockstep fleet: which simulator broke
    away from the reference, and where (signal, cycle, lane)."""

    simulator: str
    reference: str
    diff: TraceDiff

    def __str__(self) -> str:
        return f"{self.simulator!r} vs {self.reference!r}: {self.diff}"


class Testbench:
    """Applies stimulus and records watched signals cycle by cycle.

    Stimulus forms (mixable):

    * ``stimulus={name: values}`` / ``drive(name, values)`` -- per-cycle
      values for every lane (ints broadcast on batched simulators;
      per-cycle lane vectors drive lanes individually);
    * ``drive(name, values, lane=i)`` -- per-cycle values for one lane
      of a batched simulator (other lanes keep their previous value);
    * ``stimulus=workload`` -- a :class:`repro.workloads.Workload` or
      :class:`repro.workloads.BatchWorkload` (anything with an
      ``apply(simulator, cycle)`` method), applied each cycle.

    On a rank-0 simulator ``run()`` returns ``{signal: [cycle values]}``
    exactly as before; on a B-lane simulator it returns lane-major
    ``{signal: [[cycle values] per lane]}`` traces.
    """

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        simulator,
        stimulus=None,
        watch: Optional[Iterable[str]] = None,
    ) -> None:
        self.simulator = simulator
        self.lanes = lane_count(simulator)
        self.stimulus: Dict[str, Stimulus] = {}
        self._lane_stimulus: Dict[str, Dict[int, Stimulus]] = {}
        self._workloads: List[object] = []
        if stimulus is not None:
            if hasattr(stimulus, "apply"):
                self._workloads.append(stimulus)
            else:
                self.stimulus.update(stimulus)
        self.watch: List[str] = list(watch or [])
        self.trace: Dict[str, list] = {
            name: self._empty_rows() for name in self.watch
        }

    def _empty_rows(self) -> list:
        if self.lanes is None:
            return []
        return [[] for _ in range(self.lanes)]

    # ------------------------------------------------------------------
    # Stimulus
    # ------------------------------------------------------------------
    def drive(
        self, name: str, values: Stimulus, lane: Optional[int] = None
    ) -> None:
        """Attach stimulus to an input, optionally for a single lane."""
        if lane is None:
            self.stimulus[name] = values
            return
        if self.lanes is None and lane != 0:
            raise ValueError(
                f"drive({name!r}, lane={lane}): scalar simulators have a "
                "single lane (0)"
            )
        if self.lanes is not None and not 0 <= lane < self.lanes:
            raise ValueError(
                f"drive({name!r}, lane={lane}): simulator has "
                f"{self.lanes} lanes"
            )
        # Lane drives layer on top of whole-input stimulus on every rank:
        # a scalar simulator's lane 0 is an override too, so identical
        # drive() sequences behave the same on scalar and 1-lane members.
        self._lane_stimulus.setdefault(name, {})[lane] = values

    def add_workload(self, workload) -> None:
        """Attach a :class:`Workload`/:class:`BatchWorkload` (anything
        with ``apply(simulator, cycle)``)."""
        if not hasattr(workload, "apply"):
            raise TypeError(
                f"workload {workload!r} has no apply(simulator, cycle)"
            )
        self._workloads.append(workload)

    def observe(self, name: str) -> None:
        if name not in self.watch:
            self.watch.append(name)
            self.trace[name] = self._empty_rows()

    def _value_at(self, stimulus: Stimulus, cycle: int):
        if callable(stimulus):
            return stimulus(cycle)
        if cycle < len(stimulus):
            return stimulus[cycle]
        return None

    def _poke_lane(self, name: str, lane: int, value: int) -> None:
        poke_lane = getattr(self.simulator, "poke_lane", None)
        if poke_lane is None:  # rank-0: lane 0 is the whole simulator
            self.simulator.poke(name, value)
        else:
            poke_lane(name, lane, value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> Dict[str, list]:
        """Run ``cycles`` cycles; returns the accumulated trace."""
        for _ in range(cycles):
            cycle = self.simulator.cycle
            for workload in self._workloads:
                workload.apply(self.simulator, cycle)
            for name, stimulus in self.stimulus.items():
                value = self._value_at(stimulus, cycle)
                if value is not None:
                    self.simulator.poke(name, value)
            for name, per_lane in self._lane_stimulus.items():
                for lane, stimulus in per_lane.items():
                    value = self._value_at(stimulus, cycle)
                    if value is not None:
                        self._poke_lane(name, lane, value)
            for name in self.watch:
                value = self.simulator.peek(name)
                if self.lanes is None:
                    self.trace[name].append(value)
                else:
                    rows = self.trace[name]
                    for lane in range(self.lanes):
                        rows[lane].append(value[lane])
            self.simulator.step()
        return self.trace

    # ------------------------------------------------------------------
    # Trace access
    # ------------------------------------------------------------------
    def lane_trace(self, lane: int = 0) -> Dict[str, List[int]]:
        """One lane's flat ``{signal: [cycle values]}`` trace.

        For a rank-0 simulator lane 0 is the whole trace, so scalar and
        batched benches diff uniformly via ``lane_trace``.
        """
        if self.lanes is None:
            if lane != 0:
                raise IndexError(
                    f"scalar testbench has a single lane (0), not {lane}"
                )
            return self.trace
        if not 0 <= lane < self.lanes:
            raise IndexError(
                f"lane {lane} out of range for {self.lanes}-lane testbench"
            )
        return {name: rows[lane] for name, rows in self.trace.items()}


def extract_lane(trace: Dict[str, list], lane: int) -> Dict[str, List[int]]:
    """One lane of a trace as a flat rank-0 trace.

    A rank-0 trace passes through untouched for ``lane == 0`` (scalar
    simulators *are* lane 0 of a mixed fleet).
    """
    rank = trace_lanes(trace)
    if rank is None:
        if lane != 0:
            raise IndexError(f"rank-0 trace has a single lane (0), not {lane}")
        return trace
    if not 0 <= lane < rank:
        raise IndexError(f"lane {lane} out of range for {rank}-lane trace")
    return {name: rows[lane] for name, rows in trace.items()}


def compare_traces(
    expected: Dict[str, list],
    actual: Dict[str, list],
    lanes: Optional[Iterable[int]] = None,
) -> List[TraceDiff]:
    """Diff two traces of any rank; empty result means they agree.

    * rank 0 vs rank 0 -- the classic per-cycle diff (``lane=None``);
    * rank 1 vs rank 1 -- lane-wise diff over every common lane, or only
      the lanes in ``lanes=``;
    * mixed rank -- the rank-0 trace broadcasts against lane 0 of the
      rank-1 trace (or against each lane in ``lanes=``), which is how a
      scalar reference checks a batched engine's lane-0 seed.

    Only signals present in both traces are compared.  A sample that is
    :data:`UNKNOWN` on either side (a VCD ``x``/``z`` readback, or a
    never-poked input before the first clock edge) matches *anything*:
    external dumps mark pre-reset values ``x`` where our engines define
    them as 0, and that documented non-diff is what lets baseline VCDs
    join the differential matrix as oracles.
    """
    expected_rank = trace_lanes(expected)
    actual_rank = trace_lanes(actual)
    if expected_rank is None and actual_rank is None:
        if lanes is not None and list(lanes) != [0]:
            raise ValueError("rank-0 traces have a single lane (0)")
        return _diff_flat(expected, actual, None)
    if expected_rank is not None and actual_rank is not None:
        common = min(expected_rank, actual_rank)
        lane_list = list(lanes) if lanes is not None else list(range(common))
    else:
        lane_list = list(lanes) if lanes is not None else [0]

    def lane_view(trace, rank, lane):
        # A rank-0 trace broadcasts: it stands in for every selected lane.
        return trace if rank is None else extract_lane(trace, lane)

    diffs: List[TraceDiff] = []
    for lane in lane_list:
        diffs.extend(
            _diff_flat(
                lane_view(expected, expected_rank, lane),
                lane_view(actual, actual_rank, lane),
                lane,
            )
        )
    return diffs


def _diff_flat(
    expected: Dict[str, List[int]],
    actual: Dict[str, List[int]],
    lane: Optional[int],
) -> List[TraceDiff]:
    diffs: List[TraceDiff] = []
    for signal in expected:
        if signal not in actual:
            continue
        for cycle, (e, a) in enumerate(zip(expected[signal], actual[signal])):
            if e is UNKNOWN or a is UNKNOWN:
                continue
            if e != a:
                diffs.append(TraceDiff(cycle, signal, e, a, lane))
    return diffs


def first_divergence(
    traces: Dict[str, Dict[str, list]],
    reference: Optional[str] = None,
) -> Optional[FleetDiff]:
    """Earliest divergence of any fleet member from the reference trace.

    ``traces`` is :func:`run_lockstep` output; ``reference`` names the
    trace the others diff against (default: the first key).  The result
    names the diverging simulator, signal, cycle, and lane -- ``None``
    when the whole fleet agrees.
    """
    if not traces:
        return None
    names = list(traces)
    reference = names[0] if reference is None else reference
    if reference not in traces:
        raise KeyError(f"reference {reference!r} not in traces: {names}")
    best: Optional[FleetDiff] = None
    for name in names:
        if name == reference:
            continue
        for diff in compare_traces(traces[reference], traces[name]):
            key = (diff.cycle, diff.lane or 0)
            if best is None or key < (best.diff.cycle, best.diff.lane or 0):
                best = FleetDiff(name, reference, diff)
    return best


def _stimulus_for(simulator, stimulus):
    """Adapt shared fleet stimulus to one simulator's rank.

    A :class:`~repro.workloads.BatchWorkload` drives batched members
    whole; rank-0 members receive lane 0's scalar workload (the
    broadcast-scalar-against-lane-0 convention).  Dicts and scalar
    workloads are shared verbatim (ints broadcast on batched members).
    """
    if hasattr(stimulus, "apply"):
        if lane_count(simulator) is None and hasattr(stimulus, "lane"):
            return stimulus.lane(0)
        return stimulus
    return dict(stimulus)


def run_lockstep(
    simulators: Dict[str, object],
    stimulus,
    watch: Iterable[str],
    cycles: int,
) -> Dict[str, Dict[str, list]]:
    """Run several simulators in lockstep on identical stimulus.

    The fleet may mix ranks: scalar simulators record flat traces,
    batched ones record lane-major traces, and :func:`compare_traces` /
    :func:`first_divergence` diff them directly.  ``stimulus`` is a
    ``{input: Stimulus}`` dict or a workload object (see
    :meth:`Testbench.run`); a :class:`~repro.workloads.BatchWorkload`
    drives scalar members with its lane-0 stream.
    """
    benches = {
        name: Testbench(sim, _stimulus_for(sim, stimulus), list(watch))
        for name, sim in simulators.items()
    }
    return {name: bench.run(cycles) for name, bench in benches.items()}
