"""Host-DUT communication: a Debug-Module-Interface style channel.

Section 6.2: "to support the Debug Module Interface (DMI), RTeAAL Sim
connects the frontend server (FESVR) and the DUT by reading and updating
Debug Transfer Module (DTM) signals in the LI at the end of each simulation
cycle."

This module provides both halves:

* :class:`DmiPort` -- the signal-name convention a design exposes
  (request valid/address/data/write, response valid/data);
* :class:`FrontendServer` -- a miniature FESVR that loads a program image
  into the DUT over the DMI, then services per-cycle polling, exactly by
  poking/peeking LI values at cycle boundaries.

The synthetic core designs in :mod:`repro.designs.cores` expose this port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class DmiPort:
    """Signal names of a DMI attachment point on the DUT."""

    req_valid: str = "dmi_req_valid"
    req_write: str = "dmi_req_write"
    req_addr: str = "dmi_req_addr"
    req_data: str = "dmi_req_data"
    resp_valid: str = "dmi_resp_valid"
    resp_data: str = "dmi_resp_data"

    def input_names(self) -> Tuple[str, ...]:
        return (self.req_valid, self.req_write, self.req_addr, self.req_data)

    def output_names(self) -> Tuple[str, ...]:
        return (self.resp_valid, self.resp_data)


@dataclass
class DmiTransaction:
    write: bool
    addr: int
    data: int = 0
    #: Filled in when the response arrives.
    response: Optional[int] = None
    issued_cycle: int = -1
    completed_cycle: int = -1

    @property
    def complete(self) -> bool:
        return self.response is not None


class FrontendServer:
    """A miniature FESVR driving a simulator through a :class:`DmiPort`.

    Transactions are queued with :meth:`write` / :meth:`read` and advanced
    one per cycle by :meth:`tick`, which must be called once per simulation
    cycle *before* ``simulator.step()`` -- i.e. at the end-of-cycle boundary
    the paper describes.

    A batched engine hosts one frontend *per lane*: pass ``lane=`` and the
    frontend drives that lane's DMI signals via ``poke_lane`` /
    ``peek_lane`` while other lanes run their own (or none).  This is the
    attachment point :mod:`repro.serve` sessions use -- a checked-out lane
    plus a frontend behaves exactly like a private scalar simulator.
    """

    def __init__(
        self,
        simulator,
        port: Optional[DmiPort] = None,
        lane: Optional[int] = None,
    ) -> None:
        self.simulator = simulator
        self.port = port or DmiPort()
        self.lane = lane
        # Batched engines (BatchSimulator / ShardedBatchSimulator) expose
        # per-lane access; this frontend then drives exactly one lane and
        # leaves the others to their own frontends.  Duck-typed: scalar
        # simulators (and test doubles) need only poke/peek/step/cycle.
        batched = hasattr(simulator, "peek_lane")
        if lane is not None and not batched:
            raise TypeError(
                "lane= targeting needs a batched simulator with "
                "poke_lane/peek_lane; this one is scalar"
            )
        if lane is None and batched:
            raise ValueError(
                "driving a batched simulator needs an explicit lane= "
                "(each FrontendServer owns one lane)"
            )
        self._queue: List[DmiTransaction] = []
        self._in_flight: Optional[DmiTransaction] = None
        self.completed: List[DmiTransaction] = []

    # ------------------------------------------------------------------
    def _peek(self, name: str) -> int:
        if self.lane is None:
            return self.simulator.peek(name)
        return self.simulator.peek_lane(name, self.lane)

    def _poke(self, name: str, value: int) -> None:
        if self.lane is None:
            self.simulator.poke(name, value)
        else:
            self.simulator.poke_lane(name, self.lane, value)

    # ------------------------------------------------------------------
    def write(self, addr: int, data: int) -> DmiTransaction:
        transaction = DmiTransaction(write=True, addr=addr, data=data)
        self._queue.append(transaction)
        return transaction

    def read(self, addr: int) -> DmiTransaction:
        transaction = DmiTransaction(write=False, addr=addr)
        self._queue.append(transaction)
        return transaction

    def load_image(self, base_addr: int, words: List[int]) -> None:
        """Queue a program image as sequential DMI writes."""
        for offset, word in enumerate(words):
            self.write(base_addr + offset, word)

    @property
    def idle(self) -> bool:
        return self._in_flight is None and not self._queue

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the DMI protocol by one cycle.

        The request is held asserted until the response arrives, so a DUT
        held in reset (which suppresses responses) simply sees the request
        retried rather than losing it.
        """
        sim = self.simulator
        port = self.port

        # Collect any response for the in-flight transaction.
        if self._in_flight is not None and self._peek(port.resp_valid):
            transaction = self._in_flight
            transaction.response = self._peek(port.resp_data)
            transaction.completed_cycle = sim.cycle
            self.completed.append(transaction)
            self._in_flight = None

        # Issue the next request if the channel is free.
        if self._in_flight is None and self._queue:
            transaction = self._queue.pop(0)
            transaction.issued_cycle = sim.cycle
            self._in_flight = transaction

        if self._in_flight is not None:
            transaction = self._in_flight
            self._poke(port.req_valid, 1)
            self._poke(port.req_write, int(transaction.write))
            self._poke(port.req_addr, transaction.addr)
            self._poke(port.req_data, transaction.data)
        else:
            self._poke(port.req_valid, 0)

    def run_until_idle(self, max_cycles: int = 10_000) -> int:
        """Tick and step until all transactions complete; returns cycles used."""
        cycles = 0
        while not self.idle:
            if cycles >= max_cycles:
                raise TimeoutError(
                    f"DMI did not drain within {max_cycles} cycles "
                    f"({len(self._queue)} queued, in-flight={self._in_flight})"
                )
            self.tick()
            self.simulator.step()
            cycles += 1
        return cycles
