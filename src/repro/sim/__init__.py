"""Simulator API: full-cycle simulation, waveforms, DMI, multi-clock.

Public API::

    from repro.sim import Simulator, VcdWriter, FrontendServer, Testbench
"""

from .clocks import ClockSchedule, ClockSpec
from .dmi import DmiPort, DmiTransaction, FrontendServer
from .simulator import SimSnapshot, Simulator, compile_design, compile_graph
from .testbench import (
    UNKNOWN,
    FleetDiff,
    Testbench,
    TraceDiff,
    compare_traces,
    extract_lane,
    first_divergence,
    lane_count,
    run_lockstep,
    trace_lanes,
)
from .waveform import VcdWriter

__all__ = [
    "UNKNOWN",
    "ClockSchedule",
    "ClockSpec",
    "DmiPort",
    "DmiTransaction",
    "FleetDiff",
    "FrontendServer",
    "SimSnapshot",
    "Simulator",
    "Testbench",
    "TraceDiff",
    "VcdWriter",
    "compare_traces",
    "compile_design",
    "compile_graph",
    "extract_lane",
    "first_divergence",
    "lane_count",
    "run_lockstep",
    "trace_lanes",
]
