"""Multi-clock-domain scheduling (Section 6.2).

"RTeAAL Sim targets circuits with a single clock domain.  Multi-clock
designs can be supported by partitioning the circuit according to clock
domain and adding a synchronization step at the end of each cycle."

:class:`ClockSchedule` realises that: each domain has an integer period (in
base time units); at every time unit, combinational logic settles once and
all domains with an edge at that time commit their registers -- the
synchronisation step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ClockSpec:
    """One clock: fires every ``period`` base time units, offset ``phase``."""

    name: str
    period: int = 1
    phase: int = 0

    def edges_at(self, time: int) -> bool:
        return time % self.period == self.phase % self.period


class ClockSchedule:
    """Drives a multi-clock simulator through base time units.

    Parameters
    ----------
    simulator:
        A :class:`repro.sim.Simulator`; its clock domains must cover the
        scheduled clock names.
    clocks:
        ``{clock_name: period}`` or a list of :class:`ClockSpec`.
    """

    def __init__(self, simulator, clocks) -> None:
        self.simulator = simulator
        if isinstance(clocks, dict):
            specs = [ClockSpec(name, period) for name, period in clocks.items()]
        else:
            specs = list(clocks)
        self.specs: List[ClockSpec] = specs
        self.time = 0
        domains = set(simulator.clock_domains)
        missing = [s.name for s in specs if s.name not in domains]
        if missing:
            raise KeyError(
                f"scheduled clocks {missing} not present in design domains "
                f"{sorted(domains)}"
            )

    def advance(self, time_units: int = 1) -> None:
        """Advance base time; domains commit on their edges, synchronised."""
        for _ in range(time_units):
            firing = [s.name for s in self.specs if s.edges_at(self.time)]
            for name in firing:
                # step_domain settles combinational logic before each edge;
                # same-time edges see pre-edge values of other domains, the
                # standard simulator race-free convention.
                self.simulator.step_domain(name)
            self.time += 1

    def edges_of(self, clock: str, horizon: int) -> List[int]:
        spec = next((s for s in self.specs if s.name == clock), None)
        if spec is None:
            raise KeyError(f"unknown clock {clock!r}")
        return [t for t in range(horizon) if spec.edges_at(t)]
