"""VCD waveform generation (Section 6.2), lane-aware.

The paper's approach: keep every signal observable (signal-eliminating
optimisations disabled), give each signal a persistent coordinate, and
detect transitions by comparing each signal's value against the previous
cycle.  :class:`VcdWriter` implements exactly that on top of any
simulator exposing ``peek``; only *changed* values are dumped each
cycle, which is what makes VCD files compact.

The lane rank rides along: on a batched simulator
(:class:`~repro.batch.BatchSimulator`,
:class:`~repro.shard.ShardedBatchSimulator`) the writer tracks
transitions per lane, ``lanes=`` filters which lanes are recorded,
``document(lane=i)`` renders one lane in exactly the scalar writer's
format (bit-identical to a scalar run of the same seed), and
``document()`` renders all selected lanes as per-lane scopes of a
single VCD document.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .testbench import UNKNOWN, lane_count

_IDENT_CHARS = "".join(chr(c) for c in range(33, 127))

#: One sampled time step of one lane: (time, [(signal, new value), ...]).
_Event = Tuple[int, List[Tuple[str, int]]]


def _identifier(index: int) -> str:
    """Short VCD identifier codes: !, ", #, ... then two-char codes, then
    three, and so on (bijective base-94 over the printable ASCII range).

    Variable-length codes are what keeps every index unique: a fixed
    two-character tail would wrap its leading character once ``index``
    passes ``94 + 94**2`` and silently alias two watched signals onto
    one VCD identifier.
    """
    if index < 0:
        raise ValueError(f"identifier index must be >= 0, got {index}")
    base = len(_IDENT_CHARS)
    chars = []
    index += 1
    while index > 0:
        index, digit = divmod(index - 1, base)
        chars.append(_IDENT_CHARS[digit])
    return "".join(reversed(chars))


def _default_signals(simulator) -> Dict[str, int]:
    """``{name: width}`` for every signal the simulator exposes."""
    widths = getattr(simulator, "signal_widths", None)
    if widths is not None:
        return {name: widths[name] for name in sorted(widths)}
    bundle = simulator.bundle
    return {
        name: bundle.slot_width[slot]
        for name, slot in sorted(bundle.signal_slots.items())
    }


class VcdWriter:
    """Streams value changes of watched signals into a VCD document.

    Parameters
    ----------
    simulator:
        Any object with ``peek(name) -> int`` (rank 0), or a batched
        engine whose ``peek`` returns B-lane vectors; typically built
        with ``preserve_signals=True``.
    signals:
        ``{name: width}`` of the signals to record.  Defaults to every
        signal the simulator exposes.
    lanes:
        On a batched simulator, which lanes to record (default: all).
        Rank-0 simulators accept only ``None`` or ``[0]``.
    """

    def __init__(
        self,
        simulator,
        signals: Optional[Dict[str, int]] = None,
        top_name: str = "TOP",
        timescale: str = "1ns",
        lanes: Optional[Iterable[int]] = None,
    ) -> None:
        self.simulator = simulator
        if signals is None:
            signals = _default_signals(simulator)
        self.signals = dict(signals)
        self.top_name = top_name
        self.timescale = timescale

        sim_lanes = lane_count(simulator)
        if sim_lanes is None:
            if lanes is not None and list(lanes) != [0]:
                raise ValueError(
                    "rank-0 simulators have a single lane (0); "
                    f"got lanes={list(lanes)}"
                )
            self.lanes: Optional[List[int]] = None
            self._lane_ids: List[Optional[int]] = [None]
        else:
            selected = list(range(sim_lanes)) if lanes is None else list(lanes)
            if len(set(selected)) != len(selected):
                raise ValueError(f"duplicate lanes in {selected}")
            for lane in selected:
                if not 0 <= lane < sim_lanes:
                    raise ValueError(
                        f"lane {lane} out of range for {sim_lanes}-lane "
                        "simulator"
                    )
            if not selected:
                raise ValueError("lanes= selected no lanes")
            self.lanes = selected
            self._lane_ids = list(selected)

        #: Per-signal identifier codes of a single-scope (scalar-format)
        #: document; the merged multi-lane document derives per-lane codes
        #: from the same enumeration order.
        self._idents = {
            name: _identifier(index) for index, name in enumerate(self.signals)
        }
        self._previous: Dict[Optional[int], Dict[str, Optional[int]]] = {
            lane: {name: None for name in self.signals}
            for lane in self._lane_ids
        }
        self._events: Dict[Optional[int], List[_Event]] = {
            lane: [] for lane in self._lane_ids
        }
        self._time = 0
        self._sampled = False

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self) -> int:
        """Record the current cycle; returns the number of changed
        (signal, lane) values."""
        rank0 = self.lanes is None
        rows = {name: self.simulator.peek(name) for name in self.signals}
        # Before the first clock edge a never-poked input holds the
        # engine's default 0 without anyone having chosen it; real
        # simulators dump such signals as x, and so do we -- the parser
        # maps them back to the UNKNOWN sentinel, which compare_traces
        # documents as a non-diff against a defined pre-reset 0.
        undefined = ()
        if getattr(self.simulator, "cycle", None) == 0:
            unpoked = getattr(self.simulator, "unpoked_inputs", None)
            if unpoked:
                undefined = unpoked.intersection(self.signals)
        total = 0
        for lane in self._lane_ids:
            previous = self._previous[lane]
            changes: List[Tuple[str, int]] = []
            for name in self.signals:
                if name in undefined:
                    value = UNKNOWN
                else:
                    value = rows[name] if rank0 else rows[name][lane]
                if value == previous[name]:
                    continue
                previous[name] = value
                changes.append((name, value))
            # Quiet cycles are not stored (memory stays proportional to
            # change count); time 0 always is, so the rendered document
            # opens with "#0" exactly like the streaming writer did.
            if changes or self._time == 0:
                self._events[lane].append((self._time, changes))
            total += len(changes)
        self._time += 1
        self._sampled = True
        return total

    def run(self, cycles: int, step: bool = True) -> None:
        """Sample ``cycles`` cycles, stepping the simulator between samples."""
        for _ in range(cycles):
            self.sample()
            if step:
                self.simulator.step()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _format_change(self, name: str, value, ident: str) -> str:
        if value is UNKNOWN:
            if self.signals[name] == 1:
                return f"x{ident}"
            return f"bx {ident}"
        if self.signals[name] == 1:
            return f"{value}{ident}"
        return f"b{value:b} {ident}"

    def _write_vars(self, out: io.StringIO, idents: Dict[str, str]) -> None:
        for name, width in self.signals.items():
            safe = name.replace(".", "_")
            out.write(f"$var wire {width} {idents[name]} {safe} $end\n")

    def _write_body(
        self,
        out: io.StringIO,
        events: Sequence[Tuple[List[Tuple[str, int]], Dict[str, str]]],
    ) -> None:
        """Merge per-lane change streams in timestamp order.

        ``events`` pairs each lane's event list with that lane's
        identifier map.  Each list is ascending in time but sparse
        (quiet cycles are not stored), so lanes are merged by timestamp,
        lanes in selection order within a timestamp.
        """
        if self._sampled:
            out.write("$dumpvars\n")
        positions = [0] * len(events)
        while True:
            time = min(
                (
                    lane_events[position][0]
                    for position, (lane_events, _) in zip(positions, events)
                    if position < len(lane_events)
                ),
                default=None,
            )
            if time is None:
                break
            lines: List[str] = [f"#{time}"]
            for index, (lane_events, idents) in enumerate(events):
                position = positions[index]
                if position < len(lane_events) and lane_events[position][0] == time:
                    lines.extend(
                        self._format_change(name, value, idents[name])
                        for name, value in lane_events[position][1]
                    )
                    positions[index] += 1
            out.write("\n".join(lines) + "\n")

    def _render_single(self, lane: Optional[int]) -> str:
        """One lane in the scalar writer's exact format (single scope)."""
        out = io.StringIO()
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.top_name} $end\n")
        self._write_vars(out, self._idents)
        out.write("$upscope $end\n$enddefinitions $end\n")
        self._write_body(out, [(self._events[lane], self._idents)])
        return out.getvalue()

    def _render_merged(self) -> str:
        """All selected lanes as per-lane scopes of one document."""
        out = io.StringIO()
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.top_name} $end\n")
        lane_idents: List[Dict[str, str]] = []
        for position, lane in enumerate(self._lane_ids):
            base = position * len(self.signals)
            idents = {
                name: _identifier(base + index)
                for index, name in enumerate(self.signals)
            }
            lane_idents.append(idents)
            out.write(f"$scope module lane{lane} $end\n")
            self._write_vars(out, idents)
            out.write("$upscope $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        self._write_body(
            out,
            [
                (self._events[lane], idents)
                for lane, idents in zip(self._lane_ids, lane_idents)
            ],
        )
        return out.getvalue()

    def _resolve_lane(self, lane: int) -> int:
        if self.lanes is None:
            raise ValueError(
                f"lane {lane} was not recorded; rank-0 writers record only "
                "lane 0"
            )
        if lane not in self._events:
            raise ValueError(
                f"lane {lane} was not recorded; recorded lanes: {self.lanes}"
            )
        return lane

    def document(self, lane: Optional[int] = None) -> str:
        """The VCD document.

        Rank-0 writers render the classic single-scope document.  On a
        batched writer, ``lane=i`` renders that lane alone -- in the
        scalar format, bit-identical to a scalar simulator's VCD of the
        same stimulus -- while ``lane=None`` renders every selected lane
        as a ``lane<i>`` scope of one document.
        """
        if self.lanes is None:
            # A rank-0 simulator *is* lane 0 of a mixed fleet, so generic
            # per-lane dumping code works on every fleet member.
            if lane not in (None, 0):
                self._resolve_lane(lane)
            return self._render_single(None)
        if lane is None:
            return self._render_merged()
        return self._render_single(self._resolve_lane(lane))

    def save(self, path: Union[str, Path], lane: Optional[int] = None) -> None:
        Path(path).write_text(self.document(lane=lane))

    def save_lanes(self, pattern: Union[str, Path]) -> Dict[int, Path]:
        """One scalar-format VCD file per recorded lane.

        ``pattern`` must contain a ``{lane}`` placeholder, e.g.
        ``out/wave_lane{lane}.vcd``; returns ``{lane: written path}``.
        """
        if self.lanes is None:
            raise ValueError(
                "save_lanes() needs a batched simulator; use save() for "
                "rank-0 writers"
            )
        pattern = str(pattern)
        if "{lane}" not in pattern:
            raise ValueError(
                f"pattern {pattern!r} has no {{lane}} placeholder"
            )
        written: Dict[int, Path] = {}
        for lane in self.lanes:
            path = Path(pattern.format(lane=lane))
            path.write_text(self.document(lane=lane))
            written[lane] = path
        return written
