"""VCD waveform generation (Section 6.2).

The paper's approach: keep every signal observable (signal-eliminating
optimisations disabled), give each signal a persistent coordinate, and
detect transitions by comparing each signal's value against the previous
cycle.  :class:`VcdWriter` implements exactly that on top of any simulator
exposing ``peek``; only *changed* values are dumped each cycle, which is
what makes VCD files compact.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterable, List, Optional, TextIO, Union

_IDENT_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier codes: !, ", #, ... then two-char codes, then
    three, and so on (bijective base-94 over the printable ASCII range).

    Variable-length codes are what keeps every index unique: a fixed
    two-character tail would wrap its leading character once ``index``
    passes ``94 + 94**2`` and silently alias two watched signals onto
    one VCD identifier.
    """
    if index < 0:
        raise ValueError(f"identifier index must be >= 0, got {index}")
    base = len(_IDENT_CHARS)
    chars = []
    index += 1
    while index > 0:
        index, digit = divmod(index - 1, base)
        chars.append(_IDENT_CHARS[digit])
    return "".join(reversed(chars))


class VcdWriter:
    """Streams value changes of watched signals into a VCD document.

    Parameters
    ----------
    simulator:
        Any object with ``peek(name) -> int``; typically a
        :class:`repro.sim.Simulator` built with ``preserve_signals=True``.
    signals:
        ``{name: width}`` of the signals to record.  Defaults to every
        signal the simulator exposes.
    """

    def __init__(
        self,
        simulator,
        signals: Optional[Dict[str, int]] = None,
        top_name: str = "TOP",
        timescale: str = "1ns",
    ) -> None:
        self.simulator = simulator
        if signals is None:
            bundle = simulator.bundle
            signals = {
                name: bundle.slot_width[slot]
                for name, slot in sorted(bundle.signal_slots.items())
            }
        self.signals = dict(signals)
        self.top_name = top_name
        self.timescale = timescale
        self._idents = {
            name: _identifier(index) for index, name in enumerate(self.signals)
        }
        self._previous: Dict[str, Optional[int]] = {name: None for name in self.signals}
        self._buffer = io.StringIO()
        self._time = 0
        self._header_written = False

    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        out = self._buffer
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.top_name} $end\n")
        for name, width in self.signals.items():
            safe = name.replace(".", "_")
            out.write(f"$var wire {width} {self._idents[name]} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        self._header_written = True

    def sample(self) -> int:
        """Record the current cycle; returns the number of changed signals."""
        if not self._header_written:
            self._write_header()
            self._buffer.write("$dumpvars\n")
        changes = 0
        lines: List[str] = [f"#{self._time}"]
        for name, width in self.signals.items():
            value = self.simulator.peek(name)
            if value == self._previous[name]:
                continue
            self._previous[name] = value
            changes += 1
            if width == 1:
                lines.append(f"{value}{self._idents[name]}")
            else:
                lines.append(f"b{value:b} {self._idents[name]}")
        if changes or self._time == 0:
            self._buffer.write("\n".join(lines) + "\n")
        self._time += 1
        return changes

    def run(self, cycles: int, step: bool = True) -> None:
        """Sample ``cycles`` cycles, stepping the simulator between samples."""
        for _ in range(cycles):
            self.sample()
            if step:
                self.simulator.step()

    # ------------------------------------------------------------------
    def document(self) -> str:
        if not self._header_written:
            self._write_header()
        return self._buffer.getvalue()

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.document())
